// Experiment E20 — validating the extremal-start heuristic.
//
// Every coalescence/recovery experiment starts the coupled copies at
// (all-in-one crash, balanced); the §3 mixing-time definition maximizes
// over ALL starts.  For small spaces we compute the per-start TV
// distance to π at t = ⌈exact τ(1/4)/2⌉ (mid-mixing, where starts are
// maximally separated) and report where the crash state ranks: if it is
// the worst — or within a hair of the worst — the heuristic is sound.
// The same check runs for the edge-orientation chain with the most
// unfair reachable state.  The relaxation-time column fits the
// exponential tail of the worst-case TV curve (1/rate ≈ relaxation
// time), tying τ(ε) to the spectral picture: τ(ε) ≈ t_rel · ln(C/ε).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/exact_chain.hpp"
#include "src/obs/run_record.hpp"
#include "src/orient/exact_chain.hpp"
#include "src/stats/autocorr.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

struct Ranked {
  double worst_tv = 0;
  double crash_tv = 0;
  int crash_rank = 0;  // 1 = worst start
};

Ranked rank_start(const std::vector<double>& tv, std::size_t crash_index) {
  Ranked out;
  out.crash_tv = tv[crash_index];
  out.worst_tv = *std::max_element(tv.begin(), tv.end());
  out.crash_rank = 1;
  for (const double v : tv) {
    if (v > out.crash_tv + 1e-15) ++out.crash_rank;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp20_worst_start",
                "E20: is the crash state really the worst start?");
  cli.flag("sizes", "comma-separated m = n (balls chains)", "5,6,7,8");
  cli.flag("orient_sizes", "comma-separated n (orientation)", "4,5,6,7");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  util::Table table({"chain", "n", "|space|", "tau(1/4)", "t_rel=1/rate",
                     "crash TV@tau/2", "worst TV@tau/2", "crash rank"});

  for (const std::int64_t m : cli.int_list("sizes")) {
    const auto n = static_cast<std::size_t>(m);
    balls::PartitionSpace space(n, m);
    for (const bool scen_b : {false, true}) {
      const auto chain = balls::build_exact_chain(
          space,
          scen_b ? balls::RemovalKind::kNonEmptyUniform
                 : balls::RemovalKind::kBallWeighted,
          balls::AbkuRule(2));
      const auto pi = core::stationary_distribution(chain);
      const auto exact = core::exact_mixing_time(chain, pi, 0.25,
                                                 scen_b ? 4000 : 1000);
      const auto mid = std::max<std::int64_t>(1, exact.mixing_time / 2);
      const auto tv = core::per_start_tv(chain, pi, mid);
      const auto ranked = rank_start(tv, space.all_in_one_index());
      const double rate = stats::exponential_tail_rate(exact.worst_tv_by_t);
      table.row()
          .add(scen_b ? "I_B-ABKU[2]" : "I_A-ABKU[2]")
          .integer(m)
          .integer(static_cast<std::int64_t>(space.size()))
          .integer(exact.mixing_time)
          .num(rate > 0 ? 1.0 / rate : -1.0, 1)
          .num(ranked.crash_tv, 4)
          .num(ranked.worst_tv, 4)
          .integer(ranked.crash_rank);
    }
  }

  for (const std::int64_t n : cli.int_list("orient_sizes")) {
    const auto ns = static_cast<std::size_t>(n);
    orient::OrientationSpace space(ns);
    const auto chain = orient::build_exact_orientation_chain(space);
    const auto pi = core::stationary_distribution(chain);
    const auto exact = core::exact_mixing_time(chain, pi, 0.25, 100000);
    const auto mid = std::max<std::int64_t>(1, exact.mixing_time / 2);
    const auto tv = core::per_start_tv(chain, pi, mid);
    // The most unfair reachable states form a tie class; the natural
    // adversarial representative is the full staircase, which maximizes
    // the TOTAL displacement within the reachable space.
    const auto k = space.state(space.most_unfair_index()).unfairness();
    const auto stair = space.find(orient::DiffState::staircase(ns, k));
    const std::size_t crash = stair.value_or(space.most_unfair_index());
    const auto ranked = rank_start(tv, crash);
    const double rate = stats::exponential_tail_rate(exact.worst_tv_by_t);
    table.row()
        .add("orientation (staircase)")
        .integer(n)
        .integer(static_cast<std::int64_t>(space.size()))
        .integer(exact.mixing_time)
        .num(rate > 0 ? 1.0 / rate : -1.0, 1)
        .num(ranked.crash_tv, 4)
        .num(ranked.worst_tv, 4)
        .integer(ranked.crash_rank);
  }
  table.print(std::cout);
  run.add_table("worst_start_ranking", table);
  std::printf(
      "\n# Finding: for the balls chains the all-in-one crash IS the worst "
      "start (rank 1 everywhere).  For the orientation chain the worst "
      "start is the full STAIRCASE (max total displacement), not an "
      "arbitrary max-unfairness state - distance is total displacement "
      "(Def. 6.3), not unfairness.  t_rel * ln(4C) ~ tau(1/4) gives the "
      "spectral reading of the recovery time.\n");
  return 0;
}
