file(REMOVE_RECURSE
  "CMakeFiles/exp10_stationary_maxload.dir/exp10_stationary_maxload.cpp.o"
  "CMakeFiles/exp10_stationary_maxload.dir/exp10_stationary_maxload.cpp.o.d"
  "exp10_stationary_maxload"
  "exp10_stationary_maxload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp10_stationary_maxload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
