#include "src/certify/properties.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "src/certify/compare.hpp"
#include "src/kernel/kernel.hpp"
#include "src/util/assert.hpp"

namespace recover::certify {

namespace {

/// FNV-1a: stable name→stream mapping (names are short ASCII; any decent
/// 64-bit hash works — what matters is independence from registry order).
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Substream tags for the per-instance property seeds.  Constants, so a
// rerun of one model replays the identical draws.
constexpr std::uint64_t kTagLaw = 0x10;        // + start index
constexpr std::uint64_t kTagMarginal = 0x40;
constexpr std::uint64_t kTagAbsorbing = 0x41;
constexpr std::uint64_t kTagIdentity = 0x50;
constexpr std::uint64_t kTagInvariant = 0x60;

class Session {
 public:
  Session(const CertifyOptions& options, CertifyReport& report)
      : options_(options),
        report_(report),
        start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] bool out_of_time() {
    if (options_.time_budget_ms <= 0) return false;
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    if (elapsed >= options_.time_budget_ms) report_.timed_out = true;
    return report_.timed_out;
  }

  void fail(const ChainModel& model, const char* property,
            const Instance& instance, std::string detail) {
    report_.failures.push_back(
        {model.name, property, instance, std::move(detail)});
  }

  void count_check() { ++report_.checks; }

 private:
  const CertifyOptions& options_;
  CertifyReport& report_;
  std::chrono::steady_clock::time_point start_;
};

void check_exact_vs_sampled(const ChainModel& model, const Instance& instance,
                            const CertifyOptions& options, Session& session) {
  const std::vector<std::string> starts = model.starts(instance);
  const std::size_t start_count = std::min<std::size_t>(starts.size(), 3);
  for (std::size_t s = 0; s < start_count; ++s) {
    if (session.out_of_time()) return;
    const StepLaw law = model.exact_step(instance, starts[s]);
    rng::Xoshiro256PlusPlus eng(rng::substream(instance.seed, kTagLaw + s));
    const LawCheck check = check_sampled_law(
        law,
        [&] { return model.sample_step(instance, starts[s], eng); },
        options.law_trials);
    session.count_check();
    if (!check.pass(options.alpha)) {
      session.fail(model, "exact_vs_sampled", instance,
                   "start=" + starts[s] + " " + check.describe());
    }
  }
}

void check_coupling_marginals(const ChainModel& model,
                              const Instance& instance,
                              const CertifyOptions& options,
                              Session& session) {
  const std::vector<std::string> starts = model.starts(instance);
  RL_REQUIRE(!starts.empty());
  const std::string& sx = starts.front();
  const std::string& sy = starts.back();
  const StepLaw law_x = model.exact_step(instance, sx);
  const StepLaw law_y = model.exact_step(instance, sy);

  // One pass of coupled steps, both marginals counted from the SAME
  // joint draws — that is the faithfulness claim under test.
  std::vector<std::string> xs;
  std::vector<std::string> ys;
  xs.reserve(static_cast<std::size_t>(options.law_trials));
  ys.reserve(static_cast<std::size_t>(options.law_trials));
  rng::Xoshiro256PlusPlus eng(rng::substream(instance.seed, kTagMarginal));
  for (std::int64_t t = 0; t < options.law_trials; ++t) {
    auto [kx, ky] = model.coupled_step(instance, sx, sy, eng);
    xs.push_back(std::move(kx));
    ys.push_back(std::move(ky));
  }
  const auto check_side = [&](const StepLaw& law,
                              const std::vector<std::string>& keys,
                              const char* property, const std::string& from) {
    std::size_t next = 0;
    const LawCheck check = check_sampled_law(
        law, [&keys, &next] { return keys[next++]; },
        static_cast<std::int64_t>(keys.size()));
    session.count_check();
    if (!check.pass(options.alpha)) {
      session.fail(model, property, instance,
                   "start=" + from + " " + check.describe());
    }
  };
  check_side(law_x, xs, "coupling_marginal_x", sx);
  check_side(law_y, ys, "coupling_marginal_y", sy);
}

void check_coupling_absorbing(const ChainModel& model,
                              const Instance& instance,
                              const CertifyOptions& options,
                              Session& session) {
  // Once coalesced, copies must move in lockstep forever: chain coupled
  // steps from an equal pair and require equality throughout.
  std::string current = model.starts(instance).front();
  rng::Xoshiro256PlusPlus eng(rng::substream(instance.seed, kTagAbsorbing));
  const std::int64_t steps = std::min<std::int64_t>(options.invariant_steps, 128);
  session.count_check();
  for (std::int64_t t = 0; t < steps; ++t) {
    const auto [kx, ky] = model.coupled_step(instance, current, current, eng);
    if (kx != ky) {
      session.fail(model, "coupling_absorbing", instance,
                   "coalesced pair split at step " + std::to_string(t) +
                       ": '" + kx + "' vs '" + ky + "'");
      return;
    }
    current = kx;
  }
}

void check_scalar_vs_batched(const ChainModel& model, const Instance& instance,
                             const CertifyOptions& options, Session& session) {
  const std::uint64_t run_seed = rng::substream(instance.seed, kTagIdentity);
  const kernel::Mode previous = kernel::set_mode(kernel::Mode::kScalar);
  const RunResult scalar =
      model.run(instance, run_seed, options.identity_steps);
  kernel::set_mode(kernel::Mode::kBatched);
  const RunResult batched =
      model.run(instance, run_seed, options.identity_steps);
  kernel::set_mode(previous);
  session.count_check();
  if (scalar.state_key != batched.state_key) {
    session.fail(model, "scalar_vs_batched", instance,
                 "state diverged after " +
                     std::to_string(options.identity_steps) + " steps: '" +
                     scalar.state_key + "' vs '" + batched.state_key + "'");
  } else if (scalar.engine_word != batched.engine_word) {
    session.fail(model, "scalar_vs_batched", instance,
                 "states agree but engines diverged (different randomness "
                 "consumed) after " +
                     std::to_string(options.identity_steps) + " steps");
  }
}

void check_invariant(const ChainModel& model, const Instance& instance,
                     const CertifyOptions& options, Session& session) {
  std::string diag;
  session.count_check();
  if (!model.invariant_run(instance,
                           rng::substream(instance.seed, kTagInvariant),
                           options.invariant_steps, &diag)) {
    session.fail(model, "invariant", instance,
                 model.invariant_name + ": " + diag);
  }
}

}  // namespace

std::string CheckFailure::repro(const CertifyOptions& options) const {
  return "CERTIFY FAIL model=" + model + " property=" + property + " " +
         describe(instance) + " kernel=" + kernel::mode_name() +
         " | rerun: certify_runner --suite=chains --seed=" +
         std::to_string(options.seed) + " --instances=" +
         std::to_string(options.instances) + " --only=" + model;
}

CertifyReport certify_models(const ModelRegistry& registry,
                             const CertifyOptions& options,
                             std::ostream* progress) {
  CertifyReport report;
  Session session(options, report);
  for (const ChainModel& model : registry.models()) {
    if (!options.only.empty() &&
        std::find(options.only.begin(), options.only.end(), model.name) ==
            options.only.end()) {
      continue;
    }
    if (session.out_of_time()) break;
    ++report.models;
    const std::uint64_t model_stream =
        rng::substream(options.seed, fnv1a(model.name));
    const auto failures_before = report.failures.size();
    for (int i = 0; i < options.instances; ++i) {
      if (session.out_of_time()) break;
      Instance instance = draw_instance(
          model, rng::substream(model_stream, static_cast<std::uint64_t>(i)));
      ++report.instances;
      if (model.exact_step && model.sample_step) {
        check_exact_vs_sampled(model, instance, options, session);
      }
      if (session.out_of_time()) break;
      if (model.coupled_step && model.exact_step) {
        check_coupling_marginals(model, instance, options, session);
      }
      if (model.coupled_step) {
        check_coupling_absorbing(model, instance, options, session);
      }
      if (session.out_of_time()) break;
      if (model.run && model.has_batched) {
        check_scalar_vs_batched(model, instance, options, session);
      }
      if (model.invariant_run) {
        check_invariant(model, instance, options, session);
      }
    }
    if (progress != nullptr) {
      const auto model_failures = report.failures.size() - failures_before;
      *progress << "certify: " << model.name << " ("
                << model.family << ") "
                << (model_failures == 0 ? "ok" : "FAIL") << "\n";
    }
  }
  return report;
}

}  // namespace recover::certify
