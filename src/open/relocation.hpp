// Relocation processes (§7 Conclusions): dynamic allocation where a
// limited number of balls may be *relocated* each step in addition to the
// usual remove/insert phase.
//
// The paper defers the analysis to its full version; we implement the
// natural protocol so the ablation exp12 can measure how much limited
// relocation accelerates recovery: after each I_A phase, perform r
// relocation moves, each taking one ball from a maximally loaded bin and
// re-placing it with the scheduling rule (skipped when the state is
// already perfectly balanced — relocating would just churn).
#pragma once

#include <utility>

#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"
#include "src/rng/distributions.hpp"

namespace recover::open {

template <typename Rule>
class RelocatingChainA {
 public:
  using State = balls::LoadVector;

  RelocatingChainA(balls::LoadVector init, Rule rule, int relocations)
      : state_(std::move(init)),
        rule_(std::move(rule)),
        relocations_(relocations) {
    RL_REQUIRE(relocations >= 0);
    RL_REQUIRE(state_.balls() > 0);
  }

  [[nodiscard]] const balls::LoadVector& state() const { return state_; }
  [[nodiscard]] std::size_t bins() const { return state_.bins(); }
  [[nodiscard]] std::int64_t balls() const { return state_.balls(); }

  template <typename Engine>
  void step(Engine& eng) {
    // Standard I_A phase.
    state_.remove_at(state_.sample_ball_weighted(eng));
    balls::ProbeFresh<Engine> probe(eng, state_.bins());
    state_.add_at(rule_.place_index(state_, probe));
    // Limited relocation budget.
    for (int r = 0; r < relocations_; ++r) {
      if (state_.max_load() - state_.min_load() <= 1) break;
      state_.remove_at(0);  // a maximally loaded bin (sorted index 0)
      balls::ProbeFresh<Engine> reprobe(eng, state_.bins());
      state_.add_at(rule_.place_index(state_, reprobe));
    }
  }

 private:
  balls::LoadVector state_;
  Rule rule_;
  int relocations_;
};

}  // namespace recover::open
