file(REMOVE_RECURSE
  "CMakeFiles/coupling_a_test.dir/coupling_a_test.cpp.o"
  "CMakeFiles/coupling_a_test.dir/coupling_a_test.cpp.o.d"
  "coupling_a_test"
  "coupling_a_test.pdb"
  "coupling_a_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupling_a_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
