// Labeled (bin-identity) reference implementation of the allocation
// processes — a deliberately naive, direct transcription of the paper's
// §2 prose, kept as a differential-testing oracle.
//
// The production chains run on normalized load vectors (§3.1), where
// several non-obvious equivalences are exploited (ABKU = max of sorted
// indices, run-head/run-tail updates of Fact 3.2, Fenwick sampling).
// LabeledState makes none of those leaps: bins keep their identity,
// every operation is a linear scan, and the scheduling rules compare
// actual loads.  The paper's own observation — "the ordering of bins is
// insignificant" — then becomes a TESTABLE claim: the law of the load
// multiset under the labeled chains must match the normalized chains
// exactly (labeled_test.cpp drives the comparison).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"
#include "src/rng/distributions.hpp"
#include "src/util/assert.hpp"

namespace recover::balls {

class LabeledState {
 public:
  explicit LabeledState(std::size_t n) : loads_(n, 0) { RL_REQUIRE(n > 0); }

  static LabeledState from_loads(std::vector<std::int64_t> loads) {
    LabeledState s(loads.size());
    for (const auto v : loads) RL_REQUIRE(v >= 0);
    s.loads_ = std::move(loads);
    for (const auto v : s.loads_) s.total_ += v;
    return s;
  }

  [[nodiscard]] std::size_t bins() const { return loads_.size(); }
  [[nodiscard]] std::int64_t balls() const { return total_; }
  [[nodiscard]] std::int64_t load(std::size_t bin) const {
    return loads_[bin];
  }

  void add(std::size_t bin) {
    RL_DBG_ASSERT(bin < loads_.size());
    ++loads_[bin];
    ++total_;
  }

  void remove(std::size_t bin) {
    RL_REQUIRE(loads_[bin] > 0);
    --loads_[bin];
    --total_;
  }

  [[nodiscard]] std::int64_t max_load() const {
    return *std::max_element(loads_.begin(), loads_.end());
  }

  [[nodiscard]] std::size_t nonempty_count() const {
    std::size_t s = 0;
    for (const auto v : loads_) {
      if (v > 0) ++s;
    }
    return s;
  }

  /// A uniform random ball's bin (linear scan — the oracle is naive on
  /// purpose).
  template <typename Engine>
  std::size_t random_ball_bin(Engine& eng) const {
    RL_DBG_ASSERT(total_ > 0);
    auto target = static_cast<std::int64_t>(
        rng::uniform_below(eng, static_cast<std::uint64_t>(total_)));
    for (std::size_t bin = 0; bin < loads_.size(); ++bin) {
      if (target < loads_[bin]) return bin;
      target -= loads_[bin];
    }
    RL_DBG_ASSERT(false);
    return loads_.size() - 1;
  }

  /// A uniform random non-empty bin (k-th non-empty, linear scan).
  template <typename Engine>
  std::size_t random_nonempty_bin(Engine& eng) const {
    const std::size_t s = nonempty_count();
    RL_DBG_ASSERT(s > 0);
    auto k = rng::uniform_below(eng, s);
    for (std::size_t bin = 0; bin < loads_.size(); ++bin) {
      if (loads_[bin] > 0) {
        if (k == 0) return bin;
        --k;
      }
    }
    RL_DBG_ASSERT(false);
    return loads_.size() - 1;
  }

  /// ABKU[d] verbatim: d bins i.u.r. with replacement, least full wins
  /// (first minimum among the samples on ties — the multiset law does
  /// not depend on the tie rule).
  template <typename Engine>
  std::size_t abku_choice(Engine& eng, int d) const {
    RL_DBG_ASSERT(d >= 1);
    std::size_t best =
        static_cast<std::size_t>(rng::uniform_below(eng, loads_.size()));
    for (int k = 1; k < d; ++k) {
      const auto candidate =
          static_cast<std::size_t>(rng::uniform_below(eng, loads_.size()));
      if (loads_[candidate] < loads_[best]) best = candidate;
    }
    return best;
  }

  /// ADAP(x) verbatim: probe until the threshold of the best probe's
  /// load is covered by the probe count.
  template <typename Engine>
  std::size_t adap_choice(Engine& eng, const ThresholdSchedule& x) const {
    std::size_t best =
        static_cast<std::size_t>(rng::uniform_below(eng, loads_.size()));
    std::size_t probes = 1;
    while (x.at(loads_[best]) > static_cast<int>(probes)) {
      const auto candidate =
          static_cast<std::size_t>(rng::uniform_below(eng, loads_.size()));
      ++probes;
      if (loads_[candidate] < loads_[best]) best = candidate;
    }
    return best;
  }

  /// The normalized view, for comparing laws with the fast chains.
  [[nodiscard]] LoadVector normalized() const {
    return LoadVector::from_loads(loads_);
  }

 private:
  std::vector<std::int64_t> loads_;
  std::int64_t total_ = 0;
};

/// Scenario A, labeled: remove a uniform random ball, ABKU[d] insert.
class LabeledScenarioA {
 public:
  LabeledScenarioA(LabeledState init, int d)
      : state_(std::move(init)), d_(d) {
    RL_REQUIRE(state_.balls() > 0);
  }

  [[nodiscard]] const LabeledState& state() const { return state_; }

  template <typename Engine>
  void step(Engine& eng) {
    state_.remove(state_.random_ball_bin(eng));
    state_.add(state_.abku_choice(eng, d_));
  }

 private:
  LabeledState state_;
  int d_;
};

/// Scenario B, labeled: remove from a uniform random non-empty bin.
class LabeledScenarioB {
 public:
  LabeledScenarioB(LabeledState init, int d)
      : state_(std::move(init)), d_(d) {
    RL_REQUIRE(state_.balls() > 0);
  }

  [[nodiscard]] const LabeledState& state() const { return state_; }

  template <typename Engine>
  void step(Engine& eng) {
    state_.remove(state_.random_nonempty_bin(eng));
    state_.add(state_.abku_choice(eng, d_));
  }

 private:
  LabeledState state_;
  int d_;
};

}  // namespace recover::balls
