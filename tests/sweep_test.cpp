// Tests for the sweep subsystem: grid expansion, checkpoint durability
// and torn-line recovery, shard partitioning, and schedule independence
// of the full engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/certify/check.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/sweep/checkpoint.hpp"
#include "src/sweep/grid.hpp"
#include "src/sweep/registry.hpp"
#include "src/sweep/scheduler.hpp"

namespace recover::sweep {
namespace {

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- grid -----------------------------------------------------------------

TEST(GridSpec, ParsesListsAndRanges) {
  const auto grid = GridSpec::parse("m=64..512:x2;d=1..3;replicas=4,8");
  ASSERT_EQ(grid.axis_count(), 3u);
  EXPECT_EQ(grid.axis(0).name, "m");
  EXPECT_EQ(grid.axis(0).values, (std::vector<std::int64_t>{64, 128, 256, 512}));
  EXPECT_EQ(grid.axis(1).values, (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(grid.axis(2).values, (std::vector<std::int64_t>{4, 8}));
  EXPECT_EQ(grid.cells(), 4u * 3u * 2u);
}

TEST(GridSpec, ArithmeticStepAndEndpointInclusion) {
  // +3 from 1: 1,4,7,10 — inclusive of end when hit exactly.
  const auto hit = GridSpec::parse("k=1..10:+3");
  EXPECT_EQ(hit.axis(0).values, (std::vector<std::int64_t>{1, 4, 7, 10}));
  // x3 from 2: 2,6,18 — 54 overshoots 20 and is excluded.
  const auto miss = GridSpec::parse("k=2..20:x3");
  EXPECT_EQ(miss.axis(0).values, (std::vector<std::int64_t>{2, 6, 18}));
}

TEST(GridSpec, RowMajorCellOrderFirstAxisSlowest) {
  const auto grid = GridSpec::parse("a=1,2;b=10,20,30");
  ASSERT_EQ(grid.cells(), 6u);
  EXPECT_EQ(grid.cell(0).at("a"), 1);
  EXPECT_EQ(grid.cell(0).at("b"), 10);
  EXPECT_EQ(grid.cell(2).at("a"), 1);
  EXPECT_EQ(grid.cell(2).at("b"), 30);
  EXPECT_EQ(grid.cell(3).at("a"), 2);
  EXPECT_EQ(grid.cell(3).at("b"), 10);
  EXPECT_EQ(grid.cell(5).key(), "a=2,b=30");
  EXPECT_EQ(grid.cell(4).index, 4u);
}

TEST(GridSpec, CellParameterLookup) {
  const auto cell = GridSpec::parse("m=8;d=2").cell(0);
  EXPECT_EQ(cell.at("m"), 8);
  EXPECT_EQ(cell.get("d", 99), 2);
  EXPECT_EQ(cell.get("absent", 99), 99);
}

TEST(GridSpec, ToStringRoundTrips) {
  const auto grid = GridSpec::parse("m=4..16:x2;d=1,3");
  const auto again = GridSpec::parse(grid.to_string());
  ASSERT_EQ(again.cells(), grid.cells());
  for (std::uint64_t i = 0; i < grid.cells(); ++i) {
    EXPECT_EQ(again.cell(i).key(), grid.cell(i).key());
  }
}

TEST(GridSpec, ParseErrorsThrow) {
  EXPECT_THROW(GridSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(GridSpec::parse("m"), std::invalid_argument);
  EXPECT_THROW(GridSpec::parse("m="), std::invalid_argument);
  EXPECT_THROW(GridSpec::parse("m=1;m=2"), std::invalid_argument);
  EXPECT_THROW(GridSpec::parse("m=5..1"), std::invalid_argument);
  EXPECT_THROW(GridSpec::parse("m=1..8:x1"), std::invalid_argument);
  EXPECT_THROW(GridSpec::parse("m=1..8:+0"), std::invalid_argument);
  EXPECT_THROW(GridSpec::parse("m=1..8:z2"), std::invalid_argument);
  EXPECT_THROW(GridSpec::parse("m=abc"), std::invalid_argument);
}

TEST(GridSpec, HashIsStableAndHexIs16Chars) {
  // Frozen FNV-1a vector: scripts/check_bench_json.py mirrors these
  // constants, so a change here is a cross-language format break.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(hash_hex(fnv1a64("")), "cbf29ce484222325");
  const auto cell = GridSpec::parse("m=64;d=1").cell(0);
  EXPECT_EQ(cell_hash("exp01", cell), fnv1a64("exp01|m=64,d=1"));
  EXPECT_EQ(hash_hex(cell_hash("exp01", cell)).size(), 16u);
}

TEST(GridSpec, ShardsPartitionTheGrid) {
  constexpr std::uint64_t kCells = 97;  // prime: uneven shards
  for (const int k : {1, 2, 3, 8}) {
    std::vector<int> owners(kCells, 0);
    for (int s = 0; s < k; ++s) {
      for (std::uint64_t i = 0; i < kCells; ++i) {
        if (in_shard(i, s, k)) ++owners[i];
      }
    }
    for (std::uint64_t i = 0; i < kCells; ++i) {
      EXPECT_EQ(owners[i], 1) << "cell " << i << " with k=" << k;
    }
  }
}

// --- checkpoint -----------------------------------------------------------

CellRecord make_record(const std::string& exp, const Cell& cell,
                       double value) {
  CellRecord r;
  r.exp = exp;
  r.key = cell.key();
  r.hash = cell_hash(exp, cell);
  r.index = cell.index;
  r.values = {{"T_mean", value}, {"censored", 0.0}};
  r.wall_seconds = 0.5;
  return r;
}

TEST(Checkpoint, RoundTripsRecords) {
  const auto path = temp_path("ckpt_roundtrip.jsonl");
  std::remove(path.c_str());
  const auto grid = GridSpec::parse("m=8,16;d=1");
  {
    CheckpointWriter writer(path);
    writer.append(make_record("expT", grid.cell(0), 1.25));
    writer.append(make_record("expT", grid.cell(1), -3.5e-7));
  }
  const auto load = load_checkpoint(path);
  EXPECT_EQ(load.skipped_lines, 0u);
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.records[0].exp, "expT");
  EXPECT_EQ(load.records[0].key, "m=8,d=1");
  EXPECT_EQ(load.records[0].index, 0u);
  EXPECT_EQ(load.records[0].values[0].first, "T_mean");
  // JSON double round trip is exact (shortest round-trip rendering).
  EXPECT_EQ(load.records[0].values[0].second, 1.25);
  EXPECT_EQ(load.records[1].values[0].second, -3.5e-7);
}

TEST(Checkpoint, MissingFileIsEmpty) {
  const auto load = load_checkpoint(temp_path("ckpt_never_written.jsonl"));
  EXPECT_TRUE(load.records.empty());
  EXPECT_EQ(load.skipped_lines, 0u);
}

TEST(Checkpoint, TornTailLineIsSkippedNotFatal) {
  const auto path = temp_path("ckpt_torn.jsonl");
  std::remove(path.c_str());
  const auto grid = GridSpec::parse("m=8,16,32;d=1");
  {
    CheckpointWriter writer(path);
    for (std::uint64_t i = 0; i < 3; ++i) {
      writer.append(make_record("expT", grid.cell(i), static_cast<double>(i)));
    }
  }
  // Simulate a crash mid-append: truncate the file inside the last line.
  auto text = slurp(path);
  ASSERT_FALSE(text.empty());
  text.resize(text.size() - 25);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  const auto load = load_checkpoint(path);
  EXPECT_EQ(load.skipped_lines, 1u);
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.records[1].key, "m=16,d=1");
}

TEST(Checkpoint, CorruptAndForeignLinesAreSkipped) {
  const auto path = temp_path("ckpt_corrupt.jsonl");
  const auto grid = GridSpec::parse("m=8;d=1");
  const auto good = to_json_line(make_record("expT", grid.cell(0), 7.0));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not json at all\n";
    out << "{\"schema\":\"other.schema/1\"}\n";
    // Stored hash disagreeing with fnv1a64(exp|key) marks bit rot.
    auto tampered = good;
    const auto pos = tampered.find("\"hash\":\"");
    tampered[pos + 8] = tampered[pos + 8] == '0' ? '1' : '0';
    out << tampered << "\n";
    out << good << "\n";
  }
  const auto load = load_checkpoint(path);
  EXPECT_EQ(load.skipped_lines, 3u);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].values[0].second, 7.0);
}

// --- work stealing --------------------------------------------------------

TEST(WorkStealing, CoversEveryItemExactlyOnce) {
  parallel::ThreadPool pool(8);
  constexpr std::uint64_t kItems = 1000;
  std::vector<std::uint64_t> items(kItems);
  for (std::uint64_t i = 0; i < kItems; ++i) items[i] = i;
  std::vector<std::atomic<int>> hits(kItems);
  run_work_stealing(
      items, [&](std::uint64_t i) { ++hits[i]; }, pool);
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(WorkStealing, BalancesWildlyUnevenCosts) {
  parallel::ThreadPool pool(4);
  std::vector<std::uint64_t> items(64);
  for (std::uint64_t i = 0; i < items.size(); ++i) items[i] = i;
  std::atomic<std::uint64_t> sum{0};
  run_work_stealing(
      items,
      [&](std::uint64_t i) {
        // Item 0 is ~1000x the rest; stealing keeps the other workers
        // busy rather than idling behind static chunking.
        volatile std::uint64_t spin = i == 0 ? 2000000 : 2000;
        while (spin > 0) spin = spin - 1;
        sum += i;
      },
      pool);
  EXPECT_EQ(sum.load(), 64u * 63u / 2u);
}

// --- registry + engine ----------------------------------------------------

// A tiny deterministic experiment whose invocation count observes what
// the engine actually recomputes across resume and sharding.
std::atomic<int> g_probe_calls{0};

void register_probe_once() {
  static const bool done = [] {
    Registry::global().add(Experiment{
        "probe",
        "test-only: counts invocations",
        "a=1..4;b=1,2",
        {"sum", "seed_lo"},
        [](const Cell& cell, const CellContext& ctx) {
          ++g_probe_calls;
          CellResult out;
          out.set("sum", static_cast<double>(cell.at("a") + 10 * cell.at("b")));
          out.set("seed_lo", static_cast<double>(ctx.seed & 0xFFFF));
          return out;
        },
        {"a", "b"}});
    return true;
  }();
  (void)done;
}

TEST(Registry, BuiltinExperimentsAreRegistered) {
  auto& reg = Registry::global();
  for (const auto* name : {"exp01", "exp03", "exp06", "exp10"}) {
    const auto* exp = reg.find(name);
    ASSERT_NE(exp, nullptr) << name;
    EXPECT_FALSE(exp->default_grid.empty());
    EXPECT_FALSE(exp->result_columns.empty());
    EXPECT_NO_THROW(GridSpec::parse(exp->default_grid));
  }
  EXPECT_EQ(reg.find("no_such_exp"), nullptr);
}

TEST(SweepEngine, ResumeSkipsFinishedCells) {
  register_probe_once();
  const auto path = temp_path("ckpt_resume.jsonl");
  std::remove(path.c_str());
  const auto grid = GridSpec::parse("a=1..4;b=1,2");
  SweepOptions options;
  options.exp = "probe";
  options.seed = 42;
  options.checkpoint_path = path;

  g_probe_calls = 0;
  const auto first = run_sweep(grid, options);
  EXPECT_EQ(first.cells_run, 8u);
  EXPECT_EQ(first.checkpoint_hits, 0u);
  EXPECT_EQ(g_probe_calls.load(), 8);

  g_probe_calls = 0;
  const auto second = run_sweep(grid, options);
  EXPECT_EQ(second.cells_run, 0u);
  EXPECT_EQ(second.checkpoint_hits, 8u);
  EXPECT_EQ(g_probe_calls.load(), 0);
  // A resumed table is byte-identical to the fresh one.
  EXPECT_EQ(second.table.to_string(), first.table.to_string());
}

TEST(SweepEngine, PartialCheckpointRerunsExactlyTheMissingCells) {
  register_probe_once();
  const auto path = temp_path("ckpt_partial.jsonl");
  std::remove(path.c_str());
  const auto grid = GridSpec::parse("a=1..4;b=1,2");
  SweepOptions options;
  options.exp = "probe";
  options.seed = 42;
  options.checkpoint_path = path;
  const auto first = run_sweep(grid, options);

  // Drop two records (simulating cells that were in flight at kill time).
  std::istringstream lines(slurp(path));
  std::vector<std::string> kept;
  std::string line;
  while (std::getline(lines, line)) kept.push_back(line);
  ASSERT_EQ(kept.size(), 8u);
  kept.erase(kept.begin() + 5);
  kept.erase(kept.begin() + 1);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (const auto& l : kept) out << l << "\n";
  }

  g_probe_calls = 0;
  const auto resumed = run_sweep(grid, options);
  EXPECT_EQ(resumed.cells_run, 2u);
  EXPECT_EQ(resumed.checkpoint_hits, 6u);
  EXPECT_EQ(g_probe_calls.load(), 2);
  EXPECT_EQ(resumed.table.to_string(), first.table.to_string());
}

TEST(SweepEngine, ShardsAreDisjointAndMergeToTheFullTable) {
  register_probe_once();
  const std::uint64_t seed = certify::test_master_seed(7);
  SCOPED_TRACE(certify::seed_banner(seed));
  const auto grid = GridSpec::parse("a=1..4;b=1,2");
  SweepOptions whole;
  whole.exp = "probe";
  whole.seed = seed;
  const auto full = run_sweep(grid, whole);

  std::set<std::string> rows;
  std::uint64_t covered = 0;
  for (int s = 0; s < 3; ++s) {
    SweepOptions options = whole;
    options.shard_index = s;
    options.shard_count = 3;
    const auto part = run_sweep(grid, options);
    covered += part.cells_in_shard;
    for (std::size_t r = 0; r < part.table.rows(); ++r) {
      std::string row;
      for (std::size_t c = 0; c < part.table.columns(); ++c) {
        row += part.table.cell(r, c) + "|";
      }
      EXPECT_TRUE(rows.insert(row).second) << "duplicate row: " << row;
    }
  }
  EXPECT_EQ(covered, grid.cells());
  EXPECT_EQ(rows.size(), full.table.rows());
}

TEST(SweepEngine, CellSeedDependsOnIndexNotSchedule) {
  register_probe_once();
  const std::uint64_t seed = certify::test_master_seed(99);
  SCOPED_TRACE(certify::seed_banner(seed));
  const auto grid = GridSpec::parse("a=1..4;b=1,2");
  SweepOptions options;
  options.exp = "probe";
  options.seed = seed;
  parallel::ThreadPool p1(1);
  parallel::ThreadPool p8(8);
  options.pool = &p1;
  const auto serial = run_sweep(grid, options);
  options.pool = &p8;
  const auto threaded = run_sweep(grid, options);
  EXPECT_EQ(serial.table.to_string(), threaded.table.to_string());
}

TEST(SweepEngine, RejectsUnknownExperimentAndEmptyGrid) {
  SweepOptions options;
  options.exp = "no_such_exp";
  EXPECT_THROW(run_sweep(GridSpec::parse("a=1"), options),
               std::invalid_argument);
  options.exp = "exp01";
  EXPECT_THROW(run_sweep(GridSpec(), options), std::invalid_argument);
}

// The headline determinism claim, on a real experiment: a >=24-cell
// exp01 grid is byte-identical under 1 thread and 8 threads.
TEST(SweepEngine, Exp01ScheduleIndependenceIsByteExact) {
  const std::uint64_t seed = certify::test_master_seed(1);
  SCOPED_TRACE(certify::seed_banner(seed));
  const auto grid = GridSpec::parse("d=1..4;m=4..128:x2;density=1;replicas=2");
  ASSERT_GE(grid.cells(), 24u);
  SweepOptions options;
  options.exp = "exp01";
  options.seed = seed;
  parallel::ThreadPool p1(1);
  parallel::ThreadPool p8(8);
  options.pool = &p1;
  const auto serial = run_sweep(grid, options);
  options.pool = &p8;
  const auto threaded = run_sweep(grid, options);
  EXPECT_EQ(serial.table.to_string(), threaded.table.to_string());
}

}  // namespace
}  // namespace recover::sweep
