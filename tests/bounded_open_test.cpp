// Tests for the bounded open system (§7 first class of open processes).
#include <gtest/gtest.h>

#include "src/core/coalescence.hpp"
#include "src/open/bounded_chain.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"

namespace recover::open {
namespace {

TEST(BoundedOpenChain, NeverExceedsCapacityOrGoesNegative) {
  rng::Xoshiro256PlusPlus eng(1);
  BoundedOpenChain<balls::AbkuRule> chain(balls::LoadVector(6),
                                          balls::AbkuRule(2), 20, 0.7);
  for (int t = 0; t < 20000; ++t) {
    chain.step(eng);
    ASSERT_GE(chain.balls(), 0);
    ASSERT_LE(chain.balls(), 20);
    if (t % 2000 == 0) {
      ASSERT_TRUE(chain.state().invariants_hold());
    }
  }
}

TEST(BoundedOpenChain, HighInsertPressureSaturates) {
  rng::Xoshiro256PlusPlus eng(2);
  BoundedOpenChain<balls::AbkuRule> chain(balls::LoadVector(6),
                                          balls::AbkuRule(2), 16, 0.9);
  for (int t = 0; t < 5000; ++t) chain.step(eng);
  stats::IntHistogram count;
  for (int t = 0; t < 5000; ++t) {
    chain.step(eng);
    count.add(chain.balls());
  }
  EXPECT_GE(count.mean(), 13.0);  // hugs the capacity
}

TEST(BoundedOpenChain, BalancedPressureHoversMidRange) {
  rng::Xoshiro256PlusPlus eng(3);
  BoundedOpenChain<balls::AbkuRule> chain(
      balls::LoadVector::all_in_one(6, 16), balls::AbkuRule(2), 32, 0.5);
  for (int t = 0; t < 30000; ++t) chain.step(eng);
  stats::IntHistogram count;
  for (int t = 0; t < 30000; ++t) {
    chain.step(eng);
    if (t % 10 == 0) count.add(chain.balls());
  }
  // Reflected lazy walk on [0, 32]: near-uniform occupation, mean ~16.
  EXPECT_GT(count.mean(), 8.0);
  EXPECT_LT(count.mean(), 24.0);
}

TEST(BoundedOpenCoupling, EqualCopiesStayEqual) {
  rng::Xoshiro256PlusPlus eng(4);
  const balls::LoadVector v = balls::LoadVector::piled(6, 10, 3);
  BoundedOpenCoupling<balls::AbkuRule> c(v, v, balls::AbkuRule(2), 24);
  for (int t = 0; t < 3000; ++t) {
    c.step(eng);
    ASSERT_TRUE(c.coalesced());
  }
}

TEST(BoundedOpenCoupling, EmptyVsFullCoalesces) {
  // The capacity bound turns the count gap into a reflected walk on a
  // FINITE interval, so coalescence is much more reliable than in the
  // unbounded case: measure it with a hard cap.
  core::CoalescenceOptions opts;
  opts.replicas = 12;
  opts.seed = 5;
  opts.max_steps = 3'000'000;
  opts.parallel = false;
  const std::int64_t cap = 24;
  const auto stats = core::measure_coalescence(
      [&](std::uint64_t) {
        return BoundedOpenCoupling<balls::AbkuRule>(
            balls::LoadVector(6), balls::LoadVector::all_in_one(6, cap),
            balls::AbkuRule(2), cap);
      },
      opts);
  EXPECT_EQ(stats.censored, 0);
  EXPECT_GT(stats.steps.mean(), 0.0);
}

TEST(BoundedOpenCoupling, TighterCapacityCoalescesFaster) {
  auto measure = [](std::int64_t cap) {
    core::CoalescenceOptions opts;
    opts.replicas = 16;
    opts.seed = 6;
    opts.max_steps = 5'000'000;
    opts.parallel = false;
    return core::measure_coalescence(
        [&](std::uint64_t) {
          return BoundedOpenCoupling<balls::AbkuRule>(
              balls::LoadVector(8), balls::LoadVector::all_in_one(8, cap),
              balls::AbkuRule(2), cap);
        },
        opts);
  };
  const auto tight = measure(8);
  const auto loose = measure(32);
  ASSERT_EQ(tight.censored, 0);
  ASSERT_EQ(loose.censored, 0);
  EXPECT_LT(tight.steps.mean(), loose.steps.mean());
}

}  // namespace
}  // namespace recover::open
