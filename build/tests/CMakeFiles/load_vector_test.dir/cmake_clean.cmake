file(REMOVE_RECURSE
  "CMakeFiles/load_vector_test.dir/load_vector_test.cpp.o"
  "CMakeFiles/load_vector_test.dir/load_vector_test.cpp.o.d"
  "load_vector_test"
  "load_vector_test.pdb"
  "load_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
