# Empty dependencies file for exp12_relocation.
# This may be replaced when dependencies are built.
