// recover::cluster — the request digest: the one value that makes
// run_cell traffic shardable and cacheable (docs/SERVING.md, "Cluster
// mode").
//
// A run_cell reply is a pure function of (experiment, cell parameters,
// seed): handlers.cpp seeds the cell with
// rng::substream(seed, cell_hash(exp, cell)), so any process running
// the same build answers the same request with the same bytes.  The
// digest canonicalizes that input triple:
//
//   cache_key = "<exp>|<cell.key()>|<seed>"        (collision-free)
//   digest    = substream(seed, cell_hash(exp, cell))   (64-bit)
//
// The 64-bit digest — exactly the RNG substream root the executing
// backend will use — places the request on the consistent-hash ring;
// the full string key indexes the result cache, so cache correctness
// never rests on a 64-bit hash not colliding.
//
// Cell parameter ORDER is part of the key: the serve handler folds
// params in request order into cell_hash, so "m=16,d=2" and "d=2,m=16"
// are different cells with different result bytes already — the
// cluster layer inherits that contract rather than re-canonicalizing.
#pragma once

#include <cstdint>
#include <string>

#include "src/serve/handlers.hpp"

namespace recover::cluster {

/// Collision-free cache key for a validated run_cell request.
std::string cache_key(const serve::RunCellRequest& req);

/// Ring placement digest: the request's RNG substream root
/// (rng::substream(seed, cell_hash(exp, cell))) — the same value
/// handlers.cpp derives as the cell seed.
std::uint64_t placement_digest(const serve::RunCellRequest& req);

}  // namespace recover::cluster
