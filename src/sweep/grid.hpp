// Declarative parameter grids for experiment sweeps.
//
// A GridSpec is an ordered list of named integer axes; its cartesian
// product is expanded lazily into Cells in row-major order (first axis
// slowest), so cell index i is a stable coordinate: the same spec always
// yields the same (index, parameters) pairs regardless of how, where, or
// in how many shards the sweep executes.  That stability is what the
// checkpoint format, the per-cell RNG substreams, and the --shard
// partition all key off.
//
// Text syntax (docs/SWEEPS.md):
//
//   grid   := axis (';' axis)*
//   axis   := name '=' (list | range)
//   list   := int (',' int)*
//   range  := start '..' end [':' step]      -- inclusive of end if hit
//   step   := 'x'k  (geometric, k >= 2)  |  '+'k  (arithmetic, k >= 1)
//
// e.g.  "m=64..4096:x2;d=1..3;replicas=8".  Parse errors throw
// std::invalid_argument with the offending token in the message.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace recover::sweep {

/// One grid point: the full-grid index plus (name, value) parameters in
/// axis order.
struct Cell {
  std::uint64_t index = 0;
  std::vector<std::pair<std::string, std::int64_t>> params;

  /// Value of a required parameter; aborts if the axis is absent.
  [[nodiscard]] std::int64_t at(const std::string& name) const;

  /// Value of an optional parameter with a fallback default.
  [[nodiscard]] std::int64_t get(const std::string& name,
                                 std::int64_t fallback) const;

  /// Canonical key, e.g. "m=64,d=2" (axis order, so it is stable for a
  /// given spec).  Checkpoint records are keyed by fnv1a64 of
  /// "<exp>|<key>".
  [[nodiscard]] std::string key() const;
};

struct Axis {
  std::string name;
  std::vector<std::int64_t> values;
};

class GridSpec {
 public:
  /// Parses the text syntax above; throws std::invalid_argument.
  static GridSpec parse(const std::string& spec);

  /// Programmatic construction (the exp binaries build grids from their
  /// own CLI flags).  Throws std::invalid_argument on duplicate names or
  /// empty value lists.
  void add_axis(std::string name, std::vector<std::int64_t> values);

  [[nodiscard]] std::size_t axis_count() const { return axes_.size(); }
  [[nodiscard]] const Axis& axis(std::size_t i) const { return axes_[i]; }

  /// Total number of cells (product of axis sizes; 0 when no axes).
  [[nodiscard]] std::uint64_t cells() const;

  /// Cell at row-major index (first axis slowest); aborts when out of
  /// range.
  [[nodiscard]] Cell cell(std::uint64_t index) const;

  /// Canonical round-trippable spec string (every axis as a list).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Axis> axes_;
};

/// FNV-1a 64-bit (the checkpoint content hash; scripts/check_bench_json.py
/// re-implements it, so the constants are frozen).
std::uint64_t fnv1a64(const std::string& s);

/// 16-digit lowercase hex rendering of a 64-bit hash.
std::string hash_hex(std::uint64_t h);

/// Content hash of a cell within an experiment: fnv1a64("<exp>|<key>").
std::uint64_t cell_hash(const std::string& exp, const Cell& cell);

/// True when `index` belongs to shard `shard_index` of `shard_count`
/// (round-robin: index % shard_count == shard_index).  Shards are
/// disjoint and cover the grid.
bool in_shard(std::uint64_t index, int shard_index, int shard_count);

}  // namespace recover::sweep
