file(REMOVE_RECURSE
  "CMakeFiles/exp11_open_systems.dir/exp11_open_systems.cpp.o"
  "CMakeFiles/exp11_open_systems.dir/exp11_open_systems.cpp.o.d"
  "exp11_open_systems"
  "exp11_open_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp11_open_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
