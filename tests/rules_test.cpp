#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/balls/load_vector.hpp"
#include "src/balls/random_states.hpp"
#include "src/balls/rules.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/summary.hpp"

namespace recover::balls {
namespace {

// A deterministic probe source for targeted rule tests.
class ScriptedProbes {
 public:
  explicit ScriptedProbes(std::vector<std::size_t> probes)
      : probes_(std::move(probes)) {}

  std::size_t operator()(std::size_t k) {
    EXPECT_LT(k, probes_.size());
    used_ = std::max(used_, k + 1);
    return probes_[k];
  }

  [[nodiscard]] std::size_t used() const { return used_; }

 private:
  std::vector<std::size_t> probes_;
  std::size_t used_ = 0;
};

TEST(AbkuRule, PlacesAtMaxProbedIndex) {
  const LoadVector v = LoadVector::from_loads({5, 3, 2, 1});
  AbkuRule rule(3);
  ScriptedProbes probes({1, 3, 0});
  EXPECT_EQ(rule.place_index(v, probes), 3u);
  EXPECT_EQ(probes.used(), 3u);
}

TEST(AbkuRule, SingleChoiceUsesFirstProbe) {
  const LoadVector v = LoadVector::from_loads({5, 3});
  AbkuRule rule(1);
  ScriptedProbes probes({1});
  EXPECT_EQ(rule.place_index(v, probes), 1u);
}

TEST(AbkuRule, PlacementPmfIsPowerLaw) {
  AbkuRule rule(2);
  const auto pmf = rule.placement_pmf(4);
  ASSERT_EQ(pmf.size(), 4u);
  double sum = 0;
  for (std::size_t j = 0; j < 4; ++j) {
    const double jd = static_cast<double>(j);
    const double expect = std::pow((jd + 1) / 4.0, 2) - std::pow(jd / 4.0, 2);
    EXPECT_NEAR(pmf[j], expect, 1e-12);
    sum += pmf[j];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AbkuRule, EmpiricalPlacementMatchesPmf) {
  rng::Xoshiro256PlusPlus eng(13);
  const std::size_t n = 8;
  const LoadVector v = LoadVector::balanced(n, 8);
  AbkuRule rule(2);
  const auto pmf = rule.placement_pmf(n);
  std::vector<std::int64_t> counts(n, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ProbeFresh<rng::Xoshiro256PlusPlus> probe(eng, n);
    ++counts[rule.place_index(v, probe)];
  }
  const double stat = stats::chi_square_statistic(counts, pmf);
  EXPECT_LT(stat, stats::chi_square_critical(static_cast<int>(n) - 1, 0.001));
}

TEST(ThresholdSchedule, ValidatesMonotonicity) {
  const ThresholdSchedule x({1, 2, 2, 5});
  EXPECT_EQ(x.at(0), 1);
  EXPECT_EQ(x.at(2), 2);
  EXPECT_EQ(x.at(3), 5);
  EXPECT_EQ(x.at(100), 5);  // clamps past the stored prefix
  EXPECT_DEATH(ThresholdSchedule({2, 1}), "");
  EXPECT_DEATH(ThresholdSchedule({0}), "");
}

TEST(ThresholdSchedule, ConstantRecoversAbku) {
  const ThresholdSchedule x = ThresholdSchedule::constant(3);
  EXPECT_EQ(x.at(0), 3);
  EXPECT_EQ(x.at(50), 3);
}

TEST(ThresholdSchedule, LinearRampRespectsCap) {
  const ThresholdSchedule x = ThresholdSchedule::linear(2, 1, 5);
  EXPECT_EQ(x.at(0), 2);
  EXPECT_EQ(x.at(1), 3);
  EXPECT_EQ(x.at(3), 5);
  EXPECT_EQ(x.at(10), 5);
}

TEST(AdapRule, StopsImmediatelyWhenThresholdIsOne) {
  // x ≡ 1: the first probe always wins regardless of load.
  const LoadVector v = LoadVector::from_loads({9, 9, 9});
  AdapRule rule{ThresholdSchedule::constant(1)};
  ScriptedProbes probes({0});
  EXPECT_EQ(rule.place_index(v, probes), 0u);
  EXPECT_EQ(probes.used(), 1u);
}

TEST(AdapRule, KeepsProbingUntilLoadThresholdSatisfied) {
  // Loads (5, 1, 0); x = (1, 2, 3, 3, 3, 3): a load-5 probe needs 3
  // probes, a load-1 probe needs 2, a load-0 probe wins after 1.
  const LoadVector v = LoadVector::from_loads({5, 1, 0});
  AdapRule rule{ThresholdSchedule({1, 2, 3, 3, 3, 3})};
  {
    // First probe hits the empty bin: done after one probe.
    ScriptedProbes probes({2});
    EXPECT_EQ(rule.place_index(v, probes), 2u);
    EXPECT_EQ(probes.used(), 1u);
  }
  {
    // First probe hits load 5 (needs 3 probes); second hits load 1
    // (threshold 2 <= 2 probes): stop at bin 1.
    ScriptedProbes probes({0, 1, 2});
    EXPECT_EQ(rule.place_index(v, probes), 1u);
    EXPECT_EQ(probes.used(), 2u);
  }
  {
    // Probes keep hitting the full bin; after 3 probes the threshold
    // x_5 = 3 is met and the ball settles there.
    ScriptedProbes probes({0, 0, 0});
    EXPECT_EQ(rule.place_index(v, probes), 0u);
    EXPECT_EQ(probes.used(), 3u);
  }
}

TEST(AdapRule, MatchesAbkuWhenConstant) {
  // ADAP with x ≡ d consumes exactly d probes and picks their max.
  rng::Xoshiro256PlusPlus eng(47);
  const LoadVector v = random_load_vector(10, 30, eng, 2);
  AdapRule adap{ThresholdSchedule::constant(3)};
  AbkuRule abku(3);
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<std::size_t> script;
    for (int k = 0; k < 3; ++k) {
      script.push_back(
          static_cast<std::size_t>(rng::uniform_below(eng, 10)));
    }
    ScriptedProbes p1(script), p2(script);
    EXPECT_EQ(adap.place_index(v, p1), abku.place_index(v, p2));
  }
}

TEST(AdapRule, PlacementPmfMatchesSimulation) {
  // The DP over probe rounds must agree with the empirical law of the
  // executable rule.
  rng::Xoshiro256PlusPlus eng(71);
  const LoadVector v = LoadVector::from_loads({5, 3, 3, 1, 0, 0});
  const AdapRule rule{ThresholdSchedule({1, 2, 2, 4, 4, 4})};
  const auto pmf = rule.placement_pmf(v);
  ASSERT_EQ(pmf.size(), v.bins());
  double sum = 0;
  for (const double p : pmf) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  std::vector<std::int64_t> counts(v.bins(), 0);
  constexpr int kSamples = 120000;
  for (int i = 0; i < kSamples; ++i) {
    ProbeFresh<rng::Xoshiro256PlusPlus> probe(eng, v.bins());
    ++counts[rule.place_index(v, probe)];
  }
  const double stat = stats::chi_square_statistic(counts, pmf);
  EXPECT_LT(stat, stats::chi_square_critical(
                      static_cast<int>(v.bins()) - 1, 0.001));
}

TEST(AdapRule, PlacementPmfReducesToAbkuForConstantSchedule) {
  const LoadVector v = LoadVector::from_loads({4, 2, 1, 1});
  const AdapRule adap{ThresholdSchedule::constant(3)};
  const AbkuRule abku(3);
  const auto adap_pmf = adap.placement_pmf(v);
  const auto abku_pmf = abku.placement_pmf(v.bins());
  for (std::size_t j = 0; j < v.bins(); ++j) {
    EXPECT_NEAR(adap_pmf[j], abku_pmf[j], 1e-12) << "index " << j;
  }
}

TEST(AdapRule, PlacementPmfFavorsEmptyBinsUnderSteepSchedule) {
  // With x = (1, 4, 4, ...) an empty probe wins instantly while loaded
  // bins need 4 probes: mass concentrates on the empty suffix far above
  // the single-probe baseline 1/n.
  const LoadVector v = LoadVector::from_loads({3, 3, 3, 0, 0, 0});
  const AdapRule rule{ThresholdSchedule({1, 4, 4, 4})};
  const auto pmf = rule.placement_pmf(v);
  const double empty_mass = pmf[3] + pmf[4] + pmf[5];
  EXPECT_GT(empty_mass, 0.8);
}

// Right-orientedness (Definition 3.4 via Lemma 3.3): with the SAME probe
// sequence, placement into two states never increases ‖v − u‖₁.
class RightOrientedTest : public ::testing::TestWithParam<int> {};

TEST_P(RightOrientedTest, SharedProbesNeverExpandL1) {
  const int d = GetParam();
  rng::Xoshiro256PlusPlus eng(97 + static_cast<std::uint64_t>(d));
  AbkuRule abku(d);
  AdapRule adap{ThresholdSchedule::linear(1, 1, d + 2)};
  for (int rep = 0; rep < 300; ++rep) {
    const std::size_t n = 3 + static_cast<std::size_t>(rep % 12);
    const auto m = static_cast<std::int64_t>(1 + rep % 40);
    LoadVector v = random_load_vector(n, m, eng, 1 + rep % 3);
    LoadVector u = random_load_vector(n, m, eng, 1 + rep % 2);
    const std::int64_t before = v.l1_distance(u);
    // Shared probe script long enough for both rules.
    std::vector<std::size_t> script;
    for (int k = 0; k < 64; ++k) {
      script.push_back(static_cast<std::size_t>(rng::uniform_below(eng, n)));
    }
    {
      LoadVector v2 = v, u2 = u;
      ScriptedProbes p1(script), p2(script);
      v2.add_at(abku.place_index(v2, p1));
      u2.add_at(abku.place_index(u2, p2));
      EXPECT_LE(v2.l1_distance(u2), before) << "ABKU expansion";
    }
    {
      LoadVector v2 = v, u2 = u;
      ScriptedProbes p1(script), p2(script);
      v2.add_at(adap.place_index(v2, p1));
      u2.add_at(adap.place_index(u2, p2));
      EXPECT_LE(v2.l1_distance(u2), before) << "ADAP expansion";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Choices, RightOrientedTest,
                         ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace recover::balls
