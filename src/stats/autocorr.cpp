#include "src/stats/autocorr.hpp"

#include <cmath>

#include "src/stats/regression.hpp"
#include "src/util/assert.hpp"

namespace recover::stats {

std::vector<double> autocorrelation(const std::vector<double>& series,
                                    std::size_t max_lag) {
  RL_REQUIRE(series.size() >= max_lag + 2);
  const std::size_t n = series.size();
  double mean = 0;
  for (const double x : series) mean += x;
  mean /= static_cast<double>(n);
  double var = 0;
  for (const double x : series) var += (x - mean) * (x - mean);
  RL_REQUIRE(var > 0);
  std::vector<double> rho(max_lag + 1, 0.0);
  rho[0] = 1.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double cov = 0;
    for (std::size_t t = 0; t + k < n; ++t) {
      cov += (series[t] - mean) * (series[t + k] - mean);
    }
    rho[k] = cov / var;
  }
  return rho;
}

double integrated_autocorrelation_time(const std::vector<double>& series,
                                       double window_factor) {
  RL_REQUIRE(series.size() >= 8);
  RL_REQUIRE(window_factor > 0);
  const std::size_t max_lag = series.size() / 4;
  const auto rho = autocorrelation(series, max_lag);
  double tau = 1.0;
  for (std::size_t w = 1; w <= max_lag; ++w) {
    tau += 2.0 * rho[w];
    if (static_cast<double>(w) >= window_factor * tau) break;
  }
  return std::max(tau, 1.0);
}

double effective_sample_size(const std::vector<double>& series) {
  return static_cast<double>(series.size()) /
         integrated_autocorrelation_time(series);
}

double exponential_tail_rate(const std::vector<double>& curve,
                             double head_fraction) {
  RL_REQUIRE(curve.size() >= 3);
  RL_REQUIRE(head_fraction > 0 && head_fraction <= 1.0);
  RL_REQUIRE(curve.front() > 0);
  const double threshold = curve.front() * head_fraction;
  std::vector<double> ts, logy;
  for (std::size_t t = 0; t < curve.size(); ++t) {
    if (curve[t] <= 0) break;  // numerically dead tail
    if (curve[t] <= threshold && curve[t] > 1e-14) {
      ts.push_back(static_cast<double>(t));
      logy.push_back(std::log(curve[t]));
    }
  }
  if (ts.size() < 2) return 0.0;
  return -linear_fit(ts, logy).slope;
}

}  // namespace recover::stats
