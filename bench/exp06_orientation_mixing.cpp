// Experiment E6 — Corollary 6.4 and Theorem 2: recovery time of the
// edge-orientation chain.
//
// Bounds: τ = O(n³(ln n + ln ε⁻¹)) (Corollary 6.4), improved to
// τ(1/4) = O(n² ln² n) (Theorem 2), with τ = Ω(n²).  This improves the
// O(n⁵)-ish bound of Ajtai et al. by roughly n³.  We measure coalescence
// of the shared-randomness grand coupling from (maximally spread,
// perfectly fair) starts over an n sweep and compare against all three
// laws; the fitted log-log slope should sit near 2 (n² up to polylog),
// far from 3.
//
// The per-point body is the registered "exp06" SweepCell (src/sweep/),
// shared with bench/sweep_runner: the adversarial staircase start
// (exp20) is measured alongside the spread start inside the cell.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/regression.hpp"
#include "src/sweep/registry.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp06_orientation_mixing",
                "E6/Theorem 2: orientation coalescence vs n^2 ln^2 n");
  cli.flag("sizes", "comma-separated vertex counts", "8,12,16,24,32,48,64");
  cli.flag("replicas", "replicas per point", "12");
  cli.flag("seed", "rng seed", "6");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  sweep::GridSpec grid;
  grid.add_axis("n", cli.int_list("sizes"));
  grid.add_axis("replicas", {cli.integer("replicas")});
  const auto* exp = sweep::Registry::global().find("exp06");

  util::Table table({"n", "T_mean", "T_ci95", "T_q95", "T/n^2",
                     "T/(n^2 ln^2 n)", "T/(n^3 ln n)", "T_staircase",
                     "cor64_bound(1/4)", "secs"});

  std::vector<double> xs, ys;
  for (std::uint64_t index = 0; index < grid.cells(); ++index) {
    const auto cell = grid.cell(index);
    const std::int64_t n = cell.at("n");
    const double nd = static_cast<double>(n);
    util::Timer timer;
    sweep::CellContext ctx;
    ctx.seed = rng::substream(seed, index);
    ctx.parallel_within_cell = true;
    const auto result = exp->run(cell, ctx);
    const double n2 = nd * nd;
    const double n2ln2 = n2 * std::log(nd) * std::log(nd);
    const double n3ln = n2 * nd * std::log(nd);
    table.row()
        .integer(n)
        .num(result.at("T_mean"), 1)
        .num(result.at("T_ci95"), 1)
        .num(result.at("T_q95"), 1)
        .num(result.at("T_mean") / n2, 3)
        .num(result.at("T_mean") / n2ln2, 4)
        .num(result.at("T_mean") / n3ln, 5)
        .num(result.at("T_stair_mean"), 1)
        .num(result.at("cor64_bound"), 0)
        .num(timer.seconds(), 2);
    if (result.at("censored") == 0) {
      xs.push_back(nd);
      ys.push_back(result.at("T_mean"));
    }
  }
  table.print(std::cout);
  run.add_table("coalescence_scaling", table);
  if (xs.size() >= 3) {
    const auto fit = stats::loglog_fit(xs, ys);
    std::printf(
        "\n# log-log slope of T vs n: %.3f (R^2 %.4f) - Theorem 2 predicts "
        "~2 (n^2 up to polylog), Corollary 6.4 would allow 3, the old "
        "Ajtai et al. analysis 5.\n",
        fit.slope, fit.r_squared);
    run.note("loglog_slope", fit.slope);
    run.note("loglog_r2", fit.r_squared);
  }
  return 0;
}
