#include "src/balls/scenario_a.hpp"

namespace recover::balls {

std::vector<double> scenario_a_removal_pmf(const LoadVector& v) {
  RL_REQUIRE(v.balls() > 0);
  std::vector<double> pmf(v.bins());
  const auto m = static_cast<double>(v.balls());
  for (std::size_t i = 0; i < v.bins(); ++i) {
    pmf[i] = static_cast<double>(v.load(i)) / m;
  }
  return pmf;
}

}  // namespace recover::balls
