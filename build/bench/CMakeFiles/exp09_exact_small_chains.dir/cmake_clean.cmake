file(REMOVE_RECURSE
  "CMakeFiles/exp09_exact_small_chains.dir/exp09_exact_small_chains.cpp.o"
  "CMakeFiles/exp09_exact_small_chains.dir/exp09_exact_small_chains.cpp.o.d"
  "exp09_exact_small_chains"
  "exp09_exact_small_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp09_exact_small_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
