#include "src/rng/engines.hpp"

#include "src/obs/metrics.hpp"

namespace recover::rng {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// Draw counters, registered at load time (no function-local static
// guard on the flush path).  Engines accumulate draws in a private
// member and flush every kDrawFlush draws / on destruction, so the
// per-draw cost is an increment on the engine's own cache line — no
// global load at all.  Per-draw granularity is what makes replica cost
// differences between rules/schedules visible in run records.
obs::Counter& g_xoshiro_draws =
    obs::Registry::global().counter("rng.xoshiro.draws");
obs::Counter& g_philox_draws =
    obs::Registry::global().counter("rng.philox.draws");
obs::Counter& g_philox_blocks =
    obs::Registry::global().counter("rng.philox.blocks");
obs::Counter& g_stream_seeds =
    obs::Registry::global().counter("rng.stream_seeds");

}  // namespace

Xoshiro256PlusPlus::Xoshiro256PlusPlus(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm();
}

Xoshiro256PlusPlus::~Xoshiro256PlusPlus() {
  g_xoshiro_draws.add(pending_draws_ & (detail::kDrawFlush - 1));
}

Xoshiro256PlusPlus::result_type Xoshiro256PlusPlus::operator()() {
  // Draw accounting stays on the engine's own cache line: a member
  // increment plus a never-taken branch, flushed to the global counter
  // every kDrawFlush draws and on destruction.
  if ((++pending_draws_ & (detail::kDrawFlush - 1)) == 0) {
    g_xoshiro_draws.add(detail::kDrawFlush);
  }
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256PlusPlus::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;

inline void philox_round(std::array<std::uint32_t, 4>& ctr, std::uint32_t k0,
                         std::uint32_t k1) {
  const std::uint64_t p0 = std::uint64_t{kPhiloxM0} * ctr[0];
  const std::uint64_t p1 = std::uint64_t{kPhiloxM1} * ctr[2];
  const auto hi0 = static_cast<std::uint32_t>(p0 >> 32);
  const auto lo0 = static_cast<std::uint32_t>(p0);
  const auto hi1 = static_cast<std::uint32_t>(p1 >> 32);
  const auto lo1 = static_cast<std::uint32_t>(p1);
  ctr = {hi1 ^ ctr[1] ^ k0, lo1, hi0 ^ ctr[3] ^ k1, lo0};
}

}  // namespace

Philox4x32::Philox4x32(std::uint64_t key, std::uint64_t counter_hi)
    : key_(key), counter_hi_(counter_hi) {}

std::array<std::uint32_t, 4> Philox4x32::block(std::uint64_t counter) const {
  std::array<std::uint32_t, 4> ctr = {
      static_cast<std::uint32_t>(counter),
      static_cast<std::uint32_t>(counter >> 32),
      static_cast<std::uint32_t>(counter_hi_),
      static_cast<std::uint32_t>(counter_hi_ >> 32)};
  std::uint32_t k0 = static_cast<std::uint32_t>(key_);
  std::uint32_t k1 = static_cast<std::uint32_t>(key_ >> 32);
  for (int round = 0; round < 10; ++round) {
    philox_round(ctr, k0, k1);
    k0 += kPhiloxW0;
    k1 += kPhiloxW1;
  }
  return ctr;
}

Philox4x32::~Philox4x32() {
  g_philox_draws.add(pending_draws_ & (detail::kDrawFlush - 1));
  g_philox_blocks.add(pending_blocks_);
}

Philox4x32::result_type Philox4x32::operator()() {
  if ((++pending_draws_ & (detail::kDrawFlush - 1)) == 0) {
    g_philox_draws.add(detail::kDrawFlush);
    g_philox_blocks.add(pending_blocks_);
    pending_blocks_ = 0;
  }
  if (buffered_ < 2) {
    ++pending_blocks_;
    buffer_ = block(counter_++);
    buffered_ = 4;
  }
  const std::uint64_t lo = buffer_[static_cast<std::size_t>(4 - buffered_)];
  const std::uint64_t hi = buffer_[static_cast<std::size_t>(5 - buffered_)];
  buffered_ -= 2;
  return (hi << 32) | lo;
}

std::uint64_t derive_stream_seed(std::uint64_t master_seed, std::uint64_t i) {
  g_stream_seeds.add();
  SplitMix64 sm(master_seed ^ (0xA24BAED4963EE407ULL + i * 0x9FB21C651E98DF25ULL));
  // Burn a few outputs so adjacent i values decorrelate fully.
  (void)sm();
  (void)sm();
  return sm();
}

std::uint64_t substream(std::uint64_t master_seed, std::uint64_t i) {
  g_stream_seeds.add();
  // Mix the master first so it occupies the full 64-bit space before the
  // stream index perturbs it; the golden-gamma multiple keeps adjacent
  // indices maximally far apart in SplitMix64's state sequence.
  SplitMix64 master(master_seed);
  const std::uint64_t mixed = master();
  SplitMix64 child(mixed ^ ((i + 1) * 0x9E3779B97F4A7C15ULL));
  (void)child();
  return child();
}

}  // namespace recover::rng
