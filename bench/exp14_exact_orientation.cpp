// Experiment E14 — ground truth for the edge-orientation pipeline
// (companion to exp09): exact mixing over the reachable space Ψ plus the
// TV sandwich.
//
// For each small n we compute the exact τ(1/4) of the lazy greedy chain
// over Ψ (BFS enumeration), and bracket it experimentally from both
// sides:
//   lower — first time the empirical unfairness distributions from the
//           most-unfair reachable start and the fair start are
//           TV-indistinguishable (projection can only shrink TV);
//   upper — coalescence quantile of the shared-randomness coupling.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/coalescence.hpp"
#include "src/core/tv_mixing.hpp"
#include "src/obs/run_record.hpp"
#include "src/orient/chain.hpp"
#include "src/orient/exact_chain.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp14_exact_orientation",
                "E14: exact orientation mixing + TV sandwich");
  cli.flag("sizes", "comma-separated vertex counts (<= 8)", "4,5,6,7");
  cli.flag("eps", "mixing threshold", "0.25");
  cli.flag("replicas", "coupling/TV replicas", "400");
  cli.flag("seed", "rng seed", "14");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const double eps = cli.real("eps");
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"n", "|Psi|", "max_unfair", "exact_tau", "tv_lower",
                     "coal_q95", "8*n^2", "secs"});

  for (const std::int64_t n : sizes) {
    util::Timer timer;
    const auto ns = static_cast<std::size_t>(n);
    orient::OrientationSpace space(ns);
    const auto chain = orient::build_exact_orientation_chain(space);
    const auto pi = core::stationary_distribution(chain);
    const auto exact = core::exact_mixing_time(chain, pi, eps, 200000);

    const orient::DiffState unfair_start =
        space.state(space.most_unfair_index());

    const auto checkpoints = core::geometric_checkpoints(
        1, 1.5, std::max<std::int64_t>(4, 8 * exact.mixing_time));
    const auto curve = core::estimate_tv_curve(
        [&](int) { return orient::GreedyOrientationChain(unfair_start); },
        [&](int) {
          return orient::GreedyOrientationChain(orient::DiffState(ns));
        },
        [](const auto& c) { return c.state().unfairness(); }, checkpoints,
        replicas, seed);
    const std::int64_t tv_lower = core::first_below(curve, eps);

    core::CoalescenceOptions opts;
    opts.replicas = replicas;
    opts.seed = seed + 1;
    opts.max_steps = 500000;
    const auto coal = core::measure_coalescence(
        [&](std::uint64_t) {
          return orient::GrandCouplingOrient(unfair_start,
                                             orient::DiffState(ns));
        },
        opts);

    table.row()
        .integer(n)
        .integer(static_cast<std::int64_t>(space.size()))
        .integer(unfair_start.unfairness())
        .integer(exact.mixing_time)
        .integer(tv_lower)
        .num(coal.q95, 1)
        .integer(8 * n * n)
        .num(timer.seconds(), 2);
  }
  table.print(std::cout);
  run.add_table("tv_sandwich", table);
  std::printf(
      "\n# Sandwich: tv_lower <= exact_tau <= ~coal_q95 on every row, and "
      "exact_tau stays under the c*n^2 Theorem 2 scale (ln^2 n ~ O(1) at "
      "these sizes).\n");
  return 0;
}
