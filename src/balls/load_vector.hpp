// Normalized load vectors — the state space Ω_m of the paper (§3.1).
//
// A LoadVector is a non-increasing vector v of n non-negative bin loads
// with ‖v‖₁ = m.  The paper's key observation is that a load vector (the
// multiset of loads) captures all relevant information about an allocation
// process; bin identity never matters.  Normalization makes the ABKU[d]
// rule trivial (least-loaded of d uniform bins = maximum of d uniform
// sorted indices) and gives the ⊕/⊖ operations of Fact 3.2:
//
//   v ⊕ e_i = v + e_j  with j = min{t : v_t = v_i}   (add to run head)
//   v ⊖ e_i = v − e_s  with s = max{t : v_t = v_i}   (remove at run tail)
//
// Both touch exactly one position and preserve sortedness, so they are
// O(log n) via binary search over the sorted vector.  A Fenwick tree over
// the loads is kept in sync to sample the ball-weighted removal
// distribution 𝒜(v) (Definition 3.2) in O(log n).
#pragma once

#include <cstdint>
#include <vector>

#include "src/rng/distributions.hpp"
#include "src/rng/fenwick.hpp"
#include "src/util/assert.hpp"

namespace recover::balls {

class LoadVector {
 public:
  /// n empty bins.
  explicit LoadVector(std::size_t n);

  /// Normalizes (sorts non-increasing) an arbitrary non-negative vector.
  static LoadVector from_loads(std::vector<std::int64_t> loads);

  /// m balls spread as evenly as possible: ⌈m/n⌉ / ⌊m/n⌋ pattern.
  static LoadVector balanced(std::size_t n, std::int64_t m);

  /// All m balls in a single bin — the canonical "crash" state (§1).
  static LoadVector all_in_one(std::size_t n, std::int64_t m);

  /// m balls spread over the first k bins as evenly as possible.
  static LoadVector piled(std::size_t n, std::int64_t m, std::size_t k);

  [[nodiscard]] std::size_t bins() const { return loads_.size(); }
  [[nodiscard]] std::int64_t balls() const { return total_; }
  [[nodiscard]] std::int64_t load(std::size_t i) const { return loads_[i]; }
  [[nodiscard]] std::int64_t max_load() const { return loads_.front(); }
  [[nodiscard]] std::int64_t min_load() const { return loads_.back(); }
  [[nodiscard]] const std::vector<std::int64_t>& loads() const {
    return loads_;
  }

  /// Number of non-empty bins: s = max{k : v_k > 0} (0 when empty).
  [[nodiscard]] std::size_t nonempty_count() const;

  /// v ⊕ e_i (Fact 3.2).  Returns the position actually incremented.
  std::size_t add_at(std::size_t i);

  /// v ⊖ e_i (Fact 3.2).  Requires v_i > 0.  Returns the position
  /// actually decremented.
  std::size_t remove_at(std::size_t i);

  /// One Repeated-Balls-into-Bins ejection: every non-empty bin loses one
  /// ball.  Deterministic and symmetric (a function of the load multiset),
  /// so it stays inside the normalized state space: decrementing every
  /// positive entry of a non-increasing vector preserves sortedness.
  /// Returns s, the number of balls ejected (= nonempty_count() before).
  std::size_t eject_one_per_nonempty();

  /// First index of the maximal run with value v_i (the j of Fact 3.2).
  [[nodiscard]] std::size_t run_head(std::size_t i) const;
  /// Last index of the maximal run with value v_i (the s of Fact 3.2).
  [[nodiscard]] std::size_t run_tail(std::size_t i) const;

  /// Draws from 𝒜(v): bin index i with probability v_i / m (Def. 3.2).
  /// O(log n) via the Fenwick tree.  Requires m > 0.
  template <typename Engine>
  std::size_t sample_ball_weighted(Engine& eng) const {
    RL_DBG_ASSERT(total_ > 0);
    const auto target = static_cast<std::int64_t>(
        rng::uniform_below(eng, static_cast<std::uint64_t>(total_)));
    return fenwick_.find(target);
  }

  /// Same draw by linear prefix scan — the ablation baseline.
  template <typename Engine>
  std::size_t sample_ball_weighted_linear(Engine& eng) const {
    RL_DBG_ASSERT(total_ > 0);
    auto target = static_cast<std::int64_t>(
        rng::uniform_below(eng, static_cast<std::uint64_t>(total_)));
    for (std::size_t i = 0; i < loads_.size(); ++i) {
      if (target < loads_[i]) return i;
      target -= loads_[i];
    }
    RL_DBG_ASSERT(false);
    return loads_.size() - 1;
  }

  /// Maps a fixed quantile u ∈ [0, m) to the bin holding the u-th ball in
  /// sorted order.  Used by the monotone grand coupling (same u in both
  /// copies).  O(log n) via Fenwick prefix search.
  [[nodiscard]] std::size_t ball_at_quantile(std::int64_t u) const {
    RL_DBG_ASSERT(u >= 0 && u < total_);
    return fenwick_.find(u);
  }

  /// Draws from ℬ(v): uniform over the s non-empty bins (Def. 3.3).
  template <typename Engine>
  std::size_t sample_nonempty_uniform(Engine& eng) const {
    const std::size_t s = nonempty_count();
    RL_DBG_ASSERT(s > 0);
    return static_cast<std::size_t>(rng::uniform_below(eng, s));
  }

  /// Δ(v, u) = ½‖v − u‖₁ — the path-coupling metric of §4/§5.
  /// Requires equal n and equal m (then the two halves of the L1 norm
  /// coincide and Δ is integral).
  [[nodiscard]] std::int64_t distance(const LoadVector& other) const;

  /// ‖v − u‖₁ for vectors that may hold different ball counts.
  [[nodiscard]] std::int64_t l1_distance(const LoadVector& other) const;

  friend bool operator==(const LoadVector& a, const LoadVector& b) {
    return a.loads_ == b.loads_;
  }

  /// Validates normalization + Fenwick consistency (tests / debug).
  [[nodiscard]] bool invariants_hold() const;

 private:
  std::vector<std::int64_t> loads_;  // non-increasing
  rng::Fenwick fenwick_;             // mirrors loads_
  std::int64_t total_ = 0;
};

}  // namespace recover::balls
