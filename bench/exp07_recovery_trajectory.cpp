// Experiment E7 — §1.1 Dynamic Resource Allocation: recovery of the
// maximum load after a crash.
//
// Paper claims (m = n jobs on n servers): starting from ANY assignment,
// the max load returns to ln ln n / ln d + O(1)
//   * after O(n ln n) steps when a random JOB terminates (scenario A);
//   * after O(n² ln n) steps when a random SERVER finishes a job
//     (scenario B) — optimal up to a log factor.
// We crash the system (all jobs on one server), define the typical band
// from the fluid model's stationary max-load prediction, and measure the
// sustained hitting time of the band for both scenarios.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/core/recovery.hpp"
#include "src/fluid/fluid_limit.hpp"
#include "src/obs/run_record.hpp"
#include "src/stats/regression.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp07_recovery_trajectory",
                "E7: max-load recovery after a crash, scenarios A and B");
  cli.flag("sizes", "comma-separated n = m sweep", "32,64,128,256");
  cli.flag("d", "ABKU choices", "2");
  cli.flag("replicas", "replicas per point", "12");
  cli.flag("seed", "rng seed", "7");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto d = static_cast<int>(cli.integer("d"));
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"scenario", "n=m", "typical", "T_recover", "ci95",
                     "T/(n ln n)", "T/(n^2 ln n)", "censored"});

  std::vector<double> xa, ya, xb, yb;
  for (const std::int64_t n : sizes) {
    const auto ns = static_cast<std::size_t>(n);
    const auto m = n;
    const double nd = static_cast<double>(n);
    const double nlnn = nd * std::log(nd);

    const auto observable = [](const auto& chain) {
      return static_cast<double>(chain.state().max_load());
    };

    for (const bool scenario_b : {false, true}) {
      fluid::FluidModel model(
          scenario_b ? fluid::Scenario::kB : fluid::Scenario::kA, d, 1.0, 24);
      const auto typical =
          fluid::FluidModel::predicted_max_load(model.fixed_point(), nd);
      const double band_hi = static_cast<double>(typical + 1);

      core::TrajectoryOptions opts;
      opts.sample_interval = std::max<std::int64_t>(1, n / 8);
      opts.max_steps = scenario_b
                           ? static_cast<std::int64_t>(40.0 * nd * nlnn)
                           : static_cast<std::int64_t>(40.0 * nlnn);
      core::RecoveryStats stats;
      if (scenario_b) {
        stats = core::measure_recovery(
            [&](int) {
              return balls::ScenarioBChain<balls::AbkuRule>(
                  balls::LoadVector::all_in_one(ns, m), balls::AbkuRule(d));
            },
            observable, 0.0, band_hi, 8, replicas, opts, seed);
      } else {
        stats = core::measure_recovery(
            [&](int) {
              return balls::ScenarioAChain<balls::AbkuRule>(
                  balls::LoadVector::all_in_one(ns, m), balls::AbkuRule(d));
            },
            observable, 0.0, band_hi, 8, replicas, opts, seed);
      }
      const double t = stats.hitting_steps.mean();
      table.row()
          .add(scenario_b ? "B (server finishes)" : "A (job terminates)")
          .integer(n)
          .integer(typical)
          .num(t, 1)
          .num(stats.hitting_steps.ci_halfwidth(), 1)
          .num(t / nlnn, 3)
          .num(t / (nd * nlnn), 5)
          .integer(stats.censored);
      if (stats.censored == 0) {
        (scenario_b ? xb : xa).push_back(nd);
        (scenario_b ? yb : ya).push_back(t);
      }
    }
  }
  table.print(std::cout);
  run.add_table("recovery_times", table);
  if (xa.size() >= 3) {
    const auto fa = stats::loglog_fit(xa, ya);
    std::printf("\n# scenario A slope of T vs n: %.3f (theory ~1, n ln n)\n",
                fa.slope);
    run.note("slope_scenario_a", fa.slope);
  }
  if (xb.size() >= 3) {
    const auto fb = stats::loglog_fit(xb, yb);
    std::printf("# scenario B slope of T vs n: %.3f (theory ~2, n^2 ln n)\n",
                fb.slope);
    run.note("slope_scenario_b", fb.slope);
  }
  return 0;
}
