#include "src/sweep/registry.hpp"

#include <cstdio>
#include <cstdlib>

namespace recover::sweep {

double CellResult::at(const std::string& name) const {
  for (const auto& [k, v] : values) {
    if (k == name) return v;
  }
  std::fprintf(stderr, "sweep: cell result has no value '%s'\n", name.c_str());
  std::abort();
}

Registry& Registry::global() {
  static Registry* registry = [] {
    auto* r = new Registry();
    detail::register_builtin(*r);
    return r;
  }();
  return *registry;
}

void Registry::add(Experiment experiment) {
  if (experiment.name.empty() || !experiment.run ||
      experiment.result_columns.empty()) {
    std::fprintf(stderr, "sweep: malformed experiment registration '%s'\n",
                 experiment.name.c_str());
    std::abort();
  }
  if (find(experiment.name) != nullptr) {
    std::fprintf(stderr, "sweep: duplicate experiment '%s'\n",
                 experiment.name.c_str());
    std::abort();
  }
  experiments_.push_back(std::move(experiment));
}

const Experiment* Registry::find(const std::string& name) const {
  for (const auto& e : experiments_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(experiments_.size());
  for (const auto& e : experiments_) out.push_back(e.name);
  return out;
}

}  // namespace recover::sweep
