// Empirical estimation of the path-coupling contraction parameters.
//
// For a coupling defined on adjacent pairs Γ with E[Δ(X',Y')] ≤ β Δ(X,Y),
// this module samples Γ-pairs, applies many independent coupled steps to
// each, and reports the worst observed per-pair mean distance (β̂) and the
// smallest observed per-pair probability that the distance changes (α̂).
// Plugged into path_coupling.hpp these give the fully *measured* version
// of the paper's Theorem 1 / Claim 5.3 / Corollary 6.4 pipelines, and the
// property tests assert the theorems' inequalities hold pairwise.
#pragma once

#include <cstdint>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/progress.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/summary.hpp"
#include "src/util/assert.hpp"

namespace recover::core {

struct PairContraction {
  double mean_distance_after = 0;  // E[Δ(X',Y')] for this Γ-pair (Δ = 1)
  double change_probability = 0;   // Pr[Δ(X',Y') ≠ Δ(X,Y)]
  double ci_halfwidth = 0;         // 95% CI on the mean
};

struct ContractionEstimate {
  std::vector<PairContraction> pairs;
  double beta_hat = 0;   // worst per-pair mean distance (Δ before = 1)
  double alpha_hat = 1;  // smallest per-pair change probability
};

/// `make_pair(pair_index, engine)` must return a pair object P supporting
/// `GammaLike r = coupled_step(P, engine)` through the `step_pair`
/// callable: step_pair(P, eng) -> struct with fields distance_after
/// (int64) — a fresh copy of the Γ-pair is stepped each trial.
template <typename MakePair, typename StepPair>
ContractionEstimate estimate_contraction(MakePair&& make_pair,
                                         StepPair&& step_pair, int num_pairs,
                                         int trials_per_pair,
                                         std::uint64_t seed) {
  RL_REQUIRE(num_pairs > 0);
  RL_REQUIRE(trials_per_pair > 1);
  static obs::Counter& pairs_tested =
      obs::Registry::global().counter("contraction.pairs");
  static obs::Counter& trials_run =
      obs::Registry::global().counter("contraction.trials");
  obs::Progress progress("contraction",
                         static_cast<std::uint64_t>(num_pairs));
  ContractionEstimate out;
  out.pairs.reserve(static_cast<std::size_t>(num_pairs));
  for (int p = 0; p < num_pairs; ++p) {
    rng::Xoshiro256PlusPlus pair_eng(
        rng::derive_stream_seed(seed, static_cast<std::uint64_t>(p)));
    const auto base_pair = make_pair(p, pair_eng);
    stats::Summary dist;
    std::int64_t changed = 0;
    for (int t = 0; t < trials_per_pair; ++t) {
      auto pair_copy = base_pair;
      const auto result = step_pair(pair_copy, pair_eng);
      dist.add(static_cast<double>(result.distance_after));
      if (result.distance_after != 1) ++changed;
    }
    PairContraction pc;
    pc.mean_distance_after = dist.mean();
    pc.ci_halfwidth = dist.ci_halfwidth();
    pc.change_probability =
        static_cast<double>(changed) / static_cast<double>(trials_per_pair);
    out.pairs.push_back(pc);
    pairs_tested.add();
    trials_run.add(static_cast<std::uint64_t>(trials_per_pair));
    progress.tick();
  }
  out.beta_hat = 0;
  out.alpha_hat = 1;
  for (const auto& pc : out.pairs) {
    if (pc.mean_distance_after > out.beta_hat) {
      out.beta_hat = pc.mean_distance_after;
    }
    if (pc.change_probability < out.alpha_hat) {
      out.alpha_hat = pc.change_probability;
    }
  }
  return out;
}

}  // namespace recover::core
