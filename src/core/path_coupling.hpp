// Numeric forms of the Path Coupling Lemma (Bubley–Dyer; Lemma 3.1 of the
// paper).
//
// Let Δ be an integer-valued metric on the state space taking values in
// {0, …, D}, let Γ connect every pair by a geodesic of Γ-edges, and let a
// coupling on Γ contract in expectation: E[Δ(X', Y')] ≤ β Δ(X, Y).
//
//   (1) β < 1:                τ(ε) ≤ ln(D ε⁻¹) / (1 − β)
//   (2) β ≤ 1 and the distance moves with probability ≥ α on Γ:
//                             τ(ε) ≤ ⌈e D² / α⌉ · ⌈ln ε⁻¹⌉
//
// These are the two bounds every experiment plugs its measured (β, α, D)
// into, turning the paper's symbolic theorems into predicted step counts
// that the coalescence measurements are compared against.
#pragma once

#include <cmath>
#include <cstdint>

#include "src/util/assert.hpp"

namespace recover::core {

/// Case (1) of the Path Coupling Lemma.  Requires beta < 1.
inline double path_coupling_bound_contractive(double beta, double diameter,
                                              double epsilon) {
  RL_REQUIRE(beta >= 0.0 && beta < 1.0);
  RL_REQUIRE(diameter >= 1.0);
  RL_REQUIRE(epsilon > 0.0 && epsilon < 1.0);
  return std::ceil(std::log(diameter / epsilon) / (1.0 - beta));
}

/// Case (2): non-expansive coupling (beta ≤ 1) whose Γ-distance changes
/// with probability at least alpha each step.
inline double path_coupling_bound_martingale(double alpha, double diameter,
                                             double epsilon) {
  RL_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  RL_REQUIRE(diameter >= 1.0);
  RL_REQUIRE(epsilon > 0.0 && epsilon < 1.0);
  const double e = std::exp(1.0);
  return std::ceil(e * diameter * diameter / alpha) *
         std::ceil(std::log(1.0 / epsilon));
}

/// Theorem 1 instantiation: scenario A has β = 1 − 1/m and D ≤ m, giving
/// τ(ε) = ⌈m ln(m ε⁻¹)⌉.
inline double theorem1_bound(std::int64_t m, double epsilon) {
  RL_REQUIRE(m >= 1);
  RL_REQUIRE(epsilon > 0.0 && epsilon < 1.0);
  return std::ceil(static_cast<double>(m) *
                   std::log(static_cast<double>(m) / epsilon));
}

/// Claim 5.3 instantiation: scenario B couples with β ≤ 1 and the
/// Γ-distance moves with probability α = Ω(1/s) ≥ Ω(1/n) per phase (the
/// merge pick alone has probability 1/s, and merged copies stay merged
/// through the non-expansive insertion).  Lemma 3.1 case (2) with D = m
/// and α = 1/n gives τ(ε) ≤ ⌈e n m²⌉⌈ln ε⁻¹⌉ = O(n m² ln ε⁻¹).
inline double claim53_bound(std::size_t n, std::int64_t m, double epsilon) {
  return path_coupling_bound_martingale(1.0 / static_cast<double>(n),
                                        static_cast<double>(m), epsilon);
}

/// Corollary 6.4 instantiation for the edge-orientation chain:
/// E[Δ'] ≤ Δ (1 − 2/(n(n−1)) · 1/D) with D ≤ n, so
/// τ(ε) ≤ n(n−1)/2 · n · ln(n ε⁻¹) = O(n³ (ln n + ln ε⁻¹)).
inline double corollary64_bound(std::size_t n, double epsilon) {
  RL_REQUIRE(n >= 2);
  const double nd = static_cast<double>(n);
  const double beta = 1.0 - 2.0 / (nd * (nd - 1.0) * nd);
  return path_coupling_bound_contractive(beta, nd, epsilon);
}

}  // namespace recover::core
