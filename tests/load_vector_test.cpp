#include <gtest/gtest.h>

#include <vector>

#include "src/balls/load_vector.hpp"
#include "src/balls/random_states.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/summary.hpp"

namespace recover::balls {
namespace {

TEST(LoadVector, FactoriesProduceNormalizedStates) {
  const LoadVector balanced = LoadVector::balanced(4, 10);
  EXPECT_EQ(balanced.loads(), (std::vector<std::int64_t>{3, 3, 2, 2}));
  const LoadVector one = LoadVector::all_in_one(4, 10);
  EXPECT_EQ(one.loads(), (std::vector<std::int64_t>{10, 0, 0, 0}));
  const LoadVector piled = LoadVector::piled(5, 7, 2);
  EXPECT_EQ(piled.loads(), (std::vector<std::int64_t>{4, 3, 0, 0, 0}));
  EXPECT_TRUE(balanced.invariants_hold());
  EXPECT_TRUE(one.invariants_hold());
  EXPECT_TRUE(piled.invariants_hold());
}

TEST(LoadVector, FromLoadsNormalizes) {
  const LoadVector v = LoadVector::from_loads({0, 5, 2, 5, 1});
  EXPECT_EQ(v.loads(), (std::vector<std::int64_t>{5, 5, 2, 1, 0}));
  EXPECT_EQ(v.balls(), 13);
  EXPECT_EQ(v.bins(), 5u);
  EXPECT_EQ(v.max_load(), 5);
  EXPECT_EQ(v.min_load(), 0);
  EXPECT_EQ(v.nonempty_count(), 4u);
}

TEST(LoadVector, RunHeadTailIdentifyEqualValueRuns) {
  const LoadVector v = LoadVector::from_loads({5, 5, 2, 2, 2, 0});
  EXPECT_EQ(v.run_head(0), 0u);
  EXPECT_EQ(v.run_tail(0), 1u);
  EXPECT_EQ(v.run_head(3), 2u);
  EXPECT_EQ(v.run_tail(3), 4u);
  EXPECT_EQ(v.run_head(5), 5u);
  EXPECT_EQ(v.run_tail(5), 5u);
}

TEST(LoadVector, Fact32AddGoesToRunHead) {
  // v ⊕ e_i increments the first element of the run (Fact 3.2).
  LoadVector v = LoadVector::from_loads({3, 2, 2, 2, 1});
  const std::size_t pos = v.add_at(3);  // run of 2s spans [1,3]
  EXPECT_EQ(pos, 1u);
  EXPECT_EQ(v.loads(), (std::vector<std::int64_t>{3, 3, 2, 2, 1}));
  EXPECT_TRUE(v.invariants_hold());
}

TEST(LoadVector, Fact32RemoveGoesToRunTail) {
  LoadVector v = LoadVector::from_loads({3, 2, 2, 2, 1});
  const std::size_t pos = v.remove_at(1);  // run of 2s spans [1,3]
  EXPECT_EQ(pos, 3u);
  EXPECT_EQ(v.loads(), (std::vector<std::int64_t>{3, 2, 2, 1, 1}));
  EXPECT_TRUE(v.invariants_hold());
}

TEST(LoadVector, AddRemoveRoundTrip) {
  LoadVector v = LoadVector::from_loads({4, 4, 1, 0});
  const LoadVector before = v;
  v.add_at(2);
  v.remove_at(2);
  EXPECT_EQ(v, before);
}

TEST(LoadVector, DistanceIsHalfL1) {
  const LoadVector v = LoadVector::from_loads({3, 1, 0});
  const LoadVector u = LoadVector::from_loads({2, 1, 1});
  EXPECT_EQ(v.distance(u), 1);
  EXPECT_EQ(u.distance(v), 1);
  EXPECT_EQ(v.l1_distance(u), 2);
  EXPECT_EQ(v.distance(v), 0);
}

TEST(LoadVector, DistanceDiameterBound) {
  // Δ(v, u) ≤ m − ⌈m/n⌉ for all pairs (stated in §4).
  const std::size_t n = 6;
  const std::int64_t m = 17;
  const LoadVector worst = LoadVector::all_in_one(n, m);
  const LoadVector best = LoadVector::balanced(n, m);
  EXPECT_LE(worst.distance(best), m - (m + static_cast<std::int64_t>(n) - 1) /
                                          static_cast<std::int64_t>(n));
}

TEST(LoadVector, BallAtQuantileWalksSortedBalls) {
  const LoadVector v = LoadVector::from_loads({3, 2, 0});
  EXPECT_EQ(v.ball_at_quantile(0), 0u);
  EXPECT_EQ(v.ball_at_quantile(2), 0u);
  EXPECT_EQ(v.ball_at_quantile(3), 1u);
  EXPECT_EQ(v.ball_at_quantile(4), 1u);
}

TEST(LoadVector, WeightedSamplingMatchesLoads) {
  rng::Xoshiro256PlusPlus eng(31);
  const LoadVector v = LoadVector::from_loads({6, 3, 1, 0});
  std::vector<std::int64_t> counts(4, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[v.sample_ball_weighted(eng)];
  EXPECT_EQ(counts[3], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, 0.6, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kSamples, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kSamples, 0.1, 0.01);
}

TEST(LoadVector, LinearAndFenwickSamplersAgreeInLaw) {
  rng::Xoshiro256PlusPlus eng(33);
  const LoadVector v = LoadVector::from_loads({5, 4, 1});
  std::vector<std::int64_t> fen(3, 0), lin(3, 0);
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) ++fen[v.sample_ball_weighted(eng)];
  for (int i = 0; i < kSamples; ++i) {
    ++lin[v.sample_ball_weighted_linear(eng)];
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(fen[i]) / kSamples,
                static_cast<double>(lin[i]) / kSamples, 0.015);
  }
}

TEST(LoadVector, NonemptyUniformSamplesOnlyNonempty) {
  rng::Xoshiro256PlusPlus eng(37);
  const LoadVector v = LoadVector::from_loads({2, 1, 0, 0});
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(v.sample_nonempty_uniform(eng), 2u);
  }
}

struct RandomVectorParam {
  std::size_t n;
  std::int64_t m;
  int skew;
};

class RandomStateTest
    : public ::testing::TestWithParam<RandomVectorParam> {};

TEST_P(RandomStateTest, RandomStatesAreValid) {
  const auto [n, m, skew] = GetParam();
  rng::Xoshiro256PlusPlus eng(n * 131 + static_cast<std::uint64_t>(m));
  for (int rep = 0; rep < 20; ++rep) {
    const LoadVector v = random_load_vector(n, m, eng, skew);
    ASSERT_TRUE(v.invariants_hold());
    ASSERT_EQ(v.balls(), m);
    ASSERT_EQ(v.bins(), n);
  }
}

TEST_P(RandomStateTest, GammaPairsAreAtDistanceOne) {
  const auto [n, m, skew] = GetParam();
  rng::Xoshiro256PlusPlus eng(n * 977 + static_cast<std::uint64_t>(m));
  for (int rep = 0; rep < 20; ++rep) {
    const auto [v, u] = random_gamma_pair(n, m, eng, skew);
    ASSERT_EQ(v.distance(u), 1);
    ASSERT_TRUE(v.invariants_hold());
    ASSERT_TRUE(u.invariants_hold());
    ASSERT_EQ(u.balls(), m);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomStateTest,
    ::testing::Values(RandomVectorParam{2, 2, 1}, RandomVectorParam{4, 4, 1},
                      RandomVectorParam{8, 20, 2}, RandomVectorParam{16, 16, 3},
                      RandomVectorParam{32, 100, 1},
                      RandomVectorParam{5, 50, 4}));

TEST(LoadVector, StressAddRemoveKeepsInvariants) {
  rng::Xoshiro256PlusPlus eng(71);
  LoadVector v = LoadVector::balanced(12, 36);
  for (int step = 0; step < 5000; ++step) {
    const std::size_t r = v.sample_ball_weighted(eng);
    v.remove_at(r);
    const auto a =
        static_cast<std::size_t>(rng::uniform_below(eng, v.bins()));
    v.add_at(a);
    if (step % 500 == 0) {
      ASSERT_TRUE(v.invariants_hold());
    }
  }
  EXPECT_TRUE(v.invariants_hold());
  EXPECT_EQ(v.balls(), 36);
}

}  // namespace
}  // namespace recover::balls
