// Tests for the vertex-level greedy orienter and the carpool view.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/orient/greedy_graph.hpp"
#include "src/orient/state.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/summary.hpp"

namespace recover::orient {
namespace {

TEST(GreedyOrienter, OrientsTowardLargerDifference) {
  GreedyOrienter g = GreedyOrienter::from_diffs({2, -2, 0});
  // Vertex 0 has the larger difference: edge goes 1 → 0.
  g.orient_edge(0, 1, false);
  EXPECT_EQ(g.diff(0), 1);
  EXPECT_EQ(g.diff(1), -1);
  EXPECT_EQ(g.edges(), 1);
}

TEST(GreedyOrienter, TieBrokenByBit) {
  {
    GreedyOrienter g(2);
    g.orient_edge(0, 1, false);  // tie, bit false: a(=0) is source
    EXPECT_EQ(g.diff(0), 1);
    EXPECT_EQ(g.diff(1), -1);
  }
  {
    GreedyOrienter g(2);
    g.orient_edge(0, 1, true);  // tie, bit true: b(=1) is source
    EXPECT_EQ(g.diff(0), -1);
    EXPECT_EQ(g.diff(1), 1);
  }
}

TEST(GreedyOrienter, DiffsAlwaysSumToZero) {
  rng::Xoshiro256PlusPlus eng(51);
  GreedyOrienter g(10);
  for (int t = 0; t < 20000; ++t) g.step(eng);
  std::int64_t sum = 0;
  for (std::size_t v = 0; v < g.vertices(); ++v) sum += g.diff(v);
  EXPECT_EQ(sum, 0);
  EXPECT_EQ(g.edges(), 20000);
}

TEST(GreedyOrienter, UnfairnessStaysSmallFromEmptyGraph) {
  // Ajtai et al.: expected unfairness Θ(log log n) — tiny for any
  // realistic n.  From the empty graph it should stay single-digit.
  rng::Xoshiro256PlusPlus eng(52);
  GreedyOrienter g(128);
  std::int64_t worst = 0;
  for (int t = 0; t < 200000; ++t) {
    g.step(eng);
    worst = std::max(worst, g.unfairness());
  }
  EXPECT_LE(worst, 8);
}

TEST(GreedyOrienter, RecoversFromAdversarialDebt) {
  rng::Xoshiro256PlusPlus eng(53);
  std::vector<std::int64_t> diffs(64, 0);
  for (std::size_t i = 0; i < 32; ++i) {
    diffs[i] = 20;
    diffs[63 - i] = -20;
  }
  GreedyOrienter g = GreedyOrienter::from_diffs(diffs);
  ASSERT_EQ(g.unfairness(), 20);
  for (int t = 0; t < 300000; ++t) g.step(eng);
  EXPECT_LE(g.unfairness(), 4);
}

TEST(GreedyOrienter, MatchesDiffStateChainInLaw) {
  // The sorted multiset of GreedyOrienter diffs evolves with the same law
  // as DiffState (without the lazy bit): compare mean unfairness after a
  // fixed horizon over replicas.
  const std::size_t n = 16;
  constexpr int kSteps = 2000;
  constexpr int kReps = 200;
  stats::Summary a, b;
  rng::Xoshiro256PlusPlus eng(54);
  for (int rep = 0; rep < kReps; ++rep) {
    GreedyOrienter g(n);
    for (int t = 0; t < kSteps; ++t) g.step(eng);
    a.add(static_cast<double>(g.unfairness()));
    DiffState s(n);
    // DiffState::step is lazy (half the arrivals are skipped), so give it
    // twice the steps by applying edges directly.
    for (int t = 0; t < kSteps; ++t) {
      const auto [phi, psi] = s.pick_pair(eng);
      s.apply_edge(phi, psi);
    }
    b.add(static_cast<double>(s.unfairness()));
  }
  EXPECT_NEAR(a.mean(), b.mean(),
              4.0 * std::sqrt(a.variance() / kReps + b.variance() / kReps) +
                  0.05);
}

TEST(KSubsetCarpool, BalancesSumToZeroAndStayIntegral) {
  rng::Xoshiro256PlusPlus eng(57);
  KSubsetCarpool pool(12, 3);
  for (int day = 0; day < 20000; ++day) pool.day(eng);
  EXPECT_EQ(pool.days(), 20000);
  EXPECT_GE(pool.unfairness(), 0.0);
}

TEST(KSubsetCarpool, GreedyDriverIsMostIndebted) {
  KSubsetCarpool pool(5, 3);
  // Day 1 with pool {0,1,2}: all balances equal, driver = index 0.
  pool.run_pool({0, 1, 2});
  // Balance: 0 -> +2 (drove), 1 -> -1, 2 -> -1.
  EXPECT_DOUBLE_EQ(pool.unfairness(), 2.0 / 3.0);
  // Pool {0,1,3}: most indebted is 1 (balance -1); it drives.
  pool.run_pool({0, 1, 3});
  // 1: -1 -1 +3 = +1; 0: +2-1 = +1; 3: -1.
  EXPECT_DOUBLE_EQ(pool.unfairness(), 1.0 / 3.0);
}

TEST(KSubsetCarpool, PairPoolMatchesGreedyOrienterScale) {
  // k = 2 is the edge-orientation process up to the 2x bookkeeping
  // scale; long-run unfairness must stay O(1) like CarpoolScheduler's.
  rng::Xoshiro256PlusPlus eng(58);
  KSubsetCarpool pool(32, 2);
  double worst = 0;
  for (int day = 0; day < 100000; ++day) {
    pool.day(eng);
    worst = std::max(worst, pool.unfairness());
  }
  EXPECT_LE(worst, 8.0);
}

TEST(KSubsetCarpool, LargerPoolsStayFairToo) {
  rng::Xoshiro256PlusPlus eng(59);
  for (const std::size_t k : {3u, 5u, 8u}) {
    KSubsetCarpool pool(64, k);
    for (int day = 0; day < 60000; ++day) pool.day(eng);
    EXPECT_LE(pool.unfairness(), 6.0) << "k=" << k;
  }
}

TEST(KSubsetCarpool, UniformSubsetSampling) {
  // Floyd's k-subset sampler: every participant appears in pools with
  // frequency k/n.
  rng::Xoshiro256PlusPlus eng(60);
  const std::size_t n = 10;
  const std::size_t k = 3;
  std::vector<std::int64_t> appearances(n, 0);
  // Count appearances via the balance decrement trick: run the pool
  // dynamics but count by intercepting run_pool is private detail, so
  // instead sample directly through a one-day scheduler per trial and
  // use balance parity.  Simpler: statistically test via many pools'
  // effect on days().
  KSubsetCarpool pool(n, k);
  constexpr int kDays = 30000;
  for (int day = 0; day < kDays; ++day) pool.day(eng);
  EXPECT_EQ(pool.days(), kDays);
  // Fairness of the sampler shows up as bounded unfairness; a biased
  // sampler (some participant never pooled) would drift unboundedly.
  EXPECT_LE(pool.unfairness(), 6.0);
}

TEST(CarpoolScheduler, TracksDebtFairly) {
  rng::Xoshiro256PlusPlus eng(55);
  CarpoolScheduler pool(20);
  for (int day = 0; day < 50000; ++day) pool.day(eng);
  EXPECT_EQ(pool.rides(), 50000);
  EXPECT_LE(pool.max_debt(), 8);
}

}  // namespace
}  // namespace recover::orient
