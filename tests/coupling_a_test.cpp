// Property tests for the scenario-A Γ-coupling (§4).
//
// Lemma 4.1 / Corollary 4.2 are theorems quantified over every Γ-pair:
//  (i)  the coupled phase never increases the distance beyond 1;
//  (ii) whenever the removals split (i ≠ j) the copies merge;
//  (iii) E[Δ(v°, u°)] ≤ 1 − 1/m, verified per sampled pair with a CI;
//  (iv) the coupled marginals are faithful copies of I_A.
#include <gtest/gtest.h>

#include <vector>

#include "src/balls/coupling_a.hpp"
#include "src/balls/random_states.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"
#include "src/stats/summary.hpp"

namespace recover::balls {
namespace {

TEST(UnitDifference, FindsSurplusAndDeficit) {
  const LoadVector v = LoadVector::from_loads({3, 2, 1});
  const LoadVector u = LoadVector::from_loads({3, 3, 0});
  // v = u + e_2 − e_1 (0-based): surplus at 2, deficit at 1.
  const auto [lambda, delta] = unit_difference(v, u);
  EXPECT_EQ(lambda, 2u);
  EXPECT_EQ(delta, 1u);
}

TEST(UnitDifference, HandlesSurplusAfterDeficit) {
  // v = (2,2), u = (3,1): surplus of v at index 1, deficit at index 0.
  const LoadVector v = LoadVector::from_loads({2, 2});
  const LoadVector u = LoadVector::from_loads({3, 1});
  const auto [lambda, delta] = unit_difference(v, u);
  EXPECT_EQ(lambda, 1u);
  EXPECT_EQ(delta, 0u);
}

struct PairParam {
  std::size_t n;
  std::int64_t m;
  int d;
  int skew;
};

class CouplingATest : public ::testing::TestWithParam<PairParam> {};

TEST_P(CouplingATest, Lemma41DistanceNeverGrows) {
  const auto [n, m, d, skew] = GetParam();
  rng::Xoshiro256PlusPlus eng(1000 + n * 31 + static_cast<std::uint64_t>(m));
  const AbkuRule rule(d);
  for (int rep = 0; rep < 60; ++rep) {
    auto [v, u] = random_gamma_pair(n, m, eng, skew);
    for (int t = 0; t < 20 && v.distance(u) == 1; ++t) {
      const auto r = coupled_step_a(v, u, rule, eng);
      ASSERT_LE(r.distance_after_removal, 1);
      ASSERT_LE(r.distance_after, r.distance_after_removal)
          << "insertion expanded the distance (violates Lemma 3.3)";
      ASSERT_LE(r.distance_after, 1);
      ASSERT_TRUE(v.invariants_hold());
      ASSERT_TRUE(u.invariants_hold());
    }
  }
}

TEST_P(CouplingATest, Corollary42ContractionHolds) {
  const auto [n, m, d, skew] = GetParam();
  rng::Xoshiro256PlusPlus eng(2000 + n * 37 + static_cast<std::uint64_t>(m));
  const AbkuRule rule(d);
  for (int pair = 0; pair < 6; ++pair) {
    const auto [v0, u0] = random_gamma_pair(n, m, eng, skew);
    stats::Summary dist;
    constexpr int kTrials = 4000;
    for (int t = 0; t < kTrials; ++t) {
      LoadVector v = v0, u = u0;
      dist.add(static_cast<double>(
          coupled_step_a(v, u, rule, eng).distance_after));
    }
    const double bound = 1.0 - 1.0 / static_cast<double>(m);
    // One-sided check with a 4-sigma allowance for MC noise.
    EXPECT_LE(dist.mean(), bound + 4.0 * dist.stderror())
        << "pair " << pair << " n=" << n << " m=" << m;
  }
}

TEST_P(CouplingATest, CoupledMarginalsAreFaithful) {
  // Running only the v-side (or u-side) of the coupling must reproduce
  // the law of the uncoupled chain (Definition 3.1).  We compare the
  // distribution of the post-step state against an uncoupled chain via
  // the max-load histogram over many one-step replays.
  const auto [n, m, d, skew] = GetParam();
  rng::Xoshiro256PlusPlus eng(3000 + n * 41 + static_cast<std::uint64_t>(m));
  const AbkuRule rule(d);
  const auto [v0, u0] = random_gamma_pair(n, m, eng, skew);
  stats::IntHistogram coupled_v, uncoupled_v, coupled_u, uncoupled_u;
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    {
      LoadVector v = v0, u = u0;
      coupled_step_a(v, u, rule, eng);
      // Hash the resulting state coarsely: max load + top-2 load.
      coupled_v.add(v.max_load() * 100 + v.load(1));
      coupled_u.add(u.max_load() * 100 + u.load(1));
    }
    {
      ScenarioAChain<AbkuRule> cv(v0, rule);
      cv.step(eng);
      uncoupled_v.add(cv.state().max_load() * 100 + cv.state().load(1));
      ScenarioAChain<AbkuRule> cu(u0, rule);
      cu.step(eng);
      uncoupled_u.add(cu.state().max_load() * 100 + cu.state().load(1));
    }
  }
  EXPECT_LT(stats::tv_distance(coupled_v, uncoupled_v), 0.03);
  EXPECT_LT(stats::tv_distance(coupled_u, uncoupled_u), 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CouplingATest,
    ::testing::Values(PairParam{2, 2, 2, 1}, PairParam{4, 8, 1, 1},
                      PairParam{6, 6, 2, 2}, PairParam{8, 24, 3, 1},
                      PairParam{12, 12, 2, 3}, PairParam{16, 50, 2, 1}));

TEST(CouplingA, MergeProbabilityMatchesOneOverM) {
  // The odd ball is drawn with probability exactly 1/m; whenever it is,
  // the removal merges the copies (Lemma 4.1's i ≠ j case).
  rng::Xoshiro256PlusPlus eng(55);
  const std::size_t n = 6;
  const std::int64_t m = 12;
  const auto [v0, u0] = random_gamma_pair(n, m, eng);
  const AbkuRule rule(2);
  std::int64_t merged = 0;
  constexpr int kTrials = 60000;
  for (int t = 0; t < kTrials; ++t) {
    LoadVector v = v0, u = u0;
    if (coupled_step_a(v, u, rule, eng).removal_merged) ++merged;
  }
  const double p = static_cast<double>(merged) / kTrials;
  EXPECT_NEAR(p, 1.0 / static_cast<double>(m), 0.01);
}

TEST(CouplingA, AdaptiveRuleAlsoContracts) {
  rng::Xoshiro256PlusPlus eng(66);
  const AdapRule rule{ThresholdSchedule::linear(1, 1, 4)};
  const std::size_t n = 8;
  const std::int64_t m = 16;
  for (int pair = 0; pair < 4; ++pair) {
    const auto [v0, u0] = random_gamma_pair(n, m, eng, 2);
    stats::Summary dist;
    for (int t = 0; t < 3000; ++t) {
      LoadVector v = v0, u = u0;
      dist.add(static_cast<double>(
          coupled_step_a(v, u, rule, eng).distance_after));
    }
    EXPECT_LE(dist.mean(),
              1.0 - 1.0 / static_cast<double>(m) + 4.0 * dist.stderror());
  }
}

}  // namespace
}  // namespace recover::balls
