#include "src/certify/check.hpp"

#include <cstdlib>

namespace recover::certify {

std::uint64_t test_master_seed(std::uint64_t fallback) {
  const char* env = std::getenv(kSeedEnvVar);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 0);
  if (end == env || (end != nullptr && *end != '\0')) return fallback;
  return static_cast<std::uint64_t>(value);
}

std::string seed_banner(std::uint64_t seed) {
  return "master seed " + std::to_string(seed) + " (rerun with " +
         std::string(kSeedEnvVar) + "=" + std::to_string(seed) + ")";
}

}  // namespace recover::certify
