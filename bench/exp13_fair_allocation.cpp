// Experiment E13 — §1.1 Fair Allocations via the edge-orientation
// reduction (Ajtai et al., Fagin–Williams carpool problem).
//
// Two claims: (a) under uniform pair arrivals the greedy protocol keeps
// the expected unfairness Θ(log log n) — essentially flat in n; and
// (b) from an arbitrarily unfair state the system returns to a typical
// state within O(n² ln² n) arrivals (the paper's Theorem 2 horizon,
// improving the ≥ n⁵-type bound available before).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/recovery.hpp"
#include "src/obs/run_record.hpp"
#include "src/orient/chain.hpp"
#include "src/orient/greedy_graph.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/summary.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp13_fair_allocation",
                "E13: carpool fairness level and recovery horizon");
  cli.flag("sizes", "comma-separated participant counts", "16,64,256,1024");
  cli.flag("replicas", "replicas per point", "8");
  cli.flag("seed", "rng seed", "13");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"n", "E[unfairness]", "ci95", "lnln(n)", "ln(n)",
                     "T_recover", "T/(n^2 ln^2 n)", "censored"});

  for (const std::int64_t n : sizes) {
    const auto ns = static_cast<std::size_t>(n);
    const double nd = static_cast<double>(n);

    // (a) Stationary fairness of the carpool scheduler.
    stats::Summary unfair;
    for (int r = 0; r < replicas; ++r) {
      rng::Xoshiro256PlusPlus eng(
          rng::derive_stream_seed(seed, static_cast<std::uint64_t>(r)));
      orient::CarpoolScheduler pool(ns);
      const std::int64_t burn = 200 * n;
      for (std::int64_t t = 0; t < burn; ++t) pool.day(eng);
      stats::Summary within;
      for (int s = 0; s < 50; ++s) {
        for (std::int64_t t = 0; t < n; ++t) pool.day(eng);
        within.add(static_cast<double>(pool.max_debt()));
      }
      unfair.add(within.mean());
    }

    // (b) Recovery from an adversarially unfair state (debt ≈ n/2).
    const double n2ln2 = nd * nd * std::log(nd) * std::log(nd);
    core::TrajectoryOptions opts;
    opts.sample_interval = std::max<std::int64_t>(1, n * n / 64);
    opts.max_steps = static_cast<std::int64_t>(12.0 * n2ln2);
    const double band = std::max(3.0, 2.0 * std::log(std::log(nd)) + 2.0);
    const auto rec = core::measure_recovery(
        [&](int) {
          return orient::GreedyOrientationChain(
              orient::DiffState::spread(ns, n / 2));
        },
        [](const auto& c) {
          return static_cast<double>(c.state().unfairness());
        },
        0.0, band, 6, replicas, opts, seed + 1);

    table.row()
        .integer(n)
        .num(unfair.mean(), 2)
        .num(unfair.ci_halfwidth(), 2)
        .num(std::log(std::log(nd)), 2)
        .num(std::log(nd), 2)
        .num(rec.hitting_steps.mean(), 1)
        .num(rec.hitting_steps.mean() / n2ln2, 4)
        .integer(rec.censored);
  }
  table.print(std::cout);
  run.add_table("carpool_fairness", table);
  std::printf(
      "\n# Fairness column grows like lnln(n) (nearly flat), far below "
      "ln(n); recovery lands well inside the Theorem 2 horizon "
      "n^2 ln^2 n.\n\n");

  // k-subset pools (Fagin-Williams; the uniform-subset model of #1.1):
  // greedy stays O(1)-fair for every pool size.
  util::Table ktable({"n", "pool size k", "E[unfairness] (ride units)"});
  for (const std::int64_t n : sizes) {
    if (n > 256) continue;  // keep the k-sweep cheap
    for (const std::size_t k : {2u, 3u, 5u}) {
      stats::Summary unfair;
      for (int r = 0; r < replicas; ++r) {
        rng::Xoshiro256PlusPlus eng(rng::derive_stream_seed(
            seed + 7, static_cast<std::uint64_t>(r) * 100 + k));
        orient::KSubsetCarpool pool(static_cast<std::size_t>(n), k);
        for (std::int64_t t = 0; t < 100 * n; ++t) pool.day(eng);
        stats::Summary within;
        for (int s = 0; s < 30; ++s) {
          for (std::int64_t t = 0; t < n; ++t) pool.day(eng);
          within.add(pool.unfairness());
        }
        unfair.add(within.mean());
      }
      ktable.row().integer(n).integer(static_cast<std::int64_t>(k)).num(
          unfair.mean(), 2);
    }
  }
  ktable.print(std::cout);
  run.add_table("ksubset_fairness", ktable);
  std::printf(
      "# Larger pools give the greedy rule more slack per arrival; "
      "unfairness stays O(1) across k, as the Ajtai et al. reduction "
      "promises (within a factor ~2).\n");
  return 0;
}
