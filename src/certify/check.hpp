// Reproducible-seed plumbing shared by the certification harness and the
// repo's randomized tests.
//
// Every stochastic check in the tree follows one discipline (the
// glasgow-constraint-solver test-utils pattern): derive all randomness
// from ONE master seed, and when something fails, print that seed in a
// form that can be pasted back to reproduce the failure exactly.  These
// helpers are that discipline's single implementation — tests wrap
// seed_banner() in SCOPED_TRACE, the certify_runner prints one
// "CERTIFY FAIL ... rerun:" line (src/certify/properties.hpp).
#pragma once

#include <cstdint>
#include <string>

namespace recover::certify {

/// Environment variable consulted by test_master_seed.
inline constexpr const char* kSeedEnvVar = "RECOVER_TEST_SEED";

/// Master seed for a randomized test: the value of RECOVER_TEST_SEED
/// (decimal, or hex with a 0x prefix) when set and parseable, otherwise
/// `fallback`.  Lets a failing seed printed by seed_banner be replayed
/// without recompiling.
std::uint64_t test_master_seed(std::uint64_t fallback);

/// One-line banner naming the active master seed and how to rerun with
/// it.  Tests wrap it in SCOPED_TRACE so any stochastic failure carries
/// its reproduction recipe.
std::string seed_banner(std::uint64_t seed);

}  // namespace recover::certify
