// P² streaming quantile estimator (Jain & Chlamtac 1985): estimates a
// single quantile of a stream in O(1) memory without storing samples.
// Used by long recovery-trajectory runs where storing every hitting time
// across replicas would be wasteful.
#pragma once

#include <array>
#include <cstdint>

namespace recover::stats {

class P2Quantile {
 public:
  /// q in (0,1): the quantile to track (e.g. 0.95 for w.h.p. tables).
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate; requires at least one observation (exact for the
  /// first five).
  [[nodiscard]] double value() const;

  [[nodiscard]] std::int64_t count() const { return n_; }

 private:
  double q_;
  std::int64_t n_ = 0;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

}  // namespace recover::stats
