// Tests for the observability subsystem: JSON writer policy, histogram
// bucketing, registry semantics (merge across threads, disabled fast
// path), run-record row typing, trace ring buffers + Chrome export, and
// progress heartbeat flushing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json_writer.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/progress.hpp"
#include "src/obs/run_record.hpp"
#include "src/obs/trace.hpp"
#include "src/obs/trace_buffer.hpp"
#include "src/obs/trace_export.hpp"
#include "src/util/table.hpp"

namespace {

using namespace recover;

// Metrics tests toggle the global enable flag; restore it afterwards so
// the rest of the suite (and other tests in this binary) see the
// default-disabled state.
class MetricsGuard {
 public:
  MetricsGuard() : was_(obs::metrics_enabled()) {}
  ~MetricsGuard() { obs::set_metrics_enabled(was_); }

 private:
  bool was_;
};

// Same for the trace switch; also wipes the collector so each trace
// test starts from empty rings (and leaves none behind for the metrics
// tests sharing this binary).
class TraceGuard {
 public:
  TraceGuard() : was_(obs::trace_enabled()) {
    obs::set_trace_enabled(false);
    obs::TraceCollector::global().reset_for_tests();
  }
  ~TraceGuard() {
    obs::set_trace_enabled(was_);
    obs::TraceCollector::global().reset_for_tests();
  }

 private:
  bool was_;
};

// Same for the progress switch.
class ProgressGuard {
 public:
  ProgressGuard() : was_(obs::progress_enabled()) {}
  ~ProgressGuard() { obs::set_progress_enabled(was_); }

 private:
  bool was_;
};

// ---- json_escape ------------------------------------------------------

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(obs::json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, ControlShortcuts) {
  EXPECT_EQ(obs::json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(obs::json_escape("\b\f"), "\\b\\f");
}

TEST(JsonEscape, OtherControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscape, NonAsciiPassesThrough) {
  // UTF-8 multi-byte sequences must survive byte-for-byte.
  const std::string utf8 = "\xcf\x84 = 42";  // "τ = 42"
  EXPECT_EQ(obs::json_escape(utf8), utf8);
}

// ---- json_number ------------------------------------------------------

TEST(JsonNumber, FiniteRoundTrips) {
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_EQ(obs::json_number(-3.0), "-3");
  EXPECT_EQ(std::stod(obs::json_number(1.0 / 3.0)), 1.0 / 3.0);
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(obs::json_number(-std::numeric_limits<double>::infinity()),
            "null");
}

// ---- JsonWriter -------------------------------------------------------

TEST(JsonWriter, WritesNestedDocument) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object()
      .key("name")
      .value("x")
      .key("vals")
      .begin_array()
      .value(std::int64_t{1})
      .value(2.5)
      .null()
      .end_array()
      .key("ok")
      .value(true)
      .end_object();
  EXPECT_TRUE(w.complete());
  const std::string text = os.str();
  EXPECT_NE(text.find("\"name\": \"x\""), std::string::npos);
  EXPECT_NE(text.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(text.find("null"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoubleValueIsNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object()
      .key("v")
      .value(std::numeric_limits<double>::quiet_NaN())
      .end_object();
  EXPECT_NE(os.str().find("\"v\": null"), std::string::npos);
}

// ---- Histogram bucketing ---------------------------------------------

TEST(Histogram, BucketIndexBoundaries) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_index(0), 0u);
  EXPECT_EQ(H::bucket_index(1), 1u);
  EXPECT_EQ(H::bucket_index(2), 2u);
  EXPECT_EQ(H::bucket_index(3), 2u);
  EXPECT_EQ(H::bucket_index(4), 3u);
  EXPECT_EQ(H::bucket_index(7), 3u);
  EXPECT_EQ(H::bucket_index(8), 4u);
  EXPECT_EQ(H::bucket_index((std::uint64_t{1} << 32) - 1), 32u);
  EXPECT_EQ(H::bucket_index(std::uint64_t{1} << 32), 33u);
  EXPECT_EQ(H::bucket_index(std::numeric_limits<std::uint64_t>::max()),
            64u);
}

TEST(Histogram, BucketUpperIsInclusiveBound) {
  using H = obs::Histogram;
  // bucket i holds values v with bucket_index(v) == i, whose maximum is
  // bucket_upper(i) = 2^i - 1.
  for (std::size_t i = 1; i < 20; ++i) {
    EXPECT_EQ(H::bucket_index(H::bucket_upper(i)), i);
    EXPECT_EQ(H::bucket_index(H::bucket_upper(i) + 1), i + 1);
  }
}

TEST(Histogram, RecordsCountSumAndBuckets) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram h("obs_test.hist");
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 11u);
  EXPECT_DOUBLE_EQ(snap.mean(), 11.0 / 4.0);
  EXPECT_EQ(snap.buckets[0], 1u);  // value 0
  EXPECT_EQ(snap.buckets[1], 1u);  // value 1
  EXPECT_EQ(snap.buckets[3], 2u);  // values 4..7
}

// ---- Counter / Registry ----------------------------------------------

TEST(Counter, DisabledAddsAreDropped) {
  MetricsGuard guard;
  obs::set_metrics_enabled(false);
  obs::Counter c("obs_test.disabled");
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  obs::set_metrics_enabled(true);
  c.add(3);
  EXPECT_EQ(c.value(), 3u);
}

TEST(Counter, MergesAcrossThreadsExactly) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Counter c("obs_test.merge");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Registry, GetOrCreateReturnsStableReferences) {
  auto& a = obs::Registry::global().counter("obs_test.stable");
  auto& b = obs::Registry::global().counter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  auto& g1 = obs::Registry::global().gauge("obs_test.gauge");
  auto& g2 = obs::Registry::global().gauge("obs_test.gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(Registry, SnapshotIsNameSorted) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Registry::global().counter("obs_test.zz").add();
  obs::Registry::global().counter("obs_test.aa").add();
  const auto snap = obs::Registry::global().snapshot();
  std::vector<std::string> names;
  for (const auto& [name, value] : snap.counters) names.push_back(name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Gauge, SetAndRead) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Gauge g("obs_test.local_gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

// ---- RunRecord --------------------------------------------------------

TEST(RunRecord, TypesCellsAndCountsRows) {
  util::Table table({"name", "count", "ratio"});
  table.row().add("alpha").integer(42).num(0.5, 3);
  table.row().add("nan-cell").add("nan").add("not a number");

  obs::RunRecord rec("unit_test", "run record unit test");
  rec.add_table("t", table);
  EXPECT_EQ(rec.total_rows(), 2u);

  std::ostringstream os;
  rec.write_json(os, 1.5, /*include_metrics=*/false);
  const std::string text = os.str();
  // Integer cell stays an integer, string cell stays quoted, NaN text
  // parses to null under the typed-cell policy.
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("\"alpha\""), std::string::npos);
  EXPECT_NE(text.find("null"), std::string::npos);
  EXPECT_NE(text.find("\"not a number\""), std::string::npos);
  EXPECT_NE(text.find("\"schema\": \"recover.run/1\""), std::string::npos);
}

TEST(RunRecord, EmitsFlagsAndNotes) {
  obs::RunRecord rec("unit_test", "desc");
  rec.set_flags({{"sizes", "32,64"}, {"seed", "1"}});
  rec.note("slope", 1.03);
  rec.note("comment", "ok");
  std::ostringstream os;
  rec.write_json(os, 0.0, /*include_metrics=*/false);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"sizes\": \"32,64\""), std::string::npos);
  EXPECT_NE(text.find("\"slope\": 1.03"), std::string::npos);
  EXPECT_NE(text.find("\"comment\": \"ok\""), std::string::npos);
}

TEST(RunRecord, JsonIsMachineParseable) {
  // Structural check without a JSON library: balanced braces/brackets
  // outside strings, and non-empty.
  util::Table table({"a"});
  table.row().integer(1);
  obs::RunRecord rec("unit_test", "balance check");
  rec.add_table("t", table);
  std::ostringstream os;
  rec.write_json(os, 0.25, /*include_metrics=*/true);
  const std::string text = os.str();
  ASSERT_FALSE(text.empty());
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (ch == '\\') escaped = true;
      if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// ---- Histogram quantiles ---------------------------------------------

TEST(Histogram, QuantilesFromBucketMidpoints) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram h("obs_test.quantiles");
  for (int i = 0; i < 4; ++i) h.record(1);  // bucket 1 (midpoint 1)
  h.record(100);                            // bucket 7: 64..127, mid 95.5
  const auto snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(0.50), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.99), 95.5);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 95.5);
}

TEST(Histogram, QuantileEdgeCases) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram empty("obs_test.quantile_empty");
  EXPECT_DOUBLE_EQ(empty.snapshot().quantile(0.5), 0.0);
  obs::Histogram zeros("obs_test.quantile_zeros");
  zeros.record(0);
  zeros.record(0);
  EXPECT_DOUBLE_EQ(zeros.snapshot().quantile(0.95), 0.0);
  // The empty histogram stays 0 even for out-of-range q.
  EXPECT_DOUBLE_EQ(empty.snapshot().quantile(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.snapshot().quantile(2.0), 0.0);
}

TEST(Histogram, QuantileClampsQOutsideUnitInterval) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram h("obs_test.quantile_clamp");
  for (int i = 0; i < 3; ++i) h.record(1);  // bucket 1, midpoint 1
  h.record(100);                            // bucket 7: 64..127, mid 95.5
  const auto snap = h.snapshot();
  // q ≤ 0 → rank 1 (the minimum's bucket), q ≥ 1 → rank = count (the
  // maximum's bucket) — q > 1 must not fall off the cumulative scan and
  // report 0.
  EXPECT_DOUBLE_EQ(snap.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 95.5);
  EXPECT_DOUBLE_EQ(snap.quantile(1.5), 95.5);
}

TEST(Histogram, QuantileSingleBucketMassIsConstant) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram h("obs_test.quantile_single_bucket");
  for (int i = 0; i < 1000; ++i) h.record(10);  // bucket 4: 8..15, mid 11.5
  const auto snap = h.snapshot();
  // All mass in one bucket: every quantile reports that bucket's
  // midpoint (the estimator cannot see inside a bucket).
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.quantile(q), 11.5) << "q=" << q;
  }
}

TEST(Registry, SnapshotRacesShardWritersCleanly) {
  // Exercised under TSAN in CI (scripts/ci.sh): merge-on-read over the
  // relaxed shard atomics must be data-race-free against concurrent
  // add()/record(), and the merged totals must be exact once writers
  // stop (addition commutes).
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  auto& counter = obs::Registry::global().counter("obs_test.race.counter");
  auto& hist = obs::Registry::global().histogram("obs_test.race.hist");
  counter.reset();
  hist.reset();

  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&go, &counter, &hist] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        counter.add();
        hist.record(i & 0xFFFu);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Scrape while the writers run: values are torn-free and monotone
  // growth is plausible but unasserted (relaxed reads may lag).
  for (int i = 0; i < 50; ++i) {
    const auto snap = obs::Registry::global().snapshot();
    for (const auto& [name, value] : snap.counters) {
      if (name == "obs_test.race.counter") {
        EXPECT_LE(value, kWriters * kPerWriter);
      }
    }
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(counter.value(), kWriters * kPerWriter);
  EXPECT_EQ(hist.snapshot().count, kWriters * kPerWriter);
}

TEST(RunRecord, MetricsSectionCarriesQuantiles) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Registry::global().histogram("obs_test.record_quant").record(100);
  util::Table table({"a"});
  table.row().integer(1);
  obs::RunRecord rec("unit_test", "quantile dump");
  rec.add_table("t", table);
  std::ostringstream os;
  rec.write_json(os, 0.0, /*include_metrics=*/true);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"p50\": 95.5"), std::string::npos);
  EXPECT_NE(text.find("\"p95\": 95.5"), std::string::npos);
  EXPECT_NE(text.find("\"p99\": 95.5"), std::string::npos);
}

// ---- Progress ---------------------------------------------------------

TEST(Progress, FlushesFinalLineEvenWithoutHeartbeat) {
  // Regression: a --progress run with a known total that never printed a
  // heartbeat (zero ticks — the work collapsed to nothing) must still
  // flush the "done ... (finished)" summary from the destructor.
  ProgressGuard guard;
  obs::set_progress_enabled(true);
  testing::internal::CaptureStderr();
  { obs::Progress progress("unit", 3); }
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[unit] 0/3 done"), std::string::npos);
  EXPECT_NE(err.find("(finished)"), std::string::npos);
}

TEST(Progress, KnownTotalAlwaysEndsWithFinishedLine) {
  // The ticked path: heartbeat(s) may or may not fire inside the 1 s
  // throttle window, but the final "N/N done ... (finished)" line is
  // unconditional for total > 0.
  ProgressGuard guard;
  obs::set_progress_enabled(true);
  testing::internal::CaptureStderr();
  {
    obs::Progress progress("unit", 3);
    progress.tick();
    progress.tick();
    progress.tick();
  }
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[unit] 3/3 done"), std::string::npos);
  EXPECT_NE(err.find("(finished)"), std::string::npos);
}

TEST(Progress, UnknownTotalStaysSilentWithoutHeartbeat) {
  // total == 0 (unknown) and no heartbeat printed: no final line either,
  // so ad-hoc Progress objects cannot spam stderr at destruction.
  ProgressGuard guard;
  obs::set_progress_enabled(true);
  testing::internal::CaptureStderr();
  { obs::Progress progress("unit", 0); }
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

// ---- Trace ring buffer ------------------------------------------------

TEST(TraceBuffer, DisabledPathRecordsNothing) {
  TraceGuard guard;
  // Switch is off: spans, instants, and counters must not register a
  // buffer, let alone events.
  {
    obs::TraceSpan span("obs_test.disabled_span");
    obs::trace::instant("obs_test.disabled_instant");
    obs::trace::counter("obs_test.disabled_counter", 7);
  }
  EXPECT_EQ(obs::TraceCollector::global().total_recorded(), 0u);
  EXPECT_TRUE(obs::TraceCollector::global().collect().empty());
}

TEST(TraceBuffer, OverflowDropsOldestAndCounts) {
  obs::TraceBuffer buffer(0, "unit", /*capacity=*/4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    obs::TraceEvent e;
    e.ts_ns = i;
    e.name = "evt";
    e.type = obs::TraceEvent::Type::kInstant;
    e.arg1_name = "i";
    e.arg1 = static_cast<std::int64_t>(i);
    buffer.push(e);
  }
  EXPECT_EQ(buffer.recorded(), 10u);
  EXPECT_EQ(buffer.dropped(), 6u);
  const auto events = buffer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The NEWEST four survive, oldest-first, uncorrupted.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(events[k].ts_ns, 7 + k);
    EXPECT_EQ(events[k].arg1, static_cast<std::int64_t>(7 + k));
    EXPECT_STREQ(events[k].name, "evt");
  }
}

TEST(TraceBuffer, DetailIsTruncatedSafely) {
  obs::TraceEvent e;
  e.set_detail(std::string(200, 'x'));
  EXPECT_EQ(std::string(e.detail).size(), obs::TraceEvent::kDetailCapacity);
  e.set_detail("short");
  EXPECT_STREQ(e.detail, "short");
}

TEST(TraceSpan, ScopedSpanFeedsBothSinks) {
  MetricsGuard mguard;
  TraceGuard tguard;
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  obs::Histogram h("obs_test.dual_sink");
  { obs::ScopedSpan span(h, "cell=1"); }
  EXPECT_EQ(h.snapshot().count, 1u);  // histogram sink
  obs::set_trace_enabled(false);
  const auto threads = obs::TraceCollector::global().collect();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 2u);  // trace sink: begin + end
  const auto& begin = threads[0].events[0];
  const auto& end = threads[0].events[1];
  EXPECT_EQ(begin.type, obs::TraceEvent::Type::kBegin);
  EXPECT_STREQ(begin.name, "obs_test.dual_sink");
  EXPECT_STREQ(begin.detail, "cell=1");
  EXPECT_EQ(end.type, obs::TraceEvent::Type::kEnd);
  EXPECT_GE(end.ts_ns, begin.ts_ns);
}

TEST(TraceCollector, SpansNestPerThread) {
  TraceGuard guard;
  obs::set_trace_enabled(true);
  const auto emit_nested = [] {
    obs::TraceSpan outer("outer");
    {
      obs::TraceSpan inner("inner");
      obs::trace::instant("tick", "k", 1);
    }
    { obs::TraceSpan inner2("inner2"); }
  };
  emit_nested();                      // main thread
  std::thread t(emit_nested);        // plus one worker
  t.join();
  obs::set_trace_enabled(false);
  const auto threads = obs::TraceCollector::global().collect();
  ASSERT_EQ(threads.size(), 2u);
  for (const auto& thread : threads) {
    EXPECT_EQ(thread.dropped, 0u);
    std::vector<const char*> stack;
    std::uint64_t last_ts = 0;
    for (const auto& e : thread.events) {
      EXPECT_GE(e.ts_ns, last_ts);  // per-thread timestamps are monotone
      last_ts = e.ts_ns;
      switch (e.type) {
        case obs::TraceEvent::Type::kBegin:
          stack.push_back(e.name);
          break;
        case obs::TraceEvent::Type::kEnd:
          ASSERT_FALSE(stack.empty());
          EXPECT_STREQ(stack.back(), e.name);  // LIFO: ends match begins
          stack.pop_back();
          break;
        default:
          EXPECT_FALSE(stack.empty());  // instant fired inside "inner"
          break;
      }
    }
    EXPECT_TRUE(stack.empty());
  }
}

// ---- Chrome trace export ---------------------------------------------

namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// Structural JSON sanity without a parser: balanced braces/brackets
// outside strings.
void expect_balanced_json(const std::string& text) {
  ASSERT_FALSE(text.empty());
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (ch == '\\') escaped = true;
      if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace

TEST(TraceExport, WritesParseableBalancedChromeJson) {
  TraceGuard guard;
  obs::set_trace_enabled(true);
  obs::trace::set_thread_name("main");
  {
    obs::TraceSpan outer("export.outer");
    { obs::TraceSpan inner("export.inner"); }
    obs::trace::instant("export.steal", "victim", 2, "count", 3);
    obs::trace::counter("export.queue", 7);
  }
  obs::set_trace_enabled(false);
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string text = os.str();
  expect_balanced_json(text);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"main\""), std::string::npos);
  EXPECT_NE(text.find("\"export.outer\""), std::string::npos);
  EXPECT_NE(text.find("\"s\":\"t\""), std::string::npos);  // instant scope
  EXPECT_NE(text.find("\"victim\":2"), std::string::npos);
  EXPECT_NE(text.find("\"count\":3"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("recover.trace/1"), std::string::npos);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"B\""),
            count_occurrences(text, "\"ph\":\"E\""));
}

TEST(TraceExport, RepairsUnbalancedSpans) {
  TraceGuard guard;
  obs::set_trace_enabled(true);
  // An orphan end (its begin was dropped from the ring) and a span still
  // open at export: the writer must skip the former and synthesize an
  // end for the latter, so B/E counts always balance.
  obs::trace::end_at("orphan", obs::trace::now_ns());
  obs::trace::begin_at("unclosed", obs::trace::now_ns());
  obs::set_trace_enabled(false);
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string text = os.str();
  expect_balanced_json(text);
  EXPECT_EQ(count_occurrences(text, "\"orphan\""), 0u);
  EXPECT_EQ(count_occurrences(text, "\"unclosed\""), 2u);  // B + synthetic E
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"B\""),
            count_occurrences(text, "\"ph\":\"E\""));
}

}  // namespace
