#include "src/sweep/grid.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "src/util/assert.hpp"

namespace recover::sweep {

namespace {

[[noreturn]] void bad_spec(const std::string& what, const std::string& token) {
  throw std::invalid_argument("grid spec: " + what + " in '" + token + "'");
}

std::int64_t parse_int(const std::string& token, const std::string& context) {
  if (token.empty()) bad_spec("empty integer", context);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) {
    bad_spec("bad integer '" + token + "'", context);
  }
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, begin);
    if (pos == std::string::npos) {
      out.push_back(s.substr(begin));
      return out;
    }
    out.push_back(s.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

std::vector<std::int64_t> parse_values(const std::string& text,
                                       const std::string& axis) {
  const std::size_t dots = text.find("..");
  if (dots == std::string::npos) {
    std::vector<std::int64_t> values;
    for (const auto& item : split(text, ',')) {
      values.push_back(parse_int(item, axis));
    }
    return values;
  }
  // Inclusive range with an optional step suffix.
  const std::string start_text = text.substr(0, dots);
  std::string end_text = text.substr(dots + 2);
  char step_kind = '+';
  std::int64_t step = 1;
  const std::size_t colon = end_text.find(':');
  if (colon != std::string::npos) {
    const std::string step_text = end_text.substr(colon + 1);
    end_text = end_text.substr(0, colon);
    if (step_text.size() < 2 ||
        (step_text[0] != 'x' && step_text[0] != '+')) {
      bad_spec("step must be x<k> or +<k>", axis);
    }
    step_kind = step_text[0];
    step = parse_int(step_text.substr(1), axis);
  }
  const std::int64_t start = parse_int(start_text, axis);
  const std::int64_t end = parse_int(end_text, axis);
  if (start > end) bad_spec("descending range", axis);
  if (step_kind == 'x' && step < 2) bad_spec("geometric step needs k >= 2", axis);
  if (step_kind == '+' && step < 1) bad_spec("arithmetic step needs k >= 1", axis);
  if (step_kind == 'x' && start <= 0) {
    bad_spec("geometric range needs a positive start", axis);
  }
  std::vector<std::int64_t> values;
  for (std::int64_t v = start; v <= end;
       v = step_kind == 'x' ? v * step : v + step) {
    values.push_back(v);
  }
  return values;
}

}  // namespace

std::int64_t Cell::at(const std::string& name) const {
  for (const auto& [k, v] : params) {
    if (k == name) return v;
  }
  std::fprintf(stderr, "sweep: cell '%s' has no parameter '%s'\n",
               key().c_str(), name.c_str());
  std::abort();
}

std::int64_t Cell::get(const std::string& name, std::int64_t fallback) const {
  for (const auto& [k, v] : params) {
    if (k == name) return v;
  }
  return fallback;
}

std::string Cell::key() const {
  std::string out;
  for (const auto& [k, v] : params) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += std::to_string(v);
  }
  return out;
}

GridSpec GridSpec::parse(const std::string& spec) {
  GridSpec grid;
  if (spec.empty()) throw std::invalid_argument("grid spec: empty");
  for (const auto& axis_text : split(spec, ';')) {
    const std::size_t eq = axis_text.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad_spec("axis must be name=values", axis_text);
    }
    grid.add_axis(axis_text.substr(0, eq),
                  parse_values(axis_text.substr(eq + 1), axis_text));
  }
  return grid;
}

void GridSpec::add_axis(std::string name, std::vector<std::int64_t> values) {
  if (name.empty()) throw std::invalid_argument("grid spec: empty axis name");
  if (values.empty()) {
    throw std::invalid_argument("grid spec: axis '" + name + "' has no values");
  }
  for (const auto& axis : axes_) {
    if (axis.name == name) {
      throw std::invalid_argument("grid spec: duplicate axis '" + name + "'");
    }
  }
  axes_.push_back(Axis{std::move(name), std::move(values)});
}

std::uint64_t GridSpec::cells() const {
  if (axes_.empty()) return 0;
  std::uint64_t total = 1;
  for (const auto& axis : axes_) total *= axis.values.size();
  return total;
}

Cell GridSpec::cell(std::uint64_t index) const {
  RL_REQUIRE(index < cells());
  Cell out;
  out.index = index;
  out.params.reserve(axes_.size());
  // Row-major: peel from the fastest (last) axis and reverse into place.
  std::uint64_t rest = index;
  std::vector<std::size_t> coordinate(axes_.size());
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const auto size = static_cast<std::uint64_t>(axes_[a].values.size());
    coordinate[a] = static_cast<std::size_t>(rest % size);
    rest /= size;
  }
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    out.params.emplace_back(axes_[a].name, axes_[a].values[coordinate[a]]);
  }
  return out;
}

std::string GridSpec::to_string() const {
  std::string out;
  for (const auto& axis : axes_) {
    if (!out.empty()) out += ';';
    out += axis.name;
    out += '=';
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(axis.values[i]);
    }
  }
  return out;
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hash_hex(std::uint64_t h) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 16; i-- > 0;) {
    out[i] = kDigits[h & 0xF];
    h >>= 4;
  }
  return out;
}

std::uint64_t cell_hash(const std::string& exp, const Cell& cell) {
  return fnv1a64(exp + "|" + cell.key());
}

bool in_shard(std::uint64_t index, int shard_index, int shard_count) {
  RL_REQUIRE(shard_count >= 1);
  RL_REQUIRE(shard_index >= 0 && shard_index < shard_count);
  return index % static_cast<std::uint64_t>(shard_count) ==
         static_cast<std::uint64_t>(shard_index);
}

}  // namespace recover::sweep
