// Tests for the §7 extensions: open systems and relocation.
#include <gtest/gtest.h>

#include "src/open/open_chain.hpp"
#include "src/open/relocation.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/summary.hpp"

namespace recover::open {
namespace {

TEST(OpenChain, EmptySystemRemovalIsNoop) {
  rng::Xoshiro256PlusPlus eng(1);
  OpenChain<balls::AbkuRule> chain(balls::LoadVector(4), balls::AbkuRule(2));
  for (int t = 0; t < 500; ++t) {
    chain.step(eng);
    ASSERT_GE(chain.balls(), 0);
    ASSERT_TRUE(chain.state().invariants_hold());
  }
}

TEST(OpenChain, BallCountHoversAroundDrift) {
  // With insert probability p > ½ the count drifts up; with p < ½ it
  // keels to (near) zero.
  rng::Xoshiro256PlusPlus eng(2);
  OpenChain<balls::AbkuRule> up(balls::LoadVector(8), balls::AbkuRule(2),
                                0.75);
  for (int t = 0; t < 4000; ++t) up.step(eng);
  EXPECT_GT(up.balls(), 1000);

  OpenChain<balls::AbkuRule> down(balls::LoadVector::all_in_one(8, 500),
                                  balls::AbkuRule(2), 0.25);
  for (int t = 0; t < 4000; ++t) down.step(eng);
  EXPECT_LT(down.balls(), 100);
}

TEST(OpenGrandCoupling, EqualCopiesStayEqual) {
  rng::Xoshiro256PlusPlus eng(3);
  const balls::LoadVector v = balls::LoadVector::piled(6, 12, 2);
  OpenGrandCoupling<balls::AbkuRule> c(v, v, balls::AbkuRule(2));
  for (int t = 0; t < 3000; ++t) {
    c.step(eng);
    ASSERT_TRUE(c.coalesced());
  }
}

TEST(OpenGrandCoupling, ZeroAndPiledStartsCoalesce) {
  // The paper's §7 example: 0 balls vs m piled balls; the coupling
  // estimates the time until their distributions agree.
  rng::Xoshiro256PlusPlus eng(4);
  OpenGrandCoupling<balls::AbkuRule> c(balls::LoadVector(6),
                                       balls::LoadVector::all_in_one(6, 30),
                                       balls::AbkuRule(2));
  std::int64_t t = 0;
  while (!c.coalesced() && t < 2'000'000) {
    c.step(eng);
    ++t;
  }
  EXPECT_TRUE(c.coalesced()) << "open coupling never met";
  // Ball counts must have merged too (distance includes the count gap).
  EXPECT_EQ(c.first().balls(), c.second().balls());
}

TEST(OpenGrandCoupling, BallCountGapShrinksStochastically) {
  rng::Xoshiro256PlusPlus eng(5);
  OpenGrandCoupling<balls::AbkuRule> c(balls::LoadVector(6),
                                       balls::LoadVector::all_in_one(6, 40),
                                       balls::AbkuRule(2));
  const std::int64_t gap0 =
      c.second().balls() - c.first().balls();
  for (int t = 0; t < 30000; ++t) c.step(eng);
  const std::int64_t gap =
      std::abs(c.second().balls() - c.first().balls());
  EXPECT_LT(gap, gap0);
}

TEST(RelocatingChain, ZeroRelocationsMatchesScenarioADynamics) {
  rng::Xoshiro256PlusPlus eng(6);
  RelocatingChainA<balls::AbkuRule> chain(
      balls::LoadVector::all_in_one(8, 16), balls::AbkuRule(2), 0);
  for (int t = 0; t < 2000; ++t) chain.step(eng);
  EXPECT_EQ(chain.balls(), 16);
  EXPECT_TRUE(chain.state().invariants_hold());
}

TEST(RelocatingChain, RelocationAcceleratesRecovery) {
  // Average max load over a short horizon from a crash state drops
  // faster with a relocation budget.
  auto run = [](int relocations, std::uint64_t seed) {
    rng::Xoshiro256PlusPlus eng(seed);
    RelocatingChainA<balls::AbkuRule> chain(
        balls::LoadVector::all_in_one(32, 64), balls::AbkuRule(2),
        relocations);
    stats::Summary max_load;
    for (int t = 0; t < 200; ++t) {
      chain.step(eng);
      max_load.add(static_cast<double>(chain.state().max_load()));
    }
    return max_load.mean();
  };
  stats::Summary none, some;
  for (std::uint64_t rep = 0; rep < 12; ++rep) {
    none.add(run(0, 100 + rep));
    some.add(run(3, 200 + rep));
  }
  EXPECT_LT(some.mean(), none.mean());
}

TEST(RelocatingChain, BalancedStateSkipsRelocation) {
  // With max − min ≤ 1 the relocation loop must not churn the state.
  rng::Xoshiro256PlusPlus eng(7);
  RelocatingChainA<balls::AbkuRule> chain(balls::LoadVector::balanced(8, 8),
                                          balls::AbkuRule(2), 5);
  for (int t = 0; t < 1000; ++t) {
    chain.step(eng);
    ASSERT_EQ(chain.balls(), 8);
    ASSERT_TRUE(chain.state().invariants_hold());
  }
}

}  // namespace
}  // namespace recover::open
