# Empty dependencies file for load_vector_test.
# This may be replaced when dependencies are built.
