# Empty dependencies file for autocorr_test.
# This may be replaced when dependencies are built.
