// Experiment E3 — Claim 5.3 and its refinements: scenario B recovery.
//
// The simple path coupling gives τ(ε) = O(n m² ln ε⁻¹); the (deferred)
// full version improves this to Õ(m²), and the paper notes τ = Ω(n·m)
// and τ = Ω(m²) for large m.  We measure grand-coupling coalescence from
// the extremal pair for m = c·n at several densities c and report the
// ratios against the candidate laws plus the fitted log-log slope in m.
// Expected shape: T/m² roughly flat in m at fixed c (the Õ(m²) law),
// orders of magnitude below the Claim 5.3 worst-case bound.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/grand_coupling.hpp"
#include "src/core/coalescence.hpp"
#include "src/core/path_coupling.hpp"
#include "src/obs/run_record.hpp"
#include "src/stats/regression.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp03_scenario_b_mixing",
                "E3/Claim 5.3: coalescence of I_B vs n*m^2 / m^2 laws");
  cli.flag("sizes", "comma-separated n sweep", "8,12,16,24,32,48");
  cli.flag("densities", "comma-separated m/n ratios", "1,2");
  cli.flag("d", "ABKU choices", "2");
  cli.flag("replicas", "replicas per point", "16");
  cli.flag("seed", "rng seed", "3");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto densities = cli.int_list("densities");
  const auto d = static_cast<int>(cli.integer("d"));
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"m/n", "n", "m", "T_mean", "T_ci95", "T_q95", "T/m^2",
                     "T/(n*m)", "claim53_bound(1/4)", "secs"});

  for (const std::int64_t c : densities) {
    std::vector<double> xs, ys;
    for (const std::int64_t n : sizes) {
      const std::int64_t m = c * n;
      util::Timer timer;
      core::CoalescenceOptions opts;
      opts.replicas = replicas;
      opts.seed = seed + static_cast<std::uint64_t>(c) * 7777;
      opts.max_steps = 2000 * m * m;
      opts.check_interval = std::max<std::int64_t>(1, m * m / 64);
      const auto stats = core::measure_coalescence(
          [&](std::uint64_t) {
            return balls::GrandCouplingB<balls::AbkuRule>(
                balls::LoadVector::all_in_one(static_cast<std::size_t>(n), m),
                balls::LoadVector::balanced(static_cast<std::size_t>(n), m),
                balls::AbkuRule(d));
          },
          opts);
      const double m2 = static_cast<double>(m) * static_cast<double>(m);
      table.row()
          .add(std::to_string(c))
          .integer(n)
          .integer(m)
          .num(stats.steps.mean(), 1)
          .num(stats.steps.ci_halfwidth(), 1)
          .num(stats.q95, 1)
          .num(stats.steps.mean() / m2, 3)
          .num(stats.steps.mean() /
                   (static_cast<double>(n) * static_cast<double>(m)),
               3)
          .num(core::claim53_bound(static_cast<std::size_t>(n), m, 0.25), 0)
          .num(timer.seconds(), 2);
      if (stats.censored == 0) {
        xs.push_back(static_cast<double>(m));
        ys.push_back(stats.steps.mean());
      }
    }
    if (xs.size() >= 3) {
      const auto fit = stats::loglog_fit(xs, ys);
      std::printf("# m/n=%lld  log-log slope of T vs m: %.3f (R^2 %.4f)\n",
                  static_cast<long long>(c), fit.slope, fit.r_squared);
      run.note("loglog_slope_c" + std::to_string(c), fit.slope);
    }
  }
  table.print(std::cout);
  run.add_table("coalescence_scaling", table);
  std::printf(
      "\n# Shape check: T/m^2 roughly flat (refined O~(m^2) law), far below "
      "the Claim 5.3 worst-case bound; scenario B is polynomially slower "
      "than scenario A's m ln m (exp01).\n");
  return 0;
}
