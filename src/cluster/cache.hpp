// recover::cluster — deterministic in-memory result cache
// (docs/SERVING.md, "Cluster mode").
//
// Values are the raw `result` bytes of a run_cell reply, keyed by the
// collision-free cache_key string (digest.hpp).  Because a run_cell
// reply is a pure function of its request, the cache needs no TTL, no
// invalidation, and no coherence protocol: an entry can only ever be
// replaced by identical bytes.  The only policy is capacity — least
// recently used entries are evicted when max_entries is exceeded.
//
// Thread-safe: one mutex guards the list+index (get() promotes, so even
// reads mutate LRU order).  Hit/miss/eviction tallies are kept inside
// the same critical section, making stats() an exact point-in-time
// view — the hit ratio the bench gate asserts on is never smeared by
// racing increments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace recover::cluster {

class ResultCache {
 public:
  /// max_entries == 0 disables the cache: get() always misses without
  /// counting, put() drops.  (The router treats that as "cache off".)
  explicit ResultCache(std::size_t max_entries);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  [[nodiscard]] bool enabled() const { return max_entries_ > 0; }

  /// True + fills `result_json` on a hit (promoting the entry to most
  /// recently used); false on a miss.  Both outcomes are tallied.
  bool get(const std::string& key, std::string& result_json);

  /// Inserts (or refreshes the recency of) `key`.  Evicts from the LRU
  /// tail past max_entries.  Values for an existing key are identical
  /// by the determinism contract, so refresh never rewrites bytes.
  void put(const std::string& key, const std::string& result_json);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;  // sum of key + value sizes

    [[nodiscard]] double hit_ratio() const {
      const std::uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };

  [[nodiscard]] Stats stats() const;

 private:
  using Entry = std::pair<std::string, std::string>;  // key, result bytes

  std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace recover::cluster
