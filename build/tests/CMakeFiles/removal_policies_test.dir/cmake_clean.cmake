file(REMOVE_RECURSE
  "CMakeFiles/removal_policies_test.dir/removal_policies_test.cpp.o"
  "CMakeFiles/removal_policies_test.dir/removal_policies_test.cpp.o.d"
  "removal_policies_test"
  "removal_policies_test.pdb"
  "removal_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/removal_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
