file(REMOVE_RECURSE
  "CMakeFiles/exp01_scenario_a_mixing.dir/exp01_scenario_a_mixing.cpp.o"
  "CMakeFiles/exp01_scenario_a_mixing.dir/exp01_scenario_a_mixing.cpp.o.d"
  "exp01_scenario_a_mixing"
  "exp01_scenario_a_mixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp01_scenario_a_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
