// Experiment E5 — Lemmas 6.2 / 6.3: one-step contraction of the §6
// coupling for the edge-orientation chain.
//
// For every sampled Γ-pair (y ∈ 𝒢̄(x) at Δ = 1, and y ∈ 𝒮̄_k(x) at
// Δ = k), the lemmas state E[Δ(x*, y*)] ≤ Δ(x, y) − (n choose 2)⁻¹.
// We enumerate Γ-neighbors of staircase-like states, Monte-Carlo the
// coupled step, and report the worst per-pair E[Δ*] − Δ + (n choose 2)⁻¹
// (must be ≤ 0 within CI) plus the merge frequency.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <tuple>
#include <vector>

#include "src/obs/run_record.hpp"
#include "src/orient/coupling.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/summary.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp05_orientation_contraction",
                "E5/Lemmas 6.2-6.3: coupled-step contraction");
  cli.flag("sizes", "comma-separated vertex counts", "6,8,10,12");
  cli.flag("trials", "coupled steps per pair", "6000");
  cli.flag("max_pairs", "Gamma-pairs tested per state", "6");
  cli.flag("seed", "rng seed", "5");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto trials = static_cast<int>(cli.integer("trials"));
  const auto max_pairs = static_cast<int>(cli.integer("max_pairs"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"n", "set", "k", "pairs", "worst E[d*]-d+1/C(n,2)",
                     "4sigma", "merge_freq"});

  for (const std::int64_t n : sizes) {
    rng::Xoshiro256PlusPlus eng(seed + static_cast<std::uint64_t>(n));
    // A staircase base state leaves room for both 𝒢̄ and 𝒮̄_k moves.
    std::vector<std::int64_t> diffs(static_cast<std::size_t>(n), 0);
    std::int64_t level = n / 2;
    for (std::size_t i = 0; i < static_cast<std::size_t>(n) / 2 && level > 0;
         ++i, --level) {
      diffs[i] = level;
      diffs[static_cast<std::size_t>(n) - 1 - i] = -level;
    }
    const orient::DiffState base = orient::DiffState::from_diffs(diffs);
    const orient::CountState x0 = orient::CountState::from_diff_state(base, 3);
    const double inv_choose2 =
        2.0 / (static_cast<double>(n) * (static_cast<double>(n) - 1.0));

    auto run_pairs = [&](const std::vector<
                             std::pair<orient::CountState, std::int64_t>>&
                             pairs_with_k,
                         const char* label) {
      // Group results by k so the table stays small.
      std::map<std::int64_t, std::tuple<double, double, double, int>> worst;
      for (const auto& [y0, k] : pairs_with_k) {
        stats::Summary dist;
        std::int64_t merges = 0;
        for (int t = 0; t < trials; ++t) {
          orient::CountState x = x0, y = y0;
          const auto d_after = orient::coupled_step_orientation(x, y, eng);
          dist.add(static_cast<double>(d_after));
          if (d_after == 0) ++merges;
        }
        const double slack =
            dist.mean() - static_cast<double>(k) + inv_choose2;
        const double merge_freq = static_cast<double>(merges) / trials;
        auto& [w, sigma, mf, cnt] = worst[k];
        if (cnt == 0 || slack > w) {
          w = slack;
          sigma = 4.0 * dist.stderror();
          mf = merge_freq;
        }
        ++cnt;
      }
      for (const auto& [k, tup] : worst) {
        const auto& [w, sigma, mf, cnt] = tup;
        table.row()
            .integer(n)
            .add(label)
            .integer(k)
            .integer(cnt)
            .num(w, 4)
            .num(sigma, 4)
            .num(mf, 4);
      }
    };

    std::vector<std::pair<orient::CountState, std::int64_t>> gpairs;
    for (const auto& y : orient::gbar_neighbors(x0)) {
      if (static_cast<int>(gpairs.size()) >= max_pairs) break;
      gpairs.emplace_back(y, 1);
    }
    run_pairs(gpairs, "Gbar");

    std::vector<std::pair<orient::CountState, std::int64_t>> spairs;
    for (const auto& yk : orient::sbar_neighbors(x0)) {
      if (static_cast<int>(spairs.size()) >= max_pairs) break;
      spairs.push_back(yk);
    }
    run_pairs(spairs, "Sbar");
  }
  table.print(std::cout);
  run.add_table("coupled_step_slack", table);
  std::printf(
      "\n# Lemmas 6.2/6.3 hold iff the worst slack column is <= 0 within "
      "its 4-sigma allowance for every row.\n");
  return 0;
}
