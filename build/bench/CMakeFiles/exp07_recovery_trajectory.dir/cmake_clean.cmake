file(REMOVE_RECURSE
  "CMakeFiles/exp07_recovery_trajectory.dir/exp07_recovery_trajectory.cpp.o"
  "CMakeFiles/exp07_recovery_trajectory.dir/exp07_recovery_trajectory.cpp.o.d"
  "exp07_recovery_trajectory"
  "exp07_recovery_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp07_recovery_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
