// Shared coupling machinery for the balls-into-bins chains.
//
// The placement halves of all couplings are identical: Lemma 3.4 shows the
// ABKU/ADAP placement function is right-oriented with Φ_D = identity, so
// the coupling of Lemma 3.3 feeds the *same* probe sequence to both copies
// and the ‖·‖₁ distance cannot increase on insertion.
#pragma once

#include <cstdint>
#include <utility>

#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"

namespace recover::balls {

/// For Δ(v,u) = 1 there are unique sorted positions λ ≠ δ with
/// v = u + e_λ − e_δ; returns (λ, δ) = (surplus of v, deficit of v).
/// Precondition: Δ(v,u) == 1.
std::pair<std::size_t, std::size_t> unit_difference(const LoadVector& v,
                                                    const LoadVector& u);

/// Coupled insertion of Lemma 3.3: one shared probe sequence drives the
/// placement rule in both copies.  Returns the two placed positions.
template <typename Rule, typename Engine>
std::pair<std::size_t, std::size_t> coupled_place(const Rule& rule,
                                                  LoadVector& v,
                                                  LoadVector& u,
                                                  Engine& eng) {
  RL_DBG_ASSERT(v.bins() == u.bins());
  ProbeMemo<Engine> memo(eng, v.bins());
  const std::size_t iv = rule.place_index(v, memo);
  const std::size_t iu = rule.place_index(u, memo);
  return {v.add_at(iv), u.add_at(iu)};
}

/// Result of one coupled phase on a Γ-pair.
struct GammaStepResult {
  std::int64_t distance_after_removal = 0;  // Δ(v*, u*)
  std::int64_t distance_after = 0;          // Δ(v°, u°)
  bool removal_merged = false;  // the two removals produced v* == u*
};

}  // namespace recover::balls
