file(REMOVE_RECURSE
  "CMakeFiles/exp08_adaptive_rules.dir/exp08_adaptive_rules.cpp.o"
  "CMakeFiles/exp08_adaptive_rules.dir/exp08_adaptive_rules.cpp.o.d"
  "exp08_adaptive_rules"
  "exp08_adaptive_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp08_adaptive_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
