// Experiment E16 — coupling-design ablations (DESIGN.md ablations #2/#3
// plus the Theorem 2 proof structure).
//
//  (a) Γ-coupling vs grand coupling on distance-1 pairs: the paper only
//      needs the coupling on Γ; the simulation uses a full coupling.
//      Starting both from the SAME random Γ-pair we compare expected
//      merge times — quantifying what the grand coupling gives away.
//  (b) Delayed coupling (Theorem 2's proof): run the two orientation
//      copies independently for τ₀ steps, then couple.  The coupled
//      phase shortens as τ₀ grows because the free phase shrinks the
//      unfairness (and hence the path-coupling diameter) to O(ln n).
//  (c) Lazy bit (Remark 1): the lazy chain discards half the arrivals,
//      so coalescence measured in steps doubles — the "slowdown factor
//      of 2" the paper notes.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/coupling_a.hpp"
#include "src/balls/grand_coupling.hpp"
#include "src/balls/random_states.hpp"
#include "src/core/coalescence.hpp"
#include "src/core/delayed_coupling.hpp"
#include "src/obs/run_record.hpp"
#include "src/orient/chain.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/summary.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

// Non-lazy orientation coupling: same picks, every arrival applied.
class EagerCoupling {
 public:
  EagerCoupling(recover::orient::DiffState x, recover::orient::DiffState y)
      : x_(std::move(x)), y_(std::move(y)) {}

  template <typename Engine>
  void step(Engine& eng) {
    const auto [phi, psi] = x_.pick_pair(eng);
    x_.apply_edge(phi, psi);
    y_.apply_edge(phi, psi);
  }

  [[nodiscard]] bool coalesced() const { return x_ == y_; }
  [[nodiscard]] std::int64_t distance() const { return x_.distance(y_); }

 private:
  recover::orient::DiffState x_;
  recover::orient::DiffState y_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp16_coupling_ablation",
                "E16: Gamma vs grand coupling, delayed coupling, lazy bit");
  cli.flag("n", "bins for part (a)", "32");
  cli.flag("m", "balls for part (a)", "64");
  cli.flag("orient_n", "vertices for parts (b)/(c)", "24");
  cli.flag("replicas", "replicas per configuration", "300");
  cli.flag("seed", "rng seed", "16");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto n = static_cast<std::size_t>(cli.integer("n"));
  const auto m = cli.integer("m");
  const auto on = static_cast<std::size_t>(cli.integer("orient_n"));
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const balls::AbkuRule rule(2);

  // ---- (a) Γ-coupling vs grand coupling from the same Γ-pairs ----------
  {
    stats::Summary gamma_time, grand_time;
    rng::Xoshiro256PlusPlus eng(seed);
    for (int r = 0; r < replicas; ++r) {
      const auto [v0, u0] = balls::random_gamma_pair(n, m, eng, 1 + r % 3);
      {
        balls::LoadVector v = v0, u = u0;
        std::int64_t t = 0;
        while (v.distance(u) != 0 && t < 1'000'000) {
          balls::coupled_step_a(v, u, rule, eng);
          ++t;
        }
        gamma_time.add(static_cast<double>(t));
      }
      {
        balls::GrandCouplingA<balls::AbkuRule> c(v0, u0, rule);
        std::int64_t t = 0;
        while (!c.coalesced() && t < 1'000'000) {
          c.step(eng);
          ++t;
        }
        grand_time.add(static_cast<double>(t));
      }
    }
    util::Table table({"coupling (from distance-1 pairs)", "mean merge",
                       "ci95"});
    table.row()
        .add("paper Gamma-coupling (Lemma 4.1)")
        .num(gamma_time.mean(), 1)
        .num(gamma_time.ci_halfwidth(), 1);
    table.row()
        .add("grand quantile coupling")
        .num(grand_time.mean(), 1)
        .num(grand_time.ci_halfwidth(), 1);
    std::printf("(a) scenario A, n=%zu m=%lld: expected merge ~ m = %lld\n",
                n, static_cast<long long>(m), static_cast<long long>(m));
    table.print(std::cout);
    run.add_table("gamma_vs_grand", table);
    std::printf("\n");
  }

  // ---- (b) delayed coupling on the orientation chain -------------------
  {
    const double nd = static_cast<double>(on);
    const auto tau0 = static_cast<std::int64_t>(nd * nd * std::log(nd));
    util::Table table({"delay tau0", "T_total_mean", "T_coupled_phase",
                       "ci95"});
    for (const std::int64_t delay :
         {std::int64_t{0}, tau0 / 4, tau0, 4 * tau0}) {
      core::CoalescenceOptions opts;
      opts.replicas = std::max(8, replicas / 10);
      opts.seed = seed + static_cast<std::uint64_t>(delay);
      opts.max_steps = 100 * tau0 + 10 * delay;
      opts.check_interval = 8;
      opts.parallel = false;
      const auto stats = core::measure_coalescence(
          [&](std::uint64_t r) {
            return core::make_delayed_coupling(
                orient::GreedyOrientationChain(
                    orient::DiffState::spread(on, static_cast<std::int64_t>(
                                                      on / 2))),
                orient::GreedyOrientationChain(orient::DiffState(on)),
                [](const orient::DiffState& a, const orient::DiffState& b) {
                  return orient::GrandCouplingOrient(a, b);
                },
                delay, seed * 31 + r);
          },
          opts);
      table.row()
          .integer(delay)
          .num(stats.steps.mean(), 1)
          .num(stats.steps.mean() - static_cast<double>(delay), 1)
          .num(stats.steps.ci_halfwidth(), 1);
    }
    std::printf("(b) orientation n=%zu, tau0 = n^2 ln n = %lld\n", on,
                static_cast<long long>(
                    static_cast<std::int64_t>(nd * nd * std::log(nd))));
    table.print(std::cout);
    run.add_table("delayed_coupling", table);
    std::printf(
        "    coupled-phase time shrinks as the free phase grows: the "
        "Theorem 2 proof structure in action.\n\n");
  }

  // ---- (c) lazy-bit slowdown -------------------------------------------
  {
    // Lazy chain: coalescence in steps; non-lazy equivalent: apply every
    // arrival (drop the coin).  Ratio of means ~ 2.
    core::CoalescenceOptions opts;
    opts.replicas = std::max(8, replicas / 10);
    opts.seed = seed + 777;
    opts.max_steps = 10'000'000;
    opts.check_interval = 8;
    const auto lazy = core::measure_coalescence(
        [&](std::uint64_t) {
          return orient::GrandCouplingOrient(
              orient::DiffState::spread(on, static_cast<std::int64_t>(on / 2)),
              orient::DiffState(on));
        },
        opts);

    const auto eager = core::measure_coalescence(
        [&](std::uint64_t) {
          return EagerCoupling(
              orient::DiffState::spread(on, static_cast<std::int64_t>(on / 2)),
              orient::DiffState(on));
        },
        opts);
    util::Table table({"chain", "T_mean", "ci95"});
    table.row().add("lazy (Remark 1)").num(lazy.steps.mean(), 1).num(
        lazy.steps.ci_halfwidth(), 1);
    table.row().add("eager (every arrival applied)").num(
        eager.steps.mean(), 1).num(eager.steps.ci_halfwidth(), 1);
    std::printf("(c) lazy-bit slowdown, orientation n=%zu\n", on);
    table.print(std::cout);
    run.add_table("lazy_slowdown", table);
    std::printf("    ratio = %.2f (Remark 1 predicts ~2)\n",
                lazy.steps.mean() / eager.steps.mean());
    run.note("lazy_eager_ratio", lazy.steps.mean() / eager.steps.mean());
  }
  return 0;
}
