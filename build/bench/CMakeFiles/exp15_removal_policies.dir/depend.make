# Empty dependencies file for exp15_removal_policies.
# This may be replaced when dependencies are built.
