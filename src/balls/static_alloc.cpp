#include "src/balls/static_alloc.hpp"

namespace recover::balls {

double predicted_max_load_one_choice(std::size_t n) {
  RL_REQUIRE(n >= 3);
  const double ln_n = std::log(static_cast<double>(n));
  return ln_n / std::log(ln_n);
}

double predicted_max_load_abku(std::size_t n, int d) {
  RL_REQUIRE(n >= 3);
  RL_REQUIRE(d >= 2);
  const double ln_n = std::log(static_cast<double>(n));
  return std::log(ln_n) / std::log(static_cast<double>(d));
}

}  // namespace recover::balls
