#include "src/balls/exact_coupling_analysis.hpp"

#include <cmath>
#include <set>
#include <utility>

#include "src/balls/coupling_common.hpp"
#include "src/balls/exact_chain.hpp"

namespace recover::balls {
namespace {

struct Outcome {
  LoadVector v;
  LoadVector u;
  double probability;
};

// Applies the exact ABKU[d] insertion (shared probes ⇒ identical sorted
// index j in both copies) to each removal outcome and accumulates the
// distance statistics.
ExactCouplingStep finish_with_placement(const std::vector<Outcome>& removals,
                                        const AbkuRule& rule,
                                        std::size_t n) {
  const std::vector<double> pmf = rule.placement_pmf(n);
  ExactCouplingStep out;
  double total = 0;
  for (const auto& outcome : removals) {
    for (std::size_t j = 0; j < n; ++j) {
      if (pmf[j] <= 0) continue;
      LoadVector v = outcome.v;
      LoadVector u = outcome.u;
      v.add_at(j);
      u.add_at(j);
      const double p = outcome.probability * pmf[j];
      const auto dist = v.distance(u);
      out.expected_distance += p * static_cast<double>(dist);
      if (dist == 0) out.merge_probability += p;
      if (dist != 1) out.change_probability += p;
      total += p;
    }
  }
  RL_REQUIRE(std::abs(total - 1.0) < 1e-9);
  return out;
}

}  // namespace

ExactCouplingStep exact_coupled_step_a(const LoadVector& v,
                                       const LoadVector& u,
                                       const AbkuRule& rule) {
  RL_REQUIRE(v.distance(u) == 1);
  const auto [lambda, delta] = unit_difference(v, u);
  const auto m = static_cast<double>(v.balls());
  std::vector<Outcome> removals;
  for (std::size_t i = 0; i < v.bins(); ++i) {
    if (v.load(i) <= 0) continue;
    const double p_i = static_cast<double>(v.load(i)) / m;
    if (i == lambda) {
      const double p_odd = 1.0 / static_cast<double>(v.load(lambda));
      {
        LoadVector a = v, b = u;
        a.remove_at(lambda);
        b.remove_at(delta);
        removals.push_back({std::move(a), std::move(b), p_i * p_odd});
      }
      if (p_odd < 1.0) {
        LoadVector a = v, b = u;
        a.remove_at(lambda);
        b.remove_at(lambda);
        removals.push_back({std::move(a), std::move(b),
                            p_i * (1.0 - p_odd)});
      }
    } else {
      LoadVector a = v, b = u;
      a.remove_at(i);
      b.remove_at(i);
      removals.push_back({std::move(a), std::move(b), p_i});
    }
  }
  return finish_with_placement(removals, rule, v.bins());
}

ExactCouplingStep exact_coupled_step_b(const LoadVector& v,
                                       const LoadVector& u,
                                       const AbkuRule& rule) {
  RL_REQUIRE(v.distance(u) == 1);
  auto [lambda, delta] = unit_difference(v, u);
  // Mirror coupled_step_b: work on (a, b) with a = b + e_λ − e_δ, λ < δ;
  // remember whether (a, b) = (v, u) or the roles were swapped (the
  // distance is symmetric, so outcomes need no un-swapping).
  const bool swapped = lambda > delta;
  const LoadVector& a0 = swapped ? u : v;
  const LoadVector& b0 = swapped ? v : u;
  if (swapped) std::swap(lambda, delta);

  const std::size_t s1 = a0.nonempty_count();
  const std::size_t s2 = b0.nonempty_count();
  std::vector<Outcome> removals;
  auto emit = [&](std::size_t i, std::size_t istar, double p) {
    LoadVector a = a0, b = b0;
    a.remove_at(i);
    b.remove_at(istar);
    removals.push_back({std::move(a), std::move(b), p});
  };
  if (s1 == s2) {
    const double p = 1.0 / static_cast<double>(s1);
    for (std::size_t i = 0; i < s1; ++i) {
      std::size_t istar = i;
      if (i == lambda) {
        istar = delta;
      } else if (i == delta) {
        istar = lambda;
      }
      emit(i, istar, p);
    }
  } else {
    RL_REQUIRE(s2 == s1 + 1);
    RL_REQUIRE(delta == s1);
    const double p = 1.0 / static_cast<double>(s2);
    for (std::size_t istar = 0; istar < s2; ++istar) {
      if (istar == delta) {
        emit(lambda, istar, p);
      } else if (istar == lambda) {
        const double q = p / static_cast<double>(s1);
        for (std::size_t i = 0; i < s1; ++i) emit(i, istar, q);
      } else {
        emit(istar, istar, p);
      }
    }
  }
  return finish_with_placement(removals, rule, v.bins());
}

std::vector<std::pair<LoadVector, LoadVector>> enumerate_gamma_pairs(
    std::size_t n, std::int64_t m) {
  const PartitionSpace space(n, m);
  std::set<std::pair<std::vector<std::int64_t>, std::vector<std::int64_t>>>
      seen;
  std::vector<std::pair<LoadVector, LoadVector>> pairs;
  for (std::size_t idx = 0; idx < space.size(); ++idx) {
    const LoadVector v = space.load_vector(idx);
    for (std::size_t a = 0; a < n; ++a) {
      if (v.load(a) <= 0) continue;
      for (std::size_t b = 0; b < n; ++b) {
        LoadVector u = v;
        u.remove_at(a);
        u.add_at(b);
        if (v.distance(u) != 1) continue;
        if (seen.emplace(v.loads(), u.loads()).second) {
          pairs.emplace_back(v, u);
        }
      }
    }
  }
  return pairs;
}

}  // namespace recover::balls
