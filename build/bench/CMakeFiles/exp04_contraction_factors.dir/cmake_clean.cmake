file(REMOVE_RECURSE
  "CMakeFiles/exp04_contraction_factors.dir/exp04_contraction_factors.cpp.o"
  "CMakeFiles/exp04_contraction_factors.dir/exp04_contraction_factors.cpp.o.d"
  "exp04_contraction_factors"
  "exp04_contraction_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp04_contraction_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
