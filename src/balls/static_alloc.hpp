// Static (one-shot) allocation processes: throw m balls into n bins with
// a given rule and inspect the final load vector.
//
// These are the classical baselines the paper's introduction builds on:
//   * uniform single choice — max load Θ(ln n / ln ln n) at m = n w.h.p.;
//   * ABKU[d], d ≥ 2      — max load ln ln n / ln d + Θ(1) w.h.p.
// exp10 reproduces the gap and compares against the stationary behaviour
// of the dynamic chains.
#pragma once

#include <cmath>
#include <cstdint>

#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"

namespace recover::balls {

/// Allocates m balls sequentially with the rule, starting from empty bins.
template <typename Rule, typename Engine>
LoadVector allocate_static(std::size_t n, std::int64_t m, const Rule& rule,
                           Engine& eng) {
  LoadVector v(n);
  for (std::int64_t b = 0; b < m; ++b) {
    ProbeFresh<Engine> probe(eng, n);
    v.add_at(rule.place_index(v, probe));
  }
  return v;
}

/// Classical i.u.r. single-choice allocation (ABKU[1] specialization,
/// kept separate as the d = 1 baseline used by exp10).
template <typename Engine>
LoadVector allocate_uniform(std::size_t n, std::int64_t m, Engine& eng) {
  return allocate_static(n, m, AbkuRule(1), eng);
}

/// Leading-order analytic predictions for the m = n static max load.
double predicted_max_load_one_choice(std::size_t n);
double predicted_max_load_abku(std::size_t n, int d);

}  // namespace recover::balls
