// Tests for generalized removal policies and the generic chain/coupling.
#include <gtest/gtest.h>

#include <cmath>

#include "src/balls/removal_policies.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/core/coalescence.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"

namespace recover::balls {
namespace {

TEST(RemovalPolicies, BallWeightedMatchesDefinition32) {
  const LoadVector v = LoadVector::from_loads({6, 3, 1, 0});
  BallWeightedRemoval policy;
  rng::Xoshiro256PlusPlus eng(1);
  std::vector<std::int64_t> counts(4, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double q = rng::uniform_real(eng);
    ++counts[policy.pick_quantiles(v, &q)];
  }
  EXPECT_EQ(counts[3], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, 0.6, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kSamples, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kSamples, 0.1, 0.01);
}

TEST(RemovalPolicies, NonEmptyUniformMatchesDefinition33) {
  const LoadVector v = LoadVector::from_loads({6, 3, 1, 0});
  NonEmptyUniformRemoval policy;
  rng::Xoshiro256PlusPlus eng(2);
  std::vector<std::int64_t> counts(4, 0);
  constexpr int kSamples = 90000;
  for (int i = 0; i < kSamples; ++i) {
    const double q = rng::uniform_real(eng);
    ++counts[policy.pick_quantiles(v, &q)];
  }
  EXPECT_EQ(counts[3], 0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kSamples, 1.0 / 3.0, 0.01);
  }
}

TEST(RemovalPolicies, MaxOfDPrefersFullBins) {
  // With d quantiles the chosen index is the minimum, i.e. the fullest
  // sampled bin: P(index 0) = 1 - (1 - 1/s)^d.
  const LoadVector v = LoadVector::from_loads({6, 3, 1, 0});
  MaxOfDNonEmptyRemoval<3> policy;
  rng::Xoshiro256PlusPlus eng(3);
  std::int64_t zero_picks = 0;
  constexpr int kSamples = 90000;
  for (int i = 0; i < kSamples; ++i) {
    double q[3] = {rng::uniform_real(eng), rng::uniform_real(eng),
                   rng::uniform_real(eng)};
    if (policy.pick_quantiles(v, q) == 0) ++zero_picks;
  }
  const double expected = 1.0 - std::pow(2.0 / 3.0, 3);
  EXPECT_NEAR(static_cast<double>(zero_picks) / kSamples, expected, 0.01);
}

TEST(RemovalPolicies, HeaviestAlwaysPicksIndexZero) {
  const LoadVector v = LoadVector::from_loads({6, 3, 1, 0});
  HeaviestBinRemoval policy;
  EXPECT_EQ(policy.pick_quantiles(v, nullptr), 0u);
}

TEST(GeneralChain, ReducesToScenarioAInLaw) {
  // GeneralChain<BallWeightedRemoval> must match ScenarioAChain's law.
  const std::size_t n = 5;
  const std::int64_t m = 10;
  const LoadVector start = LoadVector::piled(n, m, 2);
  rng::Xoshiro256PlusPlus eng(5);
  stats::IntHistogram general, reference;
  constexpr int kTrials = 15000;
  constexpr int kSteps = 4;
  for (int rep = 0; rep < kTrials; ++rep) {
    GeneralChain<BallWeightedRemoval, AbkuRule> g(start, BallWeightedRemoval{},
                                                  AbkuRule(2));
    for (int t = 0; t < kSteps; ++t) g.step(eng);
    general.add(g.state().max_load() * 10 +
                static_cast<std::int64_t>(g.state().nonempty_count()));
    ScenarioAChain<AbkuRule> a(start, AbkuRule(2));
    for (int t = 0; t < kSteps; ++t) a.step(eng);
    reference.add(a.state().max_load() * 10 +
                  static_cast<std::int64_t>(a.state().nonempty_count()));
  }
  EXPECT_LT(stats::tv_distance(general, reference), 0.03);
}

TEST(GeneralChain, AllPoliciesConserveBalls) {
  const std::size_t n = 8;
  const std::int64_t m = 24;
  rng::Xoshiro256PlusPlus eng(6);
  const LoadVector start = LoadVector::all_in_one(n, m);
  GeneralChain<MaxOfDNonEmptyRemoval<2>, AbkuRule> g1(
      start, MaxOfDNonEmptyRemoval<2>{}, AbkuRule(2));
  GeneralChain<HeaviestBinRemoval, AbkuRule> g2(start, HeaviestBinRemoval{},
                                                AbkuRule(2));
  for (int t = 0; t < 3000; ++t) {
    g1.step(eng);
    g2.step(eng);
  }
  EXPECT_EQ(g1.balls(), m);
  EXPECT_EQ(g2.balls(), m);
  EXPECT_TRUE(g1.state().invariants_hold());
  EXPECT_TRUE(g2.state().invariants_hold());
}

TEST(GeneralChain, HeaviestRemovalFlattensCrashFast) {
  // Greedy repair drains the crashed bin once per step: the max load
  // falls from m to ~m/k within ~m steps — much faster than scenario B.
  const std::size_t n = 16;
  const std::int64_t m = 64;
  rng::Xoshiro256PlusPlus eng(7);
  GeneralChain<HeaviestBinRemoval, AbkuRule> g(LoadVector::all_in_one(n, m),
                                               HeaviestBinRemoval{},
                                               AbkuRule(2));
  for (std::int64_t t = 0; t < 3 * m; ++t) g.step(eng);
  EXPECT_LE(g.state().max_load(), 8);
}

TEST(GeneralGrandCoupling, EqualCopiesStayEqualForEveryPolicy) {
  const LoadVector v = LoadVector::piled(6, 12, 2);
  rng::Xoshiro256PlusPlus eng(8);
  GeneralGrandCoupling<MaxOfDNonEmptyRemoval<2>, AbkuRule> c(
      v, v, MaxOfDNonEmptyRemoval<2>{}, AbkuRule(2));
  for (int t = 0; t < 2000; ++t) {
    c.step(eng);
    ASSERT_TRUE(c.coalesced());
  }
}

TEST(GeneralGrandCoupling, MatchesGrandCouplingBInLaw) {
  // The quantile construction for NonEmptyUniformRemoval is exactly the
  // GrandCouplingB removal; coalescence time distributions must agree.
  core::CoalescenceOptions opts;
  opts.replicas = 24;
  opts.seed = 99;
  opts.max_steps = 500000;
  opts.parallel = false;
  const auto general = core::measure_coalescence(
      [&](std::uint64_t) {
        return GeneralGrandCoupling<NonEmptyUniformRemoval, AbkuRule>(
            LoadVector::all_in_one(8, 16), LoadVector::balanced(8, 16),
            NonEmptyUniformRemoval{}, AbkuRule(2));
      },
      opts);
  EXPECT_EQ(general.censored, 0);
  EXPECT_GT(general.steps.mean(), 0.0);
}

TEST(GeneralGrandCoupling, ActiveRemovalCoalescesFasterThanScenarioB) {
  core::CoalescenceOptions opts;
  opts.replicas = 16;
  opts.seed = 31;
  opts.max_steps = 1'000'000;
  opts.parallel = false;
  const std::size_t n = 12;
  const std::int64_t m = 24;
  const auto passive = core::measure_coalescence(
      [&](std::uint64_t) {
        return GeneralGrandCoupling<NonEmptyUniformRemoval, AbkuRule>(
            LoadVector::all_in_one(n, m), LoadVector::balanced(n, m),
            NonEmptyUniformRemoval{}, AbkuRule(2));
      },
      opts);
  const auto active = core::measure_coalescence(
      [&](std::uint64_t) {
        return GeneralGrandCoupling<MaxOfDNonEmptyRemoval<2>, AbkuRule>(
            LoadVector::all_in_one(n, m), LoadVector::balanced(n, m),
            MaxOfDNonEmptyRemoval<2>{}, AbkuRule(2));
      },
      opts);
  ASSERT_EQ(passive.censored, 0);
  ASSERT_EQ(active.censored, 0);
  EXPECT_LT(active.steps.mean(), passive.steps.mean());
}

}  // namespace
}  // namespace recover::balls
