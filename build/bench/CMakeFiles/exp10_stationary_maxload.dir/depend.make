# Empty dependencies file for exp10_stationary_maxload.
# This may be replaced when dependencies are built.
