// Method handlers for the recover::serve service: the pure
// request-to-result layer, independent of sockets and threads so the
// loopback tests can drive it directly.
//
// Methods (docs/SERVING.md):
//   ping       → {"pong":true}
//   list_cells → every registered sweep experiment with its columns
//   run_cell   → one sweep-registry cell, seeded via rng::substream so
//                the reply is byte-deterministic per request
//   stats      → server snapshot (queue depth, shed count, …)
//
// `shutdown` is intercepted by the server itself (it must trigger the
// drain), not dispatched here.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/serve/protocol.hpp"
#include "src/sweep/grid.hpp"
#include "src/sweep/registry.hpp"

namespace recover::serve {

/// Protocol-visible build tag reported by `stats` (bump when the wire
/// surface changes in a way operators should be able to see remotely).
inline constexpr const char* kServeVersion = "recover-serve/1.1";

/// Point-in-time server counters, embedded in `stats` replies.  All
/// fields are maintained unconditionally (plain atomics on the server),
/// so `stats` works whether or not --metrics is on.
///
/// The `window_*` fields describe the rolling window (last ~10 s by
/// default — see ServerOptions::window_slots × window_tick_ms), not the
/// process lifetime.  They come from ops::Windowed* sources; the
/// latency quantiles are only populated when metrics are enabled (the
/// daemon enables them whenever --admin-port is given), the
/// count-derived fields (qps, shed) always work.
struct ServerSnapshot {
  std::uint64_t connections_total = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t deadline_exceeded_total = 0;
  std::uint64_t protocol_errors_total = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t in_flight = 0;
  bool draining = false;
  std::uint64_t uptime_ms = 0;
  std::uint64_t window_span_ms = 0;
  std::uint64_t window_requests = 0;
  std::uint64_t window_shed = 0;
  double window_qps = 0.0;
  double window_p50_us = 0.0;
  double window_p95_us = 0.0;
  double window_p99_us = 0.0;
};

struct HandlerContext {
  /// Deadline check forwarded into cell bodies (empty = no deadline).
  std::function<bool()> cancelled;
  /// Absolute steady-clock deadline in ns (0 = none).  Redundant with
  /// `cancelled` for cell bodies; a forwarding dispatcher (the cluster
  /// router) reads it to compute the remaining budget for the next hop.
  std::uint64_t deadline_ns = 0;
  /// Provider of the `stats` snapshot; empty = zeros (unit tests).
  std::function<ServerSnapshot()> snapshot;
  /// True: run_cell bodies parallelize replicas on the shared ThreadPool
  /// (byte-identical results for any pool size — the pool contract).
  bool cells_parallel = true;
  /// Request id assigned by the server ("c<conn>-<seq>"; empty in unit
  /// tests).  Forwarded into CellContext and the access log; never an
  /// input to any result.
  std::string req_id;
};

struct HandlerResult {
  bool ok = false;
  std::string result_json;  // compact JSON value when ok
  ErrorCode code = ErrorCode::kUnknownMethod;
  std::string message;
  /// run_cell only: the cell's canonical key (for the access log's
  /// `cell` field); empty for other methods and pre-validation errors.
  std::string cell_key;
};

/// Executes `req.method`.  Never throws; anything unusable comes back as
/// a typed error.  A run that was cancelled mid-cell reports
/// deadline_exceeded (its truncated values are never sent).
HandlerResult dispatch(const Request& req, const HandlerContext& ctx);

/// Request dispatch hook: ServerOptions::dispatcher lets another front
/// end (the cluster router, src/cluster/) reuse the whole serve stack —
/// sockets, admission, deadlines, drain — while swapping the
/// request-to-result layer.  Empty = serve::dispatch above.
using Dispatcher =
    std::function<HandlerResult(const Request&, const HandlerContext&)>;

/// A validated run_cell request: the registry entry plus the cell and
/// seed exactly as the local handler would execute them.  The cell's
/// params keep request order — the canonical key (and thus the RNG
/// substream and the result bytes) depend on it, so two requests that
/// list the same axes in different order are different cells by design.
struct RunCellRequest {
  const sweep::Experiment* exp = nullptr;
  sweep::Cell cell;
  std::uint64_t seed = 1;
};

/// Validates `params` of a run_cell request (shared by the local
/// handler and the cluster router, so both reject — and accept — byte
/// for byte the same inputs).  On failure returns false and fills
/// `error` with the invalid_params message.
bool parse_run_cell(const obs::JsonValue& params, RunCellRequest& out,
                    std::string& error);

}  // namespace recover::serve
