#include "src/util/table.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/util/assert.hpp"

namespace recover::util {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RL_REQUIRE(!header_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  RL_REQUIRE(!rows_.empty());
  RL_REQUIRE(rows_.back().size() < header_.size());
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::num(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::integer(std::int64_t value) {
  return add(std::to_string(value));
}

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  RL_REQUIRE(r < rows_.size());
  RL_REQUIRE(c < rows_[r].size());
  return rows_[r][c];
}

const std::string& Table::header(std::size_t c) const {
  RL_REQUIRE(c < header_.size());
  return header_[c];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (r[c].size() > width[c]) width[c] = r[c].size();
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << s;
      if (c + 1 < header_.size()) {
        os << std::string(width[c] - s.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace recover::util
