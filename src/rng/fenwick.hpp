// Fenwick (binary indexed) tree over non-negative integer weights with
// O(log n) point update, prefix sum, and weighted sampling by prefix
// search.
//
// The scenario-A removal distribution 𝒜(v) (Definition 3.2: pick bin i
// with probability v_i / m) is sampled by drawing u uniform in [0, m) and
// locating the first prefix exceeding u.  The tree indexes the *sorted*
// load vector; ⊕/⊖ touch one position, so updates stay O(log n).
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/assert.hpp"

namespace recover::rng {

class Fenwick {
 public:
  Fenwick() = default;
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  /// Builds in O(n) from initial weights.
  explicit Fenwick(const std::vector<std::int64_t>& weights);

  [[nodiscard]] std::size_t size() const { return tree_.size() - 1; }

  /// Adds `delta` to position `i` (0-based).
  void add(std::size_t i, std::int64_t delta);

  /// Sum of weights in [0, i) (0-based, half-open).
  [[nodiscard]] std::int64_t prefix(std::size_t i) const;

  /// Total weight.
  [[nodiscard]] std::int64_t total() const { return prefix(size()); }

  /// Weight at position i.
  [[nodiscard]] std::int64_t at(std::size_t i) const;

  /// Smallest index i such that prefix(i+1) > target, i.e. the position
  /// selected by a weighted draw with value `target` in [0, total()).
  /// Requires all weights non-negative.
  [[nodiscard]] std::size_t find(std::int64_t target) const;

 private:
  std::vector<std::int64_t> tree_;  // 1-based internally
};

}  // namespace recover::rng
