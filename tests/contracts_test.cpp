// Contract checks: the RL_REQUIRE preconditions that guard the public
// API must fire on misuse (silent acceptance of an invalid state would
// corrupt a simulation invisibly, which is far worse than an abort).
#include <gtest/gtest.h>

#include "src/balls/exact_chain.hpp"
#include "src/balls/load_vector.hpp"
#include "src/core/exact_mixing.hpp"
#include "src/orient/coupling.hpp"
#include "src/orient/state.hpp"
#include "src/rng/alias.hpp"
#include "src/stats/bootstrap.hpp"
#include "src/stats/regression.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace recover {
namespace {

using balls::LoadVector;

TEST(Contracts, LoadVectorRejectsNegativeLoads) {
  EXPECT_DEATH(LoadVector::from_loads({3, -1, 2}), "");
}

TEST(Contracts, LoadVectorRejectsRemovalFromEmptyBin) {
  LoadVector v = LoadVector::from_loads({2, 0});
  EXPECT_DEATH(v.remove_at(1), "");
}

TEST(Contracts, LoadVectorDistanceRequiresMatchingShape) {
  const LoadVector a = LoadVector::from_loads({2, 1});
  const LoadVector b = LoadVector::from_loads({2, 1, 0});
  EXPECT_DEATH((void)a.distance(b), "");
  const LoadVector c = LoadVector::from_loads({2, 2});
  EXPECT_DEATH((void)a.distance(c), "");  // ball counts differ
}

TEST(Contracts, PiledRequiresValidBinCount) {
  EXPECT_DEATH(LoadVector::piled(4, 8, 0), "");
  EXPECT_DEATH(LoadVector::piled(4, 8, 5), "");
}

TEST(Contracts, TableRejectsOverfullRows) {
  util::Table t({"a", "b"});
  t.row().add("x").add("y");
  EXPECT_DEATH(t.add("z"), "");
}

TEST(Contracts, TableRejectsCellsBeforeFirstRow) {
  util::Table t({"a"});
  EXPECT_DEATH(t.add("x"), "");
}

TEST(Contracts, AliasTableRejectsInvalidWeights) {
  EXPECT_DEATH(rng::AliasTable({}), "");
  EXPECT_DEATH(rng::AliasTable({1.0, -0.5}), "");
  EXPECT_DEATH(rng::AliasTable({0.0, 0.0}), "");
}

TEST(Contracts, SparseChainValidatesRowSums) {
  core::SparseChain chain(2);
  chain.add_transition(0, 1, 0.4);  // row 0 sums to 0.4 != 1
  chain.add_transition(1, 1, 1.0);
  EXPECT_DEATH(chain.finalize(), "");
}

TEST(Contracts, SparseChainRejectsOutOfRangeStates) {
  core::SparseChain chain(2);
  EXPECT_DEATH(chain.add_transition(0, 5, 1.0), "");
  EXPECT_DEATH(chain.add_transition(5, 0, 1.0), "");
}

TEST(Contracts, DiffStateRejectsNonZeroSum) {
  EXPECT_DEATH(orient::DiffState::from_diffs({1, 0}), "");
}

TEST(Contracts, ApplyEdgeValidatesRankOrder) {
  orient::DiffState s(4);
  EXPECT_DEATH(s.apply_edge(2, 2), "");
  EXPECT_DEATH(s.apply_edge(3, 1), "");
  EXPECT_DEATH(s.apply_edge(0, 4), "");
}

TEST(Contracts, CountStateTransitionsNeedRoomAndMass) {
  // i at the bottom boundary has no level below to move to.
  auto x = orient::CountState::from_counts({0, 2, 0});
  EXPECT_DEATH(x.apply_transition(2, 2), "");
  // Empty level cannot lose a vertex.
  EXPECT_DEATH(x.apply_transition(0, 1), "");
  // i == j needs two vertices on the level.
  auto y = orient::CountState::from_counts({0, 1, 1});
  EXPECT_DEATH(y.apply_transition(1, 1), "");
}

TEST(Contracts, PartitionSpaceRejectsForeignVectors) {
  const balls::PartitionSpace space(3, 4);
  EXPECT_DEATH((void)space.index_of(LoadVector::from_loads({5, 0, 0})), "");
}

TEST(Contracts, BootstrapRejectsEmptySample) {
  EXPECT_DEATH(stats::bootstrap_mean({}), "");
}

TEST(Contracts, RegressionNeedsTwoDistinctPoints) {
  EXPECT_DEATH(stats::linear_fit({1.0}, {2.0}), "");
  EXPECT_DEATH(stats::linear_fit({1.0, 1.0}, {2.0, 3.0}), "");
  EXPECT_DEATH(stats::loglog_fit({1.0, -2.0}, {1.0, 1.0}), "");
}

TEST(Contracts, CliRejectsDuplicateFlagRegistration) {
  util::Cli cli("prog", "test");
  cli.flag("n", "bins", "1");
  EXPECT_DEATH(cli.flag("n", "again", "2"), "");
}

TEST(Contracts, CliExitsOnUnknownFlag) {
  util::Cli cli("prog", "test");
  cli.flag("n", "bins", "1");
  const char* argv[] = {"prog", "--bogus=3"};
  EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(2), "");
}

TEST(Contracts, CliHelpExitsCleanly) {
  util::Cli cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace recover
