# Empty dependencies file for exact_orientation_test.
# This may be replaced when dependencies are built.
