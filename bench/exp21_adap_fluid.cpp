// Experiment E21 — the Mitzenmacher combination for the ADAPTIVE rule:
// the paper's framework applies to ADAP(x) (Lemma 3.4), and its partner
// framework (fluid limits) extends to adaptive probing via the probe-
// process DP (`fluid::adap_insertion_law`).  The table compares, per
// threshold schedule: simulated stationary max load and tail vs the
// fluid fixed point, plus the average probes per placement the schedule
// pays — the load/cost trade-off adaptive schemes are designed around.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/scenario_a.hpp"
#include "src/fluid/fluid_limit.hpp"
#include "src/kernel/kernel.hpp"
#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp21_adap_fluid",
                "E21: ADAP(x) fluid fixed point vs simulation");
  cli.flag("n", "bins = balls", "2048");
  cli.flag("seed", "rng seed", "21");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto n = static_cast<std::size_t>(cli.integer("n"));
  const auto m = static_cast<std::int64_t>(n);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const double nd = static_cast<double>(n);

  struct Named {
    const char* name;
    std::vector<int> x;
  };
  const std::vector<Named> schedules = {
      {"x=(1)  single choice", {1}},
      {"x=(2)  ABKU[2]", {2}},
      {"x=(1,2,3,4) gentle ramp", {1, 2, 3, 4}},
      {"x=(1,4) impatient-then-picky", {1, 4}},
      {"x=(3)  ABKU[3]", {3}},
  };

  util::Table table({"schedule", "sim E[maxload]", "fluid maxload",
                     "sim s_2", "fluid s_2", "sim s_3", "fluid s_3",
                     "avg probes"});

  for (const auto& sched : schedules) {
    rng::Xoshiro256PlusPlus eng(rng::derive_stream_seed(
        seed, static_cast<std::uint64_t>(sched.x.size()) * 31 +
                  static_cast<std::uint64_t>(sched.x[0])));
    balls::ScenarioAChain<balls::AdapRule> chain(
        balls::LoadVector::balanced(n, m),
        balls::AdapRule{balls::ThresholdSchedule(sched.x)});
    kernel::advance(chain, eng, 40 * m);
    stats::IntHistogram maxload;
    std::vector<double> tails(6, 0.0);
    std::int64_t probes = 0;
    constexpr int kSamples = 200;
    for (int s = 0; s < kSamples; ++s) {
      kernel::advance(chain, eng, m / 4);
      maxload.add(chain.state().max_load());
      const auto frac = fluid::tail_fractions(chain.state().loads(), 6);
      for (std::size_t i = 0; i < 6; ++i) tails[i] += frac[i];
      // Probe cost on the current state.
      std::int64_t count = 0;
      auto counting_probe = [&](std::size_t) {
        ++count;
        return static_cast<std::size_t>(rng::uniform_below(eng, n));
      };
      (void)chain.rule().place_index(chain.state(), counting_probe);
      probes += count;
    }
    for (double& v : tails) v /= kSamples;

    fluid::FluidModel model(fluid::Scenario::kA,
                            fluid::adap_insertion_law(sched.x), 1.0, 24);
    const auto fixed = model.fixed_point();
    table.row()
        .add(sched.name)
        .num(maxload.mean(), 2)
        .integer(fluid::FluidModel::predicted_max_load(fixed, nd))
        .num(tails[1], 4)
        .num(fixed[1], 4)
        .num(tails[2], 4)
        .num(fixed[2], 4)
        .num(static_cast<double>(probes) / kSamples, 2);
  }
  table.print(std::cout);
  run.add_table("adap_fluid", table);
  std::printf(
      "\n# The adaptive fluid DP tracks the simulated tails for every "
      "schedule; gentler ramps buy lower max load for more probes - the "
      "trade-off ADAP(x) parameterizes, with the recovery time invariant "
      "throughout (exp08).\n");
  return 0;
}
