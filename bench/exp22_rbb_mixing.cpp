// Experiment E22 — Cancrini–Posta, "Mixing time for the Repeated
// Balls-into-Bins dynamics": for m = O(n) balls the RBB chain mixes in
// O(n log n) rounds.
//
// We measure the coalescence time of the RBB grand coupling started from
// the extremal pair (all-in-one-bin vs balanced) for a sweep of n with
// m = density·n.  Reproduction criterion: the ratio T / (n ln n) is flat
// in n (constant within noise) and the fitted log-log slope of T vs n is
// ≈ 1 (the ln factor biases it slightly above 1).  The committed
// BENCH_rbb.json baseline is a seeded run of this binary, gated by
// scripts/check_bench_json.py --rbb.
//
// The per-point body is the registered "exp22" SweepCell (src/sweep/),
// shared with bench/sweep_runner: the same grid and --seed produce the
// same numbers here, under the sweep engine, and from checkpoint resume.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/regression.hpp"
#include "src/sweep/registry.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp22_rbb_mixing",
                "E22/Cancrini-Posta: RBB coalescence vs n ln n");
  cli.flag("sizes", "comma-separated n sweep (m = density*n)", "16,32,64,128");
  cli.flag("ds", "comma-separated re-placement d values (1 = classical RBB)",
           "1,2");
  cli.flag("density", "balls per bin m/n", "2");
  cli.flag("replicas", "coupling replicas per point", "12");
  cli.flag("seed", "rng seed", "22");
  cli.flag("csv", "emit CSV instead of a table", "false");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto density = cli.integer("density");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  // Same axis order as the sweep_runner default grid, so cell indices
  // (hence per-cell substream seeds) line up with a sweep over this grid.
  sweep::GridSpec grid;
  grid.add_axis("d", cli.int_list("ds"));
  grid.add_axis("n", cli.int_list("sizes"));
  grid.add_axis("density", {density});
  grid.add_axis("replicas", {cli.integer("replicas")});
  const auto* exp = sweep::Registry::global().find("exp22");

  util::Table table({"d", "n", "m", "T_mean", "T_ci95", "T_q95", "n*ln(n)",
                     "ratio", "censored", "secs"});
  std::map<std::int64_t, std::pair<std::vector<double>, std::vector<double>>>
      fits;  // d -> (n, T_mean)

  for (std::uint64_t index = 0; index < grid.cells(); ++index) {
    const auto cell = grid.cell(index);
    const std::int64_t n = cell.at("n");
    const std::int64_t d = cell.at("d");
    util::Timer timer;
    sweep::CellContext ctx;
    ctx.seed = rng::substream(seed, index);
    ctx.parallel_within_cell = true;  // one cell at a time owns the pool
    const auto result = exp->run(cell, ctx);
    const double nlnn =
        static_cast<double>(n) * std::log(static_cast<double>(n));
    table.row()
        .integer(d)
        .integer(n)
        .integer(density * n)
        .num(result.at("T_mean"), 1)
        .num(result.at("T_ci95"), 1)
        .num(result.at("T_q95"), 1)
        .num(nlnn, 1)
        .num(result.at("ratio_nlnn"), 3)
        .integer(static_cast<std::int64_t>(result.at("censored")))
        .num(timer.seconds(), 2);
    if (result.at("censored") == 0.0) {
      fits[d].first.push_back(static_cast<double>(n));
      fits[d].second.push_back(result.at("T_mean"));
    }
  }

  for (const auto& [d, xy] : fits) {
    if (xy.first.size() < 3) continue;
    const auto fit = stats::loglog_fit(xy.first, xy.second);
    std::printf("# d=%lld  log-log slope of T vs n: %.3f (R^2 %.4f)\n",
                static_cast<long long>(d), fit.slope, fit.r_squared);
    run.note("loglog_slope_d" + std::to_string(d), fit.slope);
    run.note("loglog_r2_d" + std::to_string(d), fit.r_squared);
  }

  if (cli.boolean("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  run.add_table("mixing_scaling", table);
  return 0;
}
