#include "src/ops/access_log.hpp"

#include <cerrno>
#include <cstring>

#include "src/obs/json_writer.hpp"  // json_escape
#include "src/obs/trace_buffer.hpp" // trace::set_thread_name

namespace recover::ops {

namespace {

void append_string_field(std::string& out, std::string_view key,
                         std::string_view value) {
  out += '"';
  out += key;
  out += "\":\"";
  if (value.size() > AccessLog::kMaxFieldBytes) {
    value = value.substr(0, AccessLog::kMaxFieldBytes);
  }
  out += obs::json_escape(value);
  out += '"';
}

void append_uint_field(std::string& out, std::string_view key,
                       std::uint64_t value) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

std::string AccessLog::format_line(const AccessEntry& entry) {
  std::string out;
  out.reserve(192);
  out += "{\"schema\":\"recover.access/1\",";
  append_string_field(out, "req_id", entry.req_id);
  out += ',';
  append_string_field(out, "method", entry.method);
  out += ',';
  append_string_field(out, "cell", entry.cell);
  out += ',';
  append_string_field(out, "status", entry.status);
  out += ',';
  append_string_field(out, "deadline", entry.deadline);
  out += ',';
  append_uint_field(out, "queue_ns", entry.queue_ns);
  out += ',';
  append_uint_field(out, "run_ns", entry.run_ns);
  out += '}';
  return out;
}

bool AccessLog::open(const std::string& path) {
  if (file_ != nullptr) return true;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "ops.access_log: open %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  file_ = f;
  closing_ = false;
  writer_ = std::thread([this] {
    obs::trace::set_thread_name("ops.access_log");
    writer_loop();
  });
  return true;
}

void AccessLog::log(const AccessEntry& entry) {
  if (file_ == nullptr) return;
  std::string line = format_line(entry);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closing_) return;
    if (queue_.size() >= kQueueCapacity) {
      queue_.pop_front();  // drop-oldest: the log degrades, serving does not
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    queue_.push_back(std::move(line));
  }
  cv_.notify_one();
}

void AccessLog::writer_loop() {
  for (;;) {
    std::deque<std::string> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return closing_ || !queue_.empty(); });
      if (queue_.empty() && closing_) return;
      batch.swap(queue_);
    }
    for (const std::string& line : batch) {
      std::fwrite(line.data(), 1, line.size(), file_);
      std::fputc('\n', file_);
      written_.fetch_add(1, std::memory_order_relaxed);
    }
    std::fflush(file_);
  }
}

void AccessLog::close() {
  if (file_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
  }
  cv_.notify_one();
  if (writer_.joinable()) writer_.join();
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace recover::ops
