#include "src/fluid/fluid_limit.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assert.hpp"

namespace recover::fluid {

InsertionLaw abku_insertion_law(int d) {
  RL_REQUIRE(d >= 1);
  return [d](const std::vector<double>& s) {
    const std::size_t levels = s.size();
    std::vector<double> p(levels + 1, 0.0);
    auto tail = [&](std::size_t i) -> double {
      if (i == 0) return 1.0;
      if (i > levels) return 0.0;
      return std::clamp(s[i - 1], 0.0, 1.0);
    };
    for (std::size_t l = 0; l <= levels; ++l) {
      // Land in a load-ℓ bin ⇔ the minimum of d uniform bins has load ℓ.
      p[l] = std::pow(tail(l), d) - std::pow(tail(l + 1), d);
    }
    return p;
  };
}

InsertionLaw adap_insertion_law(std::vector<int> thresholds) {
  RL_REQUIRE(!thresholds.empty());
  RL_REQUIRE(thresholds.front() >= 1);
  for (std::size_t i = 1; i < thresholds.size(); ++i) {
    RL_REQUIRE(thresholds[i] >= thresholds[i - 1]);
  }
  return [x = std::move(thresholds)](const std::vector<double>& s) {
    const std::size_t levels = s.size();
    auto tail = [&](std::size_t i) -> double {
      if (i == 0) return 1.0;
      if (i > levels) return 0.0;
      return std::clamp(s[i - 1], 0.0, 1.0);
    };
    auto threshold = [&](std::size_t load) {
      return load < x.size() ? x[load] : x.back();
    };
    // DP over probe rounds on the current minimum load b (Mitzenmacher's
    // fluid view of the adaptive probe process): after one probe the
    // minimum is ℓ with probability q_ℓ = s_ℓ − s_{ℓ+1}; a further probe
    // keeps the minimum at b with probability 1 − s_... (sample ≥ b has
    // probability tail(b); any sample < b lowers the minimum).
    std::vector<double> placed(levels + 1, 0.0);
    std::vector<double> surviving(levels + 1, 0.0);
    for (std::size_t l = 0; l <= levels; ++l) {
      surviving[l] = tail(l) - tail(l + 1);
    }
    const int max_rounds = x.back();
    for (int t = 1; t <= max_rounds; ++t) {
      double alive = 0;
      for (std::size_t b = 0; b <= levels; ++b) {
        if (surviving[b] <= 0) continue;
        if (threshold(b) <= t) {
          placed[b] += surviving[b];
          surviving[b] = 0;
        } else {
          alive += surviving[b];
        }
      }
      if (alive <= 0) break;
      std::vector<double> next(levels + 1, 0.0);
      double above = 0;  // Σ_{b > b'} surviving[b]
      for (std::size_t b = levels + 1; b-- > 0;) {
        // min stays at b if the new sample has load ≥ b: prob tail(b);
        // min becomes b (from above) if the sample has load exactly b.
        next[b] = surviving[b] * tail(b) +
                  above * (tail(b) - tail(b + 1));
        above += surviving[b];
      }
      surviving = std::move(next);
    }
    return placed;
  };
}

FluidModel::FluidModel(Scenario scenario, int d, double load_ratio,
                       std::size_t max_level)
    : FluidModel(scenario, abku_insertion_law(d), load_ratio, max_level) {}

FluidModel::FluidModel(Scenario scenario, InsertionLaw insertion,
                       double load_ratio, std::size_t max_level)
    : scenario_(scenario),
      insertion_(std::move(insertion)),
      load_ratio_(load_ratio),
      max_level_(max_level) {
  RL_REQUIRE(load_ratio > 0);
  RL_REQUIRE(max_level >= 2);
}

void FluidModel::derivative(const std::vector<double>& s,
                            std::vector<double>& ds) const {
  RL_REQUIRE(s.size() == max_level_);
  ds.assign(max_level_, 0.0);
  auto tail = [&](std::size_t i) -> double {
    // i is a 1-based level; s[i-1] holds s_i.
    if (i == 0) return 1.0;
    if (i > max_level_) return 0.0;
    return std::clamp(s[i - 1], 0.0, 1.0);
  };
  const std::vector<double> place = insertion_(s);
  const double s1 = std::max(tail(1), 1e-300);
  for (std::size_t i = 1; i <= max_level_; ++i) {
    // s_i rises when a ball lands in a bin holding exactly i − 1 balls.
    const double insert = place[i - 1];
    double remove;
    if (scenario_ == Scenario::kA) {
      remove = (static_cast<double>(i) / load_ratio_) *
               (tail(i) - tail(i + 1));
    } else {
      remove = (tail(i) - tail(i + 1)) / s1;
    }
    ds[i - 1] = insert - remove;
  }
}

std::vector<double> FluidModel::balanced_profile() const {
  std::vector<double> s(max_level_, 0.0);
  double remaining = load_ratio_;
  for (std::size_t i = 0; i < max_level_; ++i) {
    s[i] = std::clamp(remaining, 0.0, 1.0);
    remaining -= s[i];
    if (remaining <= 0) break;
  }
  return s;
}

std::vector<double> FluidModel::evolve(std::vector<double> s, double time,
                                       double dt) const {
  OdeFn f = [this](double /*t*/, const std::vector<double>& y,
                   std::vector<double>& dy) { derivative(y, dy); };
  return rk4_integrate(f, std::move(s), 0.0, time, dt);
}

std::vector<double> FluidModel::fixed_point(double tol, double t_max) const {
  OdeFn f = [this](double /*t*/, const std::vector<double>& y,
                   std::vector<double>& dy) { derivative(y, dy); };
  return integrate_to_fixed_point(f, balanced_profile(), 0.05, tol, t_max);
}

std::int64_t FluidModel::predicted_max_load(const std::vector<double>& s,
                                            double n) {
  RL_REQUIRE(n >= 1);
  std::int64_t level = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] >= 1.0 / n) level = static_cast<std::int64_t>(i + 1);
  }
  return level;
}

std::vector<double> tail_fractions(const std::vector<std::int64_t>& loads,
                                   std::size_t max_level) {
  RL_REQUIRE(!loads.empty());
  std::vector<double> s(max_level, 0.0);
  for (const std::int64_t load : loads) {
    const auto top = static_cast<std::size_t>(
        std::min<std::int64_t>(load, static_cast<std::int64_t>(max_level)));
    for (std::size_t i = 1; i <= top; ++i) s[i - 1] += 1.0;
  }
  const auto n = static_cast<double>(loads.size());
  for (double& v : s) v /= n;
  return s;
}

}  // namespace recover::fluid
