// The lazy greedy edge-orientation Markov chain and its grand coupling.
//
// Theorem 2: τ(1/4) = O(n² ln² n); Corollary 6.4 gives the weaker
// O(n³ (ln n + ln ε⁻¹)); and τ = Ω(n²).  exp06 measures coalescence of
// the shared-randomness grand coupling below, whose picks (φ, ψ) and
// lazy bit are common to both copies — once equal, copies stay equal.
#pragma once

#include <utility>

#include "src/orient/state.hpp"

namespace recover::orient {

class GreedyOrientationChain {
 public:
  using State = DiffState;

  explicit GreedyOrientationChain(DiffState init) : state_(std::move(init)) {}

  [[nodiscard]] const DiffState& state() const { return state_; }
  void set_state(DiffState s) { state_ = std::move(s); }
  [[nodiscard]] std::size_t vertices() const { return state_.vertices(); }

  template <typename Engine>
  void step(Engine& eng) {
    state_.step(eng);
  }

 private:
  DiffState state_;
};

/// Shared-randomness coupling of two copies: identical rank pair and lazy
/// bit each step.  Ranks address sorted positions, so this is the natural
/// monotone coupling on normalized states.
class GrandCouplingOrient {
 public:
  GrandCouplingOrient(DiffState x, DiffState y)
      : x_(std::move(x)), y_(std::move(y)) {
    RL_REQUIRE(x_.vertices() == y_.vertices());
  }

  template <typename Engine>
  void step(Engine& eng) {
    const auto [phi, psi] = x_.pick_pair(eng);
    if (rng::coin(eng)) {
      x_.apply_edge(phi, psi);
      y_.apply_edge(phi, psi);
    }
  }

  [[nodiscard]] bool coalesced() const { return x_ == y_; }
  [[nodiscard]] std::int64_t distance() const { return x_.distance(y_); }
  [[nodiscard]] const DiffState& first() const { return x_; }
  [[nodiscard]] const DiffState& second() const { return y_; }

 private:
  DiffState x_;
  DiffState y_;
};

}  // namespace recover::orient
