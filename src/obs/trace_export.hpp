// Chrome trace-event JSON export of the TraceCollector's rings, loadable
// in Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// Emitted document (JSON Object Format, one event per line):
//
//   {
//     "traceEvents": [
//       {"ph":"M","pid":1,"tid":0,"name":"thread_name",
//        "args":{"name":"main"}},
//       {"ph":"B","pid":1,"tid":1,"ts":12.345,"name":"sweep.cell_ns",
//        "args":{"detail":"d=1,m=64,density=1,replicas=4"}},
//       {"ph":"E","pid":1,"tid":1,"ts":842.107,"name":"sweep.cell_ns"},
//       {"ph":"i","pid":1,"tid":1,"ts":400.0,"s":"t","name":"sweep.steal",
//        "args":{"victim":2,"count":3}},
//       {"ph":"C","pid":1,"tid":0,"ts":10.0,"name":"queue_depth",
//        "args":{"value":7}}
//     ],
//     "displayTimeUnit": "ms",
//     "otherData": {"schema":"recover.trace/1","recorded":N,"dropped":D}
//   }
//
// Timestamps are microseconds (Chrome's unit) relative to the moment
// tracing was enabled, with ns precision kept in the fraction.  Because
// rings drop their OLDEST events, a surviving kEnd may have lost its
// kBegin (and a span still open at export has no kEnd); the writer
// repairs both per thread — orphan ends are skipped, unclosed begins get
// a synthetic end at the thread's last timestamp — so the exported
// stream is always begin/end balanced (scripts/check_bench_json.py
// --trace verifies exactly that).
#pragma once

#include <iosfwd>
#include <string>

namespace recover::obs {

/// Writes the full trace document for TraceCollector::global().  Call
/// while producers are quiescent (the SPSC contract; obs::Run::finish
/// runs it after all parallel regions have drained).
void write_chrome_trace(std::ostream& os);

/// write_chrome_trace into `path`.  Returns false (with a message on
/// stderr) when the file cannot be written.
bool export_trace_file(const std::string& path);

}  // namespace recover::obs
