#include "src/serve/protocol.hpp"

#include <cmath>

#include "src/obs/json_writer.hpp"

namespace recover::serve {

namespace {

/// Re-renders a parsed id value as the JSON token echoed in replies.
/// Only numbers and strings are accepted as ids (see parse_request);
/// both round-trip deterministically: json_number is shortest
/// round-trip, json_escape is canonical.
std::string id_token_of(const obs::JsonValue& id) {
  if (id.is_string()) {
    return '"' + obs::json_escape(id.text) + '"';
  }
  return obs::json_number(id.number);
}

ParseOutcome fail(std::string message) {
  ParseOutcome out;
  out.ok = false;
  out.code = ErrorCode::kParseError;
  out.message = std::move(message);
  return out;
}

}  // namespace

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kUnknownMethod: return "unknown_method";
    case ErrorCode::kInvalidParams: return "invalid_params";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kShuttingDown: return "shutting_down";
  }
  return "parse_error";  // unreachable
}

ParseOutcome parse_request(const std::string& line, Request& out) {
  obs::JsonValue doc;
  if (!obs::parse_json(line, doc)) {
    return fail("request is not valid JSON");
  }
  if (!doc.is_object()) {
    return fail("request must be a JSON object");
  }
  // Recover the id first so even a malformed request gets a correlated
  // error reply.
  if (const auto* id = doc.find("id"); id != nullptr) {
    if (id->is_string() || id->is_number()) {
      out.id = id_token_of(*id);
    } else {
      return fail("id must be a number or a string");
    }
  } else {
    return fail("id is required");
  }
  const auto* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->text != kRequestSchema) {
    return fail("schema must be \"recover.req/1\"");
  }
  const auto* method = doc.find("method");
  if (method == nullptr || !method->is_string() || method->text.empty()) {
    return fail("method must be a non-empty string");
  }
  out.method = method->text;
  if (const auto* params = doc.find("params"); params != nullptr) {
    if (!params->is_object()) {
      return fail("params must be an object");
    }
    out.params = *params;
  } else {
    out.params.kind = obs::JsonValue::Kind::kObject;
  }
  if (const auto* deadline = doc.find("deadline_ms"); deadline != nullptr) {
    // The upper bound must be checked on the double, before the cast:
    // casting an out-of-range double to int64 is undefined behavior.
    if (!deadline->is_number() || deadline->number < 0 ||
        deadline->number != std::floor(deadline->number) ||
        deadline->number > static_cast<double>(kMaxDeadlineMs)) {
      return fail("deadline_ms must be an integer in [0, 86400000]");
    }
    out.deadline_ms = static_cast<std::int64_t>(deadline->number);
  }
  ParseOutcome ok;
  ok.ok = true;
  return ok;
}

std::string make_result(std::string_view id_token,
                        std::string_view result_json) {
  std::string out = "{\"schema\":\"";
  out += kResponseSchema;
  out += "\",\"id\":";
  out += id_token;
  out += ",\"ok\":true,\"result\":";
  out += result_json;
  out += '}';
  return out;
}

bool extract_result(const std::string& line, std::string& result_json) {
  // Format fixed by make_result: result is the last field, so the raw
  // value runs from the marker to the closing brace of the envelope.
  static constexpr std::string_view kPrefix = "{\"schema\":\"recover.resp/1\"";
  static constexpr std::string_view kMarker = ",\"ok\":true,\"result\":";
  if (line.rfind(kPrefix, 0) != 0 || line.empty() || line.back() != '}') {
    return false;
  }
  const std::size_t at = line.find(kMarker, kPrefix.size());
  if (at == std::string::npos) return false;
  const std::size_t begin = at + kMarker.size();
  if (begin >= line.size() - 1) return false;
  result_json.assign(line, begin, line.size() - 1 - begin);
  return true;
}

std::string make_error(std::string_view id_token, ErrorCode code,
                       std::string_view message) {
  std::string out = "{\"schema\":\"";
  out += kResponseSchema;
  out += "\",\"id\":";
  out += id_token;
  out += ",\"ok\":false,\"error\":{\"code\":\"";
  out += error_code_name(code);
  out += "\",\"message\":\"";
  out += obs::json_escape(message);
  out += "\"}}";
  return out;
}

void LineReader::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

LineReader::Next LineReader::next_line(std::string& out) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (discarding_) {
      if (newline == std::string::npos) {
        buffer_.clear();  // keep discarding; memory stays bounded
        return Next::kNeedMore;
      }
      buffer_.erase(0, newline + 1);
      discarding_ = false;
      oversize_reported_ = false;
      continue;
    }
    if (newline == std::string::npos) {
      if (buffer_.size() > max_line_bytes_) {
        discarding_ = true;
        buffer_.clear();
        if (!oversize_reported_) {
          oversize_reported_ = true;
          return Next::kOversized;
        }
        return Next::kNeedMore;
      }
      return Next::kNeedMore;
    }
    if (newline > max_line_bytes_) {
      buffer_.erase(0, newline + 1);
      return Next::kOversized;
    }
    out.assign(buffer_, 0, newline);
    buffer_.erase(0, newline + 1);
    if (!out.empty() && out.back() == '\r') out.pop_back();  // nc -C / CRLF
    if (out.empty()) continue;  // blank lines are keep-alive no-ops
    return Next::kLine;
  }
}

}  // namespace recover::serve
