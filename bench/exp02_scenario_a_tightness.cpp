// Experiment E2 — tightness of Theorem 1 (remark after the theorem).
//
// The upper bound τ(ε) ≤ m ln(m ε⁻¹) comes from E[Δ'] ≤ (1 − 1/m)Δ and
// the diameter D ≈ m.  Tightness means the contraction really is only
// (1 − Θ(1)/m) per step: starting the grand coupling at the extremal
// distance-≈m pair, the distance should decay like m e^{−t/m}, so
//   (a) the fitted exponential decay rate times m is ≈ a constant, and
//   (b) the time to reach distance 0 stays ≥ c · m ln m with c bounded
//       away from 0 as m grows.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/grand_coupling.hpp"
#include "src/core/coalescence.hpp"
#include "src/kernel/kernel.hpp"
#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/regression.hpp"
#include "src/stats/summary.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp02_scenario_a_tightness",
                "E2: distance decay rate and lower-bound constant");
  cli.flag("sizes", "comma-separated m = n sweep", "32,64,128,256,512");
  cli.flag("d", "ABKU choices", "2");
  cli.flag("replicas", "replicas per point", "16");
  cli.flag("seed", "rng seed", "2");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto d = static_cast<int>(cli.integer("d"));
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"n=m", "decay_rate*m", "fit_R2", "T_coal_q50",
                     "T/(m ln m)", "halflife*ln2/m"});

  for (const std::int64_t m : sizes) {
    const auto n = static_cast<std::size_t>(m);
    // Average the distance trajectory over replicas, then fit
    // log Δ(t) = log Δ(0) − rate · t on the decaying section.
    const std::int64_t horizon = static_cast<std::int64_t>(
        3.0 * static_cast<double>(m) * std::log(static_cast<double>(m)));
    const std::int64_t stride = std::max<std::int64_t>(1, horizon / 64);
    std::vector<double> mean_dist(
        static_cast<std::size_t>(horizon / stride), 0.0);
    stats::Summary coal;
    for (int r = 0; r < replicas; ++r) {
      rng::Xoshiro256PlusPlus eng(
          rng::derive_stream_seed(seed, static_cast<std::uint64_t>(r)));
      balls::GrandCouplingA<balls::AbkuRule> c(
          balls::LoadVector::all_in_one(n, m),
          balls::LoadVector::balanced(n, m), balls::AbkuRule(d));
      std::int64_t t = 0;
      std::int64_t met = -1;
      for (std::size_t s = 0; s < mean_dist.size(); ++s) {
        kernel::advance(c, eng, stride);
        t += stride;
        mean_dist[s] += static_cast<double>(c.distance());
        if (met < 0 && c.coalesced()) met = t;
      }
      while (met < 0 && t < 100 * horizon) {
        c.step(eng);
        ++t;
        if (c.coalesced()) met = t;
      }
      if (met > 0) coal.add(static_cast<double>(met));
    }
    std::vector<double> ts, logd;
    for (std::size_t s = 0; s < mean_dist.size(); ++s) {
      const double avg = mean_dist[s] / replicas;
      if (avg > 0.5) {
        ts.push_back(static_cast<double>((static_cast<std::int64_t>(s) + 1) *
                                         stride));
        logd.push_back(std::log(avg));
      }
    }
    double rate = 0, r2 = 0;
    if (ts.size() >= 3) {
      const auto fit = stats::linear_fit(ts, logd);
      rate = -fit.slope;
      r2 = fit.r_squared;
    }
    const double mlnm =
        static_cast<double>(m) * std::log(static_cast<double>(m));
    table.row()
        .integer(m)
        .num(rate * static_cast<double>(m), 3)
        .num(r2, 4)
        .num(coal.mean(), 1)
        .num(coal.mean() / mlnm, 3)
        .num(std::log(2.0) / (rate * static_cast<double>(m)), 3);
  }
  table.print(std::cout);
  run.add_table("distance_decay", table);
  std::printf(
      "\n# Tightness: decay_rate*m ~ const and T/(m ln m) bounded away "
      "from 0 => Theorem 1 is tight up to lower-order terms.\n");
  return 0;
}
