// Tests for the observability subsystem: JSON writer policy, histogram
// bucketing, registry semantics (merge across threads, disabled fast
// path), and run-record row typing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json_writer.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/run_record.hpp"
#include "src/util/table.hpp"

namespace {

using namespace recover;

// Metrics tests toggle the global enable flag; restore it afterwards so
// the rest of the suite (and other tests in this binary) see the
// default-disabled state.
class MetricsGuard {
 public:
  MetricsGuard() : was_(obs::metrics_enabled()) {}
  ~MetricsGuard() { obs::set_metrics_enabled(was_); }

 private:
  bool was_;
};

// ---- json_escape ------------------------------------------------------

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(obs::json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, ControlShortcuts) {
  EXPECT_EQ(obs::json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(obs::json_escape("\b\f"), "\\b\\f");
}

TEST(JsonEscape, OtherControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscape, NonAsciiPassesThrough) {
  // UTF-8 multi-byte sequences must survive byte-for-byte.
  const std::string utf8 = "\xcf\x84 = 42";  // "τ = 42"
  EXPECT_EQ(obs::json_escape(utf8), utf8);
}

// ---- json_number ------------------------------------------------------

TEST(JsonNumber, FiniteRoundTrips) {
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_EQ(obs::json_number(-3.0), "-3");
  EXPECT_EQ(std::stod(obs::json_number(1.0 / 3.0)), 1.0 / 3.0);
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(obs::json_number(-std::numeric_limits<double>::infinity()),
            "null");
}

// ---- JsonWriter -------------------------------------------------------

TEST(JsonWriter, WritesNestedDocument) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object()
      .key("name")
      .value("x")
      .key("vals")
      .begin_array()
      .value(std::int64_t{1})
      .value(2.5)
      .null()
      .end_array()
      .key("ok")
      .value(true)
      .end_object();
  EXPECT_TRUE(w.complete());
  const std::string text = os.str();
  EXPECT_NE(text.find("\"name\": \"x\""), std::string::npos);
  EXPECT_NE(text.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(text.find("null"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoubleValueIsNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object()
      .key("v")
      .value(std::numeric_limits<double>::quiet_NaN())
      .end_object();
  EXPECT_NE(os.str().find("\"v\": null"), std::string::npos);
}

// ---- Histogram bucketing ---------------------------------------------

TEST(Histogram, BucketIndexBoundaries) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_index(0), 0u);
  EXPECT_EQ(H::bucket_index(1), 1u);
  EXPECT_EQ(H::bucket_index(2), 2u);
  EXPECT_EQ(H::bucket_index(3), 2u);
  EXPECT_EQ(H::bucket_index(4), 3u);
  EXPECT_EQ(H::bucket_index(7), 3u);
  EXPECT_EQ(H::bucket_index(8), 4u);
  EXPECT_EQ(H::bucket_index((std::uint64_t{1} << 32) - 1), 32u);
  EXPECT_EQ(H::bucket_index(std::uint64_t{1} << 32), 33u);
  EXPECT_EQ(H::bucket_index(std::numeric_limits<std::uint64_t>::max()),
            64u);
}

TEST(Histogram, BucketUpperIsInclusiveBound) {
  using H = obs::Histogram;
  // bucket i holds values v with bucket_index(v) == i, whose maximum is
  // bucket_upper(i) = 2^i - 1.
  for (std::size_t i = 1; i < 20; ++i) {
    EXPECT_EQ(H::bucket_index(H::bucket_upper(i)), i);
    EXPECT_EQ(H::bucket_index(H::bucket_upper(i) + 1), i + 1);
  }
}

TEST(Histogram, RecordsCountSumAndBuckets) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram h("obs_test.hist");
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 11u);
  EXPECT_DOUBLE_EQ(snap.mean(), 11.0 / 4.0);
  EXPECT_EQ(snap.buckets[0], 1u);  // value 0
  EXPECT_EQ(snap.buckets[1], 1u);  // value 1
  EXPECT_EQ(snap.buckets[3], 2u);  // values 4..7
}

// ---- Counter / Registry ----------------------------------------------

TEST(Counter, DisabledAddsAreDropped) {
  MetricsGuard guard;
  obs::set_metrics_enabled(false);
  obs::Counter c("obs_test.disabled");
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  obs::set_metrics_enabled(true);
  c.add(3);
  EXPECT_EQ(c.value(), 3u);
}

TEST(Counter, MergesAcrossThreadsExactly) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Counter c("obs_test.merge");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Registry, GetOrCreateReturnsStableReferences) {
  auto& a = obs::Registry::global().counter("obs_test.stable");
  auto& b = obs::Registry::global().counter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  auto& g1 = obs::Registry::global().gauge("obs_test.gauge");
  auto& g2 = obs::Registry::global().gauge("obs_test.gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(Registry, SnapshotIsNameSorted) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Registry::global().counter("obs_test.zz").add();
  obs::Registry::global().counter("obs_test.aa").add();
  const auto snap = obs::Registry::global().snapshot();
  std::vector<std::string> names;
  for (const auto& [name, value] : snap.counters) names.push_back(name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Gauge, SetAndRead) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Gauge g("obs_test.local_gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

// ---- RunRecord --------------------------------------------------------

TEST(RunRecord, TypesCellsAndCountsRows) {
  util::Table table({"name", "count", "ratio"});
  table.row().add("alpha").integer(42).num(0.5, 3);
  table.row().add("nan-cell").add("nan").add("not a number");

  obs::RunRecord rec("unit_test", "run record unit test");
  rec.add_table("t", table);
  EXPECT_EQ(rec.total_rows(), 2u);

  std::ostringstream os;
  rec.write_json(os, 1.5, /*include_metrics=*/false);
  const std::string text = os.str();
  // Integer cell stays an integer, string cell stays quoted, NaN text
  // parses to null under the typed-cell policy.
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("\"alpha\""), std::string::npos);
  EXPECT_NE(text.find("null"), std::string::npos);
  EXPECT_NE(text.find("\"not a number\""), std::string::npos);
  EXPECT_NE(text.find("\"schema\": \"recover.run/1\""), std::string::npos);
}

TEST(RunRecord, EmitsFlagsAndNotes) {
  obs::RunRecord rec("unit_test", "desc");
  rec.set_flags({{"sizes", "32,64"}, {"seed", "1"}});
  rec.note("slope", 1.03);
  rec.note("comment", "ok");
  std::ostringstream os;
  rec.write_json(os, 0.0, /*include_metrics=*/false);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"sizes\": \"32,64\""), std::string::npos);
  EXPECT_NE(text.find("\"slope\": 1.03"), std::string::npos);
  EXPECT_NE(text.find("\"comment\": \"ok\""), std::string::npos);
}

TEST(RunRecord, JsonIsMachineParseable) {
  // Structural check without a JSON library: balanced braces/brackets
  // outside strings, and non-empty.
  util::Table table({"a"});
  table.row().integer(1);
  obs::RunRecord rec("unit_test", "balance check");
  rec.add_table("t", table);
  std::ostringstream os;
  rec.write_json(os, 0.25, /*include_metrics=*/true);
  const std::string text = os.str();
  ASSERT_FALSE(text.empty());
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (ch == '\\') escaped = true;
      if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace
