# Empty compiler generated dependencies file for exp20_worst_start.
# This may be replaced when dependencies are built.
