# Empty dependencies file for grand_coupling_test.
# This may be replaced when dependencies are built.
