#include "src/util/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/util/assert.hpp"

namespace recover::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Cli& Cli::flag(std::string name, std::string help, std::string default_value) {
  RL_REQUIRE(find(name) == nullptr);
  flags_.push_back({std::move(name), std::move(help),
                    std::move(default_value)});
  return *this;
}

const Cli::Flag* Cli::find(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Cli::Flag* Cli::find(const std::string& name) {
  return const_cast<Flag*>(static_cast<const Cli*>(this)->find(name));
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\nFlags:\n";
  for (const auto& f : flags_) {
    os << "  --" << f.name << "  " << f.help << " (default: " << f.value
       << ")\n";
  }
  return os.str();
}

std::vector<std::string> Cli::parse_impl(int argc, const char* const* argv,
                                         bool collect_unknown) {
  // Banner: experiment outputs are frequently concatenated (e.g.
  // `for b in build/bench/*; do $b; done | tee ...`), so each program
  // announces itself first.
  std::printf("## %s — %s\n", program_.c_str(), description_.c_str());
  std::vector<std::string> unknown;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      if (collect_unknown) {
        unknown.push_back(arg);
        continue;
      }
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                   arg.c_str(), usage().c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    Flag* f = find(name);
    if (f == nullptr) {
      if (collect_unknown) {
        // Forwarded parsers use the --name=value form; the token is
        // passed through untouched.
        unknown.push_back(argv[i]);
        continue;
      }
      std::fprintf(stderr, "unknown flag '--%s'\n%s", name.c_str(),
                   usage().c_str());
      std::exit(2);
    }
    if (!have_value) {
      // `--name value` form, unless the next token is another flag (then
      // the flag is treated as boolean `true`).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    f->value = value;
  }
  return unknown;
}

void Cli::parse(int argc, const char* const* argv) {
  (void)parse_impl(argc, argv, /*collect_unknown=*/false);
}

std::vector<std::string> Cli::parse_known(int argc, const char* const* argv) {
  return parse_impl(argc, argv, /*collect_unknown=*/true);
}

std::vector<std::pair<std::string, std::string>> Cli::entries() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(flags_.size());
  for (const auto& f : flags_) out.emplace_back(f.name, f.value);
  return out;
}

std::string Cli::str(const std::string& name) const {
  const Flag* f = find(name);
  RL_REQUIRE(f != nullptr);
  return f->value;
}

std::int64_t Cli::integer(const std::string& name) const {
  return std::stoll(str(name));
}

double Cli::real(const std::string& name) const { return std::stod(str(name)); }

bool Cli::boolean(const std::string& name) const {
  const std::string v = str(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::int64_t Cli::duration_ms(const std::string& name) const {
  std::int64_t out = 0;
  if (!parse_duration_ms(str(name), out)) {
    std::fprintf(stderr,
                 "bad duration '%s' for --%s (want e.g. 500ms, 2s, 1m)\n%s",
                 str(name).c_str(), name.c_str(), usage().c_str());
    std::exit(2);
  }
  return out;
}

bool parse_duration_ms(const std::string& text, std::int64_t& out) {
  if (text.empty()) return false;
  std::size_t suffix_start = text.size();
  double scale = 1.0;  // bare number = ms
  if (text.size() >= 2 && text.compare(text.size() - 2, 2, "ms") == 0) {
    suffix_start = text.size() - 2;
    scale = 1.0;
  } else if (text.back() == 's') {
    suffix_start = text.size() - 1;
    scale = 1000.0;
  } else if (text.back() == 'm') {
    suffix_start = text.size() - 1;
    scale = 60'000.0;
  }
  const std::string number = text.substr(0, suffix_start);
  if (number.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(number.c_str(), &end);
  if (errno != 0 || end != number.c_str() + number.size()) return false;
  if (value < 0.0 || !(value == value)) return false;  // negative or NaN
  const double ms = value * scale;
  if (ms > 9.2e18) return false;  // would overflow int64 ns-free math
  out = static_cast<std::int64_t>(ms + 0.5);
  return true;
}

std::vector<std::int64_t> Cli::int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  std::stringstream ss(str(name));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoll(item));
  }
  return out;
}

}  // namespace recover::util
