#include "src/core/exact_mixing.hpp"

#include <algorithm>
#include <cmath>

#include "src/stats/histogram.hpp"
#include "src/util/assert.hpp"

namespace recover::core {

void SparseChain::add_transition(std::size_t from, std::size_t to, double p) {
  RL_REQUIRE(from < rows_.size());
  RL_REQUIRE(to < rows_.size());
  RL_REQUIRE(p >= 0.0);
  RL_REQUIRE(!finalized_);
  if (p > 0.0) {
    rows_[from].emplace_back(static_cast<std::uint32_t>(to), p);
  }
}

void SparseChain::finalize() {
  RL_REQUIRE(!finalized_);
  for (auto& row : rows_) {
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<std::pair<std::uint32_t, double>> merged;
    merged.reserve(row.size());
    for (const auto& [j, p] : row) {
      if (!merged.empty() && merged.back().first == j) {
        merged.back().second += p;
      } else {
        merged.emplace_back(j, p);
      }
    }
    double sum = 0;
    for (const auto& [j, p] : merged) sum += p;
    RL_REQUIRE(std::abs(sum - 1.0) < 1e-9);
    row = std::move(merged);
  }
  finalized_ = true;
}

void SparseChain::evolve(std::vector<double>& dist) const {
  RL_REQUIRE(finalized_);
  RL_REQUIRE(dist.size() == rows_.size());
  std::vector<double> next(dist.size(), 0.0);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const double mass = dist[i];
    if (mass == 0.0) continue;
    for (const auto& [j, p] : rows_[i]) next[j] += mass * p;
  }
  dist = std::move(next);
}

std::vector<double> stationary_distribution(const SparseChain& chain,
                                            double tol,
                                            std::int64_t max_iters) {
  RL_REQUIRE(chain.states() > 0);
  std::vector<double> pi(chain.states(),
                         1.0 / static_cast<double>(chain.states()));
  for (std::int64_t it = 0; it < max_iters; ++it) {
    std::vector<double> prev = pi;
    chain.evolve(pi);
    if (stats::tv_distance(prev, pi) < tol) return pi;
  }
  RL_REQUIRE(false && "stationary distribution did not converge");
  return pi;
}

ExactMixingResult exact_mixing_time(const SparseChain& chain,
                                    const std::vector<double>& pi, double eps,
                                    std::int64_t max_t) {
  RL_REQUIRE(pi.size() == chain.states());
  RL_REQUIRE(eps > 0.0 && eps < 1.0);
  const std::size_t s = chain.states();
  // One distribution per start, evolved in lockstep.
  std::vector<std::vector<double>> dists(s);
  for (std::size_t x = 0; x < s; ++x) {
    dists[x].assign(s, 0.0);
    dists[x][x] = 1.0;
  }
  ExactMixingResult out;
  for (std::int64_t t = 1; t <= max_t; ++t) {
    double worst = 0;
    for (std::size_t x = 0; x < s; ++x) {
      chain.evolve(dists[x]);
      const double tv = stats::tv_distance(dists[x], pi);
      if (tv > worst) worst = tv;
    }
    out.worst_tv_by_t.push_back(worst);
    if (worst <= eps) {
      out.mixing_time = t;
      return out;
    }
  }
  return out;  // mixing_time = -1: not reached within max_t
}

std::vector<double> per_start_tv(const SparseChain& chain,
                                 const std::vector<double>& pi,
                                 std::int64_t t) {
  RL_REQUIRE(pi.size() == chain.states());
  RL_REQUIRE(t >= 1);
  const std::size_t s = chain.states();
  std::vector<double> tv(s, 0.0);
  for (std::size_t x = 0; x < s; ++x) {
    std::vector<double> dist(s, 0.0);
    dist[x] = 1.0;
    for (std::int64_t step = 0; step < t; ++step) chain.evolve(dist);
    tv[x] = stats::tv_distance(dist, pi);
  }
  return tv;
}

}  // namespace recover::core
