#!/usr/bin/env python3
"""Markdown link-and-anchor checker for the repository docs.

Validates every inline link in the given markdown files (default: the
top-level docs plus docs/*.md and bench/README.md):

  * relative file links must resolve to an existing file or directory
    (relative to the linking file, `/`-rooted links to the repo root);
  * `#anchor` fragments — bare or after a path — must match a heading
    in the target file, using GitHub's heading-to-slug rules
    (lowercase; strip everything but alphanumerics, spaces, hyphens and
    underscores; spaces to hyphens; duplicate slugs get -1, -2, ...);
  * http(s)/mailto links are skipped (no network in CI).

Code fences and inline code spans are excluded before link extraction,
so lambda captures in C++ snippets (`[&](const Cell& cell, ...)`) are
not misread as links.  Exits 1 on any dangling link or anchor.
"""

import argparse
import os
import re
import sys
import unicodedata

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DEFAULT_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "bench/README.md",
    "docs",  # expanded to docs/*.md
]

FENCE_RE = re.compile(r"^(```|~~~)")
INLINE_CODE_RE = re.compile(r"`[^`]*`")
# Inline links [text](target) — target up to the first unescaped ')';
# images ![alt](target) match too via the same pattern.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def strip_code(lines, inline=True):
    """Returns the lines with fenced blocks (and, by default, inline
    code spans) blanked out; line count preserved for error positions.
    Heading collection passes inline=False: GitHub keeps code-span text
    in anchor slugs (`obs/metrics.hpp` → obsmetricshpp)."""
    out = []
    in_fence = False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        if in_fence:
            out.append("")
        else:
            out.append(INLINE_CODE_RE.sub("", line) if inline else line)
    return out


def github_slug(heading, seen):
    """GitHub's anchor slug for a heading, deduplicated via `seen`."""
    # Drop markdown emphasis/code markers and links inside the heading.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", "_")
    text = unicodedata.normalize("NFKC", text).lower()
    text = "".join(
        c for c in text
        if c.isalnum() or c in (" ", "-", "_")
    )
    slug = text.replace(" ", "-")
    if slug in seen:
        n = seen[slug]
        seen[slug] = n + 1
        slug = f"{slug}-{n}"
    else:
        seen[slug] = 1
    return slug


def anchors_of(path, cache):
    """Set of valid heading anchors in a markdown file."""
    if path in cache:
        return cache[path]
    anchors = set()
    try:
        with open(path, encoding="utf-8") as f:
            lines = strip_code(f.read().splitlines(), inline=False)
    except OSError:
        cache[path] = anchors
        return anchors
    seen = {}
    for line in lines:
        m = HEADING_RE.match(line)
        if m:
            anchors.add(github_slug(m.group(2), seen))
    # Explicit <a name="..."> / id="..." anchors also count.
    with open(path, encoding="utf-8") as f:
        for m in re.finditer(r"<a\s+(?:name|id)=\"([^\"]+)\"", f.read()):
            anchors.add(m.group(1))
    cache[path] = anchors
    return anchors


def check_file(md_path, anchor_cache):
    errors = []
    with open(md_path, encoding="utf-8") as f:
        lines = strip_code(f.read().splitlines())
    for lineno, line in enumerate(lines, start=1):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                if path_part.startswith("/"):
                    resolved = os.path.join(REPO_ROOT, path_part.lstrip("/"))
                else:
                    resolved = os.path.join(os.path.dirname(md_path),
                                            path_part)
                resolved = os.path.normpath(resolved)
                if not os.path.exists(resolved):
                    errors.append((lineno, target,
                                   f"no such file: {path_part}"))
                    continue
            else:
                resolved = md_path
            if fragment:
                if os.path.isdir(resolved):
                    errors.append((lineno, target,
                                   "anchor on a directory link"))
                    continue
                if not resolved.endswith((".md", ".markdown")):
                    continue  # anchors into source files: not checkable
                if fragment.lower() not in anchors_of(resolved, anchor_cache):
                    errors.append((lineno, target,
                                   f"no heading for anchor #{fragment} in "
                                   f"{os.path.relpath(resolved, REPO_ROOT)}"))
    return errors


def expand(items):
    files = []
    for item in items:
        full = item if os.path.isabs(item) else os.path.join(REPO_ROOT, item)
        if os.path.isdir(full):
            files.extend(
                os.path.join(full, n) for n in sorted(os.listdir(full))
                if n.endswith(".md")
            )
        else:
            files.append(full)
    return files


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*",
                        help="markdown files or directories (default: "
                             "top-level docs + docs/ + bench/README.md)")
    args = parser.parse_args()

    files = expand(args.files or DEFAULT_FILES)
    missing = [f for f in files if not os.path.isfile(f)]
    if missing:
        for f in missing:
            print(f"check_docs: {os.path.relpath(f, REPO_ROOT)}: "
                  f"file not found", file=sys.stderr)
        return 1

    anchor_cache = {}
    total_links = 0
    ok = True
    for md in files:
        errors = check_file(md, anchor_cache)
        rel = os.path.relpath(md, REPO_ROOT)
        with open(md, encoding="utf-8") as f:
            n_links = sum(
                1 for line in strip_code(f.read().splitlines())
                for _ in LINK_RE.finditer(line)
            )
        total_links += n_links
        if errors:
            ok = False
            for lineno, target, why in errors:
                print(f"check_docs: {rel}:{lineno}: ({target}) — {why}",
                      file=sys.stderr)
        else:
            print(f"check_docs: {rel}: OK ({n_links} links)")
    if ok:
        print(f"check_docs: OK ({len(files)} files, {total_links} links)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
