// recover_cluster — the front-tier router daemon (docs/SERVING.md,
// "Cluster mode").
//
//   recover_cluster --port 0 --backends 127.0.0.1:9001:9101,127.0.0.1:9002
//                   --cache-entries 4096 --admin-port 0
//
// Speaks recover.req/1 on the front socket exactly like recover_serve —
// clients cannot tell the tiers apart — but answers run_cell by
// consistent-hashing the request over the --backends list, with an LRU
// result cache in front (cache hits never touch a backend and return
// byte-identical replies).  Each backend entry is host:port or
// host:port:adminport; with an admin port the router probes /readyz and
// ejects draining backends before their socket disappears.
//
// Prints machine-parseable lines once the sockets are bound:
//
//   # cluster: listening on 127.0.0.1:PORT backends=N cache=ENTRIES
//   # cluster: admin on 127.0.0.1:PORT          (with --admin-port)
//
// SIGTERM/SIGINT — or a `shutdown` request — drains exactly like
// recover_serve: stop accepting, finish in-flight forwards, hold
// --drain-grace with /readyz answering 503, exit 0.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/router.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/run_record.hpp"
#include "src/ops/admin.hpp"
#include "src/ops/prometheus.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown_requested = 0;

void on_signal(int) { g_shutdown_requested = 1; }

/// Parses "host:port[:adminport]" entries out of a comma-separated
/// list.  False (with a stderr diagnostic) on any malformed entry.
bool parse_backends(const std::string& spec,
                    std::vector<recover::cluster::BackendConfig>& out) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    recover::cluster::BackendConfig config;
    const std::size_t colon1 = entry.find(':');
    if (colon1 == std::string::npos || colon1 == 0) {
      std::fprintf(stderr, "cluster: bad backend '%s' (want host:port)\n",
                   entry.c_str());
      return false;
    }
    config.host = entry.substr(0, colon1);
    const std::size_t colon2 = entry.find(':', colon1 + 1);
    try {
      config.port = std::stoi(
          entry.substr(colon1 + 1, colon2 == std::string::npos
                                       ? std::string::npos
                                       : colon2 - colon1 - 1));
      if (colon2 != std::string::npos) {
        config.admin_port = std::stoi(entry.substr(colon2 + 1));
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "cluster: bad backend '%s' (non-numeric port)\n",
                   entry.c_str());
      return false;
    }
    if (config.port <= 0) {
      std::fprintf(stderr, "cluster: bad backend '%s' (port must be > 0)\n",
                   entry.c_str());
      return false;
    }
    out.push_back(std::move(config));
  }
  if (out.empty()) {
    std::fprintf(stderr, "cluster: --backends is required\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("recover_cluster",
                "recover.req/1 router: consistent-hashes run_cell over "
                "recover_serve backends with an LRU result cache");
  cli.flag("host", "listen address", "127.0.0.1");
  cli.flag("port", "listen port (0 = ephemeral, printed at startup)", "0");
  cli.flag("backends",
           "comma-separated backend list, host:port[:adminport]; an admin "
           "port enables active /readyz health probes",
           "");
  cli.flag("workers", "router forwarding threads", "4");
  cli.flag("queue-cap",
           "admission queue bound; excess requests are shed with "
           "'overloaded'",
           "128");
  cli.flag("deadline",
           "default per-request deadline (500ms/2s/1m; 0 = none), applied "
           "when a request carries no deadline_ms",
           "0");
  cli.flag("cache-entries",
           "LRU result cache capacity in entries (0 = cache disabled)",
           "4096");
  cli.flag("vnodes", "virtual nodes per backend on the hash ring", "64");
  cli.flag("probe-interval",
           "backend /readyz probe period (only backends with an admin "
           "port are probed)",
           "500ms");
  cli.flag("eject-cooldown",
           "how long a transport failure ejects a backend from routing",
           "1s");
  cli.flag("call-timeout",
           "per-forward wall cap when a request carries no deadline",
           "30s");
  cli.flag("admin-port",
           "ops admin plane port (/metrics, /healthz, /readyz; 0 = "
           "ephemeral, printed at startup; -1 = disabled)",
           "-1");
  cli.flag("admin-host", "admin plane listen address", "127.0.0.1");
  cli.flag("access-log",
           "append recover.access/1 JSON lines (one per completed "
           "request) to this file; empty = disabled",
           "");
  cli.flag("drain-grace",
           "after the drain completes, keep running this long with "
           "/readyz answering 503 (router ejection window) before exit",
           "0");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  cluster::RouterOptions options;
  options.server.host = cli.str("host");
  options.server.port = static_cast<int>(cli.integer("port"));
  options.server.workers = static_cast<int>(cli.integer("workers"));
  options.server.queue_capacity =
      static_cast<std::size_t>(cli.integer("queue-cap"));
  options.server.default_deadline_ms = cli.duration_ms("deadline");
  options.server.access_log_path = cli.str("access-log");
  options.cache_entries =
      static_cast<std::size_t>(cli.integer("cache-entries"));
  options.ring_vnodes = static_cast<std::size_t>(cli.integer("vnodes"));
  options.backend.probe_interval_ms =
      static_cast<int>(cli.duration_ms("probe-interval"));
  options.backend.eject_cooldown_ms =
      static_cast<int>(cli.duration_ms("eject-cooldown"));
  options.backend.call_timeout_ms =
      static_cast<int>(cli.duration_ms("call-timeout"));
  if (!parse_backends(cli.str("backends"), options.backends)) return 2;

  const std::int64_t admin_port = cli.integer("admin-port");
  const std::int64_t drain_grace_ms = cli.duration_ms("drain-grace");
  if (admin_port >= 0) {
    // Same contract as recover_serve: the admin plane implies metrics so
    // windowed quantiles (router latency, per-backend RTT) are live.
    obs::set_metrics_enabled(true);
  }

  cluster::Router router(options);
  if (!router.start()) return 2;

  std::unique_ptr<ops::AdminServer> admin;
  if (admin_port >= 0) {
    ops::AdminOptions admin_options;
    admin_options.host = cli.str("admin-host");
    admin_options.port = static_cast<int>(admin_port);
    admin_options.build_version = cluster::kClusterVersion;
    admin = std::make_unique<ops::AdminServer>(
        admin_options,
        [&router] {
          std::string out;
          ops::render_prometheus(obs::Registry::global().snapshot(), out);
          // Front-door samples, named exactly like recover_serve's so
          // dashboards and serve_top work against either tier.
          const serve::ServerSnapshot snap = router.snapshot();
          out += "# TYPE serve_window_request_us gauge\n";
          ops::append_sample(out, "serve_window_request_us", "quantile",
                             "0.5", snap.window_p50_us);
          ops::append_sample(out, "serve_window_request_us", "quantile",
                             "0.95", snap.window_p95_us);
          ops::append_sample(out, "serve_window_request_us", "quantile",
                             "0.99", snap.window_p99_us);
          out += "# TYPE serve_window_qps gauge\n";
          ops::append_sample(out, "serve_window_qps", snap.window_qps);
          out += "# TYPE serve_window_shed_ratio gauge\n";
          ops::append_sample(
              out, "serve_window_shed_ratio",
              snap.window_requests > 0
                  ? static_cast<double>(snap.window_shed) /
                        static_cast<double>(snap.window_requests)
                  : 0.0);
          out += "# TYPE serve_uptime_seconds gauge\n";
          ops::append_sample(out, "serve_uptime_seconds",
                             static_cast<double>(snap.uptime_ms) / 1000.0);
          out += "# TYPE serve_ready gauge\n";
          ops::append_sample(out, "serve_ready", snap.draining ? 0.0 : 1.0);
          out += "# TYPE serve_draining gauge\n";
          ops::append_sample(out, "serve_draining",
                             snap.draining ? 1.0 : 0.0);
          // Router plane: cache effectiveness and routing behavior.
          const cluster::RouterStats stats = router.stats();
          const cluster::ResultCache::Stats cache = router.cache_stats();
          out += "# TYPE cluster_requests_total counter\n";
          ops::append_sample(out, "cluster_requests_total",
                             static_cast<double>(stats.requests));
          out += "# TYPE cluster_forwards_total counter\n";
          ops::append_sample(out, "cluster_forwards_total",
                             static_cast<double>(stats.forwards));
          out += "# TYPE cluster_failovers_total counter\n";
          ops::append_sample(out, "cluster_failovers_total",
                             static_cast<double>(stats.failovers));
          out += "# TYPE cluster_exhausted_total counter\n";
          ops::append_sample(out, "cluster_exhausted_total",
                             static_cast<double>(stats.exhausted));
          out += "# TYPE cluster_cache_hits_total counter\n";
          ops::append_sample(out, "cluster_cache_hits_total",
                             static_cast<double>(cache.hits));
          out += "# TYPE cluster_cache_misses_total counter\n";
          ops::append_sample(out, "cluster_cache_misses_total",
                             static_cast<double>(cache.misses));
          out += "# TYPE cluster_cache_evictions_total counter\n";
          ops::append_sample(out, "cluster_cache_evictions_total",
                             static_cast<double>(cache.evictions));
          out += "# TYPE cluster_cache_entries gauge\n";
          ops::append_sample(out, "cluster_cache_entries",
                             static_cast<double>(cache.entries));
          out += "# TYPE cluster_cache_bytes gauge\n";
          ops::append_sample(out, "cluster_cache_bytes",
                             static_cast<double>(cache.bytes));
          out += "# TYPE cluster_cache_hit_ratio gauge\n";
          ops::append_sample(out, "cluster_cache_hit_ratio",
                             cache.hit_ratio());
          // Per-backend plane, labeled by backend identity.
          const auto backends = router.backend_telemetry();
          double healthy = 0;
          for (const auto& b : backends) {
            if (b.healthy) healthy += 1;
          }
          out += "# TYPE cluster_backends_healthy gauge\n";
          ops::append_sample(out, "cluster_backends_healthy", healthy);
          out += "# TYPE cluster_backend_up gauge\n";
          for (const auto& b : backends) {
            ops::append_sample(out, "cluster_backend_up", "backend", b.id,
                               b.healthy ? 1.0 : 0.0);
          }
          out += "# TYPE cluster_backend_requests_total counter\n";
          for (const auto& b : backends) {
            ops::append_sample(out, "cluster_backend_requests_total",
                               "backend", b.id,
                               static_cast<double>(b.requests));
          }
          out += "# TYPE cluster_backend_errors_total counter\n";
          for (const auto& b : backends) {
            ops::append_sample(out, "cluster_backend_errors_total",
                               "backend", b.id,
                               static_cast<double>(b.errors));
          }
          out += "# TYPE cluster_backend_ejections_total counter\n";
          for (const auto& b : backends) {
            ops::append_sample(out, "cluster_backend_ejections_total",
                               "backend", b.id,
                               static_cast<double>(b.ejections));
          }
          out += "# TYPE cluster_backend_qps gauge\n";
          for (const auto& b : backends) {
            ops::append_sample(out, "cluster_backend_qps", "backend", b.id,
                               b.window_qps);
          }
          out += "# TYPE cluster_backend_p99_us gauge\n";
          for (const auto& b : backends) {
            ops::append_sample(out, "cluster_backend_p99_us", "backend",
                               b.id, b.window_p99_us);
          }
          out += "# TYPE cluster_backend_rtt_ms gauge\n";
          for (const auto& b : backends) {
            ops::append_sample(out, "cluster_backend_rtt_ms", "backend",
                               b.id, b.rtt_ms);
          }
          return out;
        },
        [&router] { return !router.draining(); });
    if (!admin->start()) return 2;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::printf("# cluster: listening on %s:%d backends=%zu cache=%zu\n",
              options.server.host.c_str(), router.port(),
              options.backends.size(), options.cache_entries);
  if (admin != nullptr) {
    std::printf("# cluster: admin on %s:%d\n",
                cli.str("admin-host").c_str(), admin->port());
  }
  std::fflush(stdout);

  while (g_shutdown_requested == 0 && !router.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  router.request_drain();
  router.wait_drained();
  if (drain_grace_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(drain_grace_ms));
  }
  router.stop();

  const serve::ServerSnapshot snap = router.snapshot();
  const cluster::RouterStats stats = router.stats();
  const cluster::ResultCache::Stats cache = router.cache_stats();
  util::Table table({"requests", "ok", "shed", "deadline_exceeded",
                     "cache_hits", "cache_misses", "failovers",
                     "exhausted"});
  table.row()
      .integer(static_cast<std::int64_t>(snap.requests_total))
      .integer(static_cast<std::int64_t>(snap.responses_ok))
      .integer(static_cast<std::int64_t>(snap.shed_total))
      .integer(static_cast<std::int64_t>(snap.deadline_exceeded_total))
      .integer(static_cast<std::int64_t>(cache.hits))
      .integer(static_cast<std::int64_t>(cache.misses))
      .integer(static_cast<std::int64_t>(stats.failovers))
      .integer(static_cast<std::int64_t>(stats.exhausted));
  table.print(std::cout);
  run.add_table("cluster", table);
  run.note("cache_hit_ratio", cache.hit_ratio());
  std::printf("# cluster: drained requests=%llu ok=%llu shed=%llu "
              "hits=%llu misses=%llu failovers=%llu exhausted=%llu\n",
              static_cast<unsigned long long>(snap.requests_total),
              static_cast<unsigned long long>(snap.responses_ok),
              static_cast<unsigned long long>(snap.shed_total),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.exhausted));
  if (admin != nullptr) {
    std::printf("# cluster: admin served %llu requests\n",
                static_cast<unsigned long long>(admin->requests_served()));
    admin->stop();
  }
  return 0;
}
