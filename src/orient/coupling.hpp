// The paper's §6 machinery for the edge-orientation chain: the count
// ("x") representation, the Γ-sets 𝒢̄ and 𝒮̄_k, the recursive metric of
// Definitions 6.1–6.3, and the coupled step analyzed in Lemmas 6.2/6.3.
//
// A CountState stores x_l = number of vertices at "level" l, levels
// ordered by strictly decreasing difference value (level 0 = largest
// difference), Σ_l x_l = n.  The chain transition in this space:
//   pick vertex ranks φ < ψ i.u.r.; let i, j be the levels holding the
//   φ-th and ψ-th vertex; with the lazy bit set,
//      x ← x − e_i + e_{i+1} − e_j + e_{j−1}
//   (the higher-difference vertex drops a level, the lower one rises).
//
// Γ-sets (Definitions 6.1/6.2):
//   y ∈ 𝒢(x)    ⇔ x = y + e_λ − 2e_{λ+1} + e_{λ+2}              (Δ = 1)
//   y ∈ 𝒮_k(x)  ⇔ x = y + e_λ − e_{λ+1} − e_{λ+k} + e_{λ+k+1}
//                  and x_{λ+1} = … = x_{λ+k} = 0,  k ≥ 2         (Δ = k)
// and the barred versions are symmetrized.  The metric Δ (Definition
// 6.3) is the induced shortest-path distance; we evaluate it with a
// bounded Dijkstra over the premetric graph.
//
// The §6 coupling picks the same (φ, ψ) in both copies and the same lazy
// bit, EXCEPT the anti-correlated case for y ∈ 𝒢̄(x): when i = λ,
// j = λ + 2 and i* = j* = λ + 1 the second copy uses b* = 1 − b (this is
// what creates the strictly-positive merge probability of Lemma 6.2).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/orient/state.hpp"
#include "src/rng/distributions.hpp"
#include "src/util/assert.hpp"

namespace recover::orient {

class CountState {
 public:
  /// `levels` buckets, all empty.
  CountState(std::size_t levels, std::size_t vertices);

  static CountState from_counts(std::vector<std::int64_t> counts);

  /// Embeds a DiffState into a padded level window.  `padding` empty
  /// levels are added above and below the occupied range.
  static CountState from_diff_state(const DiffState& s, std::size_t padding);

  [[nodiscard]] std::size_t levels() const { return x_.size(); }
  [[nodiscard]] std::size_t vertices() const { return n_; }
  [[nodiscard]] std::int64_t count(std::size_t level) const {
    return x_[level];
  }
  [[nodiscard]] const std::vector<std::int64_t>& counts() const { return x_; }

  /// Level holding the rank-th vertex (ranks 0-based, ordered by level).
  [[nodiscard]] std::size_t level_of_rank(std::size_t rank) const;

  /// x ← x − e_i + e_{i+1} − e_j + e_{j−1}.  Requires room at the edges
  /// and positive counts at i and j (i ≤ j; for i == j the level must
  /// hold ≥ 2 vertices).
  void apply_transition(std::size_t i, std::size_t j);

  /// One lazy greedy step (for simulation in this representation).
  template <typename Engine>
  void step(Engine& eng) {
    const std::size_t n = n_;
    const auto a = static_cast<std::size_t>(rng::uniform_below(eng, n));
    auto b = static_cast<std::size_t>(rng::uniform_below(eng, n - 1));
    if (b >= a) ++b;
    const auto [phi, psi] = a < b ? std::pair{a, b} : std::pair{b, a};
    if (rng::coin(eng)) {
      apply_transition(level_of_rank(phi), level_of_rank(psi));
    }
  }

  friend bool operator==(const CountState& a, const CountState& b) {
    return a.x_ == b.x_;
  }
  friend auto operator<=>(const CountState& a, const CountState& b) {
    return a.x_ <=> b.x_;
  }

  [[nodiscard]] bool invariants_hold() const;

 private:
  std::vector<std::int64_t> x_;
  std::size_t n_ = 0;
};

/// All y with y ∈ 𝒢̄(x) (both orientations of Definition 6.1).
std::vector<CountState> gbar_neighbors(const CountState& x);

/// All (y, k) with y ∈ 𝒮̄_k(x), k ≥ 2 (both orientations, Definition 6.2).
std::vector<std::pair<CountState, std::int64_t>> sbar_neighbors(
    const CountState& x);

/// The metric of Definition 6.3 as a bounded shortest-path search;
/// returns std::nullopt if the distance exceeds `limit`.
std::optional<std::int64_t> orientation_distance(const CountState& x,
                                                 const CountState& y,
                                                 std::int64_t limit);

/// Decomposition of a Γ-pair: x = y + e_λ − e_{λ+1} − e_{λ+k} + e_{λ+k+1}
/// (k = 1 encodes the 𝒢 case λ, λ+1, λ+1, λ+2).
struct GammaDecomposition {
  std::size_t lambda = 0;
  std::int64_t k = 0;
  bool x_is_upper = true;  // false: roles swapped (y = x + …)
};

/// Identifies the Γ-edge between x and y; aborts if (x, y) ∉ Γ.
GammaDecomposition decompose_gamma_pair(const CountState& x,
                                        const CountState& y);

/// Full diagnostics of one coupled step — enough to reconstruct which
/// case of the Lemma 6.2 / 6.3 proof the step fell into (the levels are
/// relative to the upper copy's λ; `bit`/`bitstar` are the lazy bits of
/// the upper and lower copy respectively).
struct OrientationStepTrace {
  std::size_t lambda = 0;
  std::int64_t k = 0;
  std::size_t i = 0;      // level of rank φ in the upper copy
  std::size_t j = 0;      // level of rank ψ in the upper copy
  std::size_t istar = 0;  // level of rank φ in the lower copy
  std::size_t jstar = 0;  // level of rank ψ in the lower copy
  bool bit = false;
  bool bitstar = false;
  std::int64_t distance_after = 0;
};

/// One §6 coupled step on a Γ-pair.  Mutates x, y in place; returns the
/// full trace including the exact post-step metric (bounded search with
/// limit k + 2).
template <typename Engine>
OrientationStepTrace coupled_step_orientation_traced(CountState& x,
                                                     CountState& y,
                                                     Engine& eng) {
  const GammaDecomposition g = decompose_gamma_pair(x, y);
  CountState& upper = g.x_is_upper ? x : y;   // the "+e_λ" copy
  CountState& lower = g.x_is_upper ? y : x;

  const std::size_t n = x.vertices();
  const auto a = static_cast<std::size_t>(rng::uniform_below(eng, n));
  auto b2 = static_cast<std::size_t>(rng::uniform_below(eng, n - 1));
  if (b2 >= a) ++b2;
  const auto [phi, psi] = a < b2 ? std::pair{a, b2} : std::pair{b2, a};

  OrientationStepTrace trace;
  trace.lambda = g.lambda;
  trace.k = g.k;
  trace.bit = rng::coin(eng);
  trace.i = upper.level_of_rank(phi);
  trace.j = upper.level_of_rank(psi);
  trace.istar = lower.level_of_rank(phi);
  trace.jstar = lower.level_of_rank(psi);

  trace.bitstar = trace.bit;
  if (g.k == 1 && trace.i == g.lambda && trace.j == g.lambda + 2 &&
      trace.istar == g.lambda + 1 && trace.jstar == g.lambda + 1) {
    trace.bitstar = !trace.bit;
  }

  if (trace.bit) upper.apply_transition(trace.i, trace.j);
  if (trace.bitstar) lower.apply_transition(trace.istar, trace.jstar);

  const auto d = orientation_distance(x, y, g.k + 2);
  RL_REQUIRE(d.has_value());
  trace.distance_after = *d;
  return trace;
}

/// Distance-only convenience wrapper.
template <typename Engine>
std::int64_t coupled_step_orientation(CountState& x, CountState& y,
                                      Engine& eng) {
  return coupled_step_orientation_traced(x, y, eng).distance_after;
}

}  // namespace recover::orient
