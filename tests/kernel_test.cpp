// Byte-identity and faithfulness tests for the batched kernels
// (src/kernel/).  The contract under test: RECOVER_KERNEL=scalar and
// =batched consume the engine word-for-word identically, so every
// chain/coupling trajectory, experiment record and coalescence trial is
// byte-identical across modes, batch boundaries, engines and thread
// counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "src/balls/grand_coupling.hpp"
#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/certify/check.hpp"
#include "src/core/coalescence.hpp"
#include "src/kernel/choice_block.hpp"
#include "src/kernel/kernel.hpp"
#include "src/rng/distributions.hpp"
#include "src/rng/engines.hpp"

namespace recover::kernel {
namespace {

using balls::AbkuRule;
using balls::GrandCouplingA;
using balls::GrandCouplingB;
using balls::LoadVector;
using balls::ScenarioAChain;
using balls::ScenarioBChain;

/// RAII mode override so a failing test cannot leak its mode into the
/// rest of the binary.
class ModeGuard {
 public:
  explicit ModeGuard(Mode m) : prev_(set_mode(m)) {}
  ~ModeGuard() { set_mode(prev_); }

 private:
  Mode prev_;
};

TEST(KernelMode, SetModeReturnsPrevious) {
  const Mode initial = mode();
  const Mode prev = set_mode(Mode::kScalar);
  EXPECT_EQ(prev, initial);
  EXPECT_EQ(mode(), Mode::kScalar);
  set_mode(Mode::kBatched);
  EXPECT_EQ(mode(), Mode::kBatched);
  set_mode(initial);
}

TEST(KernelMode, ModeNames) {
  EXPECT_STREQ(mode_name(Mode::kScalar), "scalar");
  EXPECT_STREQ(mode_name(Mode::kBatched), "batched");
}

// ---------------------------------------------------------------------------
// Engine block APIs: fill() and generate_groups() must equal serial
// operator() draws, including buffered half-consumed Philox blocks and
// the state left behind for subsequent draws.

template <typename Engine>
void expect_fill_matches_serial(std::uint64_t seed) {
  for (const int predraws : {0, 1, 3}) {
    for (const std::size_t count : {std::size_t{1}, std::size_t{7},
                                    std::size_t{8}, std::size_t{9},
                                    std::size_t{64}, std::size_t{257},
                                    std::size_t{1000}}) {
      Engine filled(seed);
      Engine serial(seed);
      for (int k = 0; k < predraws; ++k) {
        ASSERT_EQ(filled(), serial());
      }
      std::vector<std::uint64_t> out(count);
      filled.fill(out.data(), count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[i], serial()) << "word " << i << " of " << count
                                    << " after " << predraws << " predraws";
      }
      // The engines must also agree on everything drawn afterwards.
      for (int k = 0; k < 5; ++k) {
        ASSERT_EQ(filled(), serial());
      }
    }
  }
}

TEST(EngineFill, XoshiroMatchesSerialDraws) {
  const std::uint64_t seed = certify::test_master_seed(12345);
  SCOPED_TRACE(certify::seed_banner(seed));
  expect_fill_matches_serial<rng::Xoshiro256PlusPlus>(seed);
}

TEST(EngineFill, PhiloxMatchesSerialDraws) {
  // Counts >= 8 exercise the vectorized whole-block path on hosts that
  // have it; odd counts and predraws exercise the buffered-lane edges.
  const std::uint64_t seed = certify::test_master_seed(0xDEADBEEF);
  SCOPED_TRACE(certify::seed_banner(seed));
  expect_fill_matches_serial<rng::Philox4x32>(seed);
}

TEST(EngineFill, XoshiroGenerateGroupsMatchesSerialDraws) {
  rng::Xoshiro256PlusPlus grouped(99);
  rng::Xoshiro256PlusPlus serial(99);
  std::vector<std::uint64_t> words;
  grouped.generate_groups<3>(
      100, [&](std::size_t, const std::array<std::uint64_t, 3>& w) {
        words.insert(words.end(), w.begin(), w.end());
      });
  ASSERT_EQ(words.size(), 300u);
  for (const std::uint64_t w : words) {
    ASSERT_EQ(w, serial());
  }
  for (int k = 0; k < 5; ++k) {
    ASSERT_EQ(grouped(), serial());
  }
}

// ---------------------------------------------------------------------------
// DChoiceBatch: the precomputed selections must equal what the scalar
// path computes from the same raw words, with a conservative unsafe
// flag (a superset of the scalar redraw events).

template <typename Engine>
void expect_batch_matches_scalar(std::uint64_t seed, std::uint64_t bound,
                                 int d, std::size_t steps, int leads) {
  Engine eng(seed);
  Engine twin(seed);
  DChoiceBatch batch;
  batch.fill(eng, bound, d, steps, leads);

  const std::size_t stride =
      static_cast<std::size_t>(leads) + static_cast<std::size_t>(d);
  std::vector<std::uint64_t> words(steps * stride);
  fill_raw(twin, words.data(), words.size());
  // Both consumed the same word count: subsequent draws agree.
  ASSERT_EQ(eng(), twin());

  for (std::size_t i = 0; i < steps; ++i) {
    const std::uint64_t* step_words = words.data() + i * stride;
    if (leads == 1) {
      ASSERT_EQ(batch.lead_raw(i), step_words[0]) << "step " << i;
    }
    // Recompute the packed selection from first principles.
    std::uint64_t best = 0;
    bool any_flagged = false;
    for (int k = 0; k < d; ++k) {
      const auto w = step_words[leads + k];
      const auto m = static_cast<__uint128_t>(w) * bound;
      best = std::max(best, static_cast<std::uint64_t>(m >> 64));
      any_flagged |= static_cast<std::uint64_t>(m) < bound;
      // Conservative flag: every word the scalar path would actually
      // redraw ((uint64)m below 2^64 mod bound <= bound) is flagged.
      if (static_cast<std::uint64_t>(m) < (0 - bound) % bound) {
        ASSERT_TRUE(static_cast<std::uint64_t>(m) < bound);
      }
    }
    ASSERT_EQ(batch.probe_unsafe(i), any_flagged) << "step " << i;
    if (!any_flagged) {
      ASSERT_EQ(batch.choice(i), best) << "step " << i;
      ASSERT_LT(batch.choice(i), bound);
      // And the scalar reduction over the very same words agrees.
      Engine unused(seed + 1);
      ReplayEngine<Engine> replay(unused, step_words + leads,
                                  static_cast<std::size_t>(d));
      ASSERT_EQ(batch.choice(i), rng::max_of_d_uniform(replay, bound, d));
    }
  }
}

TEST(DChoiceBatch, MatchesScalarXoshiroFusedPath) {
  // Xoshiro has generate_groups, so d <= 4 takes the fused loop.
  const std::uint64_t seed = certify::test_master_seed(7);
  SCOPED_TRACE(certify::seed_banner(seed));
  for (const int d : {1, 2, 3, 4}) {
    expect_batch_matches_scalar<rng::Xoshiro256PlusPlus>(seed, 1024, d,
                                                         kBatchSteps, 1);
    expect_batch_matches_scalar<rng::Xoshiro256PlusPlus>(seed, 1024, d, 5, 0);
  }
}

TEST(DChoiceBatch, MatchesScalarPhiloxTwoPassPath) {
  // Philox has no generate_groups: fill_raw + map_pass.
  const std::uint64_t seed = certify::test_master_seed(11);
  SCOPED_TRACE(certify::seed_banner(seed));
  for (const int d : {1, 2, 4}) {
    expect_batch_matches_scalar<rng::Philox4x32>(seed, 1 << 14, d,
                                                 kBatchSteps, 1);
  }
}

TEST(DChoiceBatch, RuntimeDFallbackMatchesScalar) {
  // d in (4, kMaxBatchedProbes] takes the runtime-d map pass.
  const std::uint64_t seed = certify::test_master_seed(13);
  SCOPED_TRACE(certify::seed_banner(seed));
  for (const int d : {5, 6, 7}) {
    expect_batch_matches_scalar<rng::Xoshiro256PlusPlus>(seed, 4096, d, 100,
                                                         1);
    expect_batch_matches_scalar<rng::Philox4x32>(seed, 4096, d, 100, 1);
  }
}

TEST(DChoiceBatch, BatchBoundarySizes) {
  const std::uint64_t seed = certify::test_master_seed(17);
  SCOPED_TRACE(certify::seed_banner(seed));
  for (const std::size_t steps :
       {std::size_t{1}, std::size_t{2}, kBatchSteps - 1, kBatchSteps}) {
    expect_batch_matches_scalar<rng::Xoshiro256PlusPlus>(seed, 1024, 2, steps,
                                                         1);
  }
}

TEST(DChoiceBatch, ConservativeFlagFiresOnLargeBounds) {
  // bound / 2^64 ~ 1/4: among 256 * 2 probe words, flagged steps are
  // essentially certain, exercising the unsafe path deterministically.
  const std::uint64_t bound = (std::uint64_t{1} << 62) + 12345;
  rng::Xoshiro256PlusPlus eng(23);
  DChoiceBatch batch;
  batch.fill(eng, bound, 2, kBatchSteps, 1);
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < batch.steps(); ++i) {
    flagged += batch.probe_unsafe(i) ? 1u : 0u;
  }
  EXPECT_GT(flagged, 0u);
  EXPECT_LT(flagged, batch.steps());  // and most steps stay on the fast path
  expect_batch_matches_scalar<rng::Xoshiro256PlusPlus>(23, bound, 2,
                                                       kBatchSteps, 1);
}

TEST(DChoiceBatch, ReplayEngineServesBufferedWordsThenLive) {
  const std::uint64_t words[] = {5, 6, 7};
  rng::Xoshiro256PlusPlus live(31);
  rng::Xoshiro256PlusPlus twin(31);
  ReplayEngine<rng::Xoshiro256PlusPlus> replay(live, words, 3);
  EXPECT_EQ(replay(), 5u);
  EXPECT_EQ(replay(), 6u);
  EXPECT_EQ(replay(), 7u);
  EXPECT_EQ(replay(), twin());  // falls through to the live engine
  EXPECT_EQ(replay(), twin());
}

TEST(DChoiceBatch, ReplayFromMidBatchYieldsRemainingWords) {
  rng::Xoshiro256PlusPlus eng(37);
  rng::Xoshiro256PlusPlus twin(37);
  DChoiceBatch batch;
  batch.fill(eng, 1024, 2, 10, 1);  // 30 words
  std::vector<std::uint64_t> words(30);
  fill_raw(twin, words.data(), words.size());
  auto replay = batch.replay_from(eng, 4);  // words 12..29, then live
  for (std::size_t i = 12; i < 30; ++i) {
    ASSERT_EQ(replay(), words[i]);
  }
  ASSERT_EQ(replay(), twin());
}

// ---------------------------------------------------------------------------
// Chain and coupling byte-identity across modes: same seed, same steps
// => same state AND same next engine output (proving both paths
// consumed exactly the same number of words).

template <typename Chain, typename Engine>
void expect_chain_identical_across_modes(Chain scalar_chain,
                                         Chain batched_chain,
                                         std::uint64_t seed,
                                         std::int64_t steps) {
  Engine scalar_eng(seed);
  Engine batched_eng(seed);
  {
    ModeGuard guard(Mode::kScalar);
    advance(scalar_chain, scalar_eng, steps);
  }
  {
    ModeGuard guard(Mode::kBatched);
    advance(batched_chain, batched_eng, steps);
  }
  ASSERT_EQ(scalar_chain.state().loads(), batched_chain.state().loads())
      << "steps=" << steps;
  ASSERT_EQ(scalar_eng(), batched_eng()) << "steps=" << steps;
}

TEST(ChainByteIdentity, ScenarioAAcrossModesAndBatchBoundaries) {
  // 1 and 7 stay scalar (< kMinBatchSteps) even in batched mode; the
  // rest cross none, one, or several kBatchSteps block boundaries with
  // partial final blocks.
  const std::uint64_t seed = certify::test_master_seed(41);
  SCOPED_TRACE(certify::seed_banner(seed));
  for (const std::int64_t steps :
       {std::int64_t{1}, std::int64_t{7}, std::int64_t{8},
        static_cast<std::int64_t>(kBatchSteps) - 1,
        static_cast<std::int64_t>(kBatchSteps),
        static_cast<std::int64_t>(kBatchSteps) + 1,
        2 * static_cast<std::int64_t>(kBatchSteps) + 7}) {
    expect_chain_identical_across_modes<ScenarioAChain<AbkuRule>,
                                        rng::Xoshiro256PlusPlus>(
        {LoadVector::all_in_one(64, 256), AbkuRule(2)},
        {LoadVector::all_in_one(64, 256), AbkuRule(2)}, seed, steps);
  }
}

TEST(ChainByteIdentity, ScenarioBAcrossModes) {
  const std::uint64_t seed = certify::test_master_seed(43);
  SCOPED_TRACE(certify::seed_banner(seed));
  for (const std::int64_t steps :
       {std::int64_t{9}, static_cast<std::int64_t>(kBatchSteps) + 3}) {
    expect_chain_identical_across_modes<ScenarioBChain<AbkuRule>,
                                        rng::Xoshiro256PlusPlus>(
        {LoadVector::all_in_one(32, 100), AbkuRule(3)},
        {LoadVector::all_in_one(32, 100), AbkuRule(3)}, seed, steps);
  }
}

TEST(ChainByteIdentity, ScenarioBSingleBallBoundary) {
  // m = 1 makes the state-dependent removal bound s = 1 on every step.
  const std::uint64_t seed = certify::test_master_seed(47);
  SCOPED_TRACE(certify::seed_banner(seed));
  expect_chain_identical_across_modes<ScenarioBChain<AbkuRule>,
                                      rng::Xoshiro256PlusPlus>(
      {LoadVector::all_in_one(4, 1), AbkuRule(2)},
      {LoadVector::all_in_one(4, 1), AbkuRule(2)}, seed, 500);
}

TEST(ChainByteIdentity, PhiloxEngineTakesTwoPassPath) {
  const std::uint64_t seed = certify::test_master_seed(53);
  SCOPED_TRACE(certify::seed_banner(seed));
  expect_chain_identical_across_modes<ScenarioAChain<AbkuRule>,
                                      rng::Philox4x32>(
      {LoadVector::all_in_one(64, 256), AbkuRule(2)},
      {LoadVector::all_in_one(64, 256), AbkuRule(2)}, seed,
      static_cast<std::int64_t>(kBatchSteps) + 9);
}

TEST(ChainByteIdentity, HighDFallsBackToScalarLoop) {
  // d > kMaxBatchedProbes: step_block itself must take the scalar loop.
  const std::uint64_t seed = certify::test_master_seed(59);
  SCOPED_TRACE(certify::seed_banner(seed));
  expect_chain_identical_across_modes<ScenarioAChain<AbkuRule>,
                                      rng::Xoshiro256PlusPlus>(
      {LoadVector::all_in_one(64, 256), AbkuRule(kMaxBatchedProbes + 1)},
      {LoadVector::all_in_one(64, 256), AbkuRule(kMaxBatchedProbes + 1)},
      seed, 300);
}

template <typename Coupling, typename Engine>
void expect_coupling_identical_across_modes(Coupling scalar_c,
                                            Coupling batched_c,
                                            std::uint64_t seed,
                                            std::int64_t steps) {
  Engine scalar_eng(seed);
  Engine batched_eng(seed);
  {
    ModeGuard guard(Mode::kScalar);
    advance(scalar_c, scalar_eng, steps);
  }
  {
    ModeGuard guard(Mode::kBatched);
    advance(batched_c, batched_eng, steps);
  }
  ASSERT_EQ(scalar_c.coalesced(), batched_c.coalesced());
  ASSERT_EQ(scalar_c.distance(), batched_c.distance());
  ASSERT_EQ(scalar_eng(), batched_eng());
}

TEST(CouplingByteIdentity, GrandCouplingAAcrossModes) {
  const auto x = LoadVector::all_in_one(32, 96);
  const auto y = LoadVector::balanced(32, 96);
  const std::uint64_t seed = certify::test_master_seed(61);
  SCOPED_TRACE(certify::seed_banner(seed));
  for (const std::int64_t steps :
       {std::int64_t{50}, static_cast<std::int64_t>(kBatchSteps) + 11}) {
    expect_coupling_identical_across_modes<GrandCouplingA<AbkuRule>,
                                           rng::Xoshiro256PlusPlus>(
        {x, y, AbkuRule(2)}, {x, y, AbkuRule(2)}, seed, steps);
  }
}

TEST(CouplingByteIdentity, GrandCouplingBAcrossModes) {
  const auto x = LoadVector::all_in_one(32, 96);
  const auto y = LoadVector::balanced(32, 96);
  const std::uint64_t seed = certify::test_master_seed(67);
  SCOPED_TRACE(certify::seed_banner(seed));
  expect_coupling_identical_across_modes<GrandCouplingB<AbkuRule>,
                                         rng::Xoshiro256PlusPlus>(
      {x, y, AbkuRule(2)}, {x, y, AbkuRule(2)}, seed,
      static_cast<std::int64_t>(kBatchSteps) + 13);
}

TEST(CouplingFaithfulness, EqualCopiesStayEqualUnderBatchedAdvance) {
  // The grand coupling's defining property: once the copies meet they
  // share every draw, so they can never separate.  The batched path
  // must preserve this exactly (it shares one choice block per step).
  ModeGuard guard(Mode::kBatched);
  const auto v = LoadVector::all_in_one(16, 48);
  GrandCouplingA<AbkuRule> coupling(v, v, AbkuRule(2));
  rng::Xoshiro256PlusPlus eng(71);
  for (int burst = 0; burst < 8; ++burst) {
    advance(coupling, eng, 200);
    ASSERT_TRUE(coupling.coalesced()) << "burst " << burst;
    ASSERT_EQ(coupling.distance(), 0);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: coalescence trials — the measurement everything above
// feeds — identical across modes and thread counts.

std::vector<std::int64_t> coalescence_times(Mode m, bool parallel) {
  ModeGuard guard(m);
  core::CoalescenceOptions options;
  options.replicas = 8;
  options.seed = 404;
  options.max_steps = 20'000;
  options.check_interval = 64;
  options.parallel = parallel;
  return core::run_coalescence_trials(
      [](std::uint64_t) {
        return GrandCouplingA<AbkuRule>(LoadVector::all_in_one(16, 32),
                                        LoadVector::balanced(16, 32),
                                        AbkuRule(2));
      },
      options);
}

TEST(CoalescenceByteIdentity, TrialsIdenticalAcrossModesAndThreadCounts) {
  const auto scalar_serial = coalescence_times(Mode::kScalar, false);
  const auto scalar_parallel = coalescence_times(Mode::kScalar, true);
  const auto batched_serial = coalescence_times(Mode::kBatched, false);
  const auto batched_parallel = coalescence_times(Mode::kBatched, true);
  EXPECT_EQ(scalar_serial, scalar_parallel);
  EXPECT_EQ(scalar_serial, batched_serial);
  EXPECT_EQ(scalar_serial, batched_parallel);
  // The cell must actually measure something (not all censored).
  EXPECT_TRUE(std::any_of(scalar_serial.begin(), scalar_serial.end(),
                          [](std::int64_t t) { return t >= 0; }));
}

}  // namespace
}  // namespace recover::kernel
