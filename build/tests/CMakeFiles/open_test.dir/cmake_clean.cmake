file(REMOVE_RECURSE
  "CMakeFiles/open_test.dir/open_test.cpp.o"
  "CMakeFiles/open_test.dir/open_test.cpp.o.d"
  "open_test"
  "open_test.pdb"
  "open_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
