#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "src/parallel/thread_pool.hpp"
#include "src/rng/engines.hpp"

namespace recover::parallel {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::uint64_t kCount = 10007;
  std::vector<std::atomic<int>> hits(kCount);
  pool.for_each_index(kCount, [&](std::uint64_t i) { ++hits[i]; });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.for_each_index(0, [&](std::uint64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::int64_t sum = 0;
  pool.for_each_index(100, [&](std::uint64_t i) {
    sum += static_cast<std::int64_t>(i);
  });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, RepeatedDispatchesWork) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.for_each_index(1000, [&](std::uint64_t i) {
      sum += static_cast<std::int64_t>(i);
    });
    ASSERT_EQ(sum.load(), 499500);
  }
}

TEST(ThreadPool, ResultIndependentOfThreadCount) {
  // Deterministic per-index seeding means any pool size produces the same
  // reduction.
  auto compute = [](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(256);
    pool.for_each_index(256, [&](std::uint64_t i) {
      rng::Xoshiro256PlusPlus eng(rng::derive_stream_seed(42, i));
      out[i] = eng();
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ThreadPool, NestedDispatchFromWorkerRunsInline) {
  // A task that itself calls for_each_index on the same pool must not
  // deadlock (workers waiting on workers); the nested call runs inline,
  // serially, on the submitting worker.
  ThreadPool pool(4);
  constexpr std::uint64_t kOuter = 32;
  constexpr std::uint64_t kInner = 64;
  std::vector<std::atomic<std::uint64_t>> sums(kOuter);
  pool.for_each_index(kOuter, [&](std::uint64_t o) {
    pool.for_each_index(kInner, [&](std::uint64_t i) { sums[o] += i; });
  });
  for (std::uint64_t o = 0; o < kOuter; ++o) {
    ASSERT_EQ(sums[o].load(), kInner * (kInner - 1) / 2) << "outer " << o;
  }
}

TEST(ThreadPool, DeeplyNestedDispatchStillCompletes) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> leaves{0};
  pool.for_each_index(4, [&](std::uint64_t) {
    pool.for_each_index(4, [&](std::uint64_t) {
      pool.for_each_index(4, [&](std::uint64_t) { ++leaves; });
    });
  });
  EXPECT_EQ(leaves.load(), 64u);
}

TEST(ThreadPool, SweepSchedulerPatternDoesNotDeadlock) {
  // The sweep engine's shape: a long-lived task on each worker that
  // repeatedly grabs work, where the work itself may re-enter the pool.
  // Guards the historical hazard of tasks submitting tasks.
  ThreadPool pool(4);
  std::atomic<int> work{200};
  std::atomic<int> done{0};
  pool.for_each_index(pool.size(), [&](std::uint64_t) {
    while (work.fetch_sub(1) > 0) {
      pool.for_each_index(8, [&](std::uint64_t) {});
      ++done;
    }
  });
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, ConcurrentExternalDispatchesAreSerialized) {
  // Two plain threads (not pool workers) dispatching onto one pool at
  // once: each dispatch must see exactly its own work, not the other's.
  ThreadPool pool(4);
  constexpr int kRounds = 50;
  std::atomic<std::int64_t> total{0};
  auto hammer = [&] {
    for (int r = 0; r < kRounds; ++r) {
      std::atomic<std::int64_t> local{0};
      pool.for_each_index(257, [&](std::uint64_t i) {
        local += static_cast<std::int64_t>(i);
      });
      ASSERT_EQ(local.load(), 257 * 256 / 2);
      total += local.load();
    }
  };
  std::thread a(hammer);
  std::thread b(hammer);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * kRounds * (257 * 256 / 2));
}

TEST(ParallelFor, GlobalPoolWorks) {
  std::vector<int> marks(512, 0);
  parallel_for(512, [&](std::uint64_t i) { marks[i] = 1; });
  EXPECT_EQ(std::accumulate(marks.begin(), marks.end(), 0), 512);
}

}  // namespace
}  // namespace recover::parallel
