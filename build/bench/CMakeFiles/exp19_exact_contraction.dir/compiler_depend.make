# Empty compiler generated dependencies file for exp19_exact_contraction.
# This may be replaced when dependencies are built.
