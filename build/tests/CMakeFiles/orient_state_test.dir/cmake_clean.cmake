file(REMOVE_RECURSE
  "CMakeFiles/orient_state_test.dir/orient_state_test.cpp.o"
  "CMakeFiles/orient_state_test.dir/orient_state_test.cpp.o.d"
  "orient_state_test"
  "orient_state_test.pdb"
  "orient_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orient_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
