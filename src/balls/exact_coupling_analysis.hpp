// Exact (fully enumerated) one-step analysis of the paper's Γ-couplings.
//
// For ABKU[d] the randomness of one coupled phase is finite:
//   * scenario A removal: the drawn sorted index i (probability v_i/m)
//     plus the odd-ball branch when i = λ (conditional probability 1/v_λ);
//   * scenario B removal: i uniform on the non-empty support, with the
//     paper's Claim 5.1/5.2 re-mapping;
//   * insertion: the shared probe tuple b ∈ [n]^d, probability n^{-d}.
// Enumerating all outcomes computes E[Δ(v°, u°)] EXACTLY, so Corollary
// 4.2 (E ≤ 1 − 1/m) and Claims 5.1/5.2 (E ≤ 1) can be verified with
// zero Monte-Carlo tolerance — and, over small partition spaces, for
// EVERY Γ-pair rather than a sample (exp19, exact_coupling_test).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"

namespace recover::balls {

struct ExactCouplingStep {
  double expected_distance = 0;   // E[Δ(v°, u°)]
  double merge_probability = 0;   // P[Δ(v°, u°) = 0]
  double change_probability = 0;  // P[Δ(v°, u°) ≠ 1]
};

/// Exact one-phase analysis of the scenario-A Γ-coupling (§4) on a pair
/// with Δ(v, u) = 1, using ABKU[d] insertion.
ExactCouplingStep exact_coupled_step_a(const LoadVector& v,
                                       const LoadVector& u,
                                       const AbkuRule& rule);

/// Exact one-phase analysis of the scenario-B Γ-coupling (§5).
ExactCouplingStep exact_coupled_step_b(const LoadVector& v,
                                       const LoadVector& u,
                                       const AbkuRule& rule);

/// All Γ-pairs (unordered, both orientations generated) of the partition
/// space Ω_m over n bins: every (v, u) with Δ(v, u) = 1.
std::vector<std::pair<LoadVector, LoadVector>> enumerate_gamma_pairs(
    std::size_t n, std::int64_t m);

}  // namespace recover::balls
