// recover::serve — a dependency-free POSIX TCP service that runs sweep-
// registry cells and estimator queries over the newline-delimited JSON
// protocol of protocol.hpp (docs/SERVING.md).
//
// Architecture (one box per thread kind):
//
//   accept loop ──► per-connection reader threads ──► bounded admission
//   (poll, 100ms      (poll + recv + LineReader;          queue
//    tick)             parse, shed, or enqueue)            │
//                                                          ▼
//                                              worker threads (dispatch;
//                                              cells parallelize replicas
//                                              on the shared ThreadPool)
//
// Capacity model: admission is the only queue, and it is bounded — when
// it is full a request is answered `overloaded` immediately by the
// reader (backpressure costs one reply line, never unbounded memory).
// Per-request deadlines are enforced twice: lazily at dequeue (a request
// whose deadline passed while queued is answered without running) and
// cooperatively inside cell bodies via CellContext::cancelled.
//
// Graceful drain (SIGTERM in the binary, or the `shutdown` method):
// stop accepting connections, answer new requests `shutting_down`,
// finish everything already admitted, then wake and join every thread.
// Results never depend on scheduling: run_cell seeds are a pure function
// of request content (handlers.cpp), so any worker count, pool size, or
// admission order produces byte-identical replies.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/ops/access_log.hpp"
#include "src/ops/window.hpp"
#include "src/serve/handlers.hpp"
#include "src/serve/protocol.hpp"

namespace recover::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;                    // 0 = ephemeral (read back via port())
  int workers = 2;                 // request executor threads
  std::size_t queue_capacity = 128;  // admission queue bound (≥ 1)
  std::int64_t default_deadline_ms = 0;  // applied when a request has no
                                         // deadline_ms; 0 = unlimited
  std::size_t max_line_bytes = kMaxLineBytes;
  bool cells_parallel = true;  // run_cell replicas on the shared pool
  int send_timeout_ms = 5000;  // SO_SNDTIMEO on accepted sockets: a reply
                               // write blocked this long (client stopped
                               // reading) marks the connection dead
                               // instead of wedging a worker; ≤0 = none
  /// recover.access/1 structured access log (docs/OBSERVABILITY.md);
  /// empty = disabled (and the request path pays nothing).
  std::string access_log_path;
  /// Rolling-window shape for `stats`/`/metrics` quantiles: window span
  /// ≈ window_slots × window_tick_ms (defaults: ~10 s).
  std::size_t window_slots = 10;
  int window_tick_ms = 1000;
  /// Request-to-result layer (empty = serve::dispatch).  The cluster
  /// router (src/cluster/) plugs in here: same sockets, admission queue,
  /// deadline enforcement, and drain, different method semantics.
  /// `shutdown` is still intercepted by the server before dispatch.
  Dispatcher dispatcher;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept/worker threads.  False (with
  /// a stderr diagnostic) if the socket cannot be set up.
  bool start();

  /// Bound port (after start(); resolves port 0 to the ephemeral pick).
  [[nodiscard]] int port() const { return port_; }

  /// Begins graceful drain: stop accepting, answer new requests
  /// shutting_down, keep executing what was admitted.  Idempotent,
  /// callable from any thread (including a request handler).
  void request_drain();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Blocks until the admission queue is empty and no request is in
  /// flight.  Meaningful after request_drain(); returns immediately if
  /// the server never started.
  void wait_drained();

  /// Full shutdown: drain, then join every thread and close every
  /// socket.  Idempotent.
  void stop();

  [[nodiscard]] ServerSnapshot snapshot() const;

  /// The access log sink (open only when options.access_log_path was
  /// set); exposed so the daemon can report written/dropped at exit.
  [[nodiscard]] const ops::AccessLog& access_log() const {
    return access_log_;
  }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> dead{false};  // peer gone; drop further writes
    /// 1-based accept order; req_id = "c<serial>-<seq>".  seq is only
    /// touched by this connection's reader thread, so it is plain.
    std::uint64_t serial = 0;
    std::uint64_t req_seq = 0;

    ~Connection();
  };

  struct Work {
    std::shared_ptr<Connection> conn;
    Request request;
    std::uint64_t deadline_ns = 0;  // steady-clock ns; 0 = none
    std::uint64_t enqueue_ns = 0;   // admission time (access-log queue_ns)
    std::string req_id;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn,
                   std::shared_ptr<std::atomic<bool>> done);
  void worker_loop();
  void ticker_loop();
  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void process(Work& work);
  void send_line(const std::shared_ptr<Connection>& conn,
                 std::string line);
  void reap_readers(bool join_all);

  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  bool started_ = false;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  struct Reader {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex readers_mutex_;
  std::vector<Reader> readers_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;    // workers wait for work
  std::condition_variable drained_cv_;  // wait_drained waits for idle
  std::deque<Work> queue_;
  std::uint64_t in_flight_ = 0;
  bool stop_workers_ = false;

  // Always-on counters (stats replies work without --metrics).
  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> connections_open_{0};
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> responses_ok_{0};
  std::atomic<std::uint64_t> shed_total_{0};
  std::atomic<std::uint64_t> deadline_exceeded_total_{0};
  std::atomic<std::uint64_t> protocol_errors_total_{0};

  // Rolling-window telemetry (ops::Windowed*, ticked by ticker_loop):
  // feeds the window_* fields of snapshot() and thus `stats` and the
  // admin plane's /metrics.  Latency quantiles ride the obs histogram
  // (zero unless metrics are enabled); request/shed rates ride the
  // always-on atomics above.
  std::uint64_t start_ns_ = 0;
  std::unique_ptr<ops::WindowedHistogram> window_latency_;
  std::unique_ptr<ops::WindowedCounter> window_requests_;
  std::unique_ptr<ops::WindowedCounter> window_shed_;
  std::thread ticker_;
  std::mutex ticker_mutex_;
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;

  ops::AccessLog access_log_;
};

}  // namespace recover::serve
