#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/rng/alias.hpp"
#include "src/rng/distributions.hpp"
#include "src/rng/engines.hpp"
#include "src/rng/fenwick.hpp"
#include "src/stats/summary.hpp"

namespace recover::rng {
namespace {

TEST(SplitMix64, KnownFirstOutputs) {
  // Reference values for seed 1234567 from the public-domain reference
  // implementation.
  SplitMix64 sm(0);
  const std::uint64_t a = sm();
  const std::uint64_t b = sm();
  EXPECT_NE(a, b);
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2(), a);  // deterministic
  EXPECT_EQ(sm2(), b);
}

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256PlusPlus a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  EXPECT_EQ(a(), b());
  Xoshiro256PlusPlus a2(42);
  (void)c();
  EXPECT_NE(a2(), c());
}

TEST(Xoshiro, JumpDecorrelatesStreams) {
  Xoshiro256PlusPlus a(7);
  Xoshiro256PlusPlus b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Philox, MatchesRandom123KnownAnswer) {
  // Reference vectors for philox4x32-10 from the Random123 test suite.
  Philox4x32 zero(0);
  const auto b = zero.block(0);
  EXPECT_EQ(b[0], 0x6627e8d5u);
  EXPECT_EQ(b[1], 0xe169c58du);
  EXPECT_EQ(b[2], 0xbc57ac4cu);
  EXPECT_EQ(b[3], 0x9b00dbd8u);
}

TEST(Philox, BlockIsPureFunctionOfCounter) {
  Philox4x32 p(0xDEADBEEF);
  const auto b1 = p.block(17);
  const auto b2 = p.block(17);
  EXPECT_EQ(b1, b2);
  EXPECT_NE(p.block(18), b1);
}

TEST(Philox, EngineInterfaceAdvances) {
  Philox4x32 p(1);
  const auto a = p();
  const auto b = p();
  EXPECT_NE(a, b);
}

TEST(DeriveStreamSeed, DistinctAcrossIndices) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) {
    seeds.push_back(derive_stream_seed(99, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(UniformBelow, RespectsBound) {
  Xoshiro256PlusPlus eng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(uniform_below(eng, 7), 7u);
  }
}

TEST(UniformBelow, ChiSquareUniformity) {
  Xoshiro256PlusPlus eng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<std::int64_t> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[uniform_below(eng, kBuckets)];
  }
  const std::vector<double> expected(kBuckets, 1.0 / kBuckets);
  const double stat = stats::chi_square_statistic(counts, expected);
  EXPECT_LT(stat, stats::chi_square_critical(kBuckets - 1, 0.001));
}

TEST(UniformReal, InUnitInterval) {
  Xoshiro256PlusPlus eng(3);
  stats::Summary s;
  for (int i = 0; i < 20000; ++i) {
    const double x = uniform_real(eng);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(UniformInt, CoversInclusiveRange) {
  Xoshiro256PlusPlus eng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = uniform_int(eng, -3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
    saw_lo = saw_lo || x == -3;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(MaxOfDUniform, MatchesPowerLawCdf) {
  // P(max of d uniforms over [0,n) <= k-1) = (k/n)^d.
  Xoshiro256PlusPlus eng(17);
  constexpr std::uint64_t n = 10;
  constexpr int d = 3;
  constexpr int kSamples = 200000;
  std::vector<std::int64_t> counts(n, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[max_of_d_uniform(eng, n, d)];
  }
  std::vector<double> expected(n);
  double prev = 0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    const double cur = std::pow(static_cast<double>(k) / n, d);
    expected[k - 1] = cur - prev;
    prev = cur;
  }
  const double stat = stats::chi_square_statistic(counts, expected);
  EXPECT_LT(stat, stats::chi_square_critical(static_cast<int>(n) - 1, 0.001));
}

TEST(Fenwick, PrefixSumsMatchNaive) {
  const std::vector<std::int64_t> w = {3, 0, 5, 1, 0, 2, 7};
  Fenwick f(w);
  std::int64_t run = 0;
  for (std::size_t i = 0; i <= w.size(); ++i) {
    EXPECT_EQ(f.prefix(i), run);
    if (i < w.size()) run += w[i];
  }
  EXPECT_EQ(f.total(), run);
}

TEST(Fenwick, PointUpdates) {
  Fenwick f(5);
  f.add(2, 10);
  f.add(4, 3);
  f.add(2, -4);
  EXPECT_EQ(f.at(2), 6);
  EXPECT_EQ(f.at(4), 3);
  EXPECT_EQ(f.total(), 9);
}

TEST(Fenwick, FindLocatesWeightedIndex) {
  const std::vector<std::int64_t> w = {2, 0, 3, 1};
  Fenwick f(w);
  // Targets 0,1 -> idx 0; 2,3,4 -> idx 2; 5 -> idx 3.
  EXPECT_EQ(f.find(0), 0u);
  EXPECT_EQ(f.find(1), 0u);
  EXPECT_EQ(f.find(2), 2u);
  EXPECT_EQ(f.find(4), 2u);
  EXPECT_EQ(f.find(5), 3u);
}

TEST(Fenwick, FindSkipsZeroWeightPrefix) {
  const std::vector<std::int64_t> w = {0, 0, 4};
  Fenwick f(w);
  EXPECT_EQ(f.find(0), 2u);
  EXPECT_EQ(f.find(3), 2u);
}

TEST(Alias, ProbabilitiesNormalized) {
  AliasTable table({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(table.probability(0), 0.1);
  EXPECT_DOUBLE_EQ(table.probability(3), 0.4);
}

TEST(Alias, EmpiricalFrequenciesMatch) {
  AliasTable table({1.0, 0.0, 3.0, 6.0});
  Xoshiro256PlusPlus eng(23);
  constexpr int kSamples = 200000;
  std::vector<std::int64_t> counts(4, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[table.sample(eng)];
  EXPECT_EQ(counts[1], 0);
  const std::vector<double> expected = {0.1, 0.0, 0.3, 0.6};
  const double stat = stats::chi_square_statistic(counts, expected);
  EXPECT_LT(stat, stats::chi_square_critical(2, 0.001));
}

class FenwickSamplingTest : public ::testing::TestWithParam<int> {};

TEST_P(FenwickSamplingTest, WeightedDrawMatchesWeights) {
  const int n = GetParam();
  Xoshiro256PlusPlus eng(static_cast<std::uint64_t>(n) * 1000 + 7);
  std::vector<std::int64_t> w(static_cast<std::size_t>(n));
  std::int64_t total = 0;
  for (auto& x : w) {
    x = static_cast<std::int64_t>(uniform_below(eng, 5));
    total += x;
  }
  if (total == 0) {
    w[0] = 1;
    total = 1;
  }
  Fenwick f(w);
  constexpr int kSamples = 60000;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < kSamples; ++i) {
    const auto target = static_cast<std::int64_t>(
        uniform_below(eng, static_cast<std::uint64_t>(total)));
    ++counts[f.find(target)];
  }
  std::vector<double> expected(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = static_cast<double>(w[i]) / static_cast<double>(total);
  }
  const double stat = stats::chi_square_statistic(counts, expected);
  EXPECT_LT(stat, stats::chi_square_critical(n - 1, 0.001));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FenwickSamplingTest,
                         ::testing::Values(2, 5, 16, 33, 100));

}  // namespace
}  // namespace recover::rng
