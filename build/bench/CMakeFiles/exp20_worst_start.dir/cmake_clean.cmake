file(REMOVE_RECURSE
  "CMakeFiles/exp20_worst_start.dir/exp20_worst_start.cpp.o"
  "CMakeFiles/exp20_worst_start.dir/exp20_worst_start.cpp.o.d"
  "exp20_worst_start"
  "exp20_worst_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp20_worst_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
