#include "src/certify/model.hpp"

#include <cstdlib>

#include "src/util/assert.hpp"

namespace recover::certify {

std::string describe(const Instance& instance) {
  return "n=" + std::to_string(instance.n) + " m=" +
         std::to_string(instance.m) + " d=" + std::to_string(instance.d) +
         " seed=" + std::to_string(instance.seed);
}

namespace {

/// Uniform draw in [lo, hi] from a SplitMix64 word (tiny ranges, modulo
/// bias is irrelevant for instance selection).
std::int64_t draw_range(rng::SplitMix64& eng, std::int64_t lo,
                        std::int64_t hi) {
  RL_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo + 1);
  return lo + static_cast<std::int64_t>(eng() % span);
}

}  // namespace

Instance draw_instance(const ChainModel& model, std::uint64_t seed) {
  rng::SplitMix64 eng(seed);
  Instance instance;
  instance.n = static_cast<std::size_t>(
      draw_range(eng, static_cast<std::int64_t>(model.n_min),
                 static_cast<std::int64_t>(model.n_max)));
  instance.m = draw_range(eng, model.m_min, model.m_max);
  instance.d =
      static_cast<int>(draw_range(eng, model.d_min, model.d_max));
  instance.seed = seed;
  return instance;
}

std::string key_of(const std::vector<std::int64_t>& values) {
  std::string key;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) key += ',';
    key += std::to_string(values[i]);
  }
  return key;
}

std::vector<std::int64_t> values_of(const std::string& key) {
  std::vector<std::int64_t> values;
  const char* p = key.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long long v = std::strtoll(p, &end, 10);
    RL_REQUIRE(end != p);
    values.push_back(static_cast<std::int64_t>(v));
    p = end;
    if (*p == ',') ++p;
  }
  RL_REQUIRE(!values.empty());
  return values;
}

void ModelRegistry::add(ChainModel model) {
  RL_REQUIRE(!model.name.empty());
  RL_REQUIRE(model.starts != nullptr);
  RL_REQUIRE(find(model.name) == nullptr);
  models_.push_back(std::move(model));
}

const ChainModel* ModelRegistry::find(std::string_view name) const {
  for (const auto& m : models_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

ModelRegistry& builtin_registry() {
  static ModelRegistry registry = [] {
    ModelRegistry r;
    register_builtin_models(r);
    return r;
  }();
  return registry;
}

}  // namespace recover::certify
