// Experiment E19 — Corollary 4.2 and Claims 5.1/5.2 verified EXACTLY:
// the one-step coupled expectation is enumerated (finite randomness for
// ABKU[d]) over EVERY Γ-pair of whole partition spaces, so each row is a
// machine-checked instance of the paper's inequality with zero sampling
// error.  Columns report the worst pair per space.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/exact_coupling_analysis.hpp"
#include "src/obs/run_record.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp19_exact_contraction",
                "E19: exact worst-pair contraction over whole spaces");
  cli.flag("sizes", "comma-separated m values (n = m)", "4,5,6,7,8");
  cli.flag("d", "ABKU choices", "2");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto d = static_cast<int>(cli.integer("d"));
  const balls::AbkuRule rule(d);

  util::Table table({"scenario", "n=m", "Gamma pairs", "worst E[d']",
                     "bound", "margin", "min P[merge]", "1/bound_merge",
                     "secs"});

  for (const std::int64_t m : sizes) {
    const auto n = static_cast<std::size_t>(m);
    util::Timer timer;
    const auto pairs = balls::enumerate_gamma_pairs(n, m);

    double worst_a = 0, min_merge_a = 1;
    double worst_b = 0, min_merge_b = 1;
    double min_merge_bound_b = 1;
    for (const auto& [v, u] : pairs) {
      const auto a = balls::exact_coupled_step_a(v, u, rule);
      worst_a = std::max(worst_a, a.expected_distance);
      min_merge_a = std::min(min_merge_a, a.merge_probability);
      const auto b = balls::exact_coupled_step_b(v, u, rule);
      worst_b = std::max(worst_b, b.expected_distance);
      min_merge_b = std::min(min_merge_b, b.merge_probability);
      min_merge_bound_b = std::min(
          min_merge_bound_b,
          1.0 / static_cast<double>(
                    std::max(v.nonempty_count(), u.nonempty_count())));
    }
    const double secs = timer.seconds();
    const double bound_a = 1.0 - 1.0 / static_cast<double>(m);
    table.row()
        .add("A")
        .integer(m)
        .integer(static_cast<std::int64_t>(pairs.size()))
        .num(worst_a, 6)
        .num(bound_a, 6)
        .num(bound_a - worst_a, 6)
        .num(min_merge_a, 4)
        .num(1.0 / static_cast<double>(m), 4)
        .num(secs / 2, 2);
    table.row()
        .add("B")
        .integer(m)
        .integer(static_cast<std::int64_t>(pairs.size()))
        .num(worst_b, 6)
        .num(1.0, 6)
        .num(1.0 - worst_b, 6)
        .num(min_merge_b, 4)
        .num(min_merge_bound_b, 4)
        .num(secs / 2, 2);
  }
  table.print(std::cout);
  run.add_table("exact_contraction", table);
  std::printf(
      "\n# Every margin is >= 0 and every min P[merge] >= its bound "
      "column: Corollary 4.2 and Claims 5.1/5.2 hold EXACTLY on every "
      "Gamma pair of these spaces (no Monte-Carlo error involved).\n");
  return 0;
}
