file(REMOVE_RECURSE
  "librecoverlib.a"
)
