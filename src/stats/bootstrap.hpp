// Percentile bootstrap for statistics of small replica samples.
//
// Experiment tables report derived quantities (fitted slopes, ratios of
// means) whose sampling distribution is awkward analytically; the
// bootstrap resamples the replica values with replacement and reports
// percentile confidence intervals.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace recover::stats {

struct BootstrapInterval {
  double point = 0;  // statistic on the original sample
  double lo = 0;     // lower percentile bound
  double hi = 0;     // upper percentile bound
};

/// Generic bootstrap: `statistic` maps a sample to a scalar.
BootstrapInterval bootstrap_interval(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    int resamples = 2000, double level = 0.95, std::uint64_t seed = 1);

/// Convenience: bootstrap CI of the sample mean.
BootstrapInterval bootstrap_mean(const std::vector<double>& sample,
                                 int resamples = 2000, double level = 0.95,
                                 std::uint64_t seed = 1);

/// Bootstrap CI for the ratio mean(a) / mean(b) of paired samples.
BootstrapInterval bootstrap_mean_ratio(const std::vector<double>& a,
                                       const std::vector<double>& b,
                                       int resamples = 2000,
                                       double level = 0.95,
                                       std::uint64_t seed = 1);

}  // namespace recover::stats
