file(REMOVE_RECURSE
  "CMakeFiles/exp15_removal_policies.dir/exp15_removal_policies.cpp.o"
  "CMakeFiles/exp15_removal_policies.dir/exp15_removal_policies.cpp.o.d"
  "exp15_removal_policies"
  "exp15_removal_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp15_removal_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
