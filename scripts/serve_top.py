#!/usr/bin/env python3
"""serve_top — a small live dashboard for the recover_serve admin plane.

Polls GET /metrics on the ops admin listener (docs/OBSERVABILITY.md,
"Live telemetry") and renders the serve SLO surface in place: readiness,
uptime, windowed qps / shed ratio / latency quantiles, cumulative
counters, and the admin plane's own request count.  Stdlib only.

Pointed at a recover_cluster admin port it additionally renders the
router view: cache hit ratio and occupancy, forward/failover counters,
and one row per backend (up, windowed qps, windowed p99, RTT estimate,
cumulative requests / errors / ejections).  The cluster section is
auto-detected from the scrape body — no flag needed.

    python3 scripts/serve_top.py --addr 127.0.0.1:9100
    python3 scripts/serve_top.py --addr 127.0.0.1:9100 --interval 0.5
    python3 scripts/serve_top.py --addr 127.0.0.1:9100 --once

Uses curses when stdout is a terminal; otherwise (pipes, CI, --once)
prints one plain-text frame per poll.  Exit with q or Ctrl-C.
"""

import argparse
import sys
import time
import urllib.error
import urllib.request

POLL_TIMEOUT_S = 2.0


def scrape(addr):
    """Fetch /metrics; returns (body, latency_seconds) or raises."""
    start = time.monotonic()
    with urllib.request.urlopen(
        f"http://{addr}/metrics", timeout=POLL_TIMEOUT_S
    ) as resp:
        body = resp.read().decode("utf-8", "replace")
    return body, time.monotonic() - start


def parse_metrics(body):
    """Prometheus text -> {series_with_labels: float}; comments skipped."""
    out = {}
    for line in body.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        if not series:
            continue
        try:
            out[series] = float(value)
        except ValueError:
            continue
    return out


def fmt_duration(seconds):
    seconds = int(seconds)
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h:d}:{m:02d}:{s:02d}"


def fmt_us(value):
    if value >= 1e6:
        return f"{value / 1e6:8.2f}s "
    if value >= 1e3:
        return f"{value / 1e3:8.2f}ms"
    return f"{value:8.1f}us"


BACKEND_SERIES = 'cluster_backend_up{backend="%s"}'


def backend_ids(metrics):
    """Backend label values, in the router's configured order (the
    exposition emits them in BackendConfig order, but a dict scramble is
    harmless — sort for a stable display)."""
    prefix = 'cluster_backend_up{backend="'
    ids = []
    for series in metrics:
        if series.startswith(prefix) and series.endswith('"}'):
            ids.append(series[len(prefix):-2])
    return sorted(ids)


def cluster_lines(metrics):
    """The router section of the frame; empty when the scrape body has
    no cluster series (i.e. the addr is a plain recover_serve)."""
    g = metrics.get
    if g("cluster_requests_total") is None:
        return []

    def backend(name, backend_id, default=0.0):
        return g(f'cluster_{name}{{backend="{backend_id}"}}', default)

    hits = g("cluster_cache_hits_total", 0.0)
    misses = g("cluster_cache_misses_total", 0.0)
    lines = [
        "",
        "  cluster",
        f"    forwards   {g('cluster_forwards_total', 0.0):10.0f}"
        f"      failovers  {g('cluster_failovers_total', 0.0):7.0f}"
        f"      exhausted {g('cluster_exhausted_total', 0.0):6.0f}",
        f"    cache hit  {g('cluster_cache_hit_ratio', 0.0):10.4f}"
        f"      hits/miss  {hits:.0f}/{misses:.0f}"
        f"      entries {g('cluster_cache_entries', 0.0):.0f}"
        f" ({g('cluster_cache_bytes', 0.0) / 1024.0:.0f} KiB)",
        "",
        f"    {'backend':<21} {'up':>4} {'qps':>8} {'p99':>10}"
        f" {'rtt':>8} {'reqs':>8} {'errs':>5} {'ejects':>6}",
    ]
    for backend_id in backend_ids(metrics):
        up = "up" if backend("backend_up", backend_id) > 0 else "DOWN"
        lines.append(
            f"    {backend_id:<21} {up:>4}"
            f" {backend('backend_qps', backend_id):8.1f}"
            f" {fmt_us(backend('backend_p99_us', backend_id))}"
            f" {backend('backend_rtt_ms', backend_id):6.2f}ms"
            f" {backend('backend_requests_total', backend_id):8.0f}"
            f" {backend('backend_errors_total', backend_id):5.0f}"
            f" {backend('backend_ejections_total', backend_id):6.0f}"
        )
    return lines


def build_frame(addr, metrics, scrape_s, error):
    """Render one dashboard frame as a list of lines."""
    g = metrics.get
    ready = g("serve_ready")
    if error is not None:
        state = "UNREACHABLE"
    elif ready is None:
        state = "UNKNOWN"
    elif g("serve_draining", 0.0) > 0:
        state = "DRAINING"
    else:
        state = "READY" if ready > 0 else "NOT READY"
    lines = [
        f"serve_top  {addr}  [{state}]"
        f"  up {fmt_duration(g('serve_uptime_seconds', 0.0))}"
        f"  scrape {scrape_s * 1e3:.1f}ms",
        "",
    ]
    if error is not None:
        lines.append(f"  scrape failed: {error}")
        return lines
    quantile = 'serve_window_request_us{quantile="%s"}'
    p50 = fmt_us(g(quantile % "0.5", 0.0))
    p95 = fmt_us(g(quantile % "0.95", 0.0))
    p99 = fmt_us(g(quantile % "0.99", 0.0))
    lines += [
        "  window (rolling ~10s)",
        f"    qps        {g('serve_window_qps', 0.0):10.1f}"
        f"      shed ratio {g('serve_window_shed_ratio', 0.0):7.4f}",
        f"    p50 {p50}   p95 {p95}   p99 {p99}",
        "",
        "  lifetime",
        f"    requests   {g('serve_requests', 0.0):10.0f}"
        f"      shed       {g('serve_shed', 0.0):7.0f}",
        f"    deadline   {g('serve_deadline_exceeded', 0.0):10.0f}"
        f"      proto_err  {g('serve_protocol_errors', 0.0):7.0f}",
        f"    queue      {g('serve_queue_depth', 0.0):10.0f}"
        f"      conns      {g('serve_connections', 0.0):7.0f}",
        f"    admin hits {g('ops_admin_requests', 0.0):10.0f}",
    ]
    count = g("serve_request_ns_count", 0.0)
    if count > 0:
        mean_us = g("serve_request_ns_sum", 0.0) / count / 1e3
        lines.append(f"    mean latency {fmt_us(mean_us)}  over"
                     f" {count:.0f} requests")
    lines += cluster_lines(metrics)
    return lines


def poll(addr):
    try:
        body, scrape_s = scrape(addr)
        return build_frame(addr, parse_metrics(body), scrape_s, None)
    except (urllib.error.URLError, OSError, TimeoutError) as e:
        return build_frame(addr, {}, 0.0, e)


def run_plain(addr, interval, once):
    while True:
        for line in poll(addr):
            print(line)
        sys.stdout.flush()
        if once:
            return 0
        print("-" * 64)
        time.sleep(interval)


def run_curses(addr, interval):
    import curses

    def loop(screen):
        curses.curs_set(0)
        screen.nodelay(True)
        screen.timeout(int(interval * 1000))
        while True:
            frame = poll(addr)
            screen.erase()
            rows, cols = screen.getmaxyx()
            for y, line in enumerate(frame[: rows - 1]):
                screen.addnstr(y, 0, line, cols - 1)
            screen.refresh()
            key = screen.getch()  # doubles as the poll sleep
            if key in (ord("q"), ord("Q")):
                return 0

    return curses.wrapper(loop)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--addr", default="127.0.0.1:9100",
                        help="admin plane host:port (default %(default)s)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="poll interval in seconds (default %(default)s)")
    parser.add_argument("--once", action="store_true",
                        help="print a single frame and exit (for scripts)")
    parser.add_argument("--plain", action="store_true",
                        help="force plain-text frames even on a terminal")
    args = parser.parse_args()

    use_curses = sys.stdout.isatty() and not args.once and not args.plain
    if use_curses:
        try:
            return run_curses(args.addr, args.interval)
        except ImportError:
            pass  # no curses in this python build; fall through
    try:
        return run_plain(args.addr, args.interval, args.once)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # Reader (e.g. `... | head`) went away; that's a clean exit.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
