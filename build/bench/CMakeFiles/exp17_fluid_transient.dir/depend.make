# Empty dependencies file for exp17_fluid_transient.
# This may be replaced when dependencies are built.
