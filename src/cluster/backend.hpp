// recover::cluster — one routed-to backend: a recover_serve process,
// its connection pool, its health, and its telemetry
// (docs/SERVING.md, "Cluster mode").
//
// The wire between router and backend is the same recover.req/1
// protocol clients speak; one pooled TCP connection carries one request
// at a time, so replies never interleave and matching is trivial.
// Pooled connections can go stale (the backend restarts or times the
// socket out), so a call that fails on a pooled connection is retried
// once on a fresh one before it counts as a backend failure.
//
// Health has two inputs, ANDed by healthy():
//   * active  — a prober thread polls GET /readyz on the backend's
//     admin plane every probe_interval_ms; a draining backend answers
//     503 there (--drain-grace holds the window open), which is how a
//     SIGTERM'd backend is ejected from routing BEFORE its socket goes
//     away.  Without an admin port the probe is skipped.
//   * passive — a transport failure (connect/send/recv) ejects the
//     backend for eject_cooldown_ms, after which it is probed again by
//     ordinary traffic (half-open).
//
// Telemetry mirrors the serve daemon's: always-on atomics plus
// ops::Windowed* rolling views (ticked by the router), surfaced as
// labeled cluster_backend_* samples on the router's /metrics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/ops/window.hpp"

namespace recover::cluster {

struct BackendConfig {
  std::string host = "127.0.0.1";
  int port = 0;        // recover.req/1 service port
  int admin_port = -1; // ops admin plane (/readyz); -1 = passive health only

  /// Stable identity: "host:port".  Names the backend on the ring, in
  /// metrics labels, and in logs.
  [[nodiscard]] std::string id() const {
    return host + ":" + std::to_string(port);
  }
};

struct BackendOptions {
  int connect_timeout_ms = 1000;
  /// Per-call wall cap when the request carries no deadline.
  int call_timeout_ms = 30000;
  int probe_interval_ms = 500;
  /// Passive ejection window after a transport failure.
  int eject_cooldown_ms = 1000;
  std::size_t max_idle_connections = 4;
  std::size_t window_slots = 10;  // rolling qps/latency view
};

class Backend {
 public:
  Backend(BackendConfig config, BackendOptions options);
  ~Backend();  // stop()

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// Starts the /readyz prober (no-op without an admin port; the
  /// backend then starts healthy and relies on passive ejection).
  void start();

  /// Joins the prober and closes every pooled connection.  Idempotent.
  void stop();

  enum class CallStatus {
    kOk,       // a complete reply line came back
    kConnect,  // could not establish a connection
    kSend,     // the request did not go out
    kRecv,     // the connection died before a full reply line
    kTimeout,  // deadline/call cap expired waiting for the reply
  };

  /// Sends one request line (newline appended here) and reads exactly
  /// one reply line.  `deadline_ns` (steady clock, 0 = none) bounds the
  /// whole call together with call_timeout_ms.  kOk means `reply_line`
  /// holds the backend's bytes verbatim (no trailing newline); every
  /// other status ejects the backend passively.
  CallStatus call(const std::string& request_line, std::uint64_t deadline_ns,
                  std::string& reply_line);

  [[nodiscard]] bool healthy() const;
  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] const BackendConfig& config() const { return config_; }

  /// Advances the rolling windows (router ticker thread, ~1 Hz).
  void tick();

  struct Telemetry {
    std::string id;
    bool healthy = false;
    std::uint64_t requests = 0;  // completed calls (kOk)
    std::uint64_t errors = 0;    // transport failures + timeouts
    std::uint64_t ejections = 0; // healthy→unhealthy transitions
    double window_qps = 0.0;
    double window_p50_us = 0.0;
    double window_p99_us = 0.0;
    double rtt_ms = 0.0;  // EWMA over completed calls
  };

  [[nodiscard]] Telemetry telemetry() const;

  /// EWMA round-trip estimate in ns (0 until the first completed call).
  /// The router subtracts this from the remaining client budget when it
  /// sets the forwarded deadline_ms (two-tier deadlines).
  [[nodiscard]] std::uint64_t rtt_estimate_ns() const {
    return rtt_ewma_ns_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    bool pooled = false;  // came from the idle pool (may be stale)
  };

  Conn acquire(std::uint64_t deadline_ns);
  void release(int fd);
  int connect_fresh(std::uint64_t deadline_ns);
  CallStatus call_once(Conn conn, const std::string& wire_line,
                       std::uint64_t deadline_ns, std::string& reply_line);
  void eject(const char* why);
  void probe_loop();

  BackendConfig config_;
  BackendOptions options_;
  std::string id_;
  bool started_ = false;

  std::mutex pool_mutex_;
  std::vector<int> idle_;

  std::atomic<bool> admin_ready_{true};
  std::atomic<std::uint64_t> ejected_until_ns_{0};
  std::atomic<std::uint64_t> ejections_total_{0};

  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> errors_total_{0};
  std::atomic<std::uint64_t> rtt_ewma_ns_{0};
  obs::Histogram& rtt_histogram_;
  std::unique_ptr<ops::WindowedHistogram> window_rtt_;
  std::unique_ptr<ops::WindowedCounter> window_requests_;

  std::thread probe_thread_;
  std::mutex probe_mutex_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;
};

}  // namespace recover::cluster
