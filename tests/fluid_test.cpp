// Tests for the RK4 integrator and Mitzenmacher fluid-limit substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/fluid/fluid_limit.hpp"
#include "src/fluid/ode.hpp"
#include "src/rng/engines.hpp"

namespace recover::fluid {
namespace {

TEST(Rk4, IntegratesExponentialDecay) {
  // y' = −y, y(0) = 1: y(2) = e^{−2}.
  OdeFn f = [](double, const std::vector<double>& y,
               std::vector<double>& dy) { dy[0] = -y[0]; };
  const auto y = rk4_integrate(f, {1.0}, 0.0, 2.0, 0.01);
  EXPECT_NEAR(y[0], std::exp(-2.0), 1e-7);
}

TEST(Rk4, IntegratesHarmonicOscillatorEnergyConserving) {
  OdeFn f = [](double, const std::vector<double>& y,
               std::vector<double>& dy) {
    dy[0] = y[1];
    dy[1] = -y[0];
  };
  const auto y = rk4_integrate(f, {1.0, 0.0}, 0.0, 2 * M_PI, 0.001);
  EXPECT_NEAR(y[0], 1.0, 1e-6);
  EXPECT_NEAR(y[1], 0.0, 1e-6);
}

TEST(Rk4, FixedPointStopsEarly) {
  OdeFn f = [](double, const std::vector<double>& y,
               std::vector<double>& dy) { dy[0] = 1.0 - y[0]; };
  const auto y = integrate_to_fixed_point(f, {0.0}, 0.01, 1e-10, 1e4);
  EXPECT_NEAR(y[0], 1.0, 1e-6);
}

TEST(FluidModel, BalancedProfileHasCorrectMass) {
  FluidModel model(Scenario::kA, 2, 2.5, 10);
  const auto s = model.balanced_profile();
  double mass = 0;
  for (const double v : s) mass += v;
  EXPECT_NEAR(mass, 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
  EXPECT_DOUBLE_EQ(s[2], 0.5);
  EXPECT_DOUBLE_EQ(s[3], 0.0);
}

class MassConservationTest
    : public ::testing::TestWithParam<std::pair<Scenario, int>> {};

TEST_P(MassConservationTest, EvolutionConservesAverageLoad) {
  const auto [scenario, d] = GetParam();
  FluidModel model(scenario, d, 1.0, 16);
  auto s = model.balanced_profile();
  s = model.evolve(std::move(s), 50.0, 0.01);
  double mass = 0;
  for (const double v : s) mass += v;
  EXPECT_NEAR(mass, 1.0, 1e-6);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_LE(s[i], s[i - 1] + 1e-9) << "tail not monotone at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, MassConservationTest,
    ::testing::Values(std::pair{Scenario::kA, 1}, std::pair{Scenario::kA, 2},
                      std::pair{Scenario::kA, 3}, std::pair{Scenario::kB, 2},
                      std::pair{Scenario::kB, 3}));

TEST(FluidModel, FixedPointTailDecaysDoublyExponentiallyForD2) {
  FluidModel model(Scenario::kA, 2, 1.0, 16);
  const auto s = model.fixed_point();
  // Doubly-exponential decay: s_{i+1} ≲ s_i², so log s drops super-fast.
  ASSERT_GT(s[0], 0.5);
  for (std::size_t i = 2; i + 1 < 8; ++i) {
    if (s[i + 1] < 1e-14) break;
    EXPECT_LT(s[i + 1], 4.0 * s[i] * s[i]) << "level " << i;
  }
}

TEST(FluidModel, OneChoiceTailDecaysOnlyGeometrically) {
  FluidModel a1(Scenario::kA, 1, 1.0, 24);
  FluidModel a2(Scenario::kA, 2, 1.0, 24);
  const auto s1 = a1.fixed_point();
  const auto s2 = a2.fixed_point();
  // At level 6 the one-choice tail dominates the two-choice tail hugely.
  EXPECT_GT(s1[5], 100 * s2[5]);
}

TEST(FluidModel, PredictedMaxLoadGrowsWithN) {
  FluidModel model(Scenario::kA, 1, 1.0, 24);
  const auto s = model.fixed_point();
  const auto small = FluidModel::predicted_max_load(s, 100);
  const auto large = FluidModel::predicted_max_load(s, 1e7);
  EXPECT_GT(large, small);
  EXPECT_GE(small, 1);
}

TEST(FluidModel, MatchesLongRunSimulationTail) {
  // Fluid fixed point vs simulated stationary tail of I_A-ABKU[2].
  const std::size_t n = 400;
  rng::Xoshiro256PlusPlus eng(61);
  balls::ScenarioAChain<balls::AbkuRule> chain(
      balls::LoadVector::balanced(n, static_cast<std::int64_t>(n)),
      balls::AbkuRule(2));
  for (int t = 0; t < 200000; ++t) chain.step(eng);
  std::vector<double> acc(8, 0.0);
  constexpr int kSamples = 400;
  for (int rep = 0; rep < kSamples; ++rep) {
    for (int t = 0; t < 200; ++t) chain.step(eng);
    const auto frac = tail_fractions(chain.state().loads(), 8);
    for (std::size_t i = 0; i < 8; ++i) acc[i] += frac[i];
  }
  for (double& v : acc) v /= kSamples;
  FluidModel model(Scenario::kA, 2, 1.0, 8);
  const auto s = model.fixed_point();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(acc[i], s[i], 0.05) << "level " << i + 1;
  }
}

TEST(FluidModel, TransientTracksSimulatedRecovery) {
  // Kurtz approximation along the trajectory (not just the fixed point):
  // from the crash profile, the integrated ODE matches the mean
  // simulated tail at an intermediate time.
  const std::size_t n = 512;
  const auto m = static_cast<std::int64_t>(n);
  constexpr std::size_t kLevels = 10;
  constexpr int kReplicas = 12;
  const double t_check = 2.0;  // ODE units = 2n steps
  std::vector<double> sim(kLevels, 0.0);
  for (int r = 0; r < kReplicas; ++r) {
    rng::Xoshiro256PlusPlus eng(900 + static_cast<std::uint64_t>(r));
    balls::ScenarioAChain<balls::AbkuRule> chain(
        balls::LoadVector::all_in_one(n, m), balls::AbkuRule(2));
    const auto steps =
        static_cast<std::int64_t>(t_check * static_cast<double>(n));
    for (std::int64_t t = 0; t < steps; ++t) chain.step(eng);
    const auto tails = tail_fractions(chain.state().loads(), kLevels);
    for (std::size_t i = 0; i < kLevels; ++i) sim[i] += tails[i];
  }
  for (double& v : sim) v /= kReplicas;

  FluidModel model(Scenario::kA, 2, 1.0, kLevels);
  const auto ode = model.evolve(
      tail_fractions(balls::LoadVector::all_in_one(n, m).loads(), kLevels),
      t_check, 0.002);
  for (std::size_t i = 0; i < kLevels; ++i) {
    EXPECT_NEAR(sim[i], ode[i], 0.05) << "level " << i + 1;
  }
}

TEST(InsertionLaw, AbkuLawSumsToOneAndMatchesClosedForm) {
  const auto law = abku_insertion_law(2);
  const std::vector<double> s = {0.8, 0.3, 0.05, 0.0};
  const auto p = law(s);
  ASSERT_EQ(p.size(), s.size() + 1);
  double sum = 0;
  for (const double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(p[0], 1.0 - 0.8 * 0.8, 1e-12);
  EXPECT_NEAR(p[1], 0.8 * 0.8 - 0.3 * 0.3, 1e-12);
}

TEST(InsertionLaw, AdapWithConstantScheduleEqualsAbku) {
  const auto adap = adap_insertion_law({3});
  const auto abku = abku_insertion_law(3);
  const std::vector<double> s = {0.9, 0.5, 0.2, 0.01, 0.0, 0.0};
  const auto pa = adap(s);
  const auto pb = abku(s);
  for (std::size_t l = 0; l < pa.size(); ++l) {
    EXPECT_NEAR(pa[l], pb[l], 1e-12) << "load " << l;
  }
}

TEST(InsertionLaw, AdapLawMatchesRuleOnFiniteSystem) {
  // The fluid DP evaluated at the EXACT tail profile of a finite state
  // must reproduce AdapRule::placement_pmf aggregated by load.
  const balls::LoadVector v =
      balls::LoadVector::from_loads({5, 3, 3, 1, 0, 0});
  const std::vector<int> x = {1, 2, 2, 4, 4, 4};
  const balls::AdapRule rule{balls::ThresholdSchedule(x)};
  const auto index_pmf = rule.placement_pmf(v);
  // Aggregate by load value.
  std::vector<double> by_load(10, 0.0);
  for (std::size_t j = 0; j < v.bins(); ++j) {
    by_load[static_cast<std::size_t>(v.load(j))] += index_pmf[j];
  }
  const auto law = adap_insertion_law(x);
  const auto fluid_pmf = law(tail_fractions(v.loads(), 8));
  for (std::size_t l = 0; l < 8; ++l) {
    EXPECT_NEAR(fluid_pmf[l], by_load[l], 1e-9) << "load " << l;
  }
}

TEST(FluidModel, AdapModelConservesMassAndMatchesSimulation) {
  FluidModel model(Scenario::kA, adap_insertion_law({1, 2, 3, 4}), 1.0, 12);
  auto s = model.balanced_profile();
  s = model.evolve(std::move(s), 40.0, 0.01);
  double mass = 0;
  for (const double v : s) mass += v;
  EXPECT_NEAR(mass, 1.0, 1e-6);

  // Long-run simulated tails of I_A-ADAP(x) vs the fluid fixed point.
  const std::size_t n = 400;
  rng::Xoshiro256PlusPlus eng(63);
  balls::ScenarioAChain<balls::AdapRule> chain(
      balls::LoadVector::balanced(n, static_cast<std::int64_t>(n)),
      balls::AdapRule{balls::ThresholdSchedule({1, 2, 3, 4})});
  for (int t = 0; t < 150000; ++t) chain.step(eng);
  std::vector<double> acc(6, 0.0);
  constexpr int kSamples = 300;
  for (int rep = 0; rep < kSamples; ++rep) {
    for (int t = 0; t < 200; ++t) chain.step(eng);
    const auto frac = tail_fractions(chain.state().loads(), 6);
    for (std::size_t i = 0; i < 6; ++i) acc[i] += frac[i];
  }
  for (double& v : acc) v /= kSamples;
  const auto fixed = model.fixed_point();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(acc[i], fixed[i], 0.05) << "level " << i + 1;
  }
}

TEST(TailFractions, CountsAtLeastLevels) {
  const auto s = tail_fractions({3, 1, 0, 0}, 5);
  EXPECT_DOUBLE_EQ(s[0], 0.5);   // loads >= 1
  EXPECT_DOUBLE_EQ(s[1], 0.25);  // loads >= 2
  EXPECT_DOUBLE_EQ(s[2], 0.25);  // loads >= 3
  EXPECT_DOUBLE_EQ(s[3], 0.0);
}

}  // namespace
}  // namespace recover::fluid
