// Shared-memory fork-join pool in the OpenMP parallel-for style the domain
// guides recommend: a fixed set of workers, static chunking, and a
// deterministic seed per logical index so results do not depend on the
// number of threads or on scheduling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace recover::parallel {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size()) + 1;  // + caller thread
  }

  /// Runs body(i) for i in [0, count), blocking until all complete.
  /// Indices are divided into contiguous chunks, one per participant;
  /// the calling thread executes a chunk too, so a 1-thread pool has no
  /// synchronization overhead beyond a branch.
  ///
  /// Reentrancy: a body that calls for_each_index on the SAME pool (the
  /// sweep scheduler's nested-submission pattern — cells running on pool
  /// workers that themselves parallelize replicas) is detected via a
  /// thread-local marker and executed inline, serially, on the calling
  /// thread.  That keeps results deterministic and cannot deadlock; the
  /// outer parallel region already owns the workers.  Distinct threads
  /// dispatching concurrently on one pool are serialized by a dispatch
  /// mutex, so overlapping external parallel regions are safe too.
  void for_each_index(std::uint64_t count,
                      const std::function<void(std::uint64_t)>& body);

  /// Process-wide pool, sized from hardware_concurrency; lazily created.
  static ThreadPool& global();

 private:
  struct Task {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  /// Serializes whole dispatches (setup, chunk execution, completion
  /// wait) issued by distinct external threads; nested same-pool calls
  /// never reach it (they run inline).
  std::mutex dispatch_mutex_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(std::uint64_t)>* body_ = nullptr;
  std::vector<Task> tasks_;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().
void parallel_for(std::uint64_t count,
                  const std::function<void(std::uint64_t)>& body);

}  // namespace recover::parallel
