# Empty dependencies file for recoverlib.
# This may be replaced when dependencies are built.
