// Cross-module integration tests: the full pipelines the experiments run,
// validated end-to-end on small instances.
#include <gtest/gtest.h>

#include <cmath>

#include "src/balls/coupling_a.hpp"
#include "src/balls/exact_chain.hpp"
#include "src/balls/grand_coupling.hpp"
#include "src/balls/random_states.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/core/coalescence.hpp"
#include "src/core/contraction.hpp"
#include "src/core/exact_mixing.hpp"
#include "src/core/path_coupling.hpp"
#include "src/core/recovery.hpp"
#include "src/fluid/fluid_limit.hpp"
#include "src/orient/chain.hpp"
#include "src/rng/engines.hpp"

namespace recover {
namespace {

// Pipeline 1 (exp09): exact τ(1/4) ≤ typical coalescence quantile ≤
// Theorem 1 bound, on a small instance where all three are computable.
TEST(Integration, ExactMixingVsCoalescenceVsLemmaBound) {
  const std::size_t n = 5;
  const std::int64_t m = 5;
  balls::PartitionSpace space(n, m);
  const auto chain = balls::build_exact_chain(
      space, balls::RemovalKind::kBallWeighted, balls::AbkuRule(2));
  const auto pi = core::stationary_distribution(chain);
  const auto exact = core::exact_mixing_time(chain, pi, 0.25, 5000);
  ASSERT_GT(exact.mixing_time, 0);

  core::CoalescenceOptions opts;
  opts.replicas = 64;
  opts.seed = 5;
  opts.max_steps = 100000;
  opts.parallel = false;
  const auto coal = core::measure_coalescence(
      [&](std::uint64_t) {
        return balls::GrandCouplingA<balls::AbkuRule>(
            balls::LoadVector::all_in_one(n, m),
            balls::LoadVector::balanced(n, m), balls::AbkuRule(2));
      },
      opts);
  ASSERT_EQ(coal.censored, 0);

  const double lemma_bound = core::theorem1_bound(m, 0.25);
  // Coupling inequality: Pr[T > t] bounds the TV distance, so the 75th
  // percentile of T should not undershoot τ(1/4); and the Lemma bound
  // dominates the exact mixing time.
  EXPECT_LE(static_cast<double>(exact.mixing_time), lemma_bound);
  EXPECT_GE(coal.q95, static_cast<double>(exact.mixing_time) * 0.5)
      << "coalescence implausibly fast vs exact mixing";
}

// Pipeline 2 (exp04): measured contraction parameters plugged into the
// Path Coupling Lemma reproduce Theorem 1's bound shape.
TEST(Integration, MeasuredContractionYieldsValidBound) {
  const std::size_t n = 8;
  const std::int64_t m = 8;
  const balls::AbkuRule rule(2);
  const auto est = core::estimate_contraction(
      [&](int p, rng::Xoshiro256PlusPlus& eng) {
        return balls::random_gamma_pair(n, m, eng, 1 + p % 3);
      },
      [&](std::pair<balls::LoadVector, balls::LoadVector>& pair,
          rng::Xoshiro256PlusPlus& eng) {
        return balls::coupled_step_a(pair.first, pair.second, rule, eng);
      },
      6, 4000, 7);
  ASSERT_LT(est.beta_hat, 1.0);
  const double measured_bound = core::path_coupling_bound_contractive(
      est.beta_hat, static_cast<double>(m), 0.25);
  const double theorem_bound = core::theorem1_bound(m, 0.25);
  // The measured bound should land within a small factor of the theorem.
  EXPECT_LT(measured_bound, 3.0 * theorem_bound);
  EXPECT_GT(measured_bound, theorem_bound / 3.0);
}

// Pipeline 3 (exp03 shape): at equal (n, m), scenario B mixes much more
// slowly than scenario A — the paper's central qualitative contrast.
TEST(Integration, ScenarioBSlowerThanScenarioA) {
  const std::size_t n = 16;
  const std::int64_t m = 16;
  core::CoalescenceOptions opts;
  opts.replicas = 16;
  opts.seed = 9;
  opts.max_steps = 2'000'000;
  opts.parallel = false;
  const auto a = core::measure_coalescence(
      [&](std::uint64_t) {
        return balls::GrandCouplingA<balls::AbkuRule>(
            balls::LoadVector::all_in_one(n, m),
            balls::LoadVector::balanced(n, m), balls::AbkuRule(2));
      },
      opts);
  const auto b = core::measure_coalescence(
      [&](std::uint64_t) {
        return balls::GrandCouplingB<balls::AbkuRule>(
            balls::LoadVector::all_in_one(n, m),
            balls::LoadVector::balanced(n, m), balls::AbkuRule(2));
      },
      opts);
  ASSERT_EQ(a.censored, 0);
  ASSERT_EQ(b.censored, 0);
  EXPECT_GT(b.steps.mean(), 2.0 * a.steps.mean());
}

// Pipeline 4 (exp07): fluid-model typical band + recovery estimator.
TEST(Integration, RecoveryIntoFluidTypicalBand) {
  const std::size_t n = 128;
  const auto m = static_cast<std::int64_t>(n);
  fluid::FluidModel model(fluid::Scenario::kA, 2, 1.0, 16);
  const auto typical = fluid::FluidModel::predicted_max_load(
      model.fixed_point(), static_cast<double>(n));
  ASSERT_GE(typical, 2);

  core::TrajectoryOptions opts;
  opts.max_steps =
      6 * static_cast<std::int64_t>(core::theorem1_bound(m, 0.25));
  opts.sample_interval = 8;
  const auto stats = core::measure_recovery(
      [&](int) {
        return balls::ScenarioAChain<balls::AbkuRule>(
            balls::LoadVector::all_in_one(n, m), balls::AbkuRule(2));
      },
      [](const auto& c) { return static_cast<double>(c.state().max_load()); },
      0.0, static_cast<double>(typical + 1), 6, 10, opts, 13);
  EXPECT_EQ(stats.censored, 0);
  EXPECT_LT(stats.hitting_steps.mean(),
            2.0 * core::theorem1_bound(m, 0.25));
}

// Pipeline 5 (exp06/exp13): edge orientation recovers from an
// adversarially unfair state well within the Theorem 2 horizon.
TEST(Integration, OrientationRecoversWithinTheorem2Horizon) {
  const std::size_t n = 24;
  orient::GreedyOrientationChain chain(
      orient::DiffState::spread(n, static_cast<std::int64_t>(n / 2)));
  const double n2ln2 = static_cast<double>(n) * static_cast<double>(n) *
                       std::log(static_cast<double>(n)) *
                       std::log(static_cast<double>(n));
  core::TrajectoryOptions opts;
  opts.max_steps = static_cast<std::int64_t>(8 * n2ln2);
  opts.sample_interval = 16;
  rng::Xoshiro256PlusPlus eng(15);
  const auto series = core::record_trajectory(
      chain,
      [](const auto& c) {
        return static_cast<double>(c.state().unfairness());
      },
      opts, 17);
  const auto hit = core::first_sustained_entry(series, 0.0, 4.0, 8);
  ASSERT_GE(hit, 0) << "never recovered to unfairness <= 4";
  EXPECT_LT(static_cast<double>((hit + 1) * opts.sample_interval),
            4 * n2ln2);
}

// Pipeline 6: grand-coupling coalescence upper bound is consistent with
// the exact worst-case TV decay curve (coupling inequality in action).
TEST(Integration, CouplingInequalityAgainstExactTvCurve) {
  const std::size_t n = 4;
  const std::int64_t m = 6;
  balls::PartitionSpace space(n, m);
  const auto chain = balls::build_exact_chain(
      space, balls::RemovalKind::kBallWeighted, balls::AbkuRule(2));
  const auto pi = core::stationary_distribution(chain);
  const auto exact = core::exact_mixing_time(chain, pi, 0.05, 5000);
  ASSERT_GT(exact.mixing_time, 0);

  // Empirical Pr[T > t] from the coupling at t = exact mixing time must
  // be at least the worst-case TV at that t (coupling inequality gives
  // TV <= Pr[T > t]; here we check the empirical direction with slack).
  core::CoalescenceOptions opts;
  opts.replicas = 400;
  opts.seed = 31;
  opts.max_steps = 100000;
  opts.parallel = false;
  const auto times = core::run_coalescence_trials(
      [&](std::uint64_t) {
        return balls::GrandCouplingA<balls::AbkuRule>(
            balls::LoadVector::all_in_one(n, m),
            balls::LoadVector::balanced(n, m), balls::AbkuRule(2));
      },
      opts);
  const auto t_star = exact.mixing_time;
  std::int64_t still_apart = 0;
  for (const auto t : times) {
    if (t < 0 || t > t_star) ++still_apart;
  }
  const double p_apart =
      static_cast<double>(still_apart) / static_cast<double>(times.size());
  const double tv_at_tstar =
      exact.worst_tv_by_t[static_cast<std::size_t>(t_star - 1)];
  EXPECT_GE(p_apart + 0.05, tv_at_tstar);
}

}  // namespace
}  // namespace recover
