// Coalescence-time measurement for grand couplings.
//
// A Coupling type must provide:
//   template step(Engine&);   — one coupled phase of both copies
//   bool coalesced() const;   — copies identical
//   int64 distance() const;   — current Δ (monitoring / early stop)
//
// Couplings here keep equal copies equal (shared randomness), so the
// first meeting time T is well defined and ‖L(X_t | X_0 = x) − L(X_t |
// X_0 = y)‖ ≤ Pr[T > t] (the coupling inequality); the empirical
// distribution of T over replicas therefore upper-bounds the recovery
// time of the process from the chosen pair of starts.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/kernel/kernel.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/progress.hpp"
#include "src/obs/trace.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/summary.hpp"
#include "src/util/assert.hpp"

namespace recover::core {

struct CoalescenceStats {
  stats::Summary steps;       // over replicas that coalesced
  double q50 = 0;             // median coalescence time
  double q95 = 0;             // 95th percentile ("w.h.p." column)
  std::int64_t censored = 0;  // replicas still apart at max_steps
  std::int64_t max_steps = 0;
};

/// Aggregates raw per-replica times (negative value = censored).
CoalescenceStats summarize_coalescence(const std::vector<std::int64_t>& times,
                                       std::int64_t max_steps);

struct CoalescenceOptions {
  int replicas = 32;
  std::uint64_t seed = 1;
  std::int64_t max_steps = 1'000'000;
  /// Coalescence is tested every `check_interval` steps; the reported
  /// time is rounded up to a multiple of it (equal copies stay equal, so
  /// this only coarsens, never misses, the meeting time).
  std::int64_t check_interval = 1;
  bool parallel = true;
  /// Cooperative cancellation, polled once per check-interval burst
  /// (empty = never).  A cancelled replica stops early and reports as
  /// censored; callers that cancel (the serve deadline path) discard the
  /// whole result, so an uncancelled run's output is never affected.
  std::function<bool()> cancelled;
};

/// Runs independent replicas of `make_coupling(replica_index)` and
/// measures first meeting times.  Each replica gets a deterministic
/// stream seed derived from options.seed, so results are reproducible
/// and independent of thread count.
template <typename MakeCoupling>
std::vector<std::int64_t> run_coalescence_trials(
    MakeCoupling&& make_coupling, const CoalescenceOptions& options) {
  RL_REQUIRE(options.replicas > 0);
  RL_REQUIRE(options.max_steps > 0);
  RL_REQUIRE(options.check_interval > 0);
  static obs::Counter& replicas_run =
      obs::Registry::global().counter("coalescence.replicas");
  static obs::Counter& replicas_censored =
      obs::Registry::global().counter("coalescence.censored");
  static obs::Counter& steps_total =
      obs::Registry::global().counter("coalescence.steps");
  static obs::Histogram& steps_hist =
      obs::Registry::global().histogram("coalescence.meeting_steps");
  static obs::Histogram& replica_ns =
      obs::Registry::global().histogram("coalescence.replica_ns");
  obs::Progress progress("coalescence",
                         static_cast<std::uint64_t>(options.replicas));
  std::vector<std::int64_t> times(static_cast<std::size_t>(options.replicas));
  auto body = [&](std::uint64_t r) {
    obs::ScopedSpan span(replica_ns);
    // substream (not derive_stream_seed): the trial seed is a pure
    // function of (options.seed, r), so the r-th replica draws the same
    // stream under any schedule, and nested substreams (sweep cell seed
    // -> trial seed) stay independent.
    rng::Xoshiro256PlusPlus eng(rng::substream(options.seed, r));
    auto coupling = make_coupling(r);
    std::int64_t t = 0;
    std::int64_t result = -1;
    while (t < options.max_steps) {
      if (options.cancelled && options.cancelled()) break;
      const std::int64_t burst =
          std::min(options.check_interval, options.max_steps - t);
      kernel::advance(coupling, eng, burst);
      t += burst;
      if (coupling.coalesced()) {
        result = t;
        break;
      }
    }
    times[r] = result;
    replicas_run.add();
    steps_total.add(static_cast<std::uint64_t>(t));
    if (result >= 0) {
      steps_hist.record(static_cast<std::uint64_t>(result));
      progress.tick(1, 0);
    } else {
      replicas_censored.add();
      progress.tick(1, 1);
    }
  };
  if (options.parallel) {
    parallel::parallel_for(static_cast<std::uint64_t>(options.replicas), body);
  } else {
    for (std::uint64_t r = 0; r < static_cast<std::uint64_t>(options.replicas);
         ++r) {
      body(r);
    }
  }
  return times;
}

/// Convenience: trials + summary in one call.
template <typename MakeCoupling>
CoalescenceStats measure_coalescence(MakeCoupling&& make_coupling,
                                     const CoalescenceOptions& options) {
  const auto times = run_coalescence_trials(
      std::forward<MakeCoupling>(make_coupling), options);
  return summarize_coalescence(times, options.max_steps);
}

}  // namespace recover::core
