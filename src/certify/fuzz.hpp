// Structure-aware protocol fuzzer for recover::serve.
//
// The serve wire contract (docs/SERVING.md) is small and closed: one
// newline-delimited `recover.req/1` frame in, exactly one
// `recover.resp/1` frame out, errors drawn from a six-code taxonomy.
// The fuzzer generates deterministic mutated frames — truncations,
// splices of two valid frames, JSON depth bombs around the 64-level
// nesting cap, UTF-16 surrogate abuse, oversized lines around the
// 64 KiB framing cap, byte flips, type confusion on every field, and
// plain garbage — and asserts the contract held for every single frame:
// a well-formed reply arrived (no hang, 1:1 accounting) and any error
// code belongs to the taxonomy.
//
// Two drive modes share the generator and the validator:
//   fuzz_handlers  — loopback through LineReader + parse_request +
//                    dispatch, no sockets (unit tests, regression corpus)
//   fuzz_server    — a real TCP client against a live recover_serve
//                    (the CI gate), with torn writes and a reply deadline
//
// Frame `i` of master seed `s` is a pure function of (s, i) via
// rng::substream, so a failing index reported by certify_runner
// reproduces exactly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace recover::certify {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::int64_t frames = 10000;
  /// fuzz_server: max wall-clock wait for a batch of replies before the
  /// server is declared hung.
  std::int64_t reply_timeout_ms = 10000;
  /// fuzz_server: frames pipelined per write burst.
  int batch = 64;
};

struct FuzzViolation {
  std::int64_t frame_index = -1;
  std::string kind;    // "no_reply" | "bad_reply" | "extra_reply" | ...
  std::string detail;
  std::string frame;   // offending input, truncated for reports
};

struct FuzzReport {
  std::int64_t frames = 0;
  std::int64_t replies = 0;
  std::int64_t ok_replies = 0;
  /// Error replies bucketed by taxonomy code name.
  std::map<std::string, std::int64_t> error_counts;
  std::vector<FuzzViolation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Deterministic mutated frame `index` of master seed `seed` (no
/// trailing newline; never contains one — 1:1 line accounting is part of
/// the contract under test).
std::string fuzz_frame(std::uint64_t seed, std::int64_t index);

/// "" when `line` is a valid recover.resp/1 with a taxonomy-conformant
/// error (or ok result); otherwise a human-readable reason.
std::string validate_reply_line(const std::string& line);

/// Taxonomy code name of an error reply ("" for ok replies or
/// unparseable lines).  For the report's error histogram.
std::string reply_error_code(const std::string& line);

/// Loopback fuzz: every frame through the framing + parse + dispatch
/// pipeline in-process.
FuzzReport fuzz_handlers(const FuzzOptions& options);

/// Live fuzz against a serving recover_serve at host:port.
FuzzReport fuzz_server(const std::string& host, int port,
                       const FuzzOptions& options);

/// One-line reproduction recipe for a violation.
std::string fuzz_repro(const FuzzViolation& violation,
                       const FuzzOptions& options);

}  // namespace recover::certify
