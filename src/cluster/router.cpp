#include "src/cluster/router.hpp"

#include <chrono>
#include <cstdio>

#include "src/cluster/digest.hpp"
#include "src/obs/json_reader.hpp"
#include "src/obs/json_writer.hpp"

namespace recover::cluster {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Maps a wire error code name back to the enum (the closed taxonomy in
/// protocol.hpp).  False for anything outside it — a reply the router
/// does not understand is treated as a failed backend, not forwarded.
bool code_from_name(std::string_view name, serve::ErrorCode& out) {
  static constexpr serve::ErrorCode kCodes[] = {
      serve::ErrorCode::kParseError,       serve::ErrorCode::kUnknownMethod,
      serve::ErrorCode::kInvalidParams,    serve::ErrorCode::kOverloaded,
      serve::ErrorCode::kDeadlineExceeded, serve::ErrorCode::kShuttingDown,
  };
  for (const serve::ErrorCode code : kCodes) {
    if (serve::error_code_name(code) == name) {
      out = code;
      return true;
    }
  }
  return false;
}

/// The request line the router sends a backend: semantically the
/// client's run_cell, re-serialized in canonical field order with the
/// router's own correlation id and the per-hop deadline.  Axis order is
/// preserved from the client request — it is part of the cell identity.
std::string forward_request_line(const serve::RunCellRequest& req,
                                 std::uint64_t id,
                                 std::int64_t deadline_ms) {
  std::string line = "{\"schema\":\"recover.req/1\",\"id\":";
  line += std::to_string(id);
  line += ",\"method\":\"run_cell\",\"params\":{\"exp\":\"";
  line += obs::json_escape(req.exp->name);
  line += "\",\"seed\":";
  line += std::to_string(req.seed);
  line += ",\"params\":{";
  bool first = true;
  for (const auto& [name, value] : req.cell.params) {
    if (!first) line += ',';
    first = false;
    line += '"';
    line += obs::json_escape(name);
    line += "\":";
    line += std::to_string(value);
  }
  line += "}}";
  if (deadline_ms >= 0) {
    line += ",\"deadline_ms\":";
    line += std::to_string(deadline_ms);
  }
  line += '}';
  return line;
}

serve::HandlerResult error_result(serve::ErrorCode code,
                                  std::string message,
                                  std::string cell_key = {}) {
  serve::HandlerResult r;
  r.ok = false;
  r.code = code;
  r.message = std::move(message);
  r.cell_key = std::move(cell_key);
  return r;
}

}  // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      ring_(options_.ring_vnodes),
      cache_(options_.cache_entries) {
  backends_.reserve(options_.backends.size());
  for (std::size_t i = 0; i < options_.backends.size(); ++i) {
    backends_.push_back(std::make_unique<Backend>(options_.backends[i],
                                                  options_.backend));
    ring_.add(i, backends_.back()->id());
  }
  options_.server.dispatcher =
      [this](const serve::Request& req, const serve::HandlerContext& ctx) {
        return dispatch(req, ctx);
      };
  server_ = std::make_unique<serve::Server>(options_.server);
}

Router::~Router() { stop(); }

bool Router::start() {
  if (started_) return true;
  if (backends_.empty()) {
    std::fprintf(stderr, "cluster: no backends configured\n");
    return false;
  }
  if (!server_->start()) return false;
  for (auto& backend : backends_) backend->start();
  ticker_ = std::thread([this] { ticker_loop(); });
  started_ = true;
  return true;
}

void Router::stop() {
  server_->stop();
  if (ticker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(ticker_mutex_);
      ticker_stop_ = true;
    }
    ticker_cv_.notify_all();
    ticker_.join();
  }
  for (auto& backend : backends_) backend->stop();
}

RouterStats Router::stats() const {
  RouterStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  const ResultCache::Stats cache = cache_.stats();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.forwards = forwards_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  return s;
}

std::vector<Backend::Telemetry> Router::backend_telemetry() const {
  std::vector<Backend::Telemetry> out;
  out.reserve(backends_.size());
  for (const auto& backend : backends_) {
    out.push_back(backend->telemetry());
  }
  return out;
}

serve::HandlerResult Router::dispatch(const serve::Request& req,
                                      const serve::HandlerContext& ctx) {
  if (req.method == "run_cell") return route_run_cell(req, ctx);
  // ping / list_cells / stats are answered locally: the router links
  // the same sweep registry, so list_cells is byte-identical to a
  // backend's reply, and stats reports the router's own snapshot.
  return serve::dispatch(req, ctx);
}

serve::HandlerResult Router::route_run_cell(
    const serve::Request& req, const serve::HandlerContext& ctx) {
  serve::RunCellRequest parsed;
  std::string parse_message;
  if (!serve::parse_run_cell(req.params, parsed, parse_message)) {
    return error_result(serve::ErrorCode::kInvalidParams,
                        std::move(parse_message));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string cell_key = parsed.cell.key();
  const std::string key = cache_key(parsed);

  serve::HandlerResult ok;
  ok.ok = true;
  ok.cell_key = cell_key;
  if (cache_.get(key, ok.result_json)) {
    return ok;  // cached bytes are the backend's bytes, verbatim
  }

  const std::vector<std::size_t> order =
      ring_.route(placement_digest(parsed));
  std::vector<bool> attempted(backends_.size(), false);
  bool any_attempt = false;
  // Pass 0 walks only healthy candidates; pass 1 retries the ejected
  // ones as a last resort (health is advisory — a stale probe must not
  // turn a servable request into an error).
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::size_t idx : order) {
      if (attempted[idx]) continue;
      Backend& backend = *backends_[idx];
      if (pass == 0 && !backend.healthy()) continue;
      if (ctx.deadline_ns != 0 && now_ns() >= ctx.deadline_ns) {
        return error_result(serve::ErrorCode::kDeadlineExceeded,
                            "deadline expired while routing", cell_key);
      }
      attempted[idx] = true;
      if (any_attempt) failovers_.fetch_add(1, std::memory_order_relaxed);
      any_attempt = true;
      forwards_.fetch_add(1, std::memory_order_relaxed);

      // Two-tier deadline: hand the backend what remains of the client
      // budget minus the round trip we expect to spend talking to it,
      // so its deadline_exceeded reply still arrives inside ours.
      std::int64_t forward_deadline_ms = -1;
      if (ctx.deadline_ns != 0) {
        const std::uint64_t now = now_ns();
        const std::uint64_t remaining =
            ctx.deadline_ns > now ? ctx.deadline_ns - now : 0;
        const std::uint64_t rtt = backend.rtt_estimate_ns();
        const std::uint64_t budget = remaining > rtt ? remaining - rtt : 0;
        forward_deadline_ms =
            std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                          budget / 1000000u));
      }
      const std::string line = forward_request_line(
          parsed, forward_id_.fetch_add(1, std::memory_order_relaxed) + 1,
          forward_deadline_ms);
      std::string reply;
      const Backend::CallStatus status =
          backend.call(line, ctx.deadline_ns, reply);
      if (status == Backend::CallStatus::kTimeout &&
          ctx.deadline_ns != 0 && now_ns() >= ctx.deadline_ns) {
        return error_result(serve::ErrorCode::kDeadlineExceeded,
                            "deadline expired while forwarded", cell_key);
      }
      if (status != Backend::CallStatus::kOk) {
        continue;  // transport failure: re-hash to the next candidate
      }
      if (serve::extract_result(reply, ok.result_json)) {
        cache_.put(key, ok.result_json);
        return ok;
      }
      // An error reply.  Failover-eligible codes mean "this backend
      // cannot take the work right now"; everything else is the
      // request's own answer and is forwarded verbatim.
      obs::JsonValue doc;
      serve::ErrorCode code = serve::ErrorCode::kOverloaded;
      std::string message;
      if (obs::parse_json(reply, doc) && doc.is_object()) {
        const obs::JsonValue* error = doc.find("error");
        const obs::JsonValue* code_field =
            error != nullptr ? error->find("code") : nullptr;
        const obs::JsonValue* message_field =
            error != nullptr ? error->find("message") : nullptr;
        if (code_field != nullptr && code_field->is_string() &&
            code_from_name(code_field->text, code)) {
          if (message_field != nullptr && message_field->is_string()) {
            message = message_field->text;
          }
          if (code == serve::ErrorCode::kOverloaded ||
              code == serve::ErrorCode::kShuttingDown) {
            continue;  // backend draining/full: re-hash
          }
          return error_result(code, std::move(message), cell_key);
        }
      }
      continue;  // unintelligible reply: treat as a failed backend
    }
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  return error_result(serve::ErrorCode::kOverloaded,
                      "no backend available", cell_key);
}

void Router::ticker_loop() {
  const auto interval =
      std::chrono::milliseconds(std::max(1, options_.server.window_tick_ms));
  std::unique_lock<std::mutex> lock(ticker_mutex_);
  while (!ticker_stop_) {
    ticker_cv_.wait_for(lock, interval, [this] { return ticker_stop_; });
    if (ticker_stop_) return;
    lock.unlock();
    for (auto& backend : backends_) backend->tick();
    lock.lock();
  }
}

}  // namespace recover::cluster
