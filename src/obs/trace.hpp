// RAII span timers: wall-clock durations recorded into the metrics
// registry's log₂ histograms.
//
// Usage on a hot loop:
//
//   static obs::Histogram& h =
//       obs::Registry::global().histogram("coalescence.replica_ns");
//   {
//     obs::ScopedSpan span(h);
//     ... replica body ...
//   }   // duration recorded here (ns)
//
// When metrics are disabled the constructor is a relaxed load plus a
// branch and the destructor a branch — the clock is never read.
#pragma once

#include <chrono>
#include <cstdint>

#include "src/obs/metrics.hpp"

namespace recover::obs {

class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram& sink) noexcept
      : sink_(sink), active_(metrics_enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (active_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      sink_.record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
    }
  }

 private:
  Histogram& sink_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace recover::obs
