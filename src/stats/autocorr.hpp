// Autocorrelation analysis for Markov-chain time series.
//
// The long-run estimators (exp10, exp18's comparison column) subsample a
// single trajectory; their honest precision is governed by the
// integrated autocorrelation time
//     τ_int = 1 + 2 Σ_{k≥1} ρ_k,
// estimated with Sokal's adaptive window (truncate at the smallest W
// with W ≥ c·τ̂_int(W), c = 5).  ESS = N / τ_int.  τ_int of a natural
// observable is itself a (lower-bound flavored) glimpse of the
// relaxation time, complementing the coupling estimates.
#pragma once

#include <cstddef>
#include <vector>

namespace recover::stats {

/// Autocorrelation ρ_k for k = 0..max_lag (ρ_0 = 1).  Series must have
/// at least max_lag + 2 points and nonzero variance.
std::vector<double> autocorrelation(const std::vector<double>& series,
                                    std::size_t max_lag);

/// Integrated autocorrelation time with Sokal's adaptive truncation.
/// Returns ≥ 1; a white-noise series gives ≈ 1.
double integrated_autocorrelation_time(const std::vector<double>& series,
                                       double window_factor = 5.0);

/// Effective number of independent samples in the series.
double effective_sample_size(const std::vector<double>& series);

/// Fits an exponential decay rate r to the tail of a positive,
/// decreasing curve y_t ≈ C e^{−r t} (least squares on log y over the
/// portion below `head_fraction` of the initial value).  Used to turn
/// exact worst-case-TV curves into relaxation-time estimates
/// t_rel = 1/r, so that τ(ε) ≈ t_rel · ln(C/ε) can be compared against
/// the directly computed mixing time.
double exponential_tail_rate(const std::vector<double>& curve,
                             double head_fraction = 0.5);

}  // namespace recover::stats
