file(REMOVE_RECURSE
  "CMakeFiles/bounded_open_test.dir/bounded_open_test.cpp.o"
  "CMakeFiles/bounded_open_test.dir/bounded_open_test.cpp.o.d"
  "bounded_open_test"
  "bounded_open_test.pdb"
  "bounded_open_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_open_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
