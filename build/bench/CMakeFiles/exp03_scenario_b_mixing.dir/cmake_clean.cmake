file(REMOVE_RECURSE
  "CMakeFiles/exp03_scenario_b_mixing.dir/exp03_scenario_b_mixing.cpp.o"
  "CMakeFiles/exp03_scenario_b_mixing.dir/exp03_scenario_b_mixing.cpp.o.d"
  "exp03_scenario_b_mixing"
  "exp03_scenario_b_mixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp03_scenario_b_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
