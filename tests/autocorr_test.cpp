// Tests for autocorrelation / ESS / exponential tail fitting.
#include <gtest/gtest.h>

#include <cmath>

#include "src/balls/scenario_a.hpp"
#include "src/rng/distributions.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/autocorr.hpp"

namespace recover::stats {
namespace {

std::vector<double> ar1_series(double rho, std::size_t n,
                               std::uint64_t seed) {
  rng::Xoshiro256PlusPlus eng(seed);
  std::vector<double> out(n);
  double x = 0;
  for (std::size_t t = 0; t < n; ++t) {
    // Irwin–Hall(12) - 6 is ~N(0,1).
    double z = 0;
    for (int k = 0; k < 12; ++k) z += rng::uniform_real(eng);
    z -= 6.0;
    x = rho * x + std::sqrt(1 - rho * rho) * z;
    out[t] = x;
  }
  return out;
}

TEST(Autocorrelation, WhiteNoiseDecorrelates) {
  const auto series = ar1_series(0.0, 20000, 1);
  const auto rho = autocorrelation(series, 10);
  EXPECT_DOUBLE_EQ(rho[0], 1.0);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(rho[k], 0.0, 0.03) << "lag " << k;
  }
  EXPECT_NEAR(integrated_autocorrelation_time(series), 1.0, 0.15);
}

TEST(Autocorrelation, Ar1MatchesTheory) {
  // AR(1) with coefficient ρ: ρ_k = ρ^k and τ_int = (1+ρ)/(1−ρ).
  const double rho_coef = 0.8;
  const auto series = ar1_series(rho_coef, 60000, 2);
  const auto rho = autocorrelation(series, 5);
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(rho[k], std::pow(rho_coef, k), 0.05) << "lag " << k;
  }
  const double expected_tau = (1 + rho_coef) / (1 - rho_coef);  // 9
  EXPECT_NEAR(integrated_autocorrelation_time(series), expected_tau, 2.0);
}

TEST(EffectiveSampleSize, ShrinksWithCorrelation) {
  const auto white = ar1_series(0.0, 20000, 3);
  const auto sticky = ar1_series(0.9, 20000, 4);
  EXPECT_GT(effective_sample_size(white),
            4.0 * effective_sample_size(sticky));
}

TEST(EffectiveSampleSize, ChainObservableHasFiniteTau) {
  // Max load of I_A-ABKU[2] sampled every step is positively correlated;
  // tau_int should be > 1 but finite and modest at n = 64.
  rng::Xoshiro256PlusPlus eng(5);
  balls::ScenarioAChain<balls::AbkuRule> chain(
      balls::LoadVector::balanced(64, 64), balls::AbkuRule(2));
  for (int t = 0; t < 5000; ++t) chain.step(eng);
  std::vector<double> series;
  for (int t = 0; t < 20000; ++t) {
    chain.step(eng);
    series.push_back(static_cast<double>(chain.state().max_load()));
  }
  const double tau = integrated_autocorrelation_time(series);
  EXPECT_GT(tau, 1.5);
  EXPECT_LT(tau, 2000.0);
}

TEST(ExponentialTailRate, RecoversKnownRate) {
  std::vector<double> curve;
  for (int t = 0; t < 200; ++t) {
    curve.push_back(3.0 * std::exp(-0.05 * t));
  }
  EXPECT_NEAR(exponential_tail_rate(curve), 0.05, 1e-6);
}

TEST(ExponentialTailRate, IgnoresHeadTransient) {
  // A curve with a slow head and exponential tail: the fit must use the
  // tail only.
  std::vector<double> curve;
  for (int t = 0; t < 50; ++t) curve.push_back(1.0);  // plateau head
  for (int t = 0; t < 200; ++t) {
    curve.push_back(0.4 * std::exp(-0.1 * t));
  }
  EXPECT_NEAR(exponential_tail_rate(curve, 0.5), 0.1, 0.01);
}

}  // namespace
}  // namespace recover::stats
