// Vertex-level greedy edge orientation and the carpool / fair-allocation
// view of it (§1.1 and §2 of the paper; Ajtai et al., Fagin–Williams).
//
// Unlike DiffState (which quotients out vertex identity for the Markov
// chain analysis), GreedyOrienter keeps real vertices with in/out degree
// counters — the model examples and exp13 run.  CarpoolScheduler is the
// same dynamics narrated as fair scheduling: each step a uniform pair of
// participants shares a task; the greedy protocol assigns it to whoever
// is currently owed work, and the unfairness is the largest absolute
// debt.  Ajtai et al. reduce richer fairness games to this process at the
// price of doubling the expected fairness.
#pragma once

#include <cstdint>
#include <vector>

#include "src/rng/distributions.hpp"
#include "src/util/assert.hpp"

namespace recover::orient {

class GreedyOrienter {
 public:
  explicit GreedyOrienter(std::size_t n);

  /// Start from explicit per-vertex differences (must sum to 0).
  static GreedyOrienter from_diffs(std::vector<std::int64_t> diffs);

  [[nodiscard]] std::size_t vertices() const { return diff_.size(); }
  [[nodiscard]] std::int64_t edges() const { return edges_; }
  [[nodiscard]] std::int64_t diff(std::size_t v) const { return diff_[v]; }

  [[nodiscard]] std::int64_t unfairness() const;

  /// Orients an arriving edge {a, b} greedily: from the vertex with the
  /// smaller outdegree−indegree difference to the larger (ties broken by
  /// the tie bit).  Updates both counters.
  void orient_edge(std::size_t a, std::size_t b, bool tie_bit);

  /// One arrival in the uniform-distribution model: a uniform random pair
  /// of distinct vertices.
  template <typename Engine>
  void step(Engine& eng) {
    const auto a =
        static_cast<std::size_t>(rng::uniform_below(eng, diff_.size()));
    auto b =
        static_cast<std::size_t>(rng::uniform_below(eng, diff_.size() - 1));
    if (b >= a) ++b;
    orient_edge(a, b, rng::coin(eng));
  }

 private:
  std::vector<std::int64_t> diff_;  // outdegree − indegree per vertex
  std::int64_t edges_ = 0;
};

/// Carpool narration of the same greedy process: participants accumulate
/// "debt" (tasks owed minus tasks done); each arriving pair assigns the
/// task to the more indebted participant.
class CarpoolScheduler {
 public:
  explicit CarpoolScheduler(std::size_t participants)
      : orienter_(participants) {}

  [[nodiscard]] std::size_t participants() const {
    return orienter_.vertices();
  }
  [[nodiscard]] std::int64_t rides() const { return orienter_.edges(); }

  /// Largest absolute debt over participants.
  [[nodiscard]] std::int64_t max_debt() const {
    return orienter_.unfairness();
  }

  template <typename Engine>
  void day(Engine& eng) {
    orienter_.step(eng);
  }

 private:
  GreedyOrienter orienter_;
};

/// The Fagin–Williams carpool with k-person pools (§1.1: "the subset of
/// servers available for each job has independent and uniform
/// distribution"; Ajtai et al. reduce this to edge orientation at the
/// price of doubling the expected fairness).
///
/// Bookkeeping is scaled by k to stay integral: each pool member's fair
/// share of a ride is 1/k, so every member's balance drops by 1 (one
/// k-th, scaled) and the driver's rises by k.  The greedy protocol picks
/// the member with the lowest balance (most owed) as the driver; ties
/// break by index.  `unfairness()` reports the worst absolute balance in
/// ride units (i.e. divided by k).
class KSubsetCarpool {
 public:
  KSubsetCarpool(std::size_t participants, std::size_t pool_size);

  [[nodiscard]] std::size_t participants() const { return balance_.size(); }
  [[nodiscard]] std::size_t pool_size() const { return k_; }
  [[nodiscard]] std::int64_t days() const { return days_; }

  /// Worst absolute balance in ride units.
  [[nodiscard]] double unfairness() const;

  /// Runs one day with an explicit pool (distinct indices).
  void run_pool(const std::vector<std::size_t>& pool);

  /// One day with a uniform random k-subset (partial Fisher–Yates).
  template <typename Engine>
  void day(Engine& eng) {
    std::vector<std::size_t> pool(k_);
    // Floyd's algorithm for a uniform k-subset without full shuffles.
    std::size_t chosen = 0;
    for (std::size_t j = participants() - k_; j < participants(); ++j) {
      const auto t =
          static_cast<std::size_t>(rng::uniform_below(eng, j + 1));
      bool seen = false;
      for (std::size_t c = 0; c < chosen; ++c) {
        if (pool[c] == t) {
          seen = true;
          break;
        }
      }
      pool[chosen++] = seen ? j : t;
    }
    run_pool(pool);
  }

 private:
  std::vector<std::int64_t> balance_;  // scaled by k; Σ = 0 always
  std::size_t k_;
  std::int64_t days_ = 0;
};

}  // namespace recover::orient
