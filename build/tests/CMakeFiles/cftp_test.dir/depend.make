# Empty dependencies file for cftp_test.
# This may be replaced when dependencies are built.
