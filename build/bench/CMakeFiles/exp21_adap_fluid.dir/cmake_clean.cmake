file(REMOVE_RECURSE
  "CMakeFiles/exp21_adap_fluid.dir/exp21_adap_fluid.cpp.o"
  "CMakeFiles/exp21_adap_fluid.dir/exp21_adap_fluid.cpp.o.d"
  "exp21_adap_fluid"
  "exp21_adap_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp21_adap_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
