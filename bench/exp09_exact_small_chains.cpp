// Experiment E9 — ground truth: exact mixing times on small state spaces.
//
// Ω_m is the set of integer partitions of m into ≤ n parts; for small
// (n, m) we build the exact transition matrix of one I_A / I_B phase,
// compute π, and evolve a point mass from EVERY start to get the exact
// τ(ε) of §3.  Columns validate the whole experimental pipeline:
//   exact τ(1/4)  ≤  coalescence q95 (coupling inequality, up to noise)
//   exact τ(1/4)  ≤  paper bound (Theorem 1 resp. Claim 5.3).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/exact_chain.hpp"
#include "src/balls/grand_coupling.hpp"
#include "src/core/coalescence.hpp"
#include "src/core/path_coupling.hpp"
#include "src/obs/run_record.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp09_exact_small_chains",
                "E9: exact tau(1/4) vs coupling estimate vs paper bounds");
  cli.flag("sizes", "comma-separated m = n sweep", "4,5,6,7,8");
  cli.flag("d", "ABKU choices", "2");
  cli.flag("eps", "mixing threshold", "0.25");
  cli.flag("replicas", "coupling replicas", "200");
  cli.flag("seed", "rng seed", "9");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto d = static_cast<int>(cli.integer("d"));
  const double eps = cli.real("eps");
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"scenario", "n=m", "|Omega|", "exact_tau", "coal_q50",
                     "coal_q95", "paper_bound", "secs"});

  for (const std::int64_t m : sizes) {
    const auto n = static_cast<std::size_t>(m);
    balls::PartitionSpace space(n, m);
    for (const bool scen_b : {false, true}) {
      util::Timer timer;
      const auto chain = balls::build_exact_chain(
          space,
          scen_b ? balls::RemovalKind::kNonEmptyUniform
                 : balls::RemovalKind::kBallWeighted,
          balls::AbkuRule(d));
      const auto pi = core::stationary_distribution(chain);
      const auto exact = core::exact_mixing_time(
          chain, pi, eps,
          scen_b ? 400 * m * m : 400 * m);

      core::CoalescenceOptions opts;
      opts.replicas = replicas;
      opts.seed = seed;
      opts.max_steps = 4000 * m * m;
      core::CoalescenceStats coal;
      if (scen_b) {
        coal = core::measure_coalescence(
            [&](std::uint64_t) {
              return balls::GrandCouplingB<balls::AbkuRule>(
                  balls::LoadVector::all_in_one(n, m),
                  balls::LoadVector::balanced(n, m), balls::AbkuRule(d));
            },
            opts);
      } else {
        coal = core::measure_coalescence(
            [&](std::uint64_t) {
              return balls::GrandCouplingA<balls::AbkuRule>(
                  balls::LoadVector::all_in_one(n, m),
                  balls::LoadVector::balanced(n, m), balls::AbkuRule(d));
            },
            opts);
      }
      const double paper_bound =
          scen_b ? core::claim53_bound(n, m, eps)
                 : core::theorem1_bound(m, eps);
      table.row()
          .add(scen_b ? "B" : "A")
          .integer(m)
          .integer(static_cast<std::int64_t>(space.size()))
          .integer(exact.mixing_time)
          .num(coal.q50, 1)
          .num(coal.q95, 1)
          .num(paper_bound, 0)
          .num(timer.seconds(), 2);
    }
  }
  table.print(std::cout);
  run.add_table("exact_vs_estimates", table);
  std::printf(
      "\n# Validity: exact_tau <= paper_bound on every row, and the "
      "coalescence quantiles bracket exact_tau from above (the coupling "
      "inequality makes coalescence a conservative recovery estimate).\n");
  return 0;
}
