// Tests for coupling-from-the-past exact sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "src/balls/exact_chain.hpp"
#include "src/balls/grand_coupling.hpp"
#include "src/balls/random_states.hpp"
#include "src/core/cftp.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"

namespace recover::core {
namespace {

// Majorization order on equal-sum normalized vectors: v ⪯ w iff every
// prefix sum of v is at most the corresponding prefix sum of w.
bool majorized_by(const balls::LoadVector& v, const balls::LoadVector& w) {
  std::int64_t pv = 0, pw = 0;
  for (std::size_t i = 0; i < v.bins(); ++i) {
    pv += v.load(i);
    pw += w.load(i);
    if (pv > pw) return false;
  }
  return true;
}

TEST(Majorization, BalancedIsMinimumAllInOneIsMaximum) {
  rng::Xoshiro256PlusPlus eng(1);
  const std::size_t n = 8;
  const std::int64_t m = 20;
  const auto bottom = balls::LoadVector::balanced(n, m);
  const auto top = balls::LoadVector::all_in_one(n, m);
  for (int rep = 0; rep < 100; ++rep) {
    const auto x = balls::random_load_vector(n, m, eng, 1 + rep % 4);
    EXPECT_TRUE(majorized_by(bottom, x));
    EXPECT_TRUE(majorized_by(x, top));
  }
}

TEST(Majorization, RandomMapPreservesSandwichScenarioA) {
  // Apply the SAME random map (same engine seed) to bottom ≤ x ≤ top and
  // check the order is preserved — the empirical monotonicity behind the
  // CFTP sandwich.  Implemented by coupling (bottom, x) and (x, top)
  // pairwise with identical engines.
  const std::size_t n = 6;
  const std::int64_t m = 15;
  rng::Xoshiro256PlusPlus pick(2);
  int violations = 0;
  for (int rep = 0; rep < 300; ++rep) {
    const auto x = balls::random_load_vector(n, m, pick, 1 + rep % 4);
    balls::GrandCouplingA<balls::AbkuRule> low(
        balls::LoadVector::balanced(n, m), x, balls::AbkuRule(2));
    balls::GrandCouplingA<balls::AbkuRule> high(
        x, balls::LoadVector::all_in_one(n, m), balls::AbkuRule(2));
    for (int t = 0; t < 30; ++t) {
      rng::Xoshiro256PlusPlus e1(1000 + static_cast<std::uint64_t>(rep) * 64 +
                                 static_cast<std::uint64_t>(t));
      rng::Xoshiro256PlusPlus e2 = e1;
      low.step(e1);
      high.step(e2);
      if (!majorized_by(low.first(), low.second()) ||
          !majorized_by(high.first(), high.second())) {
        ++violations;
        break;
      }
    }
  }
  // Strict monotonicity would give zero; tolerate a tiny residual in
  // case of boundary effects, but flag systematic failure.
  EXPECT_LE(violations, 6) << "random maps are not (near-)monotone";
}

TEST(Cftp, ReturnsSampleAndIsDeterministicPerSeed) {
  const std::size_t n = 5;
  const std::int64_t m = 10;
  auto make = [&]() {
    return balls::GrandCouplingA<balls::AbkuRule>(
        balls::LoadVector::all_in_one(n, m),
        balls::LoadVector::balanced(n, m), balls::AbkuRule(2));
  };
  CftpOptions opts;
  opts.seed = 77;
  const auto s1 = cftp_sample(make, opts);
  const auto s2 = cftp_sample(make, opts);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(*s1, *s2);
  EXPECT_EQ(s1->balls(), m);
  EXPECT_TRUE(s1->invariants_hold());
}

TEST(Cftp, MatchesExactStationaryDistributionScenarioA) {
  const std::size_t n = 4;
  const std::int64_t m = 6;
  balls::PartitionSpace space(n, m);
  const auto chain = balls::build_exact_chain(
      space, balls::RemovalKind::kBallWeighted, balls::AbkuRule(2));
  const auto pi = stationary_distribution(chain);

  stats::IntHistogram sampled;
  constexpr int kSamples = 20000;
  for (int s = 0; s < kSamples; ++s) {
    auto make = [&]() {
      return balls::GrandCouplingA<balls::AbkuRule>(
          balls::LoadVector::all_in_one(n, m),
          balls::LoadVector::balanced(n, m), balls::AbkuRule(2));
    };
    CftpOptions opts;
    opts.seed = rng::derive_stream_seed(4242, static_cast<std::uint64_t>(s));
    const auto sample = cftp_sample(make, opts);
    ASSERT_TRUE(sample.has_value());
    sampled.add(static_cast<std::int64_t>(space.index_of(*sample)));
  }
  double tv = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    tv += std::abs(sampled.frequency(static_cast<std::int64_t>(i)) - pi[i]);
  }
  tv /= 2;
  // Sampling noise floor for 20k draws over ~10 states is ~0.005; leave
  // room but catch any systematic CFTP bias.
  EXPECT_LT(tv, 0.02) << "CFTP output deviates from exact pi";
}

TEST(Cftp, MatchesExactStationaryDistributionScenarioB) {
  const std::size_t n = 4;
  const std::int64_t m = 5;
  balls::PartitionSpace space(n, m);
  const auto chain = balls::build_exact_chain(
      space, balls::RemovalKind::kNonEmptyUniform, balls::AbkuRule(2));
  const auto pi = stationary_distribution(chain);

  stats::IntHistogram sampled;
  constexpr int kSamples = 15000;
  for (int s = 0; s < kSamples; ++s) {
    auto make = [&]() {
      return balls::GrandCouplingB<balls::AbkuRule>(
          balls::LoadVector::all_in_one(n, m),
          balls::LoadVector::balanced(n, m), balls::AbkuRule(2));
    };
    CftpOptions opts;
    opts.seed = rng::derive_stream_seed(8888, static_cast<std::uint64_t>(s));
    const auto sample = cftp_sample(make, opts);
    ASSERT_TRUE(sample.has_value());
    sampled.add(static_cast<std::int64_t>(space.index_of(*sample)));
  }
  double tv = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    tv += std::abs(sampled.frequency(static_cast<std::int64_t>(i)) - pi[i]);
  }
  tv /= 2;
  EXPECT_LT(tv, 0.025) << "CFTP output deviates from exact pi";
}

TEST(Cftp, WindowCapProducesNullopt) {
  const std::size_t n = 8;
  const std::int64_t m = 64;
  auto make = [&]() {
    return balls::GrandCouplingA<balls::AbkuRule>(
        balls::LoadVector::all_in_one(n, m),
        balls::LoadVector::balanced(n, m), balls::AbkuRule(2));
  };
  CftpOptions opts;
  opts.seed = 3;
  opts.max_window = 2;  // far too small to coalesce
  EXPECT_FALSE(cftp_sample(make, opts).has_value());
}

}  // namespace
}  // namespace recover::core
