#include "src/cluster/ring.hpp"

#include <algorithm>

#include "src/sweep/grid.hpp"

namespace recover::cluster {

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

void HashRing::add(std::size_t backend, const std::string& id) {
  points_.reserve(points_.size() + vnodes_);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    const std::uint64_t position =
        sweep::fnv1a64(id + "#" + std::to_string(v));
    points_.push_back(Point{position, backend});
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Position ties (fnv collisions across ids) break by
              // backend index so the ring order stays deterministic.
              return a.position != b.position ? a.position < b.position
                                              : a.backend < b.backend;
            });
}

void HashRing::remove(std::size_t backend) {
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [backend](const Point& p) {
                                 return p.backend == backend;
                               }),
                points_.end());
}

std::vector<std::size_t> HashRing::route(std::uint64_t digest) const {
  std::vector<std::size_t> order;
  if (points_.empty()) return order;
  order.reserve(backend_count());
  auto it = std::lower_bound(points_.begin(), points_.end(), digest,
                             [](const Point& p, std::uint64_t d) {
                               return p.position < d;
                             });
  for (std::size_t walked = 0; walked < points_.size(); ++walked) {
    if (it == points_.end()) it = points_.begin();
    if (std::find(order.begin(), order.end(), it->backend) == order.end()) {
      order.push_back(it->backend);
    }
    ++it;
  }
  return order;
}

std::size_t HashRing::owner(std::uint64_t digest) const {
  if (points_.empty()) return static_cast<std::size_t>(-1);
  auto it = std::lower_bound(points_.begin(), points_.end(), digest,
                             [](const Point& p, std::uint64_t d) {
                               return p.position < d;
                             });
  if (it == points_.end()) it = points_.begin();
  return it->backend;
}

std::size_t HashRing::backend_count() const {
  std::vector<std::size_t> seen;
  for (const Point& p : points_) {
    if (std::find(seen.begin(), seen.end(), p.backend) == seen.end()) {
      seen.push_back(p.backend);
    }
  }
  return seen.size();
}

}  // namespace recover::cluster
