// Least-squares fitting utilities for the experiment tables.
//
// The reproduction criterion for an asymptotic bound T(n) = Θ(f(n)) is
// twofold: (a) the ratio T(n)/f(n) flattens, and (b) the fitted log-log
// slope matches the exponent of the dominant polynomial factor.  Both are
// computed here.
#pragma once

#include <vector>

namespace recover::stats {

struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r_squared = 0;
  double slope_stderr = 0;
};

/// Ordinary least squares y = slope * x + intercept.
LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Fits log(y) = slope * log(x) + c, i.e. y ≈ e^c * x^slope.
/// All inputs must be strictly positive.
LinearFit loglog_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Coefficient of variation of y_i / f_i — small values mean y tracks the
/// model curve f up to a constant (the "ratio flattens" criterion).
double ratio_dispersion(const std::vector<double>& y,
                        const std::vector<double>& f);

}  // namespace recover::stats
