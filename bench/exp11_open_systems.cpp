// Experiment E11 — §7 open systems: the number of balls varies over time
// (probability ½ insert a ball with the rule, ½ remove a uniform ball).
//
// The paper proposes estimating, via coupling, the time until the
// process started from 0 balls and the process started from m arbitrary
// balls have almost the same distribution.  We run the shared-randomness
// open coupling from (empty, all-in-one(m)) and report coalescence
// against the initial gap m: the gap itself closes like a reflected
// random walk (≈ m² steps), after which placements merge quickly.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/coalescence.hpp"
#include "src/core/tv_mixing.hpp"
#include "src/obs/run_record.hpp"
#include "src/open/bounded_chain.hpp"
#include "src/open/open_chain.hpp"
#include "src/stats/regression.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp11_open_systems",
                "E11/#7: open-system coupling from empty vs m-ball starts");
  cli.flag("n", "bins", "16");
  cli.flag("loads", "comma-separated initial ball counts m", "8,16,32,64");
  cli.flag("d", "ABKU choices", "2");
  cli.flag("replicas", "replicas per point", "16");
  cli.flag("seed", "rng seed", "11");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto n = static_cast<std::size_t>(cli.integer("n"));
  const auto loads = cli.int_list("loads");
  const auto d = static_cast<int>(cli.integer("d"));
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"m0", "T_mean", "T_ci95", "T_q95", "T/m0^2",
                     "tv_lower(1/4)", "censored"});

  std::vector<double> xs, ys;
  for (const std::int64_t m : loads) {
    // TV lower estimate: when do the BALL-COUNT distributions from the
    // two starts become indistinguishable?  The count is a reflected
    // unbounded walk, so the observable is bucketed in units of m/4
    // (capped) to keep the empirical-TV noise floor below the 1/4
    // threshold at a few hundred replicas.  Skipped for the largest
    // loads where the horizon would dominate the runtime.
    std::int64_t tv_lower = -2;  // -2 = not measured
    if (m <= 32) {
      const auto checkpoints =
          core::geometric_checkpoints(1, 1.7, 64 * m * m);
      const auto curve = core::estimate_tv_curve(
          [&](int) {
            return open::OpenChain<balls::AbkuRule>(balls::LoadVector(n),
                                                    balls::AbkuRule(d));
          },
          [&](int) {
            return open::OpenChain<balls::AbkuRule>(
                balls::LoadVector::all_in_one(n, m), balls::AbkuRule(d));
          },
          [m](const auto& c) {
            return std::min<std::int64_t>(c.balls() * 4 / m, 12);
          },
          checkpoints, 600, seed + static_cast<std::uint64_t>(m));
      tv_lower = core::first_below(curve, 0.25);
    }
    core::CoalescenceOptions opts;
    opts.replicas = replicas;
    opts.seed = seed;
    opts.max_steps = 5000 * m * m;
    opts.check_interval = std::max<std::int64_t>(1, m / 4);
    const auto stats = core::measure_coalescence(
        [&](std::uint64_t) {
          return open::OpenGrandCoupling<balls::AbkuRule>(
              balls::LoadVector(n), balls::LoadVector::all_in_one(n, m),
              balls::AbkuRule(d));
        },
        opts);
    table.row()
        .integer(m)
        .num(stats.steps.mean(), 1)
        .num(stats.steps.ci_halfwidth(), 1)
        .num(stats.q95, 1)
        .num(stats.steps.mean() /
                 (static_cast<double>(m) * static_cast<double>(m)),
             3)
        .integer(tv_lower)
        .integer(stats.censored);
    if (stats.censored == 0) {
      xs.push_back(static_cast<double>(m));
      ys.push_back(stats.steps.mean());
    }
  }
  table.print(std::cout);
  run.add_table("open_coupling", table);
  if (xs.size() >= 3) {
    const auto fit = stats::loglog_fit(xs, ys);
    std::printf(
        "\n# log-log slope of T vs m0: %.3f - the ball-count gap is an "
        "unbiased +-1 walk, so ~2 (quadratic) is the expected shape; the "
        "TV lower estimate shows the DISTRIBUTIONS agree long before the "
        "worst coupling replicas meet.\n\n",
        fit.slope);
    run.note("loglog_slope", fit.slope);
  }

  // Bounded variant (#7's first class): capping the ball count turns the
  // count gap into a walk on a finite interval - coalescence tightens.
  util::Table btable({"capacity", "T_mean", "T_ci95", "censored"});
  for (const std::int64_t cap : loads) {
    core::CoalescenceOptions opts;
    opts.replicas = replicas;
    opts.seed = seed + 99;
    opts.max_steps = 5000 * cap * cap;
    opts.check_interval = std::max<std::int64_t>(1, cap / 4);
    const auto stats = core::measure_coalescence(
        [&](std::uint64_t) {
          return open::BoundedOpenCoupling<balls::AbkuRule>(
              balls::LoadVector(n), balls::LoadVector::all_in_one(n, cap),
              balls::AbkuRule(d), cap);
        },
        opts);
    btable.row()
        .integer(cap)
        .num(stats.steps.mean(), 1)
        .num(stats.steps.ci_halfwidth(), 1)
        .integer(stats.censored);
  }
  btable.print(std::cout);
  run.add_table("bounded_open_coupling", btable);
  std::printf(
      "# Bounded open systems (start empty vs start at capacity): the "
      "reflected count walk meets reliably, the refinement #7 promises "
      "for the bounded class.\n");
  return 0;
}
