#include "src/ops/window.hpp"

#include "src/obs/trace_buffer.hpp"  // trace::now_ns

namespace recover::ops {

namespace {

/// Saturating per-field subtraction: the cumulative source is monotone
/// per shard, but a relaxed read racing a writer may lag another read,
/// so clamp instead of wrapping.
std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

obs::Histogram::Snapshot snapshot_delta(const obs::Histogram::Snapshot& now,
                                        const obs::Histogram::Snapshot& then) {
  obs::Histogram::Snapshot delta;
  delta.count = sat_sub(now.count, then.count);
  delta.sum = sat_sub(now.sum, then.sum);
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    delta.buckets[i] = sat_sub(now.buckets[i], then.buckets[i]);
  }
  return delta;
}

void snapshot_accumulate(obs::Histogram::Snapshot& into,
                         const obs::Histogram::Snapshot& delta) {
  into.count += delta.count;
  into.sum += delta.sum;
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    into.buckets[i] += delta.buckets[i];
  }
}

}  // namespace

WindowedHistogram::WindowedHistogram(const obs::Histogram& source,
                                     std::size_t slots)
    : source_(source), slots_(slots == 0 ? 1 : slots) {
  last_ = source_.snapshot();
  last_tick_ns_ = obs::trace::now_ns();
}

void WindowedHistogram::tick() {
  const obs::Histogram::Snapshot now = source_.snapshot();
  const std::uint64_t now_ns = obs::trace::now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(Slot{snapshot_delta(now, last_), last_tick_ns_});
  if (ring_.size() > slots_) ring_.pop_front();
  last_ = now;
  last_tick_ns_ = now_ns;
}

WindowedHistogram::Window WindowedHistogram::window() const {
  const obs::Histogram::Snapshot now = source_.snapshot();
  const std::uint64_t now_ns = obs::trace::now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  Window out;
  std::uint64_t start_ns = last_tick_ns_;
  for (const Slot& slot : ring_) {
    snapshot_accumulate(out.merged, slot.delta);
  }
  if (!ring_.empty()) start_ns = ring_.front().start_ns;
  // Live tail: traffic since the last tick is part of the window too, so
  // a scrape landing mid-interval never misses the newest requests.
  snapshot_accumulate(out.merged, snapshot_delta(now, last_));
  out.span_seconds =
      static_cast<double>(sat_sub(now_ns, start_ns)) / 1e9;
  return out;
}

WindowedCounter::WindowedCounter(std::function<std::uint64_t()> sample,
                                 std::size_t slots)
    : sample_(std::move(sample)), slots_(slots == 0 ? 1 : slots) {
  last_ = sample_();
  last_tick_ns_ = obs::trace::now_ns();
}

void WindowedCounter::tick() {
  const std::uint64_t now = sample_();
  const std::uint64_t now_ns = obs::trace::now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(Slot{sat_sub(now, last_), last_tick_ns_});
  if (ring_.size() > slots_) ring_.pop_front();
  last_ = now;
  last_tick_ns_ = now_ns;
}

WindowedCounter::Window WindowedCounter::window() const {
  const std::uint64_t now = sample_();
  const std::uint64_t now_ns = obs::trace::now_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  Window out;
  std::uint64_t start_ns = last_tick_ns_;
  for (const Slot& slot : ring_) out.delta += slot.delta;
  if (!ring_.empty()) start_ns = ring_.front().start_ns;
  out.delta += sat_sub(now, last_);
  out.span_seconds =
      static_cast<double>(sat_sub(now_ns, start_ns)) / 1e9;
  return out;
}

}  // namespace recover::ops
