// Rolling-window views over the cumulative obs metrics: the piece that
// turns "since boot" counters and histograms into "over the last ~10 s"
// rates and quantiles for a long-running daemon (docs/OBSERVABILITY.md,
// "Live telemetry").
//
// Both classes keep a ring of N interval snapshots.  tick() — driven by
// a ~1 Hz ticker thread — reads the cumulative source, stores the delta
// since the previous tick, and evicts the oldest slot once the ring is
// full; window() merges every stored delta PLUS the live delta since the
// last tick, so a scrape that lands mid-interval still sees the newest
// traffic.  With 10 slots and a 1 s tick the view covers the last
// 10–11 s; before the first eviction it simply covers everything since
// construction (a young process has nothing older to forget).
//
// Threading: tick() and window() are mutex-guarded against each other;
// the underlying metric shards are relaxed atomics written concurrently
// by any thread (the obs contract), so deltas are computed with
// saturating subtraction — a shard read racing a writer can only make a
// delta conservatively small, never negative or corrupt.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include "src/obs/metrics.hpp"

namespace recover::ops {

/// Rolling window over an obs::Histogram: per-tick deltas of the
/// cumulative Snapshot, merged on demand.
class WindowedHistogram {
 public:
  /// `source` must outlive the window (Registry references qualify —
  /// their addresses are stable for the process lifetime).
  explicit WindowedHistogram(const obs::Histogram& source,
                             std::size_t slots = 10);

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  /// Seals the current interval: stores the delta since the previous
  /// tick as a slot, evicting the oldest slot when the ring is full.
  void tick();

  struct Window {
    obs::Histogram::Snapshot merged;  // stored deltas + live tail
    double span_seconds = 0.0;        // wall time the window covers
  };

  /// Merged view over the ring plus the live (not-yet-ticked) interval.
  [[nodiscard]] Window window() const;

 private:
  struct Slot {
    obs::Histogram::Snapshot delta;
    std::uint64_t start_ns = 0;
  };

  const obs::Histogram& source_;
  std::size_t slots_;
  mutable std::mutex mutex_;
  obs::Histogram::Snapshot last_;     // cumulative at the last tick
  std::uint64_t last_tick_ns_ = 0;
  std::deque<Slot> ring_;
};

/// Rolling window over any monotone uint64 sampler (an obs::Counter, a
/// plain atomic total, …): delta and rate over the last N ticks.
class WindowedCounter {
 public:
  explicit WindowedCounter(std::function<std::uint64_t()> sample,
                           std::size_t slots = 10);

  WindowedCounter(const WindowedCounter&) = delete;
  WindowedCounter& operator=(const WindowedCounter&) = delete;

  void tick();

  struct Window {
    std::uint64_t delta = 0;     // events inside the window
    double span_seconds = 0.0;   // wall time the window covers
    /// delta / span (0 when the span is degenerate).
    [[nodiscard]] double rate_per_sec() const {
      return span_seconds > 1e-9 ? static_cast<double>(delta) / span_seconds
                                 : 0.0;
    }
  };

  [[nodiscard]] Window window() const;

 private:
  struct Slot {
    std::uint64_t delta = 0;
    std::uint64_t start_ns = 0;
  };

  std::function<std::uint64_t()> sample_;
  std::size_t slots_;
  mutable std::mutex mutex_;
  std::uint64_t last_ = 0;
  std::uint64_t last_tick_ns_ = 0;
  std::deque<Slot> ring_;
};

}  // namespace recover::ops
