# Empty compiler generated dependencies file for exp03_scenario_b_mixing.
# This may be replaced when dependencies are built.
