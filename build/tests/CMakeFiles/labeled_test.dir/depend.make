# Empty dependencies file for labeled_test.
# This may be replaced when dependencies are built.
