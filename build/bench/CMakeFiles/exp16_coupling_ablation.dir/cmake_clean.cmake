file(REMOVE_RECURSE
  "CMakeFiles/exp16_coupling_ablation.dir/exp16_coupling_ablation.cpp.o"
  "CMakeFiles/exp16_coupling_ablation.dir/exp16_coupling_ablation.cpp.o.d"
  "exp16_coupling_ablation"
  "exp16_coupling_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp16_coupling_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
