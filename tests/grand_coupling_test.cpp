// Tests for the full (grand) couplings used in coalescence measurements.
#include <gtest/gtest.h>

#include "src/balls/grand_coupling.hpp"
#include "src/balls/random_states.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/certify/check.hpp"
#include "src/core/coalescence.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"

namespace recover::balls {
namespace {

TEST(GrandCouplingA, EqualCopiesStayEqualForever) {
  rng::Xoshiro256PlusPlus eng(1);
  const LoadVector v = LoadVector::balanced(8, 16);
  GrandCouplingA<AbkuRule> c(v, v, AbkuRule(2));
  ASSERT_TRUE(c.coalesced());
  for (int t = 0; t < 2000; ++t) {
    c.step(eng);
    ASSERT_TRUE(c.coalesced());
  }
}

TEST(GrandCouplingB, EqualCopiesStayEqualForever) {
  rng::Xoshiro256PlusPlus eng(2);
  const LoadVector v = LoadVector::piled(8, 16, 3);
  GrandCouplingB<AbkuRule> c(v, v, AbkuRule(2));
  for (int t = 0; t < 2000; ++t) {
    c.step(eng);
    ASSERT_TRUE(c.coalesced());
  }
}

TEST(GrandCouplingA, ExtremalPairEventuallyCoalesces) {
  const std::uint64_t seed = certify::test_master_seed(3);
  SCOPED_TRACE(certify::seed_banner(seed));
  rng::Xoshiro256PlusPlus eng(seed);
  GrandCouplingA<AbkuRule> c(LoadVector::all_in_one(6, 12),
                             LoadVector::balanced(6, 12), AbkuRule(2));
  std::int64_t t = 0;
  while (!c.coalesced() && t < 100000) {
    c.step(eng);
    ++t;
  }
  EXPECT_TRUE(c.coalesced()) << "no coalescence within " << t << " steps";
}

TEST(GrandCouplingB, ExtremalPairEventuallyCoalesces) {
  const std::uint64_t seed = certify::test_master_seed(4);
  SCOPED_TRACE(certify::seed_banner(seed));
  rng::Xoshiro256PlusPlus eng(seed);
  GrandCouplingB<AbkuRule> c(LoadVector::all_in_one(6, 12),
                             LoadVector::balanced(6, 12), AbkuRule(2));
  std::int64_t t = 0;
  while (!c.coalesced() && t < 500000) {
    c.step(eng);
    ++t;
  }
  EXPECT_TRUE(c.coalesced()) << "no coalescence within " << t << " steps";
}

TEST(GrandCouplingA, MarginalIsFaithfulCopyOfScenarioA) {
  // One copy of the coupling, observed alone, must follow I_A's law.
  const std::uint64_t seed = certify::test_master_seed(5);
  SCOPED_TRACE(certify::seed_banner(seed));
  rng::Xoshiro256PlusPlus eng(seed);
  const std::size_t n = 5;
  const std::int64_t m = 10;
  const LoadVector x0 = LoadVector::piled(n, m, 2);
  const LoadVector y0 = LoadVector::balanced(n, m);
  stats::IntHistogram coupled, uncoupled;
  constexpr int kTrials = 15000;
  constexpr int kSteps = 5;
  for (int rep = 0; rep < kTrials; ++rep) {
    GrandCouplingA<AbkuRule> c(x0, y0, AbkuRule(2));
    for (int t = 0; t < kSteps; ++t) c.step(eng);
    coupled.add(c.first().max_load() * 10 +
                static_cast<std::int64_t>(c.first().nonempty_count()));
    ScenarioAChain<AbkuRule> chain(x0, AbkuRule(2));
    for (int t = 0; t < kSteps; ++t) chain.step(eng);
    uncoupled.add(chain.state().max_load() * 10 +
                  static_cast<std::int64_t>(chain.state().nonempty_count()));
  }
  EXPECT_LT(stats::tv_distance(coupled, uncoupled), 0.03);
}

TEST(GrandCouplingB, MarginalIsFaithfulCopyOfScenarioB) {
  const std::uint64_t seed = certify::test_master_seed(6);
  SCOPED_TRACE(certify::seed_banner(seed));
  rng::Xoshiro256PlusPlus eng(seed);
  const std::size_t n = 5;
  const std::int64_t m = 10;
  const LoadVector x0 = LoadVector::piled(n, m, 2);
  const LoadVector y0 = LoadVector::balanced(n, m);
  stats::IntHistogram coupled, uncoupled;
  constexpr int kTrials = 15000;
  constexpr int kSteps = 5;
  for (int rep = 0; rep < kTrials; ++rep) {
    GrandCouplingB<AbkuRule> c(x0, y0, AbkuRule(2));
    for (int t = 0; t < kSteps; ++t) c.step(eng);
    coupled.add(c.first().max_load() * 10 +
                static_cast<std::int64_t>(c.first().nonempty_count()));
    ScenarioBChain<AbkuRule> chain(x0, AbkuRule(2));
    for (int t = 0; t < kSteps; ++t) chain.step(eng);
    uncoupled.add(chain.state().max_load() * 10 +
                  static_cast<std::int64_t>(chain.state().nonempty_count()));
  }
  EXPECT_LT(stats::tv_distance(coupled, uncoupled), 0.03);
}

TEST(MeasureCoalescence, SummarizesAndRespectsCensoring) {
  const std::vector<std::int64_t> times = {10, 20, -1, 30, 40};
  const auto stats = core::summarize_coalescence(times, 100);
  EXPECT_EQ(stats.censored, 1);
  EXPECT_EQ(stats.steps.count(), 4);
  EXPECT_DOUBLE_EQ(stats.steps.mean(), 25.0);
  EXPECT_DOUBLE_EQ(stats.q50, 20.0);
  EXPECT_DOUBLE_EQ(stats.q95, 40.0);
}

TEST(MeasureCoalescence, DeterministicAcrossRuns) {
  core::CoalescenceOptions opts;
  opts.replicas = 6;
  opts.seed = 99;
  opts.max_steps = 200000;
  opts.parallel = false;
  auto make = [](std::uint64_t) {
    return GrandCouplingA<AbkuRule>(LoadVector::all_in_one(5, 10),
                                    LoadVector::balanced(5, 10), AbkuRule(2));
  };
  const auto t1 = core::run_coalescence_trials(make, opts);
  const auto t2 = core::run_coalescence_trials(make, opts);
  EXPECT_EQ(t1, t2);
  opts.parallel = true;
  const auto t3 = core::run_coalescence_trials(make, opts);
  EXPECT_EQ(t1, t3) << "parallel execution changed the results";
}

TEST(MeasureCoalescence, CheckIntervalOnlyCoarsens) {
  core::CoalescenceOptions fine;
  fine.replicas = 6;
  fine.seed = 7;
  fine.max_steps = 200000;
  fine.check_interval = 1;
  fine.parallel = false;
  auto make = [](std::uint64_t) {
    return GrandCouplingA<AbkuRule>(LoadVector::all_in_one(5, 10),
                                    LoadVector::balanced(5, 10), AbkuRule(2));
  };
  const auto exact = core::run_coalescence_trials(make, fine);
  core::CoalescenceOptions coarse = fine;
  coarse.check_interval = 7;
  const auto rounded = core::run_coalescence_trials(make, coarse);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    ASSERT_GE(rounded[i], exact[i]);
    ASSERT_LE(rounded[i], exact[i] + 7);
    EXPECT_EQ(rounded[i] % 7, 0);
  }
}

}  // namespace
}  // namespace recover::balls
