#include "src/core/tv_mixing.hpp"

#include <cmath>

namespace recover::core {

std::int64_t first_below(const std::vector<TvCurvePoint>& curve, double eps) {
  for (const auto& point : curve) {
    if (point.tv < eps) return point.t;
  }
  return -1;
}

std::vector<std::int64_t> geometric_checkpoints(std::int64_t start,
                                                double ratio,
                                                std::int64_t limit) {
  RL_REQUIRE(start >= 1);
  RL_REQUIRE(ratio > 1.0);
  RL_REQUIRE(limit >= start);
  std::vector<std::int64_t> out;
  double x = static_cast<double>(start);
  std::int64_t prev = 0;
  while (static_cast<std::int64_t>(x) < limit) {
    const auto t = static_cast<std::int64_t>(x);
    if (t > prev) {
      out.push_back(t);
      prev = t;
    }
    x *= ratio;
  }
  if (prev < limit) out.push_back(limit);
  return out;
}

}  // namespace recover::core
