#!/usr/bin/env python3
"""Validate recover.run/1 JSON records emitted by the experiment binaries.

Checks, per file:
  * the document parses and carries schema == "recover.run/1";
  * run.binary is a non-empty string;
  * every table has a name, a non-empty column list, and rows whose
    arity matches the column count;
  * the record holds at least one row in total (a silently-empty run is
    a CI failure, not a success).

With --aggregate OUT, a compact summary document (one entry per input
record: binary, wall seconds, per-table row counts, notes) is written to
OUT — the commit-friendly benchmark trajectory snapshot.

With --sweep-checkpoint, the inputs are instead validated as
recover.sweep_cell/1 JSONL checkpoints written by bench/sweep_runner
(docs/SWEEPS.md): every line must be a complete record whose stored hash
matches this script's independent FNV-1a of "<exp>|<key>" — a
cross-language guard on the checkpoint content-hash format.

With --serve, the inputs are additionally validated as serve_loadgen
records (docs/SERVING.md): run.binary must be serve_loadgen, the
summary table must hold exactly one row with sent > 0, zero protocol
errors, and latency quantiles ordered p50 <= p95 <= p99 — the loopback
CI gate on the recover_serve service.

With --ops, the inputs are validated as serve_loadgen records produced
with --admin-port/--scrape-interval (docs/OBSERVABILITY.md, "Live
telemetry"): everything --serve checks, plus a "scrape" table showing
at least one successful /metrics scrape, zero scrape errors, ordered
scrape latency quantiles, and a positive windowed server-side p99 that
stays within a loose factor of the client-observed p99 — the CI gate
on the recover_serve admin plane.

With --cluster, the inputs are validated as bench_cluster scaling
records (docs/SERVING.md, "Cluster mode"): run.binary must be
bench_cluster and the "scaling" table must hold a 1-backend/no-cache
baseline row plus multi-backend rows, all with traffic and zero
protocol errors; the best multi-backend row must reach >= 1.8x the
baseline ok_rps and every cached row must show a hit ratio >= 0.5 —
the CI acceptance gate on the recover_cluster router.

With --rbb, the inputs are validated as exp22_rbb_mixing records
(EXPERIMENTS.md, E22): run.binary must be exp22_rbb_mixing and the
"mixing_scaling" table must sweep n with uncensored coalescence
estimates; every per-d log-log slope note must sit inside the window
the O(n log n) mixing theorem allows — the CI gate on the committed
BENCH_rbb.json baseline.

With --trace, the inputs are instead validated as recover.trace/1
Chrome trace-event JSON written by --trace=FILE (docs/OBSERVABILITY.md):
the document must parse, every event must carry a `ph`, every non-
metadata event must carry numeric `ts` and `tid`, and span begins and
ends must balance per thread (the exporter repairs ring-drop imbalance,
so any surviving imbalance is an exporter bug).
"""

import argparse
import json
import sys

SCHEMA = "recover.run/1"
SWEEP_SCHEMA = "recover.sweep_cell/1"

# Mirrors recover::sweep::fnv1a64 (src/sweep/grid.cpp); frozen format.
FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3


def fnv1a64(text):
    h = FNV_OFFSET
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


def check_sweep_line(path, lineno, line):
    where = f"line {lineno}"
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as e:
        return fail(path, f"{where}: invalid JSON: {e}")
    if doc.get("schema") != SWEEP_SCHEMA:
        return fail(
            path,
            f"{where}: schema is {doc.get('schema')!r}, want {SWEEP_SCHEMA!r}",
        )
    exp = doc.get("exp")
    key = doc.get("key")
    if not exp or not isinstance(exp, str):
        return fail(path, f"{where}: exp missing or empty")
    if not key or not isinstance(key, str):
        return fail(path, f"{where}: key missing or empty")
    stored = doc.get("hash")
    if not isinstance(stored, str) or len(stored) != 16:
        return fail(path, f"{where}: hash must be 16 hex chars")
    want = format(fnv1a64(f"{exp}|{key}"), "016x")
    if stored != want:
        return fail(path, f"{where}: hash {stored} != fnv1a64(exp|key) {want}")
    index = doc.get("index")
    if not isinstance(index, int) or isinstance(index, bool) or index < 0:
        return fail(path, f"{where}: index must be an integer >= 0")
    values = doc.get("values")
    if not isinstance(values, dict) or not values:
        return fail(path, f"{where}: values must be a non-empty object")
    for name, value in values.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return fail(path, f"{where}: values[{name!r}] is not a number")
    return True


def check_sweep_checkpoint(path):
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return fail(path, f"unreadable: {e}")
    if not lines:
        return fail(path, "checkpoint holds zero records")
    ok = True
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if not check_sweep_line(path, lineno, line):
            ok = False
    if ok:
        print(f"check_bench_json: {path}: OK ({len(lines)} checkpoint lines)")
    return ok


def fail(path, message):
    print(f"check_bench_json: {path}: {message}", file=sys.stderr)
    return False


TRACE_SCHEMA = "recover.trace/1"
TRACE_PHASES = {"M", "B", "E", "i", "C"}


def check_trace(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")
    events = doc if isinstance(doc, list) else doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "traceEvents is not a list")
    if isinstance(doc, dict):
        schema = doc.get("otherData", {}).get("schema")
        if schema != TRACE_SCHEMA:
            return fail(path, f"otherData.schema is {schema!r}, "
                              f"want {TRACE_SCHEMA!r}")
    open_per_tid = {}
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            return fail(path, f"{where}: not an object")
        ph = e.get("ph")
        if ph not in TRACE_PHASES:
            return fail(path, f"{where}: ph is {ph!r}, "
                              f"want one of {sorted(TRACE_PHASES)}")
        if ph == "M":
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            return fail(path, f"{where}: ts missing or non-numeric")
        tid = e.get("tid")
        if not isinstance(tid, int) or isinstance(tid, bool):
            return fail(path, f"{where}: tid missing or non-integer")
        if ph == "B":
            open_per_tid[tid] = open_per_tid.get(tid, 0) + 1
        elif ph == "E":
            if open_per_tid.get(tid, 0) == 0:
                return fail(path, f"{where}: span end with no open "
                                  f"begin on tid {tid}")
            open_per_tid[tid] -= 1
    unbalanced = {t: n for t, n in open_per_tid.items() if n}
    if unbalanced:
        return fail(path, f"unclosed span begins per tid: {unbalanced}")
    print(f"check_bench_json: {path}: OK ({len(events)} trace events)")
    return True


def check_record(path, doc):
    if doc.get("schema") != SCHEMA:
        return fail(path, f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    run = doc.get("run")
    if not isinstance(run, dict):
        return fail(path, "missing run object")
    if not run.get("binary") or not isinstance(run["binary"], str):
        return fail(path, "run.binary missing or empty")
    tables = doc.get("tables")
    if not isinstance(tables, list):
        return fail(path, "tables is not a list")
    total_rows = 0
    for i, table in enumerate(tables):
        name = table.get("name")
        if not name:
            return fail(path, f"tables[{i}] has no name")
        columns = table.get("columns")
        if not isinstance(columns, list) or not columns:
            return fail(path, f"table {name!r} has no columns")
        rows = table.get("rows")
        if not isinstance(rows, list):
            return fail(path, f"table {name!r} has no rows list")
        for j, row in enumerate(rows):
            if not isinstance(row, list) or len(row) != len(columns):
                return fail(
                    path,
                    f"table {name!r} row {j} has {len(row)} cells, "
                    f"want {len(columns)}",
                )
        total_rows += len(rows)
    if total_rows == 0:
        return fail(path, "record holds zero rows across all tables")
    return True


def check_serve_record(path, doc):
    """Gate on a serve_loadgen record: the summary row must show a run
    with traffic, no protocol errors, and sane latency quantiles."""
    binary = doc.get("run", {}).get("binary")
    if binary != "serve_loadgen":
        return fail(path, f"run.binary is {binary!r}, want 'serve_loadgen'")
    summary = next(
        (t for t in doc.get("tables", []) if t.get("name") == "summary"),
        None,
    )
    if summary is None:
        return fail(path, "no 'summary' table")
    if len(summary.get("rows", [])) != 1:
        return fail(path, "summary table must hold exactly one row")
    row = dict(zip(summary["columns"], summary["rows"][0]))
    for column in ("sent", "ok", "shed", "protocol_errors", "p50_us",
                   "p95_us", "p99_us"):
        value = row.get(column)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return fail(path, f"summary column {column!r} missing or "
                              f"non-numeric (got {value!r})")
    if row["sent"] <= 0:
        return fail(path, "summary.sent is 0 — the load run sent nothing")
    if row["protocol_errors"] != 0:
        return fail(path, f"{row['protocol_errors']} protocol errors — "
                          f"a serve wire bug, not load")
    if not row["p50_us"] <= row["p95_us"] <= row["p99_us"]:
        return fail(path, f"latency quantiles unordered: "
                          f"p50={row['p50_us']} p95={row['p95_us']} "
                          f"p99={row['p99_us']}")
    return True


def check_ops_record(path, doc):
    """Gate on a scraping serve_loadgen record: the admin plane must
    have answered every scrape, and the windowed server-side p99 must
    be live and loosely consistent with the client-observed p99."""
    if not check_serve_record(path, doc):
        return False
    scrape = next(
        (t for t in doc.get("tables", []) if t.get("name") == "scrape"),
        None,
    )
    if scrape is None:
        return fail(path, "no 'scrape' table — was the loadgen run with "
                          "--admin-port/--scrape-interval?")
    if len(scrape.get("rows", [])) != 1:
        return fail(path, "scrape table must hold exactly one row")
    row = dict(zip(scrape["columns"], scrape["rows"][0]))
    for column in ("scrapes", "errors", "scrape_p50_us", "scrape_p95_us",
                   "scrape_p99_us", "window_p99_us"):
        value = row.get(column)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return fail(path, f"scrape column {column!r} missing or "
                              f"non-numeric (got {value!r})")
    if row["scrapes"] <= 0:
        return fail(path, "scrape.scrapes is 0 — the admin plane was "
                          "never polled")
    if row["errors"] != 0:
        return fail(path, f"{row['errors']} scrape errors — the admin "
                          f"plane failed under concurrent load")
    if not row["scrape_p50_us"] <= row["scrape_p95_us"] \
            <= row["scrape_p99_us"]:
        return fail(path, f"scrape latency quantiles unordered: "
                          f"p50={row['scrape_p50_us']} "
                          f"p95={row['scrape_p95_us']} "
                          f"p99={row['scrape_p99_us']}")
    if row["window_p99_us"] <= 0:
        return fail(path, "window_p99_us is 0 — the rolling window saw "
                          "no latency mass")
    summary = next(
        t for t in doc["tables"] if t.get("name") == "summary"
    )
    client_p99 = dict(zip(summary["columns"], summary["rows"][0]))["p99_us"]
    # The server-side span excludes queue wait and the network, and both
    # sides bucket by log2, so only a loose consistency bound is honest:
    # the windowed p99 must not exceed the client p99 by more than the
    # bucketing error, and must not be implausibly tiny either.
    if client_p99 > 0 and not (
        client_p99 / 512.0 <= row["window_p99_us"] <= client_p99 * 8.0
    ):
        return fail(path, f"window_p99_us={row['window_p99_us']} is "
                          f"implausible against client p99="
                          f"{client_p99} (want within [/512, x8])")
    return True


# Acceptance thresholds for the cluster scaling record (ISSUE 7): the
# best multi-backend row must beat the 1-backend baseline by this
# factor, and cached rows must actually hit.
CLUSTER_MIN_SPEEDUP = 1.8
CLUSTER_MIN_HIT_RATIO = 0.5


def check_cluster_record(path, doc):
    """Gate on a bench_cluster scaling record: a 1-backend baseline, a
    winning multi-backend row, and a cache that actually hits."""
    binary = doc.get("run", {}).get("binary")
    if binary != "bench_cluster":
        return fail(path, f"run.binary is {binary!r}, want 'bench_cluster'")
    scaling = next(
        (t for t in doc.get("tables", []) if t.get("name") == "scaling"),
        None,
    )
    if scaling is None:
        return fail(path, "no 'scaling' table")
    rows = [dict(zip(scaling["columns"], r)) for r in scaling.get("rows", [])]
    if len(rows) < 2:
        return fail(path, "scaling table needs a baseline row and at "
                          "least one multi-backend row")
    for j, row in enumerate(rows):
        for column in ("backends", "cache_entries", "sent", "ok", "ok_rps",
                       "hit_ratio", "protocol_errors"):
            value = row.get(column)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return fail(path, f"scaling row {j} column {column!r} "
                                  f"missing or non-numeric (got {value!r})")
        if row["sent"] <= 0:
            return fail(path, f"scaling row {j} sent nothing")
        if row["protocol_errors"] != 0:
            return fail(path, f"scaling row {j} saw "
                              f"{row['protocol_errors']} protocol errors")
        if not 0.0 <= row["hit_ratio"] <= 1.0:
            return fail(path, f"scaling row {j} hit_ratio="
                              f"{row['hit_ratio']} outside [0, 1]")
        if row["cache_entries"] > 0 \
                and row["hit_ratio"] < CLUSTER_MIN_HIT_RATIO:
            return fail(path, f"scaling row {j} cached but hit_ratio="
                              f"{row['hit_ratio']:.4f} < "
                              f"{CLUSTER_MIN_HIT_RATIO}")
    baseline = [r for r in rows if r["backends"] == 1
                and r["cache_entries"] == 0]
    if not baseline:
        return fail(path, "no 1-backend/no-cache baseline row")
    multi = [r for r in rows if r["backends"] > 1]
    if not multi:
        return fail(path, "no multi-backend row")
    if not any(r["cache_entries"] > 0 for r in multi):
        return fail(path, "no cached multi-backend row")
    base_rps = baseline[0]["ok_rps"]
    best_rps = max(r["ok_rps"] for r in multi)
    if base_rps <= 0:
        return fail(path, "baseline ok_rps is 0")
    speedup = best_rps / base_rps
    if speedup < CLUSTER_MIN_SPEEDUP:
        return fail(path, f"best multi-backend ok_rps {best_rps:.0f} is "
                          f"only {speedup:.2f}x the baseline "
                          f"{base_rps:.0f} (want >= "
                          f"{CLUSTER_MIN_SPEEDUP}x)")
    print(f"check_bench_json: {path}: cluster speedup {speedup:.2f}x, "
          f"best hit_ratio "
          f"{max(r['hit_ratio'] for r in rows):.4f}")
    return True


# Acceptance window for the RBB mixing record (ISSUE 10): T = O(n log n)
# means a log-log slope of T vs n near 1 (the ln factor biases it a bit
# above); far outside the window means the coupling or the chain broke.
RBB_SLOPE_MIN = 0.5
RBB_SLOPE_MAX = 1.7
RBB_MIN_R2 = 0.9


def check_rbb_record(path, doc):
    """Gate on an exp22_rbb_mixing record: an uncensored n sweep whose
    fitted growth is compatible with the O(n log n) mixing bound."""
    binary = doc.get("run", {}).get("binary")
    if binary != "exp22_rbb_mixing":
        return fail(path, f"run.binary is {binary!r}, want 'exp22_rbb_mixing'")
    scaling = next(
        (t for t in doc.get("tables", [])
         if t.get("name") == "mixing_scaling"),
        None,
    )
    if scaling is None:
        return fail(path, "no 'mixing_scaling' table")
    rows = [dict(zip(scaling["columns"], r)) for r in scaling.get("rows", [])]
    if len(rows) < 4:
        return fail(path, f"mixing_scaling holds {len(rows)} rows — too few "
                          f"for a scaling claim (want >= 4)")
    for j, row in enumerate(rows):
        for column in ("d", "n", "m", "T_mean", "T_ci95", "T_q95", "ratio",
                       "censored"):
            value = row.get(column)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return fail(path, f"mixing_scaling row {j} column {column!r} "
                                  f"missing or non-numeric (got {value!r})")
        if row["censored"] != 0:
            return fail(path, f"mixing_scaling row {j} (n={row['n']}) has "
                              f"{row['censored']} censored replicas — the "
                              f"horizon is too short for a baseline")
        if row["T_mean"] <= 0:
            return fail(path, f"mixing_scaling row {j} T_mean="
                              f"{row['T_mean']} is not positive")
    notes = doc.get("notes", {})
    slopes = {k: v for k, v in notes.items()
              if k.startswith("loglog_slope_d")}
    if not slopes:
        return fail(path, "no loglog_slope_d* note — the record carries no "
                          "fitted scaling exponent")
    for key, slope in slopes.items():
        if not isinstance(slope, (int, float)) or isinstance(slope, bool):
            return fail(path, f"note {key!r} is not a number (got {slope!r})")
        if not RBB_SLOPE_MIN <= slope <= RBB_SLOPE_MAX:
            return fail(path, f"note {key}={slope:.3f} outside "
                              f"[{RBB_SLOPE_MIN}, {RBB_SLOPE_MAX}] — "
                              f"incompatible with T = O(n log n)")
        r2_key = key.replace("loglog_slope_", "loglog_r2_")
        r2 = notes.get(r2_key)
        if isinstance(r2, (int, float)) and not isinstance(r2, bool) \
                and r2 < RBB_MIN_R2:
            return fail(path, f"note {r2_key}={r2:.4f} < {RBB_MIN_R2} — "
                              f"the power-law fit does not hold")
    summary = ", ".join(f"{k.removeprefix('loglog_slope_')}: {v:.3f}"
                        for k, v in sorted(slopes.items()))
    print(f"check_bench_json: {path}: rbb slopes {summary}")
    return True


def summarize(doc):
    run = doc["run"]
    return {
        "binary": run["binary"],
        "git": run.get("git", "unknown"),
        "wall_seconds": run.get("wall_seconds"),
        "tables": {
            t["name"]: len(t["rows"]) for t in doc.get("tables", [])
        },
        "notes": doc.get("notes", {}),
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="recover.run/1 JSON files")
    parser.add_argument(
        "--aggregate",
        metavar="OUT",
        help="write a one-entry-per-record summary document to OUT",
    )
    parser.add_argument(
        "--sweep-checkpoint",
        action="store_true",
        help="validate inputs as recover.sweep_cell/1 JSONL checkpoints",
    )
    parser.add_argument(
        "--ops",
        action="store_true",
        help="additionally gate inputs as scraping serve_loadgen records "
             "(zero scrape errors, live windowed p99)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="validate inputs as recover.trace/1 Chrome trace JSON",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="additionally gate inputs as serve_loadgen records "
             "(zero protocol errors, ordered latency quantiles)",
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="additionally gate inputs as bench_cluster scaling records "
             "(>= 1.8x multi-backend speedup, cache hit ratio >= 0.5)",
    )
    parser.add_argument(
        "--rbb",
        action="store_true",
        help="additionally gate inputs as exp22_rbb_mixing records "
             "(uncensored n sweep, log-log slope compatible with "
             "O(n log n) mixing)",
    )
    args = parser.parse_args()

    if args.trace:
        ok = True
        for path in args.files:
            if not check_trace(path):
                ok = False
        return 0 if ok else 1

    if args.sweep_checkpoint:
        ok = True
        for path in args.files:
            if not check_sweep_checkpoint(path):
                ok = False
        return 0 if ok else 1

    ok = True
    summaries = []
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            ok = fail(path, f"unreadable or invalid JSON: {e}")
            continue
        if check_record(path, doc) and (
            not args.serve or check_serve_record(path, doc)
        ) and (
            not args.ops or check_ops_record(path, doc)
        ) and (
            not args.cluster or check_cluster_record(path, doc)
        ) and (
            not args.rbb or check_rbb_record(path, doc)
        ):
            summaries.append(summarize(doc))
            rows = sum(len(t["rows"]) for t in doc["tables"])
            print(f"check_bench_json: {path}: OK ({rows} rows)")
        else:
            ok = False

    if not ok:
        return 1

    if args.aggregate:
        summaries.sort(key=lambda s: s["binary"])
        out = {
            "schema": "recover.bench_summary/1",
            "records": summaries,
        }
        with open(args.aggregate, "w", encoding="utf-8") as f:
            json.dump(out, f, indent=2, sort_keys=False)
            f.write("\n")
        print(
            f"check_bench_json: wrote {args.aggregate} "
            f"({len(summaries)} records)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
