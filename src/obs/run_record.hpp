// Structured run records: everything an experiment binary prints as an
// ASCII table, captured as typed rows plus run metadata, and emitted as
// a stable JSON document (schema `recover.run/1`).
//
// Schema (docs/OBSERVABILITY.md documents it with a worked example):
//
//   {
//     "schema": "recover.run/1",
//     "run": { "binary", "description", "started_unix_ms",
//              "wall_seconds", "hostname", "git", "flags": {…} },
//     "tables": [ { "name", "columns": […], "rows": [[…], …] }, … ],
//     "notes": { … scalar findings (fit slopes, TV floors, …) … },
//     "metrics": { "counters": {…}, "gauges": {…},
//                  "histograms": { name: { "count", "sum", "mean",
//                                          "buckets": [{"le","count"},…] } } }
//   }
//
// Cells are typed on capture: a cell whose full text parses as a finite
// number is emitted as a JSON number (integer-looking cells verbatim),
// NaN/Inf parse to null, anything else stays a string.  The source of
// every row is the very util::Table the binary prints, so the ASCII
// table and the JSON record can never disagree.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace recover::util {
class Cli;
class Table;
}  // namespace recover::util

namespace recover::obs {

/// Registers the shared observability flags (--json-out, --metrics,
/// --progress, --trace) on a Cli.  Call before parse(); obs::Run reads
/// them.
void register_cli_flags(util::Cli& cli);

/// The source revision baked into the build (`git describe --always
/// --dirty --tags` at configure time); "unknown" when the build had no
/// git context.  The same string run records stamp under run.git — also
/// exposed on the admin plane as the recover_build_info gauge, so an
/// operator can match a running daemon to a commit without a redeploy.
std::string git_revision();

class RunRecord {
 public:
  RunRecord(std::string binary, std::string description);

  /// Flag name/value pairs recorded under run.flags.
  void set_flags(std::vector<std::pair<std::string, std::string>> flags);

  /// Captures a printed table as a named typed-row section.
  void add_table(std::string name, const util::Table& table);

  /// Scalar findings that live outside any table (fit slopes, ratios…).
  void note(std::string key, double value);
  void note(std::string key, std::string value);

  /// Rows across all captured tables (CI fails a run with zero rows).
  [[nodiscard]] std::size_t total_rows() const;

  /// Writes the full document; include_metrics adds the merged registry
  /// snapshot.  wall_seconds is stamped by the caller (obs::Run).
  void write_json(std::ostream& os, double wall_seconds,
                  bool include_metrics) const;

 private:
  struct TableSection {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };
  struct Note {
    std::string key;
    bool numeric = false;
    double number = 0;
    std::string text;
  };

  std::string binary_;
  std::string description_;
  std::int64_t started_unix_ms_ = 0;
  std::vector<std::pair<std::string, std::string>> flags_;
  std::vector<TableSection> tables_;
  std::vector<Note> notes_;
};

/// Per-binary harness tying the shared flags to the registry, the
/// progress switch, and a RunRecord.  Construct once right after
/// cli.parse(); the destructor writes the JSON file when --json-out was
/// given (and prints where it wrote to stderr).
class Run {
 public:
  explicit Run(const util::Cli& cli);
  ~Run();

  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  RunRecord& record() { return record_; }

  void add_table(std::string name, const util::Table& table) {
    record_.add_table(std::move(name), table);
  }
  void note(std::string key, double value) {
    record_.note(std::move(key), value);
  }
  void note(std::string key, std::string value) {
    record_.note(std::move(key), std::move(value));
  }

  /// Writes now instead of at destruction (idempotent).
  void finish();

 private:
  RunRecord record_;
  std::string json_path_;
  std::string trace_path_;
  bool metrics_;
  bool finished_ = false;
  double start_seconds_;
};

}  // namespace recover::obs
