// Batched randomness primitives for the hot-path allocation kernels.
//
// The d-choice step is the inner loop under every experiment, sweep cell
// and serve request: draw one removal lead, draw d i.u.r. probes, take
// their running max (which under the normalized representation IS the
// ABKU[d] placement — see docs/THEORY.md §2).  The scalar path pays a
// non-inlined engine call, per-draw accounting and a Lemire mapping per
// word.  The batched kernel instead
//
//   1. pre-draws the raw words for a whole block of steps through the
//      engines' fill() API (state stays in registers, accounting is
//      amortized),
//   2. pre-maps the probe words to [0, n) and pre-reduces them to their
//      per-step max in a structure-of-arrays pass, and
//   3. lets the caller apply removals/insertions in a tight loop over
//      the precomputed selections.
//
// Byte-identity with the scalar path is non-negotiable (the repo's
// experiment records and golden tests depend on exact draw sequences),
// so the mapping is *conservative*: rng::uniform_below redraws a word
// with probability (2^64 mod bound)/2^64; lemire_map flags any word that
// might have been redrawn (probability bound/2^64 ≥ the true rejection
// probability).  On a flagged word the caller replays the remaining
// pre-drawn words through the exact scalar code path via ReplayEngine —
// same words, same order, same results, at scalar speed for the
// (astronomically rare) remainder of the burst.
//
// This header is a substrate like src/rng/: no dependency on balls/ or
// obs/, so the chain headers can use it without layering violations.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/util/assert.hpp"

namespace recover::kernel {

/// Steps drawn per batch.  256 steps at up to 8 words each keeps the raw
/// buffer at 16 KiB — comfortably inside L1d alongside the choice and
/// flag arrays — while amortizing the fill/accounting overhead ~250x.
inline constexpr std::size_t kBatchSteps = 256;

/// Largest probe count d the batched kernels handle; larger d (unused by
/// any experiment) falls back to the scalar path.
inline constexpr int kMaxBatchedProbes = 7;

/// Fills `out` with `count` raw 64-bit engine outputs, using the
/// engine's block API when it has one (Xoshiro256PlusPlus, Philox4x32).
template <typename Engine>
void fill_raw(Engine& eng, std::uint64_t* out, std::size_t count) {
  if constexpr (requires { eng.fill(out, count); }) {
    eng.fill(out, count);
  } else {
    for (std::size_t i = 0; i < count; ++i) out[i] = eng();
  }
}

namespace detail {
/// Probe for Engine::generate_groups (see rng::Xoshiro256PlusPlus):
/// engines with the streaming API get the fused generate+map loop.
struct NullGroupSink {
  template <std::size_t G>
  void operator()(std::size_t, const std::array<std::uint64_t, G>&) const {}
};
}  // namespace detail

template <typename Engine>
concept GroupGenerator = requires(Engine& e, detail::NullGroupSink s) {
  e.template generate_groups<2>(std::size_t{0}, s);
};

/// Fast-path Lemire map of one raw word to [0, bound).  Sets `ok` false
/// when rng::uniform_below might have redrawn this word; whenever `ok`
/// is true the returned value equals the scalar result for this word.
inline std::uint64_t lemire_map(std::uint64_t x, std::uint64_t bound,
                                bool& ok) {
  RL_DBG_ASSERT(bound > 0);
  const auto m = static_cast<__uint128_t>(x) * bound;
  ok = static_cast<std::uint64_t>(m) >= bound;
  return static_cast<std::uint64_t>(m >> 64);
}

/// Engine adapter that serves buffered raw words first, then falls
/// through to the live engine.  The batched kernels' bail-out: replaying
/// already-drawn words through the scalar code path keeps results
/// byte-identical when a word cannot be mapped branch-free.
template <typename Engine>
class ReplayEngine {
 public:
  using result_type = std::uint64_t;

  ReplayEngine(Engine& eng, const std::uint64_t* words, std::size_t count)
      : eng_(&eng), words_(words), count_(count) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    return next_ < count_ ? words_[next_++] : (*eng_)();
  }

 private:
  Engine* eng_;
  const std::uint64_t* words_;
  std::size_t count_;
  std::size_t next_ = 0;
};

/// One block of pre-drawn d-choice randomness, structure-of-arrays: per
/// step, an optional raw lead word (the removal draw — left raw because
/// its bound may be state-dependent, e.g. scenario B's non-empty count)
/// followed by d probe words pre-mapped to [0, probe_bound) and
/// pre-reduced to their running max, the ABKU[d] selection.
class DChoiceBatch {
 public:
  /// Draws (leads_per_step + d) * steps words and precomputes the
  /// per-step selections.  steps ≤ kBatchSteps, 1 ≤ d ≤ kMaxBatchedProbes,
  /// leads_per_step ∈ {0, 1}.
  template <typename Engine>
  void fill(Engine& eng, std::uint64_t probe_bound, int d, std::size_t steps,
            int leads_per_step = 1) {
    RL_DBG_ASSERT(steps >= 1 && steps <= kBatchSteps);
    RL_DBG_ASSERT(d >= 1 && d <= kMaxBatchedProbes);
    RL_DBG_ASSERT(leads_per_step == 0 || leads_per_step == 1);
    RL_DBG_ASSERT(probe_bound > 0 && probe_bound < kUnsafeBit);
    steps_ = steps;
    lead_ = static_cast<std::size_t>(leads_per_step);
    stride_ = lead_ + static_cast<std::size_t>(d);
    // Two strategies, byte-identical by construction.  Engines with a
    // streaming API (Xoshiro) get the fused loop: the map/reduce work
    // executes under the recurrence's serial dependency chain, so the
    // whole batch costs little more than raw generation.  Other engines
    // (Philox, ReplayEngine in tests) take a fill pass followed by a map
    // pass specialized on d; the compile-time probe count turns the
    // inner loop into straight-line mul/cmov code.
    if constexpr (GroupGenerator<Engine>) {
      if (leads_per_step == 1) {
        switch (d) {
          case 1: return fill_fused<1, 1>(eng, probe_bound);
          case 2: return fill_fused<2, 1>(eng, probe_bound);
          case 3: return fill_fused<3, 1>(eng, probe_bound);
          case 4: return fill_fused<4, 1>(eng, probe_bound);
          default: break;
        }
      } else {
        switch (d) {
          case 1: return fill_fused<1, 0>(eng, probe_bound);
          case 2: return fill_fused<2, 0>(eng, probe_bound);
          case 3: return fill_fused<3, 0>(eng, probe_bound);
          case 4: return fill_fused<4, 0>(eng, probe_bound);
          default: break;
        }
      }
    }
    fill_raw(eng, raw_.data(), steps * stride_);
    switch (d) {
      case 1: map_pass<1>(probe_bound); break;
      case 2: map_pass<2>(probe_bound); break;
      case 3: map_pass<3>(probe_bound); break;
      case 4: map_pass<4>(probe_bound); break;
      default: map_pass<0>(probe_bound, d); break;
    }
  }

  /// Raw (unmapped) lead word of step i.
  [[nodiscard]] std::uint64_t lead_raw(std::size_t i) const {
    RL_DBG_ASSERT(i < steps_ && lead_ == 1);
    return raw_[i * stride_];
  }

  /// Pre-reduced ABKU[d] selection of step i (valid iff !probe_unsafe(i)).
  [[nodiscard]] std::uint64_t choice(std::size_t i) const {
    RL_DBG_ASSERT(i < steps_);
    return choice_[i] >> 1;
  }

  /// True when step i's probe words are not provably rejection-free.
  [[nodiscard]] bool probe_unsafe(std::size_t i) const {
    RL_DBG_ASSERT(i < steps_);
    return (choice_[i] & 1) != 0;
  }

  [[nodiscard]] std::size_t steps() const { return steps_; }

  /// Scalar bail-out: an engine view that replays the pre-drawn words of
  /// steps [step, steps()) and then continues on the live engine.
  template <typename Engine>
  [[nodiscard]] ReplayEngine<Engine> replay_from(Engine& eng,
                                                 std::size_t step) const {
    RL_DBG_ASSERT(step < steps_);
    return ReplayEngine<Engine>(eng, raw_.data() + step * stride_,
                                (steps_ - step) * stride_);
  }

 private:
  // Selections and rejection flags share one array, flag in the low bit
  // (probe bounds are bin counts, far below 2^63, so the shifted max
  // cannot overflow).  One output stream per step — not just compaction:
  // with two streams GCC's loop distribution fissions the fused loop
  // below into two loops that each re-run the whole recurrence, which
  // costs more than the two-pass fallback.
  static constexpr std::uint64_t kUnsafeBit = std::uint64_t{1} << 63;

  /// Maps one step's D probe words to a packed selection: running max of
  /// the Lemire-mapped probes (shifted left by one), low bit set if any
  /// word might have been redrawn by the scalar path.  The flag is a
  /// byte-wide OR — unlike a 64-bit running min of the low halves it
  /// keeps no wide value alive across the muls, which matters for
  /// register pressure inside the fused loop.
  template <std::size_t D>
  static std::uint64_t map_step(const std::uint64_t* w,
                                std::uint64_t probe_bound) {
    std::uint64_t best = 0;
    bool unsafe = false;
    for (std::size_t k = 0; k < D; ++k) {  // unrolled: D is constexpr
      const auto m = static_cast<__uint128_t>(w[k]) * probe_bound;
      const auto hi = static_cast<std::uint64_t>(m >> 64);
      unsafe |= static_cast<std::uint64_t>(m) < probe_bound;
      best = hi > best ? hi : best;  // branchless running max
    }
    return (best << 1) | static_cast<std::uint64_t>(unsafe);
  }

  /// Fused generate+map+reduce for streaming engines: one group of
  /// D + L words per step flows straight from the recurrence (still in
  /// registers) through the Lemire map and the running max.  D is the
  /// compile-time probe count, L ∈ {0, 1} the leads per step.
  template <std::size_t D, std::size_t L, typename Engine>
  void fill_fused(Engine& eng, std::uint64_t probe_bound) {
    std::uint64_t* __restrict out = raw_.data();
    std::uint64_t* __restrict choice = choice_.data();
    eng.template generate_groups<D + L>(
        steps_, [&](std::size_t i, const std::array<std::uint64_t, D + L>& w) {
          for (std::size_t k = 0; k < D + L; ++k) out[k] = w[k];
          out += D + L;
          choice[i] = map_step<D>(w.data() + L, probe_bound);
        });
  }

  /// Two-pass fallback map: raw words already in raw_, reduce each step.
  /// D > 0 is the compile-time probe count; D == 0 is the generic
  /// runtime-d fallback (d passed explicitly).
  template <std::size_t D>
  void map_pass(std::uint64_t probe_bound, int runtime_d = 0) {
    const std::uint64_t* w = raw_.data() + lead_;
    const std::size_t stride = stride_;
    const std::size_t steps = steps_;
    for (std::size_t i = 0; i < steps; ++i, w += stride) {
      if constexpr (D > 0) {
        choice_[i] = map_step<D>(w, probe_bound);
      } else {
        const auto d = static_cast<std::size_t>(runtime_d);
        std::uint64_t best = 0;
        bool unsafe = false;
        for (std::size_t k = 0; k < d; ++k) {
          const auto m = static_cast<__uint128_t>(w[k]) * probe_bound;
          const auto hi = static_cast<std::uint64_t>(m >> 64);
          unsafe |= static_cast<std::uint64_t>(m) < probe_bound;
          best = hi > best ? hi : best;
        }
        choice_[i] = (best << 1) | static_cast<std::uint64_t>(unsafe);
      }
    }
  }

  std::array<std::uint64_t,
             kBatchSteps*(1 + static_cast<std::size_t>(kMaxBatchedProbes))>
      raw_;
  std::array<std::uint64_t, kBatchSteps> choice_;
  std::size_t steps_ = 0;
  std::size_t lead_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace recover::kernel
