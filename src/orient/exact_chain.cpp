#include "src/orient/exact_chain.hpp"

#include <deque>

#include "src/util/assert.hpp"

namespace recover::orient {

OrientationSpace::OrientationSpace(std::size_t n) : n_(n) {
  RL_REQUIRE(n >= 2);
  RL_REQUIRE(n <= 12 && "state space explodes beyond tiny n");
  const DiffState zero(n);
  states_.push_back(zero);
  index_[zero.diffs()] = 0;
  std::deque<std::size_t> frontier = {0};
  while (!frontier.empty()) {
    const std::size_t idx = frontier.front();
    frontier.pop_front();
    // Copy: states_ may reallocate while we append.
    const DiffState current = states_[idx];
    for (std::size_t phi = 0; phi < n; ++phi) {
      for (std::size_t psi = phi + 1; psi < n; ++psi) {
        DiffState next = current;
        next.apply_edge(phi, psi);
        if (index_.find(next.diffs()) == index_.end()) {
          index_[next.diffs()] = states_.size();
          frontier.push_back(states_.size());
          states_.push_back(std::move(next));
        }
      }
    }
  }
}

std::size_t OrientationSpace::index_of(const DiffState& s) const {
  const auto it = index_.find(s.diffs());
  RL_REQUIRE(it != index_.end());
  return it->second;
}

std::optional<std::size_t> OrientationSpace::find(const DiffState& s) const {
  const auto it = index_.find(s.diffs());
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::size_t OrientationSpace::zero_index() const {
  return index_of(DiffState(n_));
}

std::size_t OrientationSpace::most_unfair_index() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < states_.size(); ++i) {
    if (states_[i].unfairness() > states_[best].unfairness()) best = i;
  }
  return best;
}

core::SparseChain build_exact_orientation_chain(
    const OrientationSpace& space) {
  const std::size_t n = space.n();
  const double pair_prob =
      1.0 / (static_cast<double>(n) * (static_cast<double>(n) - 1.0) / 2.0);
  core::SparseChain chain(space.size());
  for (std::size_t idx = 0; idx < space.size(); ++idx) {
    chain.add_transition(idx, idx, 0.5);  // lazy bit
    for (std::size_t phi = 0; phi < n; ++phi) {
      for (std::size_t psi = phi + 1; psi < n; ++psi) {
        DiffState next = space.state(idx);
        next.apply_edge(phi, psi);
        chain.add_transition(idx, space.index_of(next), 0.5 * pair_prob);
      }
    }
  }
  chain.finalize();
  return chain;
}

}  // namespace recover::orient
