// Experiment E10 — the typical state the recovery bounds converge to:
// stationary max load of the dynamic ABKU[d] processes (Azar et al. /
// Mitzenmacher results the paper leans on).
//
// Claims reproduced: for m = n, after burn-in the max load is
// ln ln n / ln d + O(1) for d ≥ 2 in both scenarios, versus
// Θ(ln n / ln ln n) for d = 1; the fluid model's fixed-point prediction
// should agree with the simulated value within O(1).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/balls/static_alloc.hpp"
#include "src/fluid/fluid_limit.hpp"
#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/autocorr.hpp"
#include "src/stats/histogram.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

struct StationaryEstimate {
  double mean_max_load = 0;
  double ess = 0;  // effective sample size of the spaced series
};

template <typename Chain>
StationaryEstimate stationary_mean_max_load(
    Chain& chain, std::int64_t burn_in, std::int64_t samples,
    std::int64_t spacing, recover::rng::Xoshiro256PlusPlus& eng) {
  for (std::int64_t t = 0; t < burn_in; ++t) chain.step(eng);
  recover::stats::IntHistogram hist;
  std::vector<double> series;
  series.reserve(static_cast<std::size_t>(samples));
  for (std::int64_t s = 0; s < samples; ++s) {
    for (std::int64_t t = 0; t < spacing; ++t) chain.step(eng);
    hist.add(chain.state().max_load());
    series.push_back(static_cast<double>(chain.state().max_load()));
  }
  StationaryEstimate out;
  out.mean_max_load = hist.mean();
  // A constant series (common at small n, d >= 2) has zero variance;
  // every sample is then trivially independent.
  bool varies = false;
  for (const double v : series) {
    if (v != series.front()) {
      varies = true;
      break;
    }
  }
  out.ess = varies ? recover::stats::effective_sample_size(series)
                   : static_cast<double>(samples);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp10_stationary_maxload",
                "E10: stationary max load vs lnln(n)/ln(d) and fluid model");
  cli.flag("sizes", "comma-separated n = m sweep", "64,256,1024,4096");
  cli.flag("ds", "comma-separated d values", "1,2,3");
  cli.flag("samples", "stationary samples per point", "300");
  cli.flag("seed", "rng seed", "10");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto ds = cli.int_list("ds");
  const auto samples = cli.integer("samples");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"d", "n=m", "maxload_A", "maxload_B", "fluid_A",
                     "fluid_B", "ln(n)/lnln(n)", "lnln(n)/ln(d)",
                     "ESS_A"});

  for (const std::int64_t d : ds) {
    for (const std::int64_t n : sizes) {
      const auto ns = static_cast<std::size_t>(n);
      const double nd = static_cast<double>(n);
      rng::Xoshiro256PlusPlus eng(
          rng::derive_stream_seed(seed, static_cast<std::uint64_t>(d * 100000 +
                                                                   n)));
      const std::int64_t burn_in = 40 * n;
      const std::int64_t spacing = std::max<std::int64_t>(1, n / 4);

      balls::ScenarioAChain<balls::AbkuRule> ca(
          balls::LoadVector::balanced(ns, n),
          balls::AbkuRule(static_cast<int>(d)));
      const auto est_a =
          stationary_mean_max_load(ca, burn_in, samples, spacing, eng);
      const double max_a = est_a.mean_max_load;
      balls::ScenarioBChain<balls::AbkuRule> cb(
          balls::LoadVector::balanced(ns, n),
          balls::AbkuRule(static_cast<int>(d)));
      const double max_b =
          stationary_mean_max_load(cb, burn_in, samples, spacing, eng)
              .mean_max_load;

      fluid::FluidModel fa(fluid::Scenario::kA, static_cast<int>(d), 1.0, 40);
      fluid::FluidModel fb(fluid::Scenario::kB, static_cast<int>(d), 1.0, 40);
      const auto fluid_a =
          fluid::FluidModel::predicted_max_load(fa.fixed_point(), nd);
      const auto fluid_b =
          fluid::FluidModel::predicted_max_load(fb.fixed_point(), nd);

      const double one_choice = std::log(nd) / std::log(std::log(nd));
      const double two_choice =
          d >= 2 ? std::log(std::log(nd)) / std::log(static_cast<double>(d))
                 : 0.0;
      table.row()
          .integer(d)
          .integer(n)
          .num(max_a, 2)
          .num(max_b, 2)
          .integer(fluid_a)
          .integer(fluid_b)
          .num(one_choice, 2)
          .num(two_choice, 2)
          .num(est_a.ess, 0);
    }
  }
  table.print(std::cout);
  run.add_table("stationary_maxload", table);
  std::printf(
      "\n# Shape: d=1 max load grows ~ln n/lnln n; d>=2 stays within O(1) "
      "of lnln n/ln d (near-flat in n) and the fluid column tracks the "
      "simulation within ~1 level.\n");
  return 0;
}
