#include "src/sweep/scheduler.hpp"

#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "src/obs/json_writer.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/progress.hpp"
#include "src/obs/trace.hpp"
#include "src/rng/engines.hpp"
#include "src/sweep/checkpoint.hpp"
#include "src/sweep/registry.hpp"
#include "src/util/assert.hpp"

namespace recover::sweep {

namespace {

struct alignas(64) WorkQueue {
  std::mutex mutex;
  std::deque<std::uint64_t> items;
};

}  // namespace

void run_work_stealing(const std::vector<std::uint64_t>& items,
                       const std::function<void(std::uint64_t)>& fn,
                       parallel::ThreadPool& pool) {
  if (items.empty()) return;
  static obs::Counter& steals =
      obs::Registry::global().counter("sweep.steals");
  const std::size_t workers = pool.size();
  std::vector<std::unique_ptr<WorkQueue>> queues;
  queues.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    queues.push_back(std::make_unique<WorkQueue>());
  }
  // Round-robin seeding spreads a sharded grid's (already strided) cell
  // indices evenly; stealing corrects whatever imbalance remains.
  for (std::size_t i = 0; i < items.size(); ++i) {
    queues[i % workers]->items.push_back(items[i]);
  }
  pool.for_each_index(static_cast<std::uint64_t>(workers), [&](std::uint64_t w) {
    auto& own = *queues[w];
    for (;;) {
      std::uint64_t item = 0;
      bool got = false;
      {
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.items.empty()) {
          item = own.items.front();
          own.items.pop_front();
          got = true;
        }
      }
      if (!got) {
        // Steal the bigger half from the back of the fullest victim,
        // into a local buffer first so no two queue locks are ever held
        // together (trivially deadlock-free).  Two scan passes before
        // giving up: a one-pass scan can miss items that are mid-flight
        // between queues during a concurrent steal.
        for (int pass = 0; pass < 2 && !got; ++pass) {
          std::size_t victim = workers;
          std::size_t victim_size = 0;
          for (std::size_t v = 0; v < workers; ++v) {
            if (v == w) continue;
            std::lock_guard<std::mutex> lock(queues[v]->mutex);
            if (queues[v]->items.size() > victim_size) {
              victim = v;
              victim_size = queues[v]->items.size();
            }
          }
          if (victim == workers) continue;
          std::vector<std::uint64_t> batch;
          {
            std::lock_guard<std::mutex> lock(queues[victim]->mutex);
            auto& from = queues[victim]->items;
            const std::size_t take = (from.size() + 1) / 2;
            for (std::size_t k = 0; k < take; ++k) {
              batch.push_back(from.back());
              from.pop_back();
            }
          }
          if (batch.empty()) continue;  // drained between scan and steal
          obs::trace::instant("sweep.steal", "victim",
                              static_cast<std::int64_t>(victim), "count",
                              static_cast<std::int64_t>(batch.size()));
          item = batch.back();
          batch.pop_back();
          if (!batch.empty()) {
            std::lock_guard<std::mutex> lock(own.mutex);
            for (const std::uint64_t b : batch) own.items.push_back(b);
          }
          got = true;
          steals.add();
        }
      }
      if (!got) return;  // every queue empty: the sweep spawns no new work
      fn(item);
    }
  });
}

SweepReport run_sweep(const GridSpec& grid, const SweepOptions& options) {
  const Experiment* exp = Registry::global().find(options.exp);
  if (exp == nullptr) {
    throw std::invalid_argument("sweep: unknown experiment '" + options.exp +
                                "'");
  }
  if (grid.cells() == 0) {
    throw std::invalid_argument("sweep: empty grid");
  }
  RL_REQUIRE(options.shard_count >= 1);
  RL_REQUIRE(options.shard_index >= 0 &&
             options.shard_index < options.shard_count);

  static obs::Counter& cells_run_counter =
      obs::Registry::global().counter("sweep.cells_run");
  static obs::Counter& checkpoint_hits_counter =
      obs::Registry::global().counter("sweep.checkpoint_hits");
  static obs::Histogram& cell_ns =
      obs::Registry::global().histogram("sweep.cell_ns");

  SweepReport report;
  report.cells_total = grid.cells();

  // Previously completed cells, keyed by content hash (exp|key), last
  // record wins so concatenated shard files and re-appends are fine.
  std::unordered_map<std::uint64_t, CellRecord> done;
  if (!options.checkpoint_path.empty()) {
    auto load = load_checkpoint(options.checkpoint_path);
    report.checkpoint_lines_skipped = load.skipped_lines;
    for (auto& record : load.records) {
      if (record.exp != options.exp) continue;  // shared file across exps
      done[record.hash] = std::move(record);
    }
  }

  // Partition the grid: this shard's cells, and within them the subset
  // that still needs computing.
  std::vector<std::uint64_t> mine;
  std::vector<std::uint64_t> to_run;
  for (std::uint64_t index = 0; index < report.cells_total; ++index) {
    if (!in_shard(index, options.shard_index, options.shard_count)) continue;
    mine.push_back(index);
    const Cell cell = grid.cell(index);
    const auto it = done.find(cell_hash(options.exp, cell));
    if (it == done.end()) {
      to_run.push_back(index);
    } else {
      ++report.checkpoint_hits;
    }
  }
  report.cells_in_shard = mine.size();
  report.cells_run = to_run.size();
  checkpoint_hits_counter.add(report.checkpoint_hits);

  // Execute what's left; each completed cell is appended to the
  // checkpoint (fsync'd) before it counts as done.
  std::unique_ptr<CheckpointWriter> writer;
  if (!options.checkpoint_path.empty() && !to_run.empty()) {
    writer = std::make_unique<CheckpointWriter>(options.checkpoint_path);
  }
  std::mutex writer_mutex;
  std::unordered_map<std::uint64_t, std::size_t> slot_of;
  slot_of.reserve(to_run.size());
  for (std::size_t s = 0; s < to_run.size(); ++s) slot_of[to_run[s]] = s;
  std::vector<CellRecord> fresh(to_run.size());
  obs::Progress progress("sweep",
                         static_cast<std::uint64_t>(to_run.size()));
  auto& pool = options.pool != nullptr ? *options.pool
                                       : parallel::ThreadPool::global();
  run_work_stealing(
      to_run,
      [&](std::uint64_t index) {
        const Cell cell = grid.cell(index);
        // The grid key labels the cell's trace span, so a Perfetto
        // timeline (or trace_stats.py's straggler table) names the
        // exact grid point a worker spent its time on.
        obs::ScopedSpan span(cell_ns, cell.key());
        CellContext ctx;
        ctx.seed = rng::substream(options.seed, index);
        ctx.parallel_within_cell = false;  // cells are the parallel unit
        const auto begin = std::chrono::steady_clock::now();
        CellResult result = exp->run(cell, ctx);
        CellRecord record;
        record.exp = options.exp;
        record.key = cell.key();
        record.hash = cell_hash(options.exp, cell);
        record.index = index;
        record.values = std::move(result.values);
        record.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          begin)
                .count();
        if (writer != nullptr) {
          std::lock_guard<std::mutex> lock(writer_mutex);
          writer->append(record);
        }
        progress.set_detail(record.key);
        fresh[slot_of.at(index)] = std::move(record);
        cells_run_counter.add();
        progress.tick();
      },
      pool);

  // Aggregate table in grid order: fresh results by slot, the rest from
  // the checkpoint.  Result cells use the shortest round-trip rendering
  // so resumed values (JSON double round trip is exact) match fresh ones
  // byte for byte.
  std::vector<std::string> columns;
  for (std::size_t a = 0; a < grid.axis_count(); ++a) {
    columns.push_back(grid.axis(a).name);
  }
  for (const auto& c : exp->result_columns) columns.push_back(c);
  util::Table table(columns);
  for (const std::uint64_t index : mine) {
    const Cell cell = grid.cell(index);
    const auto slot = slot_of.find(index);
    const CellRecord& record = slot != slot_of.end()
                                   ? fresh[slot->second]
                                   : done.at(cell_hash(options.exp, cell));
    auto& row = table.row();
    for (const auto& [name, value] : cell.params) {
      (void)name;
      row.integer(value);
    }
    CellResult as_result;
    as_result.values = record.values;
    for (const auto& c : exp->result_columns) {
      row.add(obs::json_number(as_result.at(c)));
    }
  }
  report.table = std::move(table);
  return report;
}

}  // namespace recover::sweep
