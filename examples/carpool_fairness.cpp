// Carpool fairness demo (§1.1 "Fair Allocations"; Fagin–Williams; Ajtai
// et al.'s edge-orientation reduction).
//
// n colleagues carpool: each day a uniform random pair shares a ride and
// one of them drives.  The greedy protocol picks whoever has driven
// less (relative to their share); the baseline flips a coin.  The demo
// contrasts the resulting worst "driving debt" — Θ(log log n) under the
// greedy rule versus Θ(√days) drift under coin flips — and then crashes
// the schedule (half the office owes k rides) to show the recovery the
// paper bounds by O(n² ln² n) arrivals.
//
//   ./carpool_fairness --n 64 --days 100000
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/orient/greedy_graph.hpp"
#include "src/orient/state.hpp"
#include "src/rng/engines.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

// Coin-flip baseline: same arrivals, driver chosen uniformly.
class CoinFlipPool {
 public:
  explicit CoinFlipPool(std::size_t n) : debt_(n, 0) {}

  template <typename Engine>
  void day(Engine& eng) {
    const auto a =
        static_cast<std::size_t>(recover::rng::uniform_below(eng,
                                                             debt_.size()));
    auto b = static_cast<std::size_t>(
        recover::rng::uniform_below(eng, debt_.size() - 1));
    if (b >= a) ++b;
    const std::size_t driver = recover::rng::coin(eng) ? a : b;
    const std::size_t rider = driver == a ? b : a;
    ++debt_[driver];
    --debt_[rider];
  }

  [[nodiscard]] std::int64_t max_debt() const {
    std::int64_t worst = 0;
    for (const auto d : debt_) worst = std::max(worst, std::abs(d));
    return worst;
  }

 private:
  std::vector<std::int64_t> debt_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("carpool_fairness",
                "greedy vs coin-flip driver selection in a carpool");
  cli.flag("n", "participants", "64");
  cli.flag("days", "days to simulate", "100000");
  cli.flag("seed", "rng seed", "1");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(cli.integer("n"));
  const auto days = cli.integer("days");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  rng::Xoshiro256PlusPlus eng(seed);

  orient::CarpoolScheduler greedy(n);
  CoinFlipPool coin(n);
  util::Table table({"day", "greedy max debt", "coin-flip max debt"});
  const std::int64_t checkpoints = 8;
  for (std::int64_t c = 1; c <= checkpoints; ++c) {
    const std::int64_t until = days * c / checkpoints;
    while (greedy.rides() < until) {
      greedy.day(eng);
      coin.day(eng);
    }
    table.row()
        .integer(until)
        .integer(greedy.max_debt())
        .integer(coin.max_debt());
  }
  table.print(std::cout);
  std::printf(
      "\ngreedy debt stays ~ lnln(%zu) = %.1f; coin-flip debt random-walks "
      "like sqrt(days/n) and keeps growing.\n",
      n, std::log(std::log(static_cast<double>(n))));

  // Crash: half the office owes k rides each; watch greedy absorb it.
  const std::int64_t k = static_cast<std::int64_t>(n) / 2;
  orient::GreedyOrienter crashed = orient::GreedyOrienter::from_diffs([&] {
    std::vector<std::int64_t> debts(n, 0);
    for (std::size_t i = 0; i < n / 2; ++i) {
      debts[i] = k;
      debts[n - 1 - i] = -k;
    }
    return debts;
  }());
  std::printf("\ncrash: %zu people owe %lld rides each; recovery trace:\n", n / 2,
              static_cast<long long>(k));
  std::int64_t day = 0;
  while (crashed.unfairness() > 3 && day < 100'000'000) {
    crashed.step(eng);
    ++day;
    if ((day & (day - 1)) == 0) {  // powers of two
      std::printf("  day %-10lld worst debt %lld\n",
                  static_cast<long long>(day),
                  static_cast<long long>(crashed.unfairness()));
    }
  }
  const double n2ln2 = static_cast<double>(n) * static_cast<double>(n) *
                       std::pow(std::log(static_cast<double>(n)), 2);
  std::printf(
      "recovered (debt <= 3) after %lld days; Theorem 2 horizon n^2 ln^2 n "
      "= %.0f.\n",
      static_cast<long long>(day), n2ln2);
  return 0;
}
