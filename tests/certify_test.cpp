// Tests for the certification harness itself (src/certify/,
// docs/CERTIFICATION.md).  The load-bearing half is the mutant suite:
// for every property class the harness claims to check, a deliberately
// broken chain model proves the check actually FAILS when the
// implementation is wrong — a conformance suite that cannot fail is
// decoration, not certification.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/certify/check.hpp"
#include "src/certify/compare.hpp"
#include "src/certify/fuzz.hpp"
#include "src/certify/model.hpp"
#include "src/certify/properties.hpp"
#include "src/kernel/kernel.hpp"
#include "src/rng/distributions.hpp"
#include "src/rng/engines.hpp"
#include "src/serve/handlers.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"

namespace recover::certify {
namespace {

// ---------------------------------------------------------------------------
// Registry completeness: every chain family of the repo is registered,
// with the hooks the issue demands.

TEST(CertifyRegistry, EveryChainFamilyIsRegistered) {
  const ModelRegistry& registry = builtin_registry();
  std::set<std::string> names;
  for (const ChainModel& model : registry.models()) {
    EXPECT_TRUE(names.insert(model.name).second)
        << "duplicate model " << model.name;
    // Every model must be able to state its exact one-step law and
    // sample it — that pair is the minimum certifiable surface.
    EXPECT_TRUE(static_cast<bool>(model.starts)) << model.name;
    EXPECT_TRUE(static_cast<bool>(model.exact_step)) << model.name;
    EXPECT_TRUE(static_cast<bool>(model.sample_step) ||
                static_cast<bool>(model.coupled_step))
        << model.name;
  }
  for (const char* required :
       {"scenario_a", "scenario_b", "scenario_a_adap", "labeled_a",
        "labeled_b", "grand_coupling_a", "grand_coupling_b", "orientation",
        "orientation_coupling", "open", "open_coupling", "bounded_open",
        "bounded_open_coupling"}) {
    EXPECT_NE(registry.find(required), nullptr)
        << "family missing from the registry: " << required;
  }
  // The kernel-mode identity contract must be represented: at least the
  // scenario chains and the grand couplings advertise a batched path.
  int batched = 0;
  for (const ChainModel& model : registry.models()) {
    if (model.has_batched) ++batched;
  }
  EXPECT_GE(batched, 4);
}

TEST(CertifyRegistry, BuiltinModelsPassAQuickSuite) {
  CertifyOptions options;
  options.seed = test_master_seed(1);
  SCOPED_TRACE(seed_banner(options.seed));
  options.instances = 2;
  options.law_trials = 6000;
  options.identity_steps = 300;  // crosses the kBatchSteps boundary
  options.invariant_steps = 64;
  const CertifyReport report = certify_models(builtin_registry(), options);
  EXPECT_GT(report.checks, 50);
  for (const CheckFailure& failure : report.failures) {
    ADD_FAILURE() << failure.repro(options);
  }
}

// ---------------------------------------------------------------------------
// Mutant models: clone a real registered model, break exactly one hook,
// and require the matching property class (and only a sensible set of
// classes) to fail.

CertifyOptions mutant_options() {
  CertifyOptions options;
  options.seed = 7;
  options.instances = 3;
  options.law_trials = 8000;
  options.identity_steps = 64;
  options.invariant_steps = 32;
  return options;
}

const ChainModel& model_or_die(const std::string& name) {
  const ChainModel* model = builtin_registry().find(name);
  if (model == nullptr) std::abort();
  return *model;
}

std::set<std::string> failed_properties(const CertifyReport& report) {
  std::set<std::string> properties;
  for (const CheckFailure& failure : report.failures) {
    properties.insert(failure.property);
  }
  return properties;
}

TEST(CertifyMutants, BrokenExactLawFailsExactVsSampled) {
  ChainModel mutant = model_or_die("scenario_a");
  mutant.name = "scenario_a_broken_law";
  const auto real_law = mutant.exact_step;
  mutant.exact_step = [real_law](const Instance& in,
                                 const std::string& start) {
    // Move 20% of the top outcome's mass onto the bottom one: still a
    // valid pmf over the same support, just the wrong one.
    StepLaw law = real_law(in, start);
    auto top = std::max_element(
        law.begin(), law.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    const double moved = top->second * 0.2;
    top->second -= moved;
    (top == law.begin() ? law.back() : law.front()).second += moved;
    return law;
  };
  ModelRegistry registry;
  registry.add(mutant);
  const auto options = mutant_options();
  const CertifyReport report = certify_models(registry, options);
  ASSERT_FALSE(report.ok()) << "the harness accepted a wrong exact law";
  EXPECT_EQ(failed_properties(report),
            (std::set<std::string>{"exact_vs_sampled"}));
  // Every failure line is a complete reproduction recipe.
  const std::string repro = report.failures.front().repro(options);
  EXPECT_NE(repro.find("CERTIFY FAIL"), std::string::npos);
  EXPECT_NE(repro.find("--seed=7"), std::string::npos);
  EXPECT_NE(repro.find("--only=scenario_a_broken_law"), std::string::npos);
}

TEST(CertifyMutants, BrokenBatchedStateFailsKernelIdentity) {
  ChainModel mutant = model_or_die("scenario_a");
  mutant.name = "scenario_a_broken_batched";
  const auto real_run = mutant.run;
  mutant.run = [real_run](const Instance& in, std::uint64_t seed,
                          std::int64_t steps) {
    RunResult result = real_run(in, seed, steps);
    if (kernel::mode() == kernel::Mode::kBatched) result.state_key += "#";
    return result;
  };
  ModelRegistry registry;
  registry.add(mutant);
  const CertifyReport report = certify_models(registry, mutant_options());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(failed_properties(report),
            (std::set<std::string>{"scalar_vs_batched"}));
}

TEST(CertifyMutants, DivergentWordConsumptionFailsKernelIdentity) {
  // Same states, different randomness consumed: the engine-word half of
  // the byte-identity contract must catch it on its own.
  ChainModel mutant = model_or_die("scenario_b");
  mutant.name = "scenario_b_broken_words";
  const auto real_run = mutant.run;
  mutant.run = [real_run](const Instance& in, std::uint64_t seed,
                          std::int64_t steps) {
    RunResult result = real_run(in, seed, steps);
    if (kernel::mode() == kernel::Mode::kBatched) result.engine_word ^= 1;
    return result;
  };
  ModelRegistry registry;
  registry.add(mutant);
  const CertifyReport report = certify_models(registry, mutant_options());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(failed_properties(report),
            (std::set<std::string>{"scalar_vs_batched"}));
}

TEST(CertifyMutants, BiasedCouplingFailsMarginalCheck) {
  ChainModel mutant = model_or_die("grand_coupling_a");
  mutant.name = "grand_coupling_a_biased";
  const auto real_coupled = mutant.coupled_step;
  const auto real_exact = mutant.exact_step;
  mutant.coupled_step = [real_coupled, real_exact](
                            const Instance& in, const std::string& x,
                            const std::string& y,
                            rng::Xoshiro256PlusPlus& eng) {
    auto [kx, ky] = real_coupled(in, x, y, eng);
    // Bias the x marginal: half the time, snap it to the modal outcome.
    if (rng::coin(eng)) {
      const StepLaw law = real_exact(in, x);
      kx = std::max_element(law.begin(), law.end(),
                            [](const auto& a, const auto& b) {
                              return a.second < b.second;
                            })
               ->first;
    }
    return std::make_pair(kx, ky);
  };
  mutant.run = {};            // isolate: no kernel identity checks
  mutant.invariant_run = {};  // no invariant checks
  ModelRegistry registry;
  registry.add(mutant);
  const CertifyReport report = certify_models(registry, mutant_options());
  ASSERT_FALSE(report.ok()) << "the harness accepted a biased coupling";
  const auto properties = failed_properties(report);
  EXPECT_TRUE(properties.count("coupling_marginal_x"))
      << "the biased marginal was not flagged";
  EXPECT_FALSE(properties.count("coupling_marginal_y"))
      << "the untouched marginal was flagged";
}

TEST(CertifyMutants, SplittingCouplingFailsAbsorbingCheck) {
  ChainModel mutant = model_or_die("grand_coupling_a");
  mutant.name = "grand_coupling_a_splitting";
  const auto real_coupled = mutant.coupled_step;
  mutant.coupled_step = [real_coupled](const Instance& in,
                                       const std::string& x,
                                       const std::string& y,
                                       rng::Xoshiro256PlusPlus& eng) {
    // Two independent draws instead of one shared draw: each marginal
    // is still exactly right, but coalesced copies drift apart — only
    // the absorbing check can see the difference.
    const auto first = real_coupled(in, x, y, eng);
    const auto second = real_coupled(in, x, y, eng);
    return std::make_pair(first.first, second.second);
  };
  mutant.run = {};
  mutant.invariant_run = {};
  ModelRegistry registry;
  registry.add(mutant);
  const CertifyReport report = certify_models(registry, mutant_options());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(failed_properties(report).count("coupling_absorbing"));
}

TEST(CertifyMutants, ViolatedInvariantFails) {
  ChainModel mutant = model_or_die("grand_coupling_a");
  mutant.name = "grand_coupling_a_broken_invariant";
  mutant.invariant_run = [](const Instance&, std::uint64_t, std::int64_t,
                            std::string* diag) {
    if (diag != nullptr) *diag = "sandwich breached at step 0 (mutant)";
    return false;
  };
  ModelRegistry registry;
  registry.add(mutant);
  const CertifyReport report = certify_models(registry, mutant_options());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(failed_properties(report).count("invariant"));
  bool found = false;
  for (const CheckFailure& failure : report.failures) {
    if (failure.property == "invariant") {
      EXPECT_NE(failure.detail.find("majorization_sandwich"),
                std::string::npos);
      EXPECT_NE(failure.detail.find("mutant"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// The statistical core: an honest sampler passes, an impossible outcome
// fails unconditionally.

TEST(CertifyCompare, ImpossibleOutcomeFailsRegardlessOfTrials) {
  const StepLaw law = {{"a", 0.5}, {"b", 0.5}};
  int calls = 0;
  const LawCheck check = check_sampled_law(
      law,
      [&calls]() -> std::string {
        ++calls;
        return calls == 10 ? "c" : "a";  // "c" has exact probability 0
      },
      1000);
  EXPECT_FALSE(check.pass(1e-12));
  EXPECT_TRUE(check.impossible);
  EXPECT_EQ(check.impossible_key, "c");
}

// ---------------------------------------------------------------------------
// Protocol fuzzer: determinism, reply validation, and the regression
// corpus of frames that once crashed (or must never crash) the server.

TEST(CertifyFuzz, FramesAreDeterministicAndNewlineFree) {
  for (std::int64_t i = 0; i < 2000; ++i) {
    const std::string frame = fuzz_frame(99, i);
    EXPECT_EQ(frame, fuzz_frame(99, i)) << "frame " << i;
    EXPECT_EQ(frame.find('\n'), std::string::npos) << "frame " << i;
    EXPECT_EQ(frame.find('\r'), std::string::npos) << "frame " << i;
  }
}

TEST(CertifyFuzz, ValidatorAcceptsWireRepliesAndRejectsNonsense) {
  EXPECT_EQ(validate_reply_line(serve::make_result("1", "{\"pong\":true}")),
            "");
  EXPECT_EQ(validate_reply_line(serve::make_error(
                "\"abc\"", serve::ErrorCode::kParseError, "bad")),
            "");
  EXPECT_NE(validate_reply_line("not json"), "");
  EXPECT_NE(validate_reply_line("{}"), "");
  EXPECT_NE(validate_reply_line(
                "{\"schema\":\"recover.resp/2\",\"id\":1,\"ok\":true,"
                "\"result\":{}}"),
            "");
  // ok:true without a result, and an error code outside the taxonomy.
  EXPECT_NE(validate_reply_line(
                "{\"schema\":\"recover.resp/1\",\"id\":1,\"ok\":true}"),
            "");
  EXPECT_NE(validate_reply_line(
                "{\"schema\":\"recover.resp/1\",\"id\":1,\"ok\":false,"
                "\"error\":{\"code\":\"wat\",\"message\":\"x\"}}"),
            "");
  EXPECT_EQ(reply_error_code(serve::make_error(
                "1", serve::ErrorCode::kDeadlineExceeded, "late")),
            "deadline_exceeded");
}

/// One loopback frame through the real framing + parse + dispatch
/// pipeline; returns the error code ("" for an ok reply).
std::string loopback_error_code(const std::string& frame) {
  serve::Request req;
  const serve::ParseOutcome outcome = serve::parse_request(frame, req);
  if (!outcome.ok) return std::string(serve::error_code_name(outcome.code));
  serve::HandlerContext ctx;
  ctx.cells_parallel = false;
  const serve::HandlerResult result = serve::dispatch(req, ctx);
  return result.ok ? "" : std::string(serve::error_code_name(result.code));
}

TEST(CertifyFuzz, RegressionCorpusStaysInTaxonomy) {
  // run_cell with a required axis missing: previously reached the
  // aborting Cell::at through a structurally valid request — a remote
  // peer could kill the daemon with one frame.
  EXPECT_EQ(loopback_error_code(
                "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":"
                "\"run_cell\",\"params\":{\"exp\":\"exp01\","
                "\"params\":{\"d\":2,\"density\":1}}}"),
            "invalid_params");
  EXPECT_EQ(loopback_error_code(
                "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":"
                "\"run_cell\",\"params\":{\"exp\":\"exp10\","
                "\"params\":{\"n\":64}}}"),
            "invalid_params");
  // The byte-flip shape that found it: "m" mutated into another key.
  EXPECT_EQ(loopback_error_code(
                "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":"
                "\"run_cell\",\"params\":{\"exp\":\"exp01\",\"seed\":9,"
                "\"params\":{\"-\":16,\"d\":2,\"density\":1,"
                "\"replicas\":1}}}"),
            "invalid_params");
  // Depth bomb far over the reader's nesting cap: parse_error, no
  // stack excursion.
  std::string bomb =
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"run_cell\","
      "\"params\":";
  for (int i = 0; i < 120; ++i) bomb += "{\"a\":";
  bomb += "1";
  for (int i = 0; i < 120; ++i) bomb += "}";
  bomb += "}";
  EXPECT_EQ(loopback_error_code(bomb), "parse_error");
  // Lone UTF-16 surrogate in a string field.
  EXPECT_EQ(loopback_error_code(
                "{\"schema\":\"recover.req/1\",\"id\":\"\\uD800\","
                "\"method\":\"ping\"}"),
            "parse_error");
  // A valid surrogate pair parses; the method is simply unknown.
  EXPECT_EQ(loopback_error_code(
                "{\"schema\":\"recover.req/1\",\"id\":1,"
                "\"method\":\"\\uD83D\\uDE00\"}"),
            "unknown_method");
}

TEST(CertifyFuzz, LoopbackRunIsCleanOverManyFrames) {
  FuzzOptions options;
  options.seed = test_master_seed(1);
  SCOPED_TRACE(seed_banner(options.seed));
  options.frames = 3000;
  const FuzzReport report = fuzz_handlers(options);
  EXPECT_EQ(report.frames, 3000);
  EXPECT_GT(report.replies, 0);
  for (const FuzzViolation& violation : report.violations) {
    ADD_FAILURE() << fuzz_repro(violation, options);
  }
  // The generator must actually exercise the taxonomy's front line.
  EXPECT_GT(report.error_counts.count("parse_error"), 0u);
  EXPECT_GT(report.error_counts.count("invalid_params"), 0u);
  EXPECT_GT(report.error_counts.count("unknown_method"), 0u);
}

TEST(CertifyFuzz, LiveServerSurvivesAFuzzRound) {
  serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = 2;
  server_options.cells_parallel = false;
  serve::Server server(server_options);
  ASSERT_TRUE(server.start());

  FuzzOptions options;
  options.seed = test_master_seed(2);
  SCOPED_TRACE(seed_banner(options.seed));
  options.frames = 2000;
  const FuzzReport report =
      fuzz_server("127.0.0.1", server.port(), options);
  EXPECT_EQ(report.frames, 2000);
  for (const FuzzViolation& violation : report.violations) {
    ADD_FAILURE() << fuzz_repro(violation, options);
  }
  // The server must still answer cleanly after the storm.
  FuzzOptions followup;
  followup.seed = options.seed;
  followup.frames = 64;
  const FuzzReport after =
      fuzz_server("127.0.0.1", server.port(), followup);
  EXPECT_TRUE(after.ok());
}

}  // namespace
}  // namespace recover::certify
