file(REMOVE_RECURSE
  "CMakeFiles/exp06_orientation_mixing.dir/exp06_orientation_mixing.cpp.o"
  "CMakeFiles/exp06_orientation_mixing.dir/exp06_orientation_mixing.cpp.o.d"
  "exp06_orientation_mixing"
  "exp06_orientation_mixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp06_orientation_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
