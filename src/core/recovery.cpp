#include "src/core/recovery.hpp"

namespace recover::core {

std::int64_t first_sustained_entry(const std::vector<double>& series,
                                   double lo, double hi, std::size_t window) {
  RL_REQUIRE(window >= 1);
  RL_REQUIRE(lo <= hi);
  std::size_t run = 0;
  for (std::size_t s = 0; s < series.size(); ++s) {
    if (series[s] >= lo && series[s] <= hi) {
      ++run;
      if (run >= window) {
        return static_cast<std::int64_t>(s + 1 - window);
      }
    } else {
      run = 0;
    }
  }
  return -1;
}

}  // namespace recover::core
