# Empty compiler generated dependencies file for exp08_adaptive_rules.
# This may be replaced when dependencies are built.
