# Empty dependencies file for removal_policies_test.
# This may be replaced when dependencies are built.
