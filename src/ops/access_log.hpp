// ops::AccessLog — structured JSON access log for the serve daemon:
// one line per completed request, schema `recover.access/1`
// (docs/OBSERVABILITY.md, "Live telemetry").
//
//   {"schema":"recover.access/1","req_id":"c12-3","method":"run_cell",
//    "cell":"n=1024,beta=0.5","status":"ok","deadline":"met",
//    "queue_ns":18342,"run_ns":5120094}
//
// Same discipline as the trace ring (src/obs/trace_buffer.hpp):
//  * Pay nothing when disabled — a null AccessLog pointer at the call
//    site is the off switch; no atomics, no formatting.
//  * The request path never blocks on the filesystem.  log() formats the
//    line (small, bounded — client-sourced fields are escaped and
//    truncated) and pushes it onto a bounded in-memory queue; a dedicated
//    writer thread drains the queue to the file.  When the queue is full
//    the OLDEST line is dropped and `dropped` incremented — under
//    overload the log degrades, the serve path does not.
//  * close() drains whatever is queued, then fsync-free flushes; the
//    final `written`/`dropped` counts are readable afterwards.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace recover::ops {

/// One completed request, as seen by the logger.  String fields are
/// views into caller storage — log() copies what it needs before
/// returning.
struct AccessEntry {
  std::string_view req_id;
  std::string_view method;   // wire method, or "?" for pre-parse sheds
  std::string_view cell;     // run_cell's cell key; empty otherwise
  std::string_view status;   // "ok", "shed", "deadline", "error", ...
  std::string_view deadline; // "none", "met", "expired_queued", "expired_running"
  std::uint64_t queue_ns = 0;
  std::uint64_t run_ns = 0;
};

class AccessLog {
 public:
  /// Lines held in memory before drop-oldest kicks in.
  static constexpr std::size_t kQueueCapacity = 4096;
  /// Cap on any single escaped string field (method, cell, …): a hostile
  /// client cannot inflate log lines past this.
  static constexpr std::size_t kMaxFieldBytes = 256;

  AccessLog() = default;
  ~AccessLog() { close(); }

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Opens `path` for append and starts the writer thread.  False (with
  /// a stderr diagnostic) if the file cannot be opened.
  bool open(const std::string& path);

  [[nodiscard]] bool is_open() const { return file_ != nullptr; }

  /// Formats and enqueues one line.  Never blocks on I/O; drops the
  /// oldest queued line when the queue is full.
  void log(const AccessEntry& entry);

  /// Drains the queue, stops the writer thread, closes the file.
  /// Idempotent.
  void close();

  [[nodiscard]] std::uint64_t written() const {
    return written_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Renders `entry` as one recover.access/1 JSON line (no trailing
  /// newline).  Exposed for tests.
  static std::string format_line(const AccessEntry& entry);

 private:
  void writer_loop();

  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::string> queue_;
  bool closing_ = false;
  std::thread writer_;
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace recover::ops
