# Empty dependencies file for exp16_coupling_ablation.
# This may be replaced when dependencies are built.
