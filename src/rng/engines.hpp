// Random-number engines for simulation workloads.
//
// recoverlib uses three engines:
//  * SplitMix64  — seeding / stream derivation (64-bit state, equidistributed
//                  enough to expand one user seed into many stream keys).
//  * Xoshiro256PlusPlus — the workhorse generator on hot simulation paths.
//  * Philox4x32  — counter-based engine; given (key, counter) it is pure,
//                  which makes per-thread / per-replica streams reproducible
//                  regardless of scheduling (the property the coupling
//                  experiments rely on).
//
// All engines satisfy std::uniform_random_bit_generator, so they compose
// with <random> where convenient; the distributions in distributions.hpp
// avoid modulo bias and are preferred on hot paths.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace recover::rng {

/// SplitMix64 (Steele, Lea, Flood 2014).  Used mainly to derive seeds.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

namespace detail {

/// Draws between flushes of a per-engine pending count into the global
/// obs counter.  Power of two: the flush test compiles to a mask +
/// never-taken branch, so draw accounting stays off the global bus —
/// no shared cache line is touched on the common path.
inline constexpr std::uint64_t kDrawFlush = 1u << 16;

}  // namespace detail

/// xoshiro256++ 1.0 (Blackman, Vigna 2019).
class Xoshiro256PlusPlus {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256PlusPlus(std::uint64_t seed);

  // Copies restart draw accounting at zero so every draw is flushed to
  // the global counter exactly once (by the engine that made it).
  Xoshiro256PlusPlus(const Xoshiro256PlusPlus& other) : s_(other.s_) {}
  Xoshiro256PlusPlus& operator=(const Xoshiro256PlusPlus& other) {
    s_ = other.s_;
    return *this;
  }
  ~Xoshiro256PlusPlus();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Writes `count` consecutive outputs of operator() into `out`,
  /// leaving the engine in exactly the state `count` calls would.  The
  /// state lives in registers for the whole loop and draw accounting is
  /// amortized over the block, which is what makes the batched kernels
  /// (src/kernel/) faster than per-call draws.
  void fill(std::uint64_t* out, std::size_t count);

  /// Streams `groups` groups of G consecutive operator() outputs through
  /// `sink(group_index, words)` without a second pass over memory.
  /// Header-inline on purpose: the sink's work (store, map, reduce — see
  /// src/kernel/choice_block.hpp) fuses into the generation loop, where
  /// it executes under the recurrence's serial dependency chain instead
  /// of costing its own memory pass.  Leaves the engine in exactly the
  /// state `groups * G` operator() calls would.
  template <std::size_t G, typename Sink>
  void generate_groups(std::size_t groups, Sink&& sink) {
    static_assert(G >= 1);
    std::uint64_t s0 = s_[0];
    std::uint64_t s1 = s_[1];
    std::uint64_t s2 = s_[2];
    std::uint64_t s3 = s_[3];
    for (std::size_t g = 0; g < groups; ++g) {
      std::array<std::uint64_t, G> w;
      for (std::size_t k = 0; k < G; ++k) {  // unrolled: G is constexpr
        w[k] = std::rotl(s0 + s3, 23) + s0;
        const std::uint64_t t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = std::rotl(s3, 45);
      }
      sink(g, w);
    }
    s_ = {s0, s1, s2, s3};
    account_draws(groups * G);
  }

  /// Equivalent to 2^128 calls to operator(); yields non-overlapping
  /// subsequences for parallel streams.
  void jump();

 private:
  /// Folds a block of `count` draws into the draw accounting, preserving
  /// the exact flush totals of per-call accounting.
  void account_draws(std::uint64_t count);

  std::array<std::uint64_t, 4> s_;
  std::uint64_t pending_draws_ = 0;
};

/// Philox4x32-10 (Salmon et al., SC'11) counter-based generator.
///
/// The generator exposes the usual engine interface (buffering the four
/// 32-bit lanes of each block), and also a pure `block(counter)` function
/// so call sites can index randomness by (replica, step) directly.
class Philox4x32 {
 public:
  using result_type = std::uint64_t;

  explicit Philox4x32(std::uint64_t key, std::uint64_t counter_hi = 0);

  // Same copy policy as Xoshiro256PlusPlus: the copy restarts draw
  // accounting so each draw is flushed exactly once.
  Philox4x32(const Philox4x32& other)
      : key_(other.key_),
        counter_hi_(other.counter_hi_),
        counter_(other.counter_),
        buffer_(other.buffer_),
        buffered_(other.buffered_) {}
  Philox4x32& operator=(const Philox4x32& other) {
    key_ = other.key_;
    counter_hi_ = other.counter_hi_;
    counter_ = other.counter_;
    buffer_ = other.buffer_;
    buffered_ = other.buffered_;
    return *this;
  }
  ~Philox4x32();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Writes `count` consecutive outputs of operator() into `out`,
  /// leaving the engine in exactly the state `count` calls would
  /// (including partially consumed blocks before and after).  Whole
  /// blocks are generated straight from the counter — the counter-based
  /// analogue of Xoshiro256PlusPlus::fill.
  void fill(std::uint64_t* out, std::size_t count);

  /// Pure function of (key, counter): the 128-bit output block for the
  /// given 64-bit counter (the high half of the 128-bit counter is the
  /// construction-time `counter_hi`).
  [[nodiscard]] std::array<std::uint32_t, 4> block(
      std::uint64_t counter) const;

 private:
  std::uint64_t key_;
  std::uint64_t counter_hi_;
  std::uint64_t counter_ = 0;
  std::array<std::uint32_t, 4> buffer_{};
  int buffered_ = 0;  // number of 32-bit lanes still unconsumed
  std::uint64_t pending_draws_ = 0;
  std::uint64_t pending_blocks_ = 0;
};

/// Derives the i-th independent stream seed from a master seed.
std::uint64_t derive_stream_seed(std::uint64_t master_seed, std::uint64_t i);

/// SplitMix-style substream derivation: the seed of child stream `i` of
/// `master_seed`, a pure function of (master_seed, i) alone.  Callers
/// key `i` on a logical index (sweep cell index, replica index), never on
/// iteration order, so the derived streams are identical under any
/// thread count, schedule, shard split, or checkpoint resume.  Unlike
/// derive_stream_seed, the master seed is first mixed through SplitMix64
/// before the stream index is folded in, so structured master seeds
/// (0, 1, 2, ...) and structured indices cannot interact; substreams
/// nest safely: substream(substream(s, cell), trial).
std::uint64_t substream(std::uint64_t master_seed, std::uint64_t i);

}  // namespace recover::rng
