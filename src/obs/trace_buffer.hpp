// Event-level tracing: per-thread ring buffers of span/instant/counter
// events with steady-clock timestamps, exported as Chrome trace-event
// JSON (src/obs/trace_export.hpp) loadable in Perfetto or
// chrome://tracing.
//
// Design constraints (mirrors the metrics registry, docs/OBSERVABILITY.md):
//  * Pay-nothing when disabled — every record path is one relaxed atomic
//    load plus a predicted branch; the clock is never read and no buffer
//    is ever allocated unless --trace enabled the global switch.
//  * No cross-thread contention when enabled — each thread records into
//    its own fixed-capacity SPSC ring (producer: the owning thread;
//    consumer: the exporter, which runs while producers are quiescent).
//    Publication is a release store of the write head; the exporter
//    acquire-loads it, so every published slot is safely readable.
//  * Bounded memory — rings drop the OLDEST events on overflow (the tail
//    of a run is what a straggler hunt needs) and count what they
//    dropped; capacity is fixed at construction.
//
// Event labels (`name`, arg names) must be pointers with static storage
// duration — string literals or metric names out of the Registry (whose
// addresses are stable for the process lifetime).  Dynamic labels (a
// sweep cell's grid key) travel in the fixed-size inline `detail` copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace recover::obs {

/// Global opt-in switch (mirrors metrics_enabled; set by obs::Run from
/// the shared --trace flag).
bool trace_enabled() noexcept;
void set_trace_enabled(bool enabled) noexcept;

/// One fixed-size trace event (POD; copied whole into the ring).
struct TraceEvent {
  enum class Type : std::uint8_t {
    kBegin,    // span opens on this thread
    kEnd,      // span closes (LIFO per thread)
    kInstant,  // point event, optional integer args
    kCounter,  // sampled value (arg1 = sample)
  };

  static constexpr std::size_t kDetailCapacity = 47;

  std::uint64_t ts_ns = 0;          // steady_clock ns since clock epoch
  const char* name = nullptr;       // static-duration label
  const char* arg1_name = nullptr;  // optional integer args (instants,
  const char* arg2_name = nullptr;  //   counters, span annotations)
  std::int64_t arg1 = 0;
  std::int64_t arg2 = 0;
  Type type = Type::kInstant;
  char detail[kDetailCapacity + 1] = {};  // truncated inline copy

  void set_detail(std::string_view d) noexcept {
    const std::size_t n = d.size() < kDetailCapacity ? d.size()
                                                     : kDetailCapacity;
    std::memcpy(detail, d.data(), n);
    detail[n] = '\0';
  }
};

/// Per-thread ring.  Single producer (the owning thread, via push),
/// single consumer (the exporter, via snapshot/recorded/dropped, which
/// must run while the producer is quiescent — process exit, joined
/// threads, or an idle pool).
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 14;  // 16384 events

  TraceBuffer(std::uint32_t tid, std::string thread_name,
              std::size_t capacity = kDefaultCapacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Records `e`, overwriting the oldest surviving event when full.
  void push(const TraceEvent& e) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    events_[head % capacity_] = e;
    head_.store(head + 1, std::memory_order_release);
  }

  /// Total events ever pushed (monotone).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Events lost to overwrite: max(0, recorded − capacity).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }

  /// Surviving events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }
  [[nodiscard]] const std::string& thread_name() const {
    return thread_name_;
  }
  void rename(std::string name) { thread_name_ = std::move(name); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::uint32_t tid_;
  std::string thread_name_;
  std::size_t capacity_;
  std::unique_ptr<TraceEvent[]> events_;
  std::atomic<std::uint64_t> head_{0};
};

/// Process-wide collector: owns one TraceBuffer per thread that ever
/// recorded while tracing was enabled.  Buffers live until process exit
/// (threads may die; their events are still exported).
class TraceCollector {
 public:
  static TraceCollector& global();

  /// The calling thread's ring, created and registered on first use
  /// (cold path: one mutex acquisition per thread lifetime).
  TraceBuffer& this_thread_buffer();

  /// Names the calling thread in exported traces ("main",
  /// "pool.worker-3", …).  Cheap and allowed while tracing is disabled:
  /// the name is remembered and applied when (if) the buffer is created.
  void set_this_thread_name(std::string name);

  struct ThreadTrace {
    std::uint32_t tid = 0;
    std::string name;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::vector<TraceEvent> events;  // oldest first
  };

  /// Snapshot of every registered ring, tid order.  Call while all
  /// producers are quiescent (the SPSC contract).
  [[nodiscard]] std::vector<ThreadTrace> collect() const;

  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] std::uint64_t total_dropped() const;

  /// steady_clock ns at the moment tracing was first enabled; exported
  /// timestamps are relative to it.  0 until then.
  [[nodiscard]] std::uint64_t epoch_ns() const noexcept;
  void mark_epoch() noexcept;  // idempotent; called by set_trace_enabled

  /// Drops every buffer and re-arms the epoch.  Only for tests, and only
  /// while no other thread is recording: threads re-register on next use.
  void reset_for_tests();

 private:
  TraceCollector() = default;
  struct Impl;
  Impl& impl() const;
  mutable std::atomic<Impl*> impl_{nullptr};
};

namespace trace {

/// steady_clock now, as the uint64 ns the ring stores.
inline std::uint64_t now_ns() noexcept {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

/// Span open/close with a caller-supplied timestamp — for call sites
/// (obs::ScopedSpan) that already read the clock for a histogram and
/// must not read it twice.
void begin_at(const char* name, std::uint64_t ts_ns,
              std::string_view detail = {}) noexcept;
void end_at(const char* name, std::uint64_t ts_ns) noexcept;

/// Point event with up to two named integer args (e.g. a steal's
/// victim/count).  Arg names must have static storage duration.
void instant(const char* name, const char* arg1_name = nullptr,
             std::int64_t arg1 = 0, const char* arg2_name = nullptr,
             std::int64_t arg2 = 0) noexcept;

/// Sampled counter track (rendered as a graph in Perfetto).
void counter(const char* name, std::int64_t value) noexcept;

/// Convenience forward to TraceCollector::set_this_thread_name.
void set_thread_name(std::string name);

}  // namespace trace

/// Trace-only RAII span for sites with no histogram sink (CFTP doubling
/// rounds, checkpoint fsyncs in cold code).  Costs one relaxed load +
/// branch when tracing is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept
      : name_(name), active_(trace_enabled()) {
    if (active_) trace::begin_at(name_, trace::now_ns());
  }

  /// Annotates the span's begin event with one named integer arg
  /// (e.g. {"window", 1024}).
  TraceSpan(const char* name, const char* arg_name,
            std::int64_t arg) noexcept
      : name_(name), active_(trace_enabled()) {
    if (!active_) return;
    TraceEvent e;
    e.ts_ns = trace::now_ns();
    e.name = name_;
    e.type = TraceEvent::Type::kBegin;
    e.arg1_name = arg_name;
    e.arg1 = arg;
    TraceCollector::global().this_thread_buffer().push(e);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (active_) trace::end_at(name_, trace::now_ns());
  }

 private:
  const char* name_;
  bool active_;
};

}  // namespace recover::obs
