file(REMOVE_RECURSE
  "CMakeFiles/cftp_test.dir/cftp_test.cpp.o"
  "CMakeFiles/cftp_test.dir/cftp_test.cpp.o.d"
  "cftp_test"
  "cftp_test.pdb"
  "cftp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cftp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
