#include "src/obs/run_record.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>

#include "src/obs/json_writer.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/progress.hpp"
#include "src/obs/trace_buffer.hpp"
#include "src/obs/trace_export.hpp"
#include "src/util/assert.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace recover::obs {

namespace {

std::int64_t unix_millis_now() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double steady_seconds_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string hostname() {
  char buf[256] = {};
  if (::gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') {
    return buf;
  }
  const char* env = std::getenv("HOSTNAME");
  return env != nullptr ? env : "unknown";
}

std::string git_describe() {
#ifdef RECOVERLIB_GIT_DESCRIBE
  return RECOVERLIB_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

}  // namespace

std::string git_revision() { return git_describe(); }

void register_cli_flags(util::Cli& cli) {
  cli.flag("json-out", "write a recover.run/1 JSON record to this path", "");
  cli.flag("metrics", "enable the metrics registry and embed a snapshot",
           "false");
  cli.flag("progress", "stderr heartbeat for long sweeps", "false");
  cli.flag("trace",
           "record per-thread event timelines and write a Perfetto-loadable "
           "Chrome trace JSON to this path",
           "");
}

RunRecord::RunRecord(std::string binary, std::string description)
    : binary_(std::move(binary)),
      description_(std::move(description)),
      started_unix_ms_(unix_millis_now()) {}

void RunRecord::set_flags(
    std::vector<std::pair<std::string, std::string>> flags) {
  flags_ = std::move(flags);
}

void RunRecord::add_table(std::string name, const util::Table& table) {
  TableSection section;
  section.name = std::move(name);
  for (std::size_t c = 0; c < table.columns(); ++c) {
    section.columns.push_back(table.header(c));
  }
  for (std::size_t r = 0; r < table.rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(table.columns());
    for (std::size_t c = 0; c < table.columns(); ++c) {
      row.push_back(table.cell(r, c));
    }
    section.rows.push_back(std::move(row));
  }
  tables_.push_back(std::move(section));
}

void RunRecord::note(std::string key, double value) {
  Note n;
  n.key = std::move(key);
  n.numeric = true;
  n.number = value;
  notes_.push_back(std::move(n));
}

void RunRecord::note(std::string key, std::string value) {
  Note n;
  n.key = std::move(key);
  n.text = std::move(value);
  notes_.push_back(std::move(n));
}

std::size_t RunRecord::total_rows() const {
  std::size_t total = 0;
  for (const auto& t : tables_) total += t.rows.size();
  return total;
}

void RunRecord::write_json(std::ostream& os, double wall_seconds,
                           bool include_metrics) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("recover.run/1");

  w.key("run").begin_object();
  w.key("binary").value(binary_);
  w.key("description").value(description_);
  w.key("started_unix_ms").value(started_unix_ms_);
  w.key("wall_seconds").value(wall_seconds);
  w.key("hostname").value(hostname());
  w.key("git").value(git_describe());
  w.key("flags").begin_object();
  for (const auto& [name, value] : flags_) {
    w.key(name).value(value);
  }
  w.end_object();
  w.end_object();

  w.key("tables").begin_array();
  for (const auto& t : tables_) {
    w.begin_object();
    w.key("name").value(t.name);
    w.key("columns").begin_array();
    for (const auto& c : t.columns) w.value(c);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : t.rows) {
      w.begin_array();
      for (const auto& cell : row) {
        // Typed cell: whole-string finite number → number, NaN/Inf →
        // null, otherwise string.
        errno = 0;
        char* end = nullptr;
        const double parsed =
            cell.empty() ? 0.0 : std::strtod(cell.c_str(), &end);
        const bool fully_numeric =
            !cell.empty() && end == cell.c_str() + cell.size() && errno == 0;
        if (!fully_numeric) {
          w.value(cell);
        } else if (!std::isfinite(parsed)) {
          w.null();
        } else {
          const bool integral =
              cell.find_first_not_of("0123456789",
                                     cell[0] == '-' ? 1 : 0) ==
                  std::string::npos &&
              cell != "-" && cell.size() <= 19;
          if (integral) {
            w.value(static_cast<std::int64_t>(std::strtoll(
                cell.c_str(), nullptr, 10)));
          } else {
            w.value(parsed);
          }
        }
      }
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("notes").begin_object();
  for (const auto& n : notes_) {
    w.key(n.key);
    if (n.numeric) {
      w.value(n.number);
    } else {
      w.value(n.text);
    }
  }
  w.end_object();

  if (include_metrics) {
    const auto snap = Registry::global().snapshot();
    w.key("metrics").begin_object();
    w.key("counters").begin_object();
    for (const auto& [name, v] : snap.counters) w.key(name).value(v);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, v] : snap.gauges) w.key(name).value(v);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, h] : snap.histograms) {
      w.key(name).begin_object();
      w.key("count").value(h.count);
      w.key("sum").value(h.sum);
      w.key("mean").value(h.mean());
      // Log₂-bucket-midpoint quantiles (√2-accurate); see
      // Histogram::Snapshot::quantile.
      w.key("p50").value(h.quantile(0.50));
      w.key("p95").value(h.quantile(0.95));
      w.key("p99").value(h.quantile(0.99));
      w.key("buckets").begin_array();
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;  // sparse: only occupied buckets
        w.begin_object();
        w.key("le").value(Histogram::bucket_upper(i));
        w.key("count").value(h.buckets[i]);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }

  w.end_object();
  RL_REQUIRE(w.complete());
}

Run::Run(const util::Cli& cli)
    : record_(cli.program(), cli.description()),
      json_path_(cli.str("json-out")),
      trace_path_(cli.str("trace")),
      metrics_(cli.boolean("metrics")),
      start_seconds_(steady_seconds_now()) {
  record_.set_flags(cli.entries());
  set_metrics_enabled(metrics_);
  set_progress_enabled(cli.boolean("progress"));
  set_trace_enabled(!trace_path_.empty());
  if (!trace_path_.empty()) trace::set_thread_name("main");
}

void Run::finish() {
  if (finished_) return;
  finished_ = true;
  if (!trace_path_.empty()) {
    // Stop recording before draining the rings: the exporter's SPSC
    // read side requires quiescent producers (idle pool workers stay
    // idle once the switch is off).
    set_trace_enabled(false);
    if (!export_trace_file(trace_path_)) std::exit(2);
    auto& collector = TraceCollector::global();
    std::fprintf(stderr,
                 "obs: trace written to %s (%llu events, %llu dropped)\n",
                 trace_path_.c_str(),
                 static_cast<unsigned long long>(collector.total_recorded()),
                 static_cast<unsigned long long>(collector.total_dropped()));
  }
  if (json_path_.empty()) return;
  const double wall = steady_seconds_now() - start_seconds_;
  std::ofstream out(json_path_);
  if (!out) {
    std::fprintf(stderr, "obs: cannot open --json-out path '%s'\n",
                 json_path_.c_str());
    std::exit(2);
  }
  record_.write_json(out, wall, metrics_);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "obs: failed writing '%s'\n", json_path_.c_str());
    std::exit(2);
  }
  std::fprintf(stderr, "obs: run record written to %s\n", json_path_.c_str());
}

Run::~Run() { finish(); }

}  // namespace recover::obs
