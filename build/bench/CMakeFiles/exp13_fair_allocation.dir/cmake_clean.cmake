file(REMOVE_RECURSE
  "CMakeFiles/exp13_fair_allocation.dir/exp13_fair_allocation.cpp.o"
  "CMakeFiles/exp13_fair_allocation.dir/exp13_fair_allocation.cpp.o.d"
  "exp13_fair_allocation"
  "exp13_fair_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp13_fair_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
