# Empty compiler generated dependencies file for exp04_contraction_factors.
# This may be replaced when dependencies are built.
