// Walker/Vose alias table: O(n) construction, O(1) sampling from a fixed
// discrete distribution.
//
// Used where a distribution is sampled many times without changing —
// e.g. drawing initial "crash" configurations, or the static-allocation
// baselines.  The per-step removal distributions 𝒜(v)/ℬ(v) change every
// step and use the Fenwick tree instead; bench_microbench measures the
// crossover (ablation #1 in DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "src/rng/distributions.hpp"

namespace recover::rng {

class AliasTable {
 public:
  /// Weights must be non-negative with positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  [[nodiscard]] std::size_t size() const { return prob_.size(); }

  template <typename Engine>
  std::size_t sample(Engine& eng) const {
    const std::size_t slot = uniform_below(eng, prob_.size());
    return uniform_real(eng) < prob_[slot] ? slot : alias_[slot];
  }

  /// Exact probability assigned to index i (for testing).
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
  std::vector<double> normalized_;
};

}  // namespace recover::rng
