#include "src/sweep/checkpoint.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "src/obs/json_reader.hpp"
#include "src/obs/json_writer.hpp"
#include "src/obs/trace.hpp"
#include "src/sweep/grid.hpp"
#include "src/util/assert.hpp"

namespace recover::sweep {

namespace {

using obs::JsonValue;

constexpr const char* kSchema = "recover.sweep_cell/1";

bool record_from_line(const std::string& line, CellRecord& out) {
  JsonValue doc;
  if (!obs::parse_json(line, doc) || doc.kind != JsonValue::Kind::kObject) {
    return false;
  }
  const auto* schema = doc.find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->text != kSchema) {
    return false;
  }
  const auto* exp = doc.find("exp");
  const auto* key = doc.find("key");
  const auto* hash = doc.find("hash");
  const auto* index = doc.find("index");
  const auto* values = doc.find("values");
  if (exp == nullptr || exp->kind != JsonValue::Kind::kString ||
      exp->text.empty() || key == nullptr ||
      key->kind != JsonValue::Kind::kString || hash == nullptr ||
      hash->kind != JsonValue::Kind::kString || hash->text.size() != 16 ||
      index == nullptr || index->kind != JsonValue::Kind::kNumber ||
      index->number < 0 || values == nullptr ||
      values->kind != JsonValue::Kind::kObject || values->members.empty()) {
    return false;
  }
  out.exp = exp->text;
  out.key = key->text;
  out.index = static_cast<std::uint64_t>(index->number);
  out.values.clear();
  for (const auto& [name, value] : values->members) {
    if (value.kind != JsonValue::Kind::kNumber) return false;
    out.values.emplace_back(name, value.number);
  }
  if (const auto* wall = doc.find("wall_seconds");
      wall != nullptr && wall->kind == JsonValue::Kind::kNumber) {
    out.wall_seconds = wall->number;
  }
  // The stored hash must be the content hash of what the record claims to
  // be; a mismatch means bit rot or a hand-edit, and the cell is rerun.
  out.hash = fnv1a64(out.exp + "|" + out.key);
  return hash_hex(out.hash) == hash->text;
}

}  // namespace

std::string to_json_line(const CellRecord& record) {
  std::string out = "{\"schema\":\"";
  out += kSchema;
  out += "\",\"exp\":\"";
  out += obs::json_escape(record.exp);
  out += "\",\"key\":\"";
  out += obs::json_escape(record.key);
  out += "\",\"hash\":\"";
  out += hash_hex(record.hash);
  out += "\",\"index\":";
  out += std::to_string(record.index);
  out += ",\"values\":{";
  for (std::size_t i = 0; i < record.values.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += obs::json_escape(record.values[i].first);
    out += "\":";
    out += obs::json_number(record.values[i].second);
  }
  out += "},\"wall_seconds\":";
  out += obs::json_number(record.wall_seconds);
  out += '}';
  return out;
}

CheckpointWriter::CheckpointWriter(const std::string& path) {
  RL_REQUIRE(!path.empty());
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    std::fprintf(stderr, "sweep: cannot open checkpoint '%s': %s\n",
                 path.c_str(), std::strerror(errno));
    std::abort();
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CheckpointWriter::append(const CellRecord& record) {
  // Spans the write + fsync: on slow disks the durability tax is a real
  // slice of a sweep's wall clock, and the trace makes it visible.
  static obs::Histogram& fsync_ns =
      obs::Registry::global().histogram("sweep.fsync_ns");
  static obs::Counter& io_failures =
      obs::Registry::global().counter("sweep.checkpoint.io_failures");
  obs::ScopedSpan span(fsync_ns);
  const std::string line = to_json_line(record) + "\n";
  // Every step of the durability chain is checked: a checkpoint that
  // silently failed to reach the disk would let a resumed sweep skip
  // cells whose results no longer exist.
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    io_failures.add();
    std::fprintf(stderr, "sweep: checkpoint write failed: %s\n",
                 std::strerror(errno));
    std::abort();
  }
  // fsync, not just fflush: the record must survive power loss / SIGKILL
  // before the engine marks the cell done.
  if (::fsync(::fileno(file_)) != 0) {
    io_failures.add();
    if (errno == EINVAL || errno == ENOTSUP || errno == EROFS) {
      // The target cannot be synced (pipe, some pseudo-filesystems):
      // durability is degraded, not lost — warn once, keep the counter.
      if (!fsync_unsupported_) {
        fsync_unsupported_ = true;
        std::fprintf(stderr,
                     "sweep: checkpoint target does not support fsync "
                     "(%s); records are buffered by the OS only\n",
                     std::strerror(errno));
      }
    } else {
      // A real I/O error (EIO, ENOSPC, …): the kernel may have dropped
      // the dirty pages, so the record cannot be trusted — fail loudly
      // rather than mark the cell done.
      std::fprintf(stderr, "sweep: checkpoint fsync failed: %s\n",
                   std::strerror(errno));
      std::abort();
    }
  }
}

CheckpointLoad load_checkpoint(const std::string& path) {
  CheckpointLoad out;
  std::ifstream in(path);
  if (!in) return out;  // missing checkpoint = empty checkpoint
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    CellRecord record;
    if (record_from_line(line, record)) {
      out.records.push_back(std::move(record));
    } else {
      ++out.skipped_lines;
    }
  }
  return out;
}

}  // namespace recover::sweep
