// Wall-clock stopwatch used by the experiment harnesses to report the cost
// of each sweep point alongside the statistic it measures.
#pragma once

#include <chrono>

namespace recover::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace recover::util
