// Property tests for the scenario-B Γ-coupling (§5, Claims 5.1–5.2).
//
// The paper's statements, checked per sampled Γ-pair:
//   * removal sub-step: Δ(v*, u*) ∈ {0, 1, 2}, E[Δ(v*, u*)] ≤ 1, and the
//     distance moves with probability ≥ 1/max(s₁, s₂) — the merge pick
//     alone (i = λ) accounts for that mass, which is the α = Ω(1/n) that
//     Claim 5.3 feeds into Path Coupling Lemma case (2);
//   * full phase: E[Δ(v°, u°)] ≤ 1 (insertion is non-expansive);
//   * both coupled marginals are faithful copies of I_B.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/balls/coupling_b.hpp"
#include "src/balls/random_states.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"
#include "src/stats/summary.hpp"

namespace recover::balls {
namespace {

struct PairParam {
  std::size_t n;
  std::int64_t m;
  int d;
  int skew;
};

class CouplingBTest : public ::testing::TestWithParam<PairParam> {};

TEST_P(CouplingBTest, RemovalDistanceStaysInZeroOneTwo) {
  const auto [n, m, d, skew] = GetParam();
  rng::Xoshiro256PlusPlus eng(100 + n * 131 + static_cast<std::uint64_t>(m));
  const AbkuRule rule(d);
  for (int rep = 0; rep < 400; ++rep) {
    auto [v, u] = random_gamma_pair(n, m, eng, skew);
    const auto r = coupled_step_b(v, u, rule, eng);
    ASSERT_GE(r.distance_after_removal, 0);
    ASSERT_LE(r.distance_after_removal, 2);
    ASSERT_LE(r.distance_after, r.distance_after_removal)
        << "insertion expanded the distance (violates Lemma 3.3)";
    ASSERT_TRUE(v.invariants_hold());
    ASSERT_TRUE(u.invariants_hold());
    ASSERT_EQ(v.balls(), m);
    ASSERT_EQ(u.balls(), m);
  }
}

TEST_P(CouplingBTest, Claims51And52ExpectationAndChangeProbability) {
  const auto [n, m, d, skew] = GetParam();
  rng::Xoshiro256PlusPlus eng(200 + n * 151 + static_cast<std::uint64_t>(m));
  const AbkuRule rule(d);
  for (int pair = 0; pair < 6; ++pair) {
    const auto [v0, u0] = random_gamma_pair(n, m, eng, skew);
    const double s_max = static_cast<double>(
        std::max(v0.nonempty_count(), u0.nonempty_count()));
    stats::Summary removal_dist;
    std::int64_t changed = 0;
    std::int64_t merged = 0;
    constexpr int kTrials = 4000;
    for (int t = 0; t < kTrials; ++t) {
      LoadVector v = v0, u = u0;
      const auto r = coupled_step_b(v, u, rule, eng);
      removal_dist.add(static_cast<double>(r.distance_after_removal));
      if (r.distance_after_removal != 1) ++changed;
      if (r.removal_merged) ++merged;
    }
    EXPECT_LE(removal_dist.mean(), 1.0 + 4.0 * removal_dist.stderror())
        << "E[delta after removal] > 1 for pair " << pair;
    const double change_prob = static_cast<double>(changed) / kTrials;
    const double merge_prob = static_cast<double>(merged) / kTrials;
    const double alpha = 1.0 / s_max;
    const double mc_slack =
        4.0 * std::sqrt(alpha * (1.0 - alpha) / kTrials);
    EXPECT_GE(change_prob, alpha - mc_slack)
        << "Pr[delta != 1] < 1/s for pair " << pair;
    // Merging alone already provides the alpha mass and, because merged
    // copies stay merged, survives the insertion half of the phase.
    EXPECT_GE(merge_prob, alpha - mc_slack)
        << "Pr[merge] < 1/s for pair " << pair;
  }
}

TEST_P(CouplingBTest, CoupledMarginalsAreFaithful) {
  const auto [n, m, d, skew] = GetParam();
  rng::Xoshiro256PlusPlus eng(300 + n * 163 + static_cast<std::uint64_t>(m));
  const AbkuRule rule(d);
  const auto [v0, u0] = random_gamma_pair(n, m, eng, skew);
  stats::IntHistogram coupled_v, uncoupled_v, coupled_u, uncoupled_u;
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    {
      LoadVector v = v0, u = u0;
      coupled_step_b(v, u, rule, eng);
      coupled_v.add(v.max_load() * 100 + v.load(v.bins() - 1) * 10 +
                    static_cast<std::int64_t>(v.nonempty_count()));
      coupled_u.add(u.max_load() * 100 + u.load(u.bins() - 1) * 10 +
                    static_cast<std::int64_t>(u.nonempty_count()));
    }
    {
      ScenarioBChain<AbkuRule> cv(v0, rule);
      cv.step(eng);
      const auto& s = cv.state();
      uncoupled_v.add(s.max_load() * 100 + s.load(s.bins() - 1) * 10 +
                      static_cast<std::int64_t>(s.nonempty_count()));
      ScenarioBChain<AbkuRule> cu(u0, rule);
      cu.step(eng);
      const auto& q = cu.state();
      uncoupled_u.add(q.max_load() * 100 + q.load(q.bins() - 1) * 10 +
                      static_cast<std::int64_t>(q.nonempty_count()));
    }
  }
  EXPECT_LT(stats::tv_distance(coupled_v, uncoupled_v), 0.03);
  EXPECT_LT(stats::tv_distance(coupled_u, uncoupled_u), 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CouplingBTest,
    ::testing::Values(PairParam{2, 2, 2, 1}, PairParam{4, 8, 1, 1},
                      PairParam{6, 6, 2, 2}, PairParam{8, 24, 3, 1},
                      PairParam{12, 12, 2, 3}, PairParam{5, 3, 2, 2}));

TEST(CouplingB, EmptyDeficitBinCaseExercised) {
  // Hand-built Claim 5.2 pair: v's deficit bin empty (s1 = s2 − 1).
  const LoadVector v = LoadVector::from_loads({3, 1, 0, 0});
  const LoadVector u = LoadVector::from_loads({2, 1, 1, 0});
  ASSERT_EQ(v.distance(u), 1);
  ASSERT_EQ(v.nonempty_count(), 2u);
  ASSERT_EQ(u.nonempty_count(), 3u);
  rng::Xoshiro256PlusPlus eng(77);
  const AbkuRule rule(2);
  stats::Summary removal_dist;
  std::int64_t changed = 0;
  constexpr int kTrials = 30000;
  for (int t = 0; t < kTrials; ++t) {
    LoadVector a = v, b = u;
    const auto r = coupled_step_b(a, b, rule, eng);
    removal_dist.add(static_cast<double>(r.distance_after_removal));
    if (r.distance_after_removal != 1) ++changed;
  }
  // Claim 5.2: Pr[delta = 0] = 1/s2, here 1/3.
  EXPECT_LE(removal_dist.mean(), 1.0 + 4 * removal_dist.stderror());
  EXPECT_GE(static_cast<double>(changed) / kTrials, 1.0 / 3.0 - 0.02);
}

TEST(CouplingB, SwappedOrientationPairHandled) {
  // Surplus after deficit: v = (1,1,0), u = (2,0,0); u has fewer
  // non-empty bins — the internal role swap must kick in.
  const LoadVector v = LoadVector::from_loads({1, 1, 0});
  const LoadVector u = LoadVector::from_loads({2, 0, 0});
  ASSERT_EQ(v.distance(u), 1);
  rng::Xoshiro256PlusPlus eng(88);
  const AbkuRule rule(2);
  for (int t = 0; t < 2000; ++t) {
    LoadVector a = v, b = u;
    const auto r = coupled_step_b(a, b, rule, eng);
    ASSERT_LE(r.distance_after, 2);
    ASSERT_TRUE(a.invariants_hold());
    ASSERT_TRUE(b.invariants_hold());
  }
}

}  // namespace
}  // namespace recover::balls
