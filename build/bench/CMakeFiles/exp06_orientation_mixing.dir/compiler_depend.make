# Empty compiler generated dependencies file for exp06_orientation_mixing.
# This may be replaced when dependencies are built.
