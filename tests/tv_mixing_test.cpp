// Tests for the empirical TV-curve mixing estimator.
#include <gtest/gtest.h>

#include "src/balls/scenario_a.hpp"
#include "src/core/tv_mixing.hpp"

namespace recover::core {
namespace {

TEST(GeometricCheckpoints, CoversRangeMonotonically) {
  const auto cps = geometric_checkpoints(4, 2.0, 100);
  ASSERT_FALSE(cps.empty());
  EXPECT_EQ(cps.front(), 4);
  EXPECT_EQ(cps.back(), 100);
  for (std::size_t i = 1; i < cps.size(); ++i) {
    EXPECT_GT(cps[i], cps[i - 1]);
  }
}

TEST(GeometricCheckpoints, SlowRatioDeduplicates) {
  const auto cps = geometric_checkpoints(1, 1.3, 10);
  for (std::size_t i = 1; i < cps.size(); ++i) {
    EXPECT_GT(cps[i], cps[i - 1]);
  }
  EXPECT_EQ(cps.back(), 10);
}

TEST(FirstBelow, FindsCrossing) {
  const std::vector<TvCurvePoint> curve = {{1, 0.9}, {2, 0.5}, {4, 0.2},
                                           {8, 0.05}};
  EXPECT_EQ(first_below(curve, 0.25), 4);
  EXPECT_EQ(first_below(curve, 0.01), -1);
  EXPECT_EQ(first_below(curve, 1.0), 1);
}

TEST(TvCurve, SameStartGivesNearZeroCurve) {
  const std::size_t n = 6;
  const std::int64_t m = 12;
  auto make = [&](int) {
    return balls::ScenarioAChain<balls::AbkuRule>(
        balls::LoadVector::balanced(n, m), balls::AbkuRule(2));
  };
  const auto curve = estimate_tv_curve(
      make, make,
      [](const auto& c) { return c.state().max_load(); },
      {5, 20, 80}, 400, 3, /*parallel=*/false);
  for (const auto& p : curve) {
    // Same law on both sides: only sampling noise remains.
    EXPECT_LT(p.tv, 0.15) << "t=" << p.t;
  }
}

TEST(TvCurve, DistinctStartsDecayTowardZero) {
  const std::size_t n = 8;
  const std::int64_t m = 16;
  const auto curve = estimate_tv_curve(
      [&](int) {
        return balls::ScenarioAChain<balls::AbkuRule>(
            balls::LoadVector::all_in_one(n, m), balls::AbkuRule(2));
      },
      [&](int) {
        return balls::ScenarioAChain<balls::AbkuRule>(
            balls::LoadVector::balanced(n, m), balls::AbkuRule(2));
      },
      [](const auto& c) { return c.state().max_load(); },
      {1, 8, 64, 512}, 600, 7, /*parallel=*/false);
  // Far apart at t = 1 (max loads 15-16 vs ~2-4), indistinguishable by
  // t = 512 >> m ln m.
  EXPECT_GT(curve.front().tv, 0.8);
  EXPECT_LT(curve.back().tv, 0.15);
}

TEST(TvCurve, DeterministicGivenSeed) {
  const std::size_t n = 5;
  const std::int64_t m = 5;
  auto make_x = [&](int) {
    return balls::ScenarioAChain<balls::AbkuRule>(
        balls::LoadVector::all_in_one(n, m), balls::AbkuRule(2));
  };
  auto make_y = [&](int) {
    return balls::ScenarioAChain<balls::AbkuRule>(
        balls::LoadVector::balanced(n, m), balls::AbkuRule(2));
  };
  auto obs = [](const auto& c) { return c.state().max_load(); };
  const auto c1 =
      estimate_tv_curve(make_x, make_y, obs, {2, 10}, 100, 5, false);
  const auto c2 =
      estimate_tv_curve(make_x, make_y, obs, {2, 10}, 100, 5, true);
  ASSERT_EQ(c1.size(), c2.size());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_DOUBLE_EQ(c1[i].tv, c2[i].tv) << "thread count changed results";
  }
}

}  // namespace
}  // namespace recover::core
