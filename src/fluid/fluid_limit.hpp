// Mitzenmacher's fluid-limit (density-dependent jump Markov process)
// models for the dynamic ABKU[d] processes — the external framework the
// paper explicitly pairs its own technique with (§1: "our technique …
// applied together with the method of Mitzenmacher.  His framework would
// be used to estimate the maximum load … and our approach … the recovery
// time").
//
// State: tail fractions s_i = (number of bins with load ≥ i) / n for
// i = 1..L, with s_0 ≡ 1 and s_{L+1} ≡ 0.  One phase per unit time:
//
//   insertion (ABKU[d]):     ds_i/dt += s_{i−1}^d − s_i^d
//   removal, scenario A:     ds_i/dt −= (n/m) · i · (s_i − s_{i+1})
//   removal, scenario B:     ds_i/dt −= (s_i − s_{i+1}) / s_1
//
// The average load Σ_i s_i = m/n is conserved exactly by each pair of
// terms.  The fixed point predicts the stationary tail profile and hence
// the typical max load ≈ max{ i : s_i ≥ 1/n }, the "typical band" the
// recovery experiments (exp07) measure hitting times into, and the
// doubly-exponential decay behind the ln ln n / ln d law (exp10).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/fluid/ode.hpp"

namespace recover::fluid {

enum class Scenario {
  kA,  // remove a uniform random ball (I_A)
  kB,  // remove from a uniform random non-empty bin (I_B)
};

/// Insertion side of the fluid limit: maps the tail profile s (s[i-1] =
/// fraction of bins with load ≥ i) to the probability p[ℓ] that the new
/// ball lands in a bin of load exactly ℓ, for ℓ = 0..L (Σ p = 1).
using InsertionLaw =
    std::function<std::vector<double>(const std::vector<double>&)>;

/// ABKU[d]: p[ℓ] = s_ℓ^d − s_{ℓ+1}^d (least-loaded of d uniform bins).
InsertionLaw abku_insertion_law(int d);

/// ADAP(x) with thresholds[ℓ] clamped at the back: the probe process is
/// a Markov chain on (current minimum load, probe count); its exact law
/// under an i.i.d.-from-s load population is computed by the same DP as
/// AdapRule::placement_pmf, but in load space — this is Mitzenmacher's
/// treatment of adaptive schemes in the fluid limit.
InsertionLaw adap_insertion_law(std::vector<int> thresholds);

class FluidModel {
 public:
  /// load_ratio = m/n; max_level L truncates the tail (pick L well above
  /// the expected max load; mass above L is clamped to zero).
  FluidModel(Scenario scenario, int d, double load_ratio,
             std::size_t max_level);

  /// General insertion law (ABKU and ADAP provided above).
  FluidModel(Scenario scenario, InsertionLaw insertion, double load_ratio,
             std::size_t max_level);

  [[nodiscard]] std::size_t levels() const { return max_level_; }
  [[nodiscard]] double load_ratio() const { return load_ratio_; }

  /// ds/dt at the given tail profile (s has levels() entries, s[0] = s_1).
  void derivative(const std::vector<double>& s, std::vector<double>& ds) const;

  /// Tail profile of the perfectly balanced configuration.
  [[nodiscard]] std::vector<double> balanced_profile() const;

  /// Evolves a profile for `time` phases (per-bin time normalization:
  /// one unit of ODE time = n process steps).
  [[nodiscard]] std::vector<double> evolve(std::vector<double> s,
                                           double time, double dt) const;

  /// Stationary tail profile (integrate to stationarity).
  [[nodiscard]] std::vector<double> fixed_point(double tol = 1e-12,
                                                double t_max = 1e4) const;

  /// Typical max load for n bins: largest i with s_i ≥ 1/n.
  static std::int64_t predicted_max_load(const std::vector<double>& s,
                                         double n);

 private:
  Scenario scenario_;
  InsertionLaw insertion_;
  double load_ratio_;
  std::size_t max_level_;
};

/// Empirical tail fractions of a load multiset (levels 1..max_level), the
/// bridge between simulated states and fluid profiles.
std::vector<double> tail_fractions(const std::vector<std::int64_t>& loads,
                                   std::size_t max_level);

}  // namespace recover::fluid
