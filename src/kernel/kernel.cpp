#include "src/kernel/kernel.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace recover::kernel {
namespace {

Mode parse_env() {
  const char* v = std::getenv("RECOVER_KERNEL");
  if (v == nullptr || *v == '\0') return Mode::kBatched;
  if (std::strcmp(v, "batched") == 0) return Mode::kBatched;
  if (std::strcmp(v, "scalar") == 0) return Mode::kScalar;
  std::fprintf(stderr,
               "recoverlib: invalid RECOVER_KERNEL=\"%s\" "
               "(expected \"scalar\" or \"batched\")\n",
               v);
  std::exit(2);
}

// -1 = not yet resolved; otherwise static_cast<int>(Mode).
std::atomic<int> g_mode{-1};

}  // namespace

Mode mode() noexcept {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    const Mode parsed = parse_env();
    int expected = -1;
    g_mode.compare_exchange_strong(expected, static_cast<int>(parsed),
                                   std::memory_order_relaxed);
    m = g_mode.load(std::memory_order_relaxed);
  }
  return static_cast<Mode>(m);
}

Mode set_mode(Mode m) noexcept {
  const Mode previous = mode();
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
  return previous;
}

const char* mode_name(Mode m) noexcept {
  return m == Mode::kBatched ? "batched" : "scalar";
}

const char* mode_name() noexcept { return mode_name(mode()); }

namespace detail {

// Registered eagerly like the rng draw counters: no function-local
// static guard on the advance() hot path.
obs::Counter& g_steps_batched =
    obs::Registry::global().counter("kernel.steps.batched");
obs::Counter& g_steps_scalar =
    obs::Registry::global().counter("kernel.steps.scalar");
obs::Histogram& g_step_block_ns =
    obs::Registry::global().histogram("kernel.step_block_ns");

obs::Counter& steps_batched() noexcept { return g_steps_batched; }
obs::Counter& steps_scalar() noexcept { return g_steps_scalar; }
obs::Histogram& step_block_ns() noexcept { return g_step_block_ns; }

}  // namespace detail
}  // namespace recover::kernel
