// serve_loadgen — open-loop load generator for recover_serve
// (docs/SERVING.md).
//
//   serve_loadgen --port 9000 --qps 200 --conns 8 --duration 2s
//       --mix "ping=3,run_cell=1"
//
// Open loop: request k is sent at start + k/qps, no matter how slow the
// replies are — so an overloaded server shows up as shed requests and
// latency inflation instead of a silently throttled generator.
// Requests round-robin across --conns connections, each with a writer
// thread (paced sends) and a reader thread (matches replies to send
// timestamps by id).  Prints p50/p95/p99 latency (exact, from the full
// sample set), throughput, and shed rate; exits 1 if any reply failed to
// parse (a protocol error is a bug, not load).  With --json-out the run
// record is the committed BENCH_serve.json baseline, validated by
// scripts/check_bench_json.py --serve.
//
// Key distribution: by default every run_cell carries a unique seed
// (worst case for any cache).  --key-dist zipf:<s> draws the seed from
// a Zipf(s) distribution over --key-space ranks instead — the standard
// skewed-popularity model — so a fraction of requests repeat and a
// result cache (recover_cluster) has something to hit.  The draw is a
// pure function of --seed and the request index, so reruns replay the
// identical key sequence.
//
// --cluster marks the target as a recover_cluster router: the final
// /metrics scrape additionally reports the router's cache hit ratio and
// failover count (the numbers BENCH_cluster.json commits).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json_reader.hpp"
#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/serve/protocol.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

using namespace recover;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Mix {
  std::vector<std::string> methods;  // weighted, expanded (method repeated
                                     // `weight` times); indexed by rng
};

bool parse_mix(const std::string& text, Mix& out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string part =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? text.size() : comma + 1;
    const std::size_t eq = part.find('=');
    const std::string name = eq == std::string::npos ? part
                                                     : part.substr(0, eq);
    long weight = 1;
    if (eq != std::string::npos) {
      try {
        weight = std::stol(part.substr(eq + 1));
      } catch (const std::exception&) {
        return false;
      }
    }
    if (name.empty() || weight < 0 || weight > 64) return false;
    if (name != "ping" && name != "run_cell" && name != "list_cells" &&
        name != "stats") {
      return false;
    }
    for (long w = 0; w < weight; ++w) out.methods.push_back(name);
  }
  return !out.methods.empty();
}

/// run_cell key (= seed) selection.  Empty cdf ⇒ unique keys (the
/// pre-cluster behavior); otherwise cdf[r] is the cumulative Zipf mass
/// of ranks 0..r and the seed is the drawn rank + 1.
struct KeyDist {
  std::vector<double> cdf;

  /// "unique" or "zipf:<s>" with s > 0 (the skew exponent; mass of rank
  /// r ∝ 1/r^s).  False on anything else.
  static bool parse(const std::string& text, std::size_t key_space,
                    KeyDist& out) {
    if (text == "unique") return true;
    if (text.rfind("zipf:", 0) != 0 || key_space == 0) return false;
    double s = 0.0;
    try {
      s = std::stod(text.substr(5));
    } catch (const std::exception&) {
      return false;
    }
    if (!(s > 0.0)) return false;
    out.cdf.resize(key_space);
    double mass = 0.0;
    for (std::size_t r = 0; r < key_space; ++r) {
      mass += 1.0 / std::pow(static_cast<double>(r + 1), s);
      out.cdf[r] = mass;
    }
    for (double& c : out.cdf) c /= mass;
    return true;
  }

  /// Seed for request draw `draw` (a substream value): a Zipf rank in
  /// [1, key_space] when skewed, a unique 53-bit value otherwise.
  [[nodiscard]] std::uint64_t seed_for(std::uint64_t draw) const {
    if (cdf.empty()) return (draw >> 8) & ((1ULL << 53) - 1);
    // 53 high bits → uniform double in [0,1), the rng_guide idiom.
    const double u =
        static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::uint64_t>(it - cdf.begin()) + 1;
  }
};

struct Tally {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline = 0;
  std::uint64_t shutting_down = 0;
  std::uint64_t other_errors = 0;
  std::uint64_t protocol_errors = 0;
  std::vector<double> latencies_us;  // completed requests only
};

struct Connection {
  int fd = -1;
  std::vector<std::uint64_t> request_ids;  // this connection's ids, in order
  Tally tally;
};

/// One request line.  The id doubles as the index into `send_ns`.
std::string request_line(std::uint64_t id, const std::string& method,
                         std::uint64_t seed, std::int64_t deadline_ms) {
  std::string line = "{\"schema\":\"recover.req/1\",\"id\":";
  line += std::to_string(id);
  line += ",\"method\":\"";
  line += method;
  line += '"';
  if (method == "run_cell") {
    // A deliberately small cell (exp01 at m=16): the point of the mix is
    // to exercise admission and the pool hand-off, not to benchmark the
    // estimator itself.  The per-request seed varies so replies are not
    // all byte-identical.
    line += ",\"params\":{\"exp\":\"exp01\",\"seed\":";
    line += std::to_string(seed);
    line +=
        ",\"params\":{\"m\":16,\"d\":2,\"density\":1,\"replicas\":2}}";
  }
  if (deadline_ms >= 0) {
    line += ",\"deadline_ms\":";
    line += std::to_string(deadline_ms);
  }
  line += "}\n";
  return line;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Parses one response line into the tally; updates latency via send_ns.
void account_response(const std::string& line,
                      const std::vector<std::uint64_t>& send_ns,
                      Tally& tally) {
  obs::JsonValue doc;
  if (!obs::parse_json(line, doc) || !doc.is_object()) {
    ++tally.protocol_errors;
    return;
  }
  const auto* schema = doc.find("schema");
  const auto* id = doc.find("id");
  const auto* ok = doc.find("ok");
  if (schema == nullptr || !schema->is_string() ||
      schema->text != serve::kResponseSchema || id == nullptr ||
      ok == nullptr) {
    ++tally.protocol_errors;
    return;
  }
  if (id->is_number()) {
    const auto idx = static_cast<std::uint64_t>(id->number);
    if (idx < send_ns.size() && send_ns[idx] != 0) {
      tally.latencies_us.push_back(
          static_cast<double>(now_ns() - send_ns[idx]) / 1000.0);
    } else {
      ++tally.protocol_errors;  // reply to an id we never sent
      return;
    }
  } else {
    ++tally.protocol_errors;  // we only ever send numeric ids
    return;
  }
  if (ok->kind == obs::JsonValue::Kind::kBool && ok->boolean) {
    ++tally.ok;
    return;
  }
  const auto* error = doc.find("error");
  const auto* code = error != nullptr ? error->find("code") : nullptr;
  if (code == nullptr || !code->is_string()) {
    ++tally.protocol_errors;
    return;
  }
  if (code->text == "overloaded") {
    ++tally.shed;
  } else if (code->text == "deadline_exceeded") {
    ++tally.deadline;
  } else if (code->text == "shutting_down") {
    ++tally.shutting_down;
  } else {
    ++tally.other_errors;
  }
}

double quantile_us(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size());
  auto idx = pos <= 1.0 ? std::size_t{0}
                        : static_cast<std::size_t>(std::ceil(pos)) - 1;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

/// One GET against the admin plane: connect, request, read to EOF
/// (HTTP/1.0 Connection: close framing).  False on any socket failure
/// or non-200 status.
bool scrape_once(const sockaddr_in& addr, const std::string& path,
                 std::string& response) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!send_all(fd, request)) {
    ::close(fd);
    return false;
  }
  response.clear();
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response.rfind("HTTP/1.0 200", 0) == 0;
}

/// Pulls the value of `series` (exact text up to and including the
/// label set) out of a Prometheus exposition body; NaN when absent.
double parse_metric(const std::string& body, const std::string& series) {
  std::size_t pos = 0;
  while ((pos = body.find(series, pos)) != std::string::npos) {
    // Series must start its line and be followed by the value.
    if (pos != 0 && body[pos - 1] != '\n') {
      pos += series.size();
      continue;
    }
    const std::size_t value_at = pos + series.size();
    const std::size_t eol = body.find('\n', value_at);
    try {
      return std::stod(body.substr(
          value_at, eol == std::string::npos ? eol : eol - value_at));
    } catch (const std::exception&) {
      return std::numeric_limits<double>::quiet_NaN();
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

/// What the concurrent scraper saw: latency of each scrape, failures,
/// and the server-side windowed p99 from the final successful body.
struct ScrapeStats {
  std::uint64_t scrapes = 0;
  std::uint64_t errors = 0;
  std::vector<double> latencies_us;
  double last_window_p99_us = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("serve_loadgen",
                "open-loop load generator for the recover_serve TCP "
                "service");
  cli.flag("host", "server address", "127.0.0.1");
  cli.flag("port", "server port (required)", "0");
  cli.flag("qps", "open-loop request rate, all connections combined", "200");
  cli.flag("conns", "concurrent connections", "8");
  cli.flag("duration", "send window (500ms/2s/1m)", "2s");
  cli.flag("mix",
           "method weights, e.g. ping=3,run_cell=1 (ping, run_cell, "
           "list_cells, stats)",
           "ping=3,run_cell=1");
  cli.flag("deadline",
           "per-request deadline_ms to attach (0 = expire immediately; "
           "empty = none)",
           "");
  cli.flag("seed", "seed for the method/cell-seed stream", "1");
  cli.flag("key-dist",
           "run_cell key distribution: 'unique' (every request a fresh "
           "seed) or 'zipf:<s>' (skewed repeats over --key-space ranks, "
           "deterministic from --seed)",
           "unique");
  cli.flag("key-space",
           "number of distinct run_cell seeds under --key-dist zipf",
           "64");
  cli.flag("cluster",
           "target is a recover_cluster router: report its cache hit "
           "ratio and failovers from the final /metrics scrape",
           "false");
  cli.flag("grace",
           "how long to wait for in-flight replies after the send window",
           "2s");
  cli.flag("admin-port",
           "recover_serve admin plane port: scrape GET /metrics "
           "concurrently with the load and report scrape latency "
           "(-1 = no scraping)",
           "-1");
  cli.flag("admin-host", "admin plane address", "127.0.0.1");
  cli.flag("scrape-interval", "delay between /metrics scrapes", "500ms");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const int port = static_cast<int>(cli.integer("port"));
  if (port <= 0) {
    std::fprintf(stderr, "serve_loadgen: --port is required\n");
    return 2;
  }
  const double qps = cli.real("qps");
  const auto conns = static_cast<std::size_t>(cli.integer("conns"));
  const std::int64_t duration_ms = cli.duration_ms("duration");
  const std::int64_t grace_ms = cli.duration_ms("grace");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  std::int64_t deadline_ms = -1;
  if (!cli.str("deadline").empty() &&
      !util::parse_duration_ms(cli.str("deadline"), deadline_ms)) {
    std::fprintf(stderr, "serve_loadgen: bad --deadline\n");
    return 2;
  }
  Mix mix;
  if (qps <= 0 || conns == 0 || duration_ms <= 0 ||
      !parse_mix(cli.str("mix"), mix)) {
    std::fprintf(stderr, "serve_loadgen: bad --qps/--conns/--duration/--mix\n");
    return 2;
  }
  KeyDist key_dist;
  if (!KeyDist::parse(cli.str("key-dist"),
                      static_cast<std::size_t>(cli.integer("key-space")),
                      key_dist)) {
    std::fprintf(stderr, "serve_loadgen: bad --key-dist/--key-space\n");
    return 2;
  }
  const bool cluster_mode = cli.boolean("cluster");

  const auto total_requests = static_cast<std::uint64_t>(
      qps * static_cast<double>(duration_ms) / 1000.0);
  if (total_requests == 0) {
    std::fprintf(stderr, "serve_loadgen: window too short for one request\n");
    return 2;
  }

  // Connect everything up front; a connect failure is fatal, not load.
  std::vector<Connection> connections(conns);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, cli.str("host").c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "serve_loadgen: bad host\n");
    return 2;
  }
  for (auto& conn : connections) {
    conn.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (conn.fd < 0 ||
        ::connect(conn.fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      std::fprintf(stderr, "serve_loadgen: connect %s:%d: %s\n",
                   cli.str("host").c_str(), port, std::strerror(errno));
      return 2;
    }
    const int one = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }

  // Send timestamps indexed by request id; 0 = never sent.  Writers fill
  // a slot strictly before the server can echo the id back, and the
  // matching reader only loads it after receiving that echo, so the
  // happens-before chain runs through the socket.
  std::vector<std::uint64_t> send_ns(total_requests, 0);

  // Pre-compute the schedule: request k goes out at start + k/qps on
  // connection k % conns, with method and cell seed drawn from a
  // substream so the mix is reproducible.
  for (std::uint64_t k = 0; k < total_requests; ++k) {
    connections[k % conns].request_ids.push_back(k);
  }

  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> threads;
  const std::uint64_t start_ns = now_ns() + 10'000'000;  // 10ms lead-in
  const double ns_per_request = 1e9 / qps;

  // Concurrent scraper: polls the admin plane's /metrics while the load
  // runs, so the run record captures scrape latency UNDER load and the
  // server-side windowed p99 to sanity-check against our own.
  const std::int64_t admin_port = cli.integer("admin-port");
  const std::int64_t scrape_interval_ms = cli.duration_ms("scrape-interval");
  ScrapeStats scrape;
  std::atomic<bool> stop_scraper{false};
  std::thread scraper;
  if (admin_port > 0) {
    if (scrape_interval_ms <= 0) {
      std::fprintf(stderr, "serve_loadgen: bad --scrape-interval\n");
      return 2;
    }
    sockaddr_in admin_addr{};
    admin_addr.sin_family = AF_INET;
    admin_addr.sin_port = htons(static_cast<std::uint16_t>(admin_port));
    if (::inet_pton(AF_INET, cli.str("admin-host").c_str(),
                    &admin_addr.sin_addr) != 1) {
      std::fprintf(stderr, "serve_loadgen: bad --admin-host\n");
      return 2;
    }
    scraper = std::thread([&scrape, &stop_scraper, admin_addr,
                           scrape_interval_ms] {
      std::string body;
      while (!stop_scraper.load(std::memory_order_acquire)) {
        const std::uint64_t t0 = now_ns();
        const bool ok = scrape_once(admin_addr, "/metrics", body);
        ++scrape.scrapes;
        if (ok) {
          scrape.latencies_us.push_back(
              static_cast<double>(now_ns() - t0) / 1000.0);
          const double p99 = parse_metric(
              body, "serve_window_request_us{quantile=\"0.99\"} ");
          if (!std::isnan(p99)) scrape.last_window_p99_us = p99;
        } else {
          ++scrape.errors;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(scrape_interval_ms));
      }
    });
  }

  for (std::size_t c = 0; c < conns; ++c) {
    Connection& conn = connections[c];
    // Writer: paced open-loop sends.
    threads.emplace_back([&conn, &send_ns, &mix, &key_dist, start_ns,
                          ns_per_request, seed, deadline_ms] {
      for (const std::uint64_t k : conn.request_ids) {
        const std::uint64_t due =
            start_ns + static_cast<std::uint64_t>(
                           static_cast<double>(k) * ns_per_request);
        while (now_ns() < due) {
          const std::uint64_t gap = due - now_ns();
          if (gap > 2'000'000) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(gap - 1'000'000));
          } else {
            std::this_thread::yield();
          }
        }
        const std::uint64_t draw = rng::substream(seed, k);
        const std::string& method =
            mix.methods[draw % mix.methods.size()];
        // Seed stays within the protocol's [0, 2^53] integer range.
        const std::string line =
            request_line(k, method, key_dist.seed_for(draw), deadline_ms);
        send_ns[k] = now_ns();
        if (!send_all(conn.fd, line)) break;
        ++conn.tally.sent;
      }
      // Half-close: tells the server this connection is done sending;
      // replies still flow back until the reader has them all.
      ::shutdown(conn.fd, SHUT_WR);
    });
    // Reader: match replies to ids, accumulate latency.
    threads.emplace_back([&conn, &send_ns, &stop_readers] {
      serve::LineReader framer;
      char buf[4096];
      std::string line;
      while (!stop_readers.load(std::memory_order_acquire)) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
        if (n == 0) break;  // server closed after drain
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        framer.feed(buf, static_cast<std::size_t>(n));
        while (framer.next_line(line) == serve::LineReader::Next::kLine) {
          account_response(line, send_ns, conn.tally);
        }
        const Tally& t = conn.tally;
        if (t.sent > 0 &&
            t.ok + t.shed + t.deadline + t.shutting_down + t.other_errors +
                    t.protocol_errors >=
                conn.request_ids.size()) {
          break;  // every reply for this connection accounted for
        }
      }
    });
  }

  // Join writers and readers; readers get a grace window after the send
  // window closes, then are cut loose (unanswered requests stay pending).
  const auto window_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(duration_ms + grace_ms + 500);
  std::thread watchdog([&stop_readers, window_deadline, &connections] {
    std::this_thread::sleep_until(window_deadline);
    stop_readers.store(true, std::memory_order_release);
    for (auto& conn : connections) ::shutdown(conn.fd, SHUT_RD);
  });
  for (auto& t : threads) t.join();
  stop_readers.store(true, std::memory_order_release);
  watchdog.join();
  std::string final_scrape_body;
  if (scraper.joinable()) {
    // One final scrape after the load is fully answered: the rolling
    // window (~10 s) still covers the run, and this body is the one
    // whose windowed p99 (and, under --cluster, cache hit ratio) lands
    // in the run record.
    stop_scraper.store(true, std::memory_order_release);
    scraper.join();
    sockaddr_in admin_addr{};
    admin_addr.sin_family = AF_INET;
    admin_addr.sin_port = htons(static_cast<std::uint16_t>(admin_port));
    ::inet_pton(AF_INET, cli.str("admin-host").c_str(),
                &admin_addr.sin_addr);
    const std::uint64_t t0 = now_ns();
    if (scrape_once(admin_addr, "/metrics", final_scrape_body)) {
      ++scrape.scrapes;
      scrape.latencies_us.push_back(
          static_cast<double>(now_ns() - t0) / 1000.0);
      const double p99 = parse_metric(
          final_scrape_body, "serve_window_request_us{quantile=\"0.99\"} ");
      if (!std::isnan(p99)) scrape.last_window_p99_us = p99;
    }
  }
  for (auto& conn : connections) ::close(conn.fd);

  // Merge tallies.
  Tally total;
  for (const auto& conn : connections) {
    const Tally& t = conn.tally;
    total.sent += t.sent;
    total.ok += t.ok;
    total.shed += t.shed;
    total.deadline += t.deadline;
    total.shutting_down += t.shutting_down;
    total.other_errors += t.other_errors;
    total.protocol_errors += t.protocol_errors;
    total.latencies_us.insert(total.latencies_us.end(),
                              t.latencies_us.begin(), t.latencies_us.end());
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  const double p50 = quantile_us(total.latencies_us, 0.50);
  const double p95 = quantile_us(total.latencies_us, 0.95);
  const double p99 = quantile_us(total.latencies_us, 0.99);
  const auto answered = static_cast<std::uint64_t>(total.latencies_us.size());
  const double shed_rate =
      total.sent == 0 ? 0.0
                      : static_cast<double>(total.shed) /
                            static_cast<double>(total.sent);
  const double throughput =
      static_cast<double>(answered) /
      (static_cast<double>(duration_ms) / 1000.0);

  util::Table table({"sent", "answered", "ok", "shed", "deadline",
                     "shutting_down", "other_errors", "protocol_errors",
                     "p50_us", "p95_us", "p99_us", "throughput_rps",
                     "shed_rate"});
  table.row()
      .integer(static_cast<std::int64_t>(total.sent))
      .integer(static_cast<std::int64_t>(answered))
      .integer(static_cast<std::int64_t>(total.ok))
      .integer(static_cast<std::int64_t>(total.shed))
      .integer(static_cast<std::int64_t>(total.deadline))
      .integer(static_cast<std::int64_t>(total.shutting_down))
      .integer(static_cast<std::int64_t>(total.other_errors))
      .integer(static_cast<std::int64_t>(total.protocol_errors))
      .num(p50, 1)
      .num(p95, 1)
      .num(p99, 1)
      .num(throughput, 1)
      .num(shed_rate, 4);
  table.print(std::cout);
  run.add_table("summary", table);
  run.note("qps_target", qps);
  run.note("conns", static_cast<double>(conns));
  run.note("duration_ms", static_cast<double>(duration_ms));
  run.note("mix", cli.str("mix"));
  run.note("key_dist", cli.str("key-dist"));

  if (cluster_mode && !final_scrape_body.empty()) {
    // The router's own view of the run, from the final scrape: these
    // are the numbers the BENCH_cluster.json gate asserts on.
    const double hit_ratio =
        parse_metric(final_scrape_body, "cluster_cache_hit_ratio ");
    const double failovers =
        parse_metric(final_scrape_body, "cluster_failovers_total ");
    const double exhausted =
        parse_metric(final_scrape_body, "cluster_exhausted_total ");
    util::Table cluster_table(
        {"hit_ratio", "failovers", "exhausted"});
    cluster_table.row()
        .num(std::isnan(hit_ratio) ? 0.0 : hit_ratio, 4)
        .integer(static_cast<std::int64_t>(
            std::isnan(failovers) ? 0.0 : failovers))
        .integer(static_cast<std::int64_t>(
            std::isnan(exhausted) ? 0.0 : exhausted));
    cluster_table.print(std::cout);
    run.add_table("cluster", cluster_table);
    run.note("cluster_cache_hit_ratio",
             std::isnan(hit_ratio) ? 0.0 : hit_ratio);
    std::printf("# loadgen: cluster hit_ratio=%.4f failovers=%.0f "
                "exhausted=%.0f\n",
                std::isnan(hit_ratio) ? 0.0 : hit_ratio,
                std::isnan(failovers) ? 0.0 : failovers,
                std::isnan(exhausted) ? 0.0 : exhausted);
  }

  if (admin_port > 0) {
    std::sort(scrape.latencies_us.begin(), scrape.latencies_us.end());
    util::Table scrape_table({"scrapes", "errors", "scrape_p50_us",
                              "scrape_p95_us", "scrape_p99_us",
                              "window_p99_us"});
    scrape_table.row()
        .integer(static_cast<std::int64_t>(scrape.scrapes))
        .integer(static_cast<std::int64_t>(scrape.errors))
        .num(quantile_us(scrape.latencies_us, 0.50), 1)
        .num(quantile_us(scrape.latencies_us, 0.95), 1)
        .num(quantile_us(scrape.latencies_us, 0.99), 1)
        .num(scrape.last_window_p99_us, 1);
    scrape_table.print(std::cout);
    run.add_table("scrape", scrape_table);
    std::printf("# loadgen: scrapes=%llu errors=%llu scrape_p99_us=%.1f "
                "window_p99_us=%.1f\n",
                static_cast<unsigned long long>(scrape.scrapes),
                static_cast<unsigned long long>(scrape.errors),
                quantile_us(scrape.latencies_us, 0.99),
                scrape.last_window_p99_us);
  }

  std::printf("# loadgen: sent=%llu ok=%llu shed=%llu deadline=%llu "
              "proto_errors=%llu p50_us=%.1f p95_us=%.1f p99_us=%.1f\n",
              static_cast<unsigned long long>(total.sent),
              static_cast<unsigned long long>(total.ok),
              static_cast<unsigned long long>(total.shed),
              static_cast<unsigned long long>(total.deadline),
              static_cast<unsigned long long>(total.protocol_errors), p50,
              p95, p99);

  if (total.protocol_errors > 0) {
    std::fprintf(stderr,
                 "serve_loadgen: %llu protocol errors (a bug, not load)\n",
                 static_cast<unsigned long long>(total.protocol_errors));
    return 1;
  }
  if (total.sent == 0) {
    std::fprintf(stderr, "serve_loadgen: nothing was sent\n");
    return 1;
  }
  return 0;
}
