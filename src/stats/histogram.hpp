// Integer-valued histogram with total-variation distance — the statistic
// the paper's mixing-time definition (§3) is phrased in.  Experiments
// approximate ‖L(M_t | M_0 = x) − π‖ by the TV distance between empirical
// distributions of an observable (e.g. max load) under the two starts.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace recover::stats {

class IntHistogram {
 public:
  void add(std::int64_t value, std::int64_t count = 1);

  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] std::int64_t count(std::int64_t value) const;
  [[nodiscard]] double frequency(std::int64_t value) const;

  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const;
  [[nodiscard]] double mean() const;

  /// Smallest v such that P(X <= v) >= q.
  [[nodiscard]] std::int64_t quantile(double q) const;

  [[nodiscard]] const std::map<std::int64_t, std::int64_t>& buckets() const {
    return counts_;
  }

 private:
  std::map<std::int64_t, std::int64_t> counts_;
  std::int64_t total_ = 0;
};

/// Total-variation distance between two empirical distributions:
/// ½ Σ_v |p(v) − q(v)| (equals the sup-over-events definition of §3 for
/// discrete distributions).
double tv_distance(const IntHistogram& a, const IntHistogram& b);

/// TV distance between two explicit probability vectors of equal length.
double tv_distance(const std::vector<double>& p, const std::vector<double>& q);

/// TV distance between an empirical distribution given as raw counts and
/// an exact pmf over the same (aligned) support: ½ Σ |cᵢ/N − pᵢ|.  The
/// diagnostic companion to stats::chi_square_pvalue in the certification
/// harness — the p-value decides, the TV distance tells a human how far
/// off the sampled law actually was.
double tv_distance(const std::vector<std::int64_t>& observed,
                   const std::vector<double>& expected_probs);

}  // namespace recover::stats
