#include "src/stats/histogram.hpp"

#include <cmath>
#include <set>

#include "src/util/assert.hpp"

namespace recover::stats {

void IntHistogram::add(std::int64_t value, std::int64_t count) {
  RL_REQUIRE(count >= 0);
  if (count == 0) return;
  counts_[value] += count;
  total_ += count;
}

std::int64_t IntHistogram::count(std::int64_t value) const {
  const auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

double IntHistogram::frequency(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

std::int64_t IntHistogram::min() const {
  RL_REQUIRE(total_ > 0);
  return counts_.begin()->first;
}

std::int64_t IntHistogram::max() const {
  RL_REQUIRE(total_ > 0);
  return counts_.rbegin()->first;
}

double IntHistogram::mean() const {
  RL_REQUIRE(total_ > 0);
  double sum = 0;
  for (const auto& [v, c] : counts_) {
    sum += static_cast<double>(v) * static_cast<double>(c);
  }
  return sum / static_cast<double>(total_);
}

std::int64_t IntHistogram::quantile(double q) const {
  RL_REQUIRE(total_ > 0);
  RL_REQUIRE(q >= 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(total_);
  std::int64_t cum = 0;
  for (const auto& [v, c] : counts_) {
    cum += c;
    if (static_cast<double>(cum) >= target) return v;
  }
  return counts_.rbegin()->first;
}

double tv_distance(const IntHistogram& a, const IntHistogram& b) {
  RL_REQUIRE(a.total() > 0 && b.total() > 0);
  std::set<std::int64_t> support;
  for (const auto& [v, c] : a.buckets()) support.insert(v);
  for (const auto& [v, c] : b.buckets()) support.insert(v);
  double dist = 0;
  for (std::int64_t v : support) {
    dist += std::abs(a.frequency(v) - b.frequency(v));
  }
  return dist / 2.0;
}

double tv_distance(const std::vector<double>& p, const std::vector<double>& q) {
  RL_REQUIRE(p.size() == q.size());
  double dist = 0;
  for (std::size_t i = 0; i < p.size(); ++i) dist += std::abs(p[i] - q[i]);
  return dist / 2.0;
}

double tv_distance(const std::vector<std::int64_t>& observed,
                   const std::vector<double>& expected_probs) {
  RL_REQUIRE(observed.size() == expected_probs.size());
  std::int64_t total = 0;
  for (const auto c : observed) {
    RL_REQUIRE(c >= 0);
    total += c;
  }
  RL_REQUIRE(total > 0);
  double dist = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    dist += std::abs(static_cast<double>(observed[i]) /
                         static_cast<double>(total) -
                     expected_probs[i]);
  }
  return dist / 2.0;
}

}  // namespace recover::stats
