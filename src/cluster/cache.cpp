#include "src/cluster/cache.hpp"

namespace recover::cluster {

ResultCache::ResultCache(std::size_t max_entries)
    : max_entries_(max_entries) {}

bool ResultCache::get(const std::string& key, std::string& result_json) {
  if (max_entries_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  result_json = it->second->second;
  ++stats_.hits;
  return true;
}

void ResultCache::put(const std::string& key,
                      const std::string& result_json) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Same key ⇒ same bytes (determinism contract): only recency moves.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, result_json);
  index_.emplace(key, lru_.begin());
  stats_.bytes += key.size() + result_json.size();
  ++stats_.insertions;
  while (lru_.size() > max_entries_) {
    const Entry& tail = lru_.back();
    stats_.bytes -= tail.first.size() + tail.second.size();
    index_.erase(tail.first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = lru_.size();
  return out;
}

}  // namespace recover::cluster
