#include "src/ops/prometheus.hpp"

#include <charconv>
#include <cmath>

namespace recover::ops {

namespace {

void append_double(std::string& out, double value) {
  if (std::isnan(value)) {
    out += "NaN";
    return;
  }
  if (std::isinf(value)) {
    out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec == std::errc()) {
    out.append(buf, ptr);
  } else {
    out += '0';
  }
}

void append_uint(std::string& out, std::uint64_t value) {
  out += std::to_string(value);
}

void append_type(std::string& out, const std::string& name,
                 const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void append_sample(std::string& out, std::string_view name, double value) {
  out.append(name);
  out += ' ';
  append_double(out, value);
  out += '\n';
}

void append_sample(std::string& out, std::string_view name,
                   std::string_view label, std::string_view label_value,
                   double value) {
  out.append(name);
  out += '{';
  out.append(label);
  out += "=\"";
  out.append(label_value);  // callers pass fixed tokens; no escaping needed
  out += "\"} ";
  append_double(out, value);
  out += '\n';
}

std::string prometheus_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void append_build_info(std::string& out, std::string_view version,
                       std::string_view git) {
  out += "# TYPE recover_build_info gauge\n";
  out += "recover_build_info{version=\"";
  out += prometheus_label_value(version);
  out += "\",git=\"";
  out += prometheus_label_value(git);
  out += "\"} 1\n";
}

void render_prometheus(const obs::Registry::Snapshot& snapshot,
                       std::string& out) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name);
    append_type(out, prom, "counter");
    out += prom;
    out += ' ';
    append_uint(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prometheus_name(name);
    append_type(out, prom, "gauge");
    append_sample(out, prom, value);
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = prometheus_name(name);
    append_type(out, prom, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
      if (hist.buckets[i] == 0) continue;
      cumulative += hist.buckets[i];
      out += prom;
      out += "_bucket{le=\"";
      append_uint(out, obs::Histogram::bucket_upper(i));
      out += "\"} ";
      append_uint(out, cumulative);
      out += '\n';
    }
    out += prom;
    out += "_bucket{le=\"+Inf\"} ";
    append_uint(out, hist.count);
    out += '\n';
    out += prom;
    out += "_sum ";
    append_uint(out, hist.sum);
    out += '\n';
    out += prom;
    out += "_count ";
    append_uint(out, hist.count);
    out += '\n';
  }
}

}  // namespace recover::ops
