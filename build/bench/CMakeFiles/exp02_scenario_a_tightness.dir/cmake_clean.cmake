file(REMOVE_RECURSE
  "CMakeFiles/exp02_scenario_a_tightness.dir/exp02_scenario_a_tightness.cpp.o"
  "CMakeFiles/exp02_scenario_a_tightness.dir/exp02_scenario_a_tightness.cpp.o.d"
  "exp02_scenario_a_tightness"
  "exp02_scenario_a_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp02_scenario_a_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
