#include "src/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assert.hpp"

namespace recover::stats {

void Summary::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const { return n_ > 0 ? mean_ : 0.0; }

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::stderror() const {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double Summary::ci_halfwidth(double level) const {
  if (n_ < 2) return 0.0;
  return student_t_critical(n_ - 1, level) * stderror();
}

double normal_quantile(double p) {
  RL_REQUIRE(p > 0.0 && p < 1.0);
  // Acklam's approximation, relative error < 1.15e-9.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

double student_t_critical(std::int64_t df, double level) {
  RL_REQUIRE(df >= 1);
  RL_REQUIRE(level > 0.0 && level < 1.0);
  const double z = normal_quantile(0.5 + level / 2.0);
  if (df > 200) return z;
  // Cornish-Fisher style expansion of the t quantile in powers of 1/df.
  const double n = static_cast<double>(df);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  double t = z + (z3 + z) / (4 * n) + (5 * z5 + 16 * z3 + 3 * z) / (96 * n * n) +
             (3 * z7 + 19 * z5 + 17 * z3 - 15 * z) / (384 * n * n * n);
  // Small-df cases where the expansion is weakest: clamp with exact values
  // for the common 95% level.
  if (level > 0.949 && level < 0.951) {
    static constexpr double exact[] = {12.706, 4.303, 3.182, 2.776, 2.571,
                                       2.447,  2.365, 2.306, 2.262, 2.228};
    if (df <= 10) return exact[df - 1];
  }
  return t;
}

double chi_square_statistic(const std::vector<std::int64_t>& observed,
                            const std::vector<double>& expected_probs) {
  RL_REQUIRE(observed.size() == expected_probs.size());
  std::int64_t total = 0;
  for (auto c : observed) total += c;
  RL_REQUIRE(total > 0);
  double stat = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_probs[i] * static_cast<double>(total);
    if (expected <= 0) {
      RL_REQUIRE(observed[i] == 0);
      continue;
    }
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

double chi_square_critical(int df, double tail) {
  RL_REQUIRE(df >= 1);
  // Wilson-Hilferty: chi2_df ~ df * (1 - 2/(9 df) + z sqrt(2/(9 df)))^3.
  const double z = normal_quantile(1.0 - tail);
  const double t = 2.0 / (9.0 * df);
  const double base = 1.0 - t + z * std::sqrt(t);
  return df * base * base * base;
}

namespace {

// Regularized lower incomplete gamma P(a, x) by its power series
// (converges quickly for x < a + 1).
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Regularized upper incomplete gamma Q(a, x) by Lentz's continued
// fraction (converges quickly for x >= a + 1).
double gamma_q_cf(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double chi_square_pvalue(double stat, int df) {
  RL_REQUIRE(df >= 1);
  if (stat <= 0.0) return 1.0;
  const double a = static_cast<double>(df) / 2.0;
  const double x = stat / 2.0;
  const double q =
      x < a + 1.0 ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
  return std::clamp(q, 0.0, 1.0);
}

double chi_square_gof_pvalue(const std::vector<std::int64_t>& observed,
                             const std::vector<double>& expected_probs) {
  RL_REQUIRE(observed.size() >= 2);
  const double stat = chi_square_statistic(observed, expected_probs);
  return chi_square_pvalue(stat, static_cast<int>(observed.size()) - 1);
}

}  // namespace recover::stats
