# Empty dependencies file for exp09_exact_small_chains.
# This may be replaced when dependencies are built.
