#include "src/stats/regression.hpp"

#include <cmath>

#include "src/util/assert.hpp"

namespace recover::stats {

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  RL_REQUIRE(x.size() == y.size());
  RL_REQUIRE(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  RL_REQUIRE(sxx > 0);
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r_squared = syy > 0 ? 1.0 - ss_res / syy : 1.0;
  if (x.size() > 2) {
    fit.slope_stderr =
        std::sqrt(ss_res / (n - 2.0)) / std::sqrt(sxx);
  }
  return fit;
}

LinearFit loglog_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  RL_REQUIRE(x.size() == y.size());
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    RL_REQUIRE(x[i] > 0 && y[i] > 0);
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return linear_fit(lx, ly);
}

double ratio_dispersion(const std::vector<double>& y,
                        const std::vector<double>& f) {
  RL_REQUIRE(y.size() == f.size());
  RL_REQUIRE(!y.empty());
  double mean = 0;
  std::vector<double> r(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    RL_REQUIRE(f[i] > 0);
    r[i] = y[i] / f[i];
    mean += r[i];
  }
  mean /= static_cast<double>(y.size());
  double var = 0;
  for (double v : r) var += (v - mean) * (v - mean);
  var /= static_cast<double>(y.size());
  RL_REQUIRE(mean > 0);
  return std::sqrt(var) / mean;
}

}  // namespace recover::stats
