file(REMOVE_RECURSE
  "CMakeFiles/exp05_orientation_contraction.dir/exp05_orientation_contraction.cpp.o"
  "CMakeFiles/exp05_orientation_contraction.dir/exp05_orientation_contraction.cpp.o.d"
  "exp05_orientation_contraction"
  "exp05_orientation_contraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp05_orientation_contraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
