// Prometheus text exposition (format version 0.0.4) rendered from the
// obs metrics registry, served by ops::AdminServer at GET /metrics
// (docs/OBSERVABILITY.md, "Live telemetry").
//
// Mapping:
//   obs::Counter   → `# TYPE name counter`,  one cumulative sample
//   obs::Gauge     → `# TYPE name gauge`,    one sample
//   obs::Histogram → `# TYPE name histogram`: cumulative `_bucket`
//                    samples labeled with the log₂ buckets' inclusive
//                    upper bounds (`le="1"`, `le="3"`, `le="7"`, …),
//                    a final `le="+Inf"`, plus `_sum` and `_count`.
//                    Only non-empty buckets are emitted — Prometheus
//                    reconstructs quantiles from any bound subset.
//
// Metric names are sanitized to the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): '.' and any other illegal byte become
// '_' ("serve.request_ns" → "serve_request_ns").
#pragma once

#include <string>
#include <string_view>

#include "src/obs/metrics.hpp"

namespace recover::ops {

/// `name` with every byte outside [a-zA-Z0-9_:] replaced by '_' (and a
/// leading digit prefixed with '_').
std::string prometheus_name(std::string_view name);

/// Appends one full exposition of `snapshot` to `out` (TYPE comments +
/// samples, newline-terminated lines).
void render_prometheus(const obs::Registry::Snapshot& snapshot,
                       std::string& out);

/// Appends one sample line: `name value\n` (no labels).  `value` uses
/// the shortest round-trip double format; non-finite renders as "NaN".
void append_sample(std::string& out, std::string_view name, double value);

/// Appends one labeled sample line: `name{label="value"} v\n`.
void append_sample(std::string& out, std::string_view name,
                   std::string_view label, std::string_view label_value,
                   double value);

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline become \\, \", and \n.
std::string prometheus_label_value(std::string_view value);

/// Appends the build-identity gauge (constant 1; identity lives in the
/// labels, the standard Prometheus idiom for build metadata):
///
///   # TYPE recover_build_info gauge
///   recover_build_info{version="recover-serve/1.1",git="abc1234"} 1
///
/// Both values are escaped.  In a cluster, the router and each backend
/// expose their own sample, so a scrape can tell the tiers apart and
/// catch version skew between them.
void append_build_info(std::string& out, std::string_view version,
                       std::string_view git);

}  // namespace recover::ops
