#include "src/balls/scenario_b.hpp"

namespace recover::balls {

std::vector<double> scenario_b_removal_pmf(const LoadVector& v) {
  RL_REQUIRE(v.balls() > 0);
  std::vector<double> pmf(v.bins(), 0.0);
  const std::size_t s = v.nonempty_count();
  for (std::size_t i = 0; i < s; ++i) {
    pmf[i] = 1.0 / static_cast<double>(s);
  }
  return pmf;
}

}  // namespace recover::balls
