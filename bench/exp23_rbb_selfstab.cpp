// Experiment E23 — Los–Sauerwald, "Tight Bounds for Repeated
// Balls-into-Bins": for m = Θ(n) the stationary maximum load is
// Θ(log n), and the process self-stabilizes — started from the
// worst-case concentrated state (all m balls in one bin), the max load
// decays into the typical band and stays there.
//
// Two measurements per n (m = density·n):
//   * recovery time — first sustained entry of the max load into the
//     empirically-measured typical band, from the all-in-one crash state
//     and from a two-bin pile (the "recovery_times" table; the per-point
//     body is the registered "exp23" SweepCell);
//   * the max-load trajectory itself for the largest n (the
//     "trajectory" table) — the self-stabilization picture: a linear
//     drain of the pile followed by fluctuation inside the O(log n) band.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/rbb.hpp"
#include "src/core/recovery.hpp"
#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/regression.hpp"
#include "src/sweep/registry.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp23_rbb_selfstab",
                "E23/Los-Sauerwald: RBB self-stabilization from worst-case "
                "starts");
  cli.flag("sizes", "comma-separated n sweep (m = density*n)", "16,32,64,128");
  cli.flag("d", "re-placement choices (1 = classical RBB)", "1");
  cli.flag("density", "balls per bin m/n", "2");
  cli.flag("replicas", "replicas per point", "8");
  cli.flag("seed", "rng seed", "23");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto d = cli.integer("d");
  const auto density = cli.integer("density");
  const auto replicas = cli.integer("replicas");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto* exp = sweep::Registry::global().find("exp23");

  util::Table table({"n", "m", "typical", "typ/ln(n)", "T_recover", "ci95",
                     "T/(n ln n)", "T/m", "censored"});
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::int64_t n = sizes[i];
    sweep::GridSpec grid;
    grid.add_axis("d", {d});
    grid.add_axis("n", {n});
    grid.add_axis("density", {density});
    grid.add_axis("replicas", {replicas});
    sweep::CellContext ctx;
    ctx.seed = rng::substream(seed, i);
    ctx.parallel_within_cell = true;
    const auto result = exp->run(grid.cell(0), ctx);
    table.row()
        .integer(n)
        .integer(density * n)
        .integer(static_cast<std::int64_t>(result.at("typical")))
        .num(result.at("typical_per_lnn"), 3)
        .num(result.at("T_mean"), 1)
        .num(result.at("T_ci95"), 1)
        .num(result.at("T_nlnn"), 3)
        .num(result.at("T_m"), 3)
        .integer(static_cast<std::int64_t>(result.at("censored")));
    if (result.at("censored") == 0.0) {
      xs.push_back(static_cast<double>(n));
      ys.push_back(result.at("T_mean"));
    }
  }
  table.print(std::cout);
  run.add_table("recovery_times", table);
  if (xs.size() >= 3) {
    const auto fit = stats::loglog_fit(xs, ys);
    std::printf("\n# slope of T_recover vs n: %.3f (theory ~1: Θ(m) drain "
                "+ O(n log n) mixing)\n",
                fit.slope);
    run.note("slope_recovery", fit.slope);
    run.note("r2_recovery", fit.r_squared);
  }

  // Max-load trajectory from the worst-case start at the largest n: the
  // self-stabilization picture behind the table above.
  const std::int64_t n = *std::max_element(sizes.begin(), sizes.end());
  const std::int64_t m = density * n;
  balls::RBBChain<balls::AbkuRule> chain(
      balls::LoadVector::all_in_one(static_cast<std::size_t>(n), m),
      balls::AbkuRule(static_cast<int>(d)));
  core::TrajectoryOptions opts;
  opts.sample_interval = std::max<std::int64_t>(1, m / 64);
  opts.max_steps = 2 * m;
  const auto series = core::record_trajectory(
      chain,
      [](const auto& c) { return static_cast<double>(c.state().max_load()); },
      opts, rng::substream(seed, 0x7A11));
  util::Table traj({"round", "max_load", "max_load/ln(n)"});
  const double lnn = std::log(static_cast<double>(n));
  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto round = static_cast<std::int64_t>(s + 1) * opts.sample_interval;
    traj.row()
        .integer(round)
        .num(series[s], 0)
        .num(series[s] / lnn, 2);
  }
  traj.print(std::cout);
  run.add_table("trajectory", traj);
  run.note("trajectory_final_max_load", series.back());
  return 0;
}
