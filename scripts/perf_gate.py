#!/usr/bin/env python3
"""CI perf gate for the batched allocation kernels (src/kernel/).

Reads the recover.run/1 record written by

    bench_microbench --benchmark_filter=BM_Kernel --json-out=FILE \
        --benchmark_repetitions=5 --benchmark_report_aggregates_only=true

and enforces two things:

  1. Speedup floors (always hard).  Every BM_KernelDChoiceScalar* row
     must be paired with a BM_KernelDChoiceBatched* row at the same
     args, and the batched kernel must beat the scalar path by the
     per-engine floor: 2.0x for Philox (the AVX2 block path), 1.2x for
     Xoshiro (the fused streaming path — its serial recurrence caps the
     honest gain well below the counter-based engine's).  These ratios
     come from one run, so they are robust to the absolute speed of the
     CI machine.

  2. Baseline regression (>20% vs bench/BENCH_kernels.json).  Absolute
     cpu_ns comparisons across runs are noisy on shared CI hardware, so
     this check is *soft* by default: regressions are reported but do
     not fail the gate.  Set PERF_GATE=hard (or pass --hard) to make
     them fatal — the mode for dedicated perf runners.

With --write-baseline, the current run is written to the baseline path
instead of being checked (use medians from a repetitions run).

Aggregate handling: when the record holds _mean/_median/_stddev rows
(benchmark repetitions), the _median rows are used and the suffix is
stripped; otherwise the raw per-run rows are used as-is.
"""

import argparse
import json
import os
import re
import sys

SCHEMA = "recover.run/1"
BASELINE_SCHEMA = "recover.bench_kernels/1"
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench",
    "BENCH_kernels.json",
)

# Batched-vs-scalar floors, keyed by engine name as it appears in the
# benchmark name.  Ratios within one run, so hard even on noisy hosts.
PAIR_FLOORS = {"Philox": 2.0, "Xoshiro": 1.2}

# Slowdown vs the committed baseline that counts as a regression.
REGRESSION_THRESHOLD = 1.20

PAIR_RE = re.compile(
    r"^BM_KernelDChoice(?P<mode>Scalar|Batched)(?P<engine>[A-Za-z0-9]+?)"
    r"(?P<args>(?:/-?\d+)+)$"
)
AGGREGATE_RE = re.compile(r"_(mean|median|stddev|cv)$")


def fail(message):
    print(f"perf_gate: FAIL: {message}", file=sys.stderr)
    return False


def load_rows(path):
    """Returns {benchmark_name: cpu_ns} from a recover.run/1 record,
    preferring _median aggregate rows when present."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    table = next(
        (t for t in doc.get("tables", []) if t.get("name") == "microbench"),
        None,
    )
    if table is None:
        raise ValueError("record has no 'microbench' table "
                         "(run bench_microbench with --json-out)")
    columns = table["columns"]
    try:
        name_i = columns.index("benchmark")
        cpu_i = columns.index("cpu_ns")
    except ValueError as e:
        raise ValueError(f"microbench table missing column: {e}") from e

    raw, medians = {}, {}
    for row in table["rows"]:
        name = row[name_i]
        cpu = row[cpu_i]
        if not isinstance(cpu, (int, float)) or cpu <= 0:
            continue
        m = AGGREGATE_RE.search(name)
        if m:
            if m.group(1) == "median":
                medians[name[: m.start()]] = float(cpu)
        else:
            raw[name] = float(cpu)
    rows = medians or raw
    if not rows:
        raise ValueError("no usable benchmark rows in the record")
    return rows, doc.get("run", {})


def check_pairs(rows):
    """Speedup-floor check: every scalar d-choice row needs a batched
    partner beating the per-engine floor.  Always hard."""
    pairs = {}
    for name, cpu in rows.items():
        m = PAIR_RE.match(name)
        if not m:
            continue
        key = (m.group("engine"), m.group("args"))
        pairs.setdefault(key, {})[m.group("mode")] = cpu

    checked = 0
    ok = True
    for (engine, args), modes in sorted(pairs.items()):
        if "Scalar" not in modes or "Batched" not in modes:
            ok = fail(f"BM_KernelDChoice*{engine}{args}: missing "
                      f"{'Batched' if 'Batched' not in modes else 'Scalar'} "
                      f"partner row")
            continue
        floor = PAIR_FLOORS.get(engine)
        if floor is None:
            print(f"perf_gate: note: no floor for engine {engine!r}, "
                  f"skipping pair {args}")
            continue
        speedup = modes["Scalar"] / modes["Batched"]
        verdict = "ok" if speedup >= floor else "BELOW FLOOR"
        print(f"perf_gate: {engine}{args}: scalar {modes['Scalar']:.0f} ns, "
              f"batched {modes['Batched']:.0f} ns, speedup {speedup:.2f}x "
              f"(floor {floor:.1f}x) {verdict}")
        if speedup < floor:
            ok = fail(f"{engine}{args}: batched speedup {speedup:.2f}x "
                      f"below required {floor:.1f}x")
        checked += 1
    if checked == 0:
        ok = fail("no BM_KernelDChoice scalar/batched pairs found — "
                  "wrong --benchmark_filter?")
    return ok


def check_baseline(rows, baseline_path, hard):
    """>20% slowdown vs the committed baseline.  Soft unless hard."""
    try:
        with open(baseline_path, encoding="utf-8") as f:
            baseline = json.load(f)
    except FileNotFoundError:
        print(f"perf_gate: note: no baseline at {baseline_path}, "
              f"skipping regression check (--write-baseline to create)")
        return True
    if baseline.get("schema") != BASELINE_SCHEMA:
        return fail(f"{baseline_path}: schema is "
                    f"{baseline.get('schema')!r}, want {BASELINE_SCHEMA!r}")
    base_rows = baseline.get("benchmarks", {})

    regressions = []
    for name, base_cpu in sorted(base_rows.items()):
        cur = rows.get(name)
        if cur is None:
            print(f"perf_gate: note: baseline row {name} absent from "
                  f"this run (filter mismatch?)")
            continue
        ratio = cur / base_cpu
        mark = "REGRESSED" if ratio > REGRESSION_THRESHOLD else "ok"
        print(f"perf_gate: {name}: {cur:.0f} ns vs baseline "
              f"{base_cpu:.0f} ns ({ratio:.2f}x) {mark}")
        if ratio > REGRESSION_THRESHOLD:
            regressions.append((name, ratio))

    if not regressions:
        return True
    for name, ratio in regressions:
        print(f"perf_gate: regression: {name} is {ratio:.2f}x the "
              f"baseline (threshold {REGRESSION_THRESHOLD:.2f}x)",
              file=sys.stderr)
    if hard:
        return fail(f"{len(regressions)} kernel regression(s) vs "
                    f"{baseline_path}")
    print(f"perf_gate: {len(regressions)} regression(s) reported but not "
          f"fatal (soft mode; set PERF_GATE=hard to enforce)")
    return True


def write_baseline(rows, run, baseline_path):
    kernels = {n: round(c, 1) for n, c in sorted(rows.items())
               if n.startswith("BM_Kernel")}
    if not kernels:
        return fail("no BM_Kernel* rows to write as baseline")
    out = {
        "schema": BASELINE_SCHEMA,
        "source": {
            "binary": run.get("binary", "bench_microbench"),
            "git": run.get("git", "unknown"),
            "note": "cpu_ns medians; refresh with "
                    "scripts/perf_gate.py --write-baseline",
        },
        "benchmarks": kernels,
    }
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"perf_gate: wrote {baseline_path} ({len(kernels)} benchmarks)")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("record", help="recover.run/1 JSON from "
                                       "bench_microbench --json-out")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        metavar="FILE",
                        help="committed baseline (default: "
                             "bench/BENCH_kernels.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the baseline from this record "
                             "instead of checking against it")
    parser.add_argument("--hard", action="store_true",
                        help="make baseline regressions fatal "
                             "(same as PERF_GATE=hard)")
    args = parser.parse_args()
    hard = args.hard or os.environ.get("PERF_GATE") == "hard"

    try:
        rows, run = load_rows(args.record)
    except (OSError, ValueError, json.JSONDecodeError, KeyError) as e:
        fail(f"{args.record}: {e}")
        return 1

    if args.write_baseline:
        return 0 if write_baseline(rows, run, args.baseline) else 1

    ok = check_pairs(rows)
    ok = check_baseline(rows, args.baseline, hard) and ok
    if ok:
        print("perf_gate: OK")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
