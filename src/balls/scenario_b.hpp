// Scenario B (§2, §5): the protocol the paper calls I_B.
//
// Repeatedly: remove one ball from a non-empty bin chosen i.u.r.
// (distribution ℬ(v) of Definition 3.3 — uniform over the s non-empty
// bins), then place a new ball with the scheduling rule.  With ABKU[d]
// this is I_B-ABKU[d]; with ADAP(x) it is I_B-ADAP(x).
//
// The paper finds this removal model genuinely harder than scenario A:
// Claim 5.3 gives τ(ε) = O(n m² ln ε⁻¹) via a simple path coupling, the
// (deferred) full version improves it to Õ(m²), and τ ≥ Ω(max(n·m, m²))
// for large m.
#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>

#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"
#include "src/kernel/choice_block.hpp"

namespace recover::balls {

template <typename Rule>
class ScenarioBChain {
 public:
  using State = LoadVector;

  ScenarioBChain(LoadVector init, Rule rule)
      : state_(std::move(init)), rule_(std::move(rule)) {
    RL_REQUIRE(state_.balls() > 0);
  }

  [[nodiscard]] const LoadVector& state() const { return state_; }
  [[nodiscard]] LoadVector& mutable_state() { return state_; }
  void set_state(LoadVector s) {
    RL_REQUIRE(s.balls() == state_.balls());
    RL_REQUIRE(s.bins() == state_.bins());
    state_ = std::move(s);
  }

  [[nodiscard]] const Rule& rule() const { return rule_; }
  [[nodiscard]] std::size_t bins() const { return state_.bins(); }
  [[nodiscard]] std::int64_t balls() const { return state_.balls(); }

  /// One phase: remove via ℬ(v), insert via the rule.
  template <typename Engine>
  void step(Engine& eng) {
    const std::size_t i = state_.sample_nonempty_uniform(eng);
    state_.remove_at(i);
    ProbeFresh<Engine> probe(eng, state_.bins());
    state_.add_at(rule_.place_index(state_, probe));
  }

  /// `steps` phases through the batched d-choice kernel; byte-identical
  /// to `steps` calls to step() (see ScenarioAChain::step_block).  The
  /// removal bound s (non-empty bins) is state-dependent, so lead words
  /// are pre-drawn raw and mapped at apply time.
  template <typename Engine>
  void step_block(Engine& eng, std::int64_t steps) {
    if constexpr (std::is_same_v<Rule, AbkuRule>) {
      if (rule_.d() <= kernel::kMaxBatchedProbes) {
        step_block_batched(eng, steps);
        return;
      }
    }
    for (std::int64_t k = 0; k < steps; ++k) step(eng);
  }

 private:
  // Instantiated only for AbkuRule (guarded by if constexpr above).
  template <typename Engine>
  void step_block_batched(Engine& eng, std::int64_t steps) {
    const auto n = static_cast<std::uint64_t>(state_.bins());
    kernel::DChoiceBatch batch;
    std::int64_t remaining = steps;
    while (remaining > 0) {
      const auto chunk = static_cast<std::size_t>(std::min<std::int64_t>(
          remaining, static_cast<std::int64_t>(kernel::kBatchSteps)));
      batch.fill(eng, n, rule_.d(), chunk);
      for (std::size_t i = 0; i < chunk; ++i) {
        const auto s = static_cast<std::uint64_t>(state_.nonempty_count());
        bool lead_ok;
        const std::uint64_t pick =
            kernel::lemire_map(batch.lead_raw(i), s, lead_ok);
        if (!lead_ok || batch.probe_unsafe(i)) {
          auto replay = batch.replay_from(eng, i);
          for (std::int64_t k = static_cast<std::int64_t>(i); k < remaining;
               ++k) {
            step(replay);
          }
          return;
        }
        state_.remove_at(static_cast<std::size_t>(pick));
        state_.add_at(static_cast<std::size_t>(batch.choice(i)));
      }
      remaining -= static_cast<std::int64_t>(chunk);
    }
  }

  LoadVector state_;
  Rule rule_;
};

/// Exact removal pmf of ℬ(v) over sorted indices (Definition 3.3):
/// p_i = 1/s for i < s, else 0.
std::vector<double> scenario_b_removal_pmf(const LoadVector& v);

}  // namespace recover::balls
