file(REMOVE_RECURSE
  "CMakeFiles/exp12_relocation.dir/exp12_relocation.cpp.o"
  "CMakeFiles/exp12_relocation.dir/exp12_relocation.cpp.o.d"
  "exp12_relocation"
  "exp12_relocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp12_relocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
