#include "src/obs/progress.hpp"

#include <cstdio>

namespace recover::obs {

namespace {

std::atomic<bool> g_progress_enabled{false};

constexpr std::int64_t kHeartbeatMs = 1000;

}  // namespace

bool progress_enabled() noexcept {
  return g_progress_enabled.load(std::memory_order_relaxed);
}

void set_progress_enabled(bool enabled) noexcept {
  g_progress_enabled.store(enabled, std::memory_order_relaxed);
}

Progress::Progress(std::string label, std::uint64_t total)
    : label_(std::move(label)),
      total_(total),
      enabled_(progress_enabled()),
      start_(std::chrono::steady_clock::now()) {}

Progress::~Progress() {
  // Flush the final summary even when the whole run finished inside the
  // 1 s throttle window and no heartbeat was ever printed: a --progress
  // run with a known total must always end with its "N/N done" line.
  if (enabled_ &&
      (printed_.load(std::memory_order_relaxed) || total_ > 0)) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    print_line(elapsed, /*final_line=*/true);
  }
}

void Progress::set_detail(const std::string& detail) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(detail_mutex_);
  detail_ = detail;
}

void Progress::tick(std::uint64_t done_delta, std::uint64_t censored_delta) {
  done_.fetch_add(done_delta, std::memory_order_relaxed);
  if (censored_delta != 0) {
    censored_.fetch_add(censored_delta, std::memory_order_relaxed);
  }
  if (!enabled_) return;
  const auto now = std::chrono::steady_clock::now();
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start_)
          .count();
  // One thread wins the right to print per heartbeat interval; losers
  // skip — a heartbeat is advisory, not a log.
  std::int64_t last = last_print_ms_.load(std::memory_order_relaxed);
  if (elapsed_ms - last < kHeartbeatMs) return;
  if (!last_print_ms_.compare_exchange_strong(last, elapsed_ms,
                                              std::memory_order_relaxed)) {
    return;
  }
  print_line(static_cast<double>(elapsed_ms) / 1e3, /*final_line=*/false);
}

void Progress::print_line(double elapsed_s, bool final_line) {
  printed_.store(true, std::memory_order_relaxed);
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const std::uint64_t censored = censored_.load(std::memory_order_relaxed);
  char eta[32] = "";
  if (!final_line && total_ > 0 && done > 0 && done < total_) {
    const double rate = static_cast<double>(done) / elapsed_s;
    std::snprintf(eta, sizeof eta, ", eta %.0fs",
                  static_cast<double>(total_ - done) / rate);
  }
  std::string detail;
  {
    std::lock_guard<std::mutex> lock(detail_mutex_);
    if (!detail_.empty()) detail = " [" + detail_ + "]";
  }
  std::fprintf(stderr, "[%s] %llu/%llu done, %llu censored, %.1fs%s%s%s\n",
               label_.c_str(), static_cast<unsigned long long>(done),
               static_cast<unsigned long long>(total_),
               static_cast<unsigned long long>(censored), elapsed_s, eta,
               detail.c_str(), final_line ? " (finished)" : "");
}

}  // namespace recover::obs
