file(REMOVE_RECURSE
  "CMakeFiles/orient_coupling_test.dir/orient_coupling_test.cpp.o"
  "CMakeFiles/orient_coupling_test.dir/orient_coupling_test.cpp.o.d"
  "orient_coupling_test"
  "orient_coupling_test.pdb"
  "orient_coupling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orient_coupling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
