// Experiment E15 — §7 Conclusions: "our techniques can be also applied
// to processes in which we remove a ball according to other probability
// distributions."
//
// We compare four removal policies under the same right-oriented
// placement rule (ABKU[2]) on the coalescence-from-extremal-pair
// benchmark: the paper's scenarios A and B, a power-of-d active
// rebalancer (remove from the fullest of d sampled non-empty bins), and
// the deterministic greedy repair limit.  Expected ordering: removal
// rules that preferentially drain full bins recover polynomially faster
// than scenario B and close to (or faster than) scenario A.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/removal_policies.hpp"
#include "src/core/coalescence.hpp"
#include "src/obs/run_record.hpp"
#include "src/stats/regression.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

template <typename Removal>
void sweep(const char* name, Removal removal,
           const std::vector<std::int64_t>& sizes, int replicas,
           std::uint64_t seed, recover::util::Table& table) {
  using namespace recover;
  std::vector<double> xs, ys;
  for (const std::int64_t m : sizes) {
    const auto n = static_cast<std::size_t>(m);
    core::CoalescenceOptions opts;
    opts.replicas = replicas;
    opts.seed = seed;
    opts.max_steps = 4000 * m * m;
    opts.check_interval = std::max<std::int64_t>(1, m / 8);
    const auto stats = core::measure_coalescence(
        [&](std::uint64_t) {
          return balls::GeneralGrandCoupling<Removal, balls::AbkuRule>(
              balls::LoadVector::all_in_one(n, m),
              balls::LoadVector::balanced(n, m), removal,
              balls::AbkuRule(2));
        },
        opts);
    const double mlnm =
        static_cast<double>(m) * std::log(static_cast<double>(m));
    table.row()
        .add(name)
        .integer(m)
        .num(stats.steps.mean(), 1)
        .num(stats.steps.ci_halfwidth(), 1)
        .num(stats.steps.mean() / mlnm, 3)
        .num(stats.steps.mean() /
                 (static_cast<double>(m) * static_cast<double>(m)),
             4)
        .integer(stats.censored);
    if (stats.censored == 0) {
      xs.push_back(static_cast<double>(m));
      ys.push_back(stats.steps.mean());
    }
  }
  if (xs.size() >= 3) {
    const auto fit = recover::stats::loglog_fit(xs, ys);
    std::printf("# %-22s log-log slope of T vs m: %.3f\n", name, fit.slope);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp15_removal_policies",
                "E15/#7: recovery under alternative removal distributions");
  cli.flag("sizes", "comma-separated m = n sweep", "16,24,32,48,64");
  cli.flag("replicas", "replicas per point", "16");
  cli.flag("seed", "rng seed", "15");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"removal policy", "n=m", "T_mean", "T_ci95",
                     "T/(m ln m)", "T/m^2", "censored"});
  sweep("ball-weighted (A)", balls::BallWeightedRemoval{}, sizes, replicas,
        seed, table);
  sweep("nonempty-uniform (B)", balls::NonEmptyUniformRemoval{}, sizes,
        replicas, seed, table);
  sweep("fullest-of-2", balls::MaxOfDNonEmptyRemoval<2>{}, sizes, replicas,
        seed, table);
  sweep("fullest-of-4", balls::MaxOfDNonEmptyRemoval<4>{}, sizes, replicas,
        seed, table);
  table.print(std::cout);
  run.add_table("removal_policies", table);
  std::printf(
      "\n# Active drains (fullest-of-d) interpolate between scenario B's "
      "~m^2 law and scenario A's ~m ln m; the framework itself (coupled "
      "quantiles + shared probes) needed no changes, as #7 promises.\n");
  return 0;
}
