// The randomized property engine: draws instances per registered
// ChainModel via rng::substream and runs every applicable property
// class, collecting failures that each carry ONE reproducible seed line.
//
// Property classes (docs/CERTIFICATION.md has the catalogue):
//   exact_vs_sampled    χ²/TV agreement of the scalar sampler's one-step
//                       law with the brute-force exact pmf
//   coupling_marginal   each marginal of a coupled step follows the
//                       single-chain exact law (coupling faithfulness)
//   coupling_absorbing  equal inputs stay equal through a coupled step
//   scalar_vs_batched   kernel-mode byte identity: same final state AND
//                       same next engine word under RECOVER_KERNEL=
//                       scalar vs batched
//   invariant           the model's structural invariant (majorization
//                       sandwich, normalization, capacity bound, ...)
//
// Seeds derive as substream(substream(master, fnv1a(model.name)), i):
// keyed on the model NAME, not the registry position, so filtering with
// --only replays exactly the instances a full run drew for that model.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/certify/model.hpp"

namespace recover::certify {

struct CertifyOptions {
  std::uint64_t seed = 1;
  /// Random instances drawn per model.
  int instances = 8;
  /// Samples per law-agreement check.
  std::int64_t law_trials = 20000;
  /// Steps of each scalar-vs-batched identity run (must clear
  /// kernel::kMinBatchSteps by a wide margin to exercise the batch path).
  std::int64_t identity_steps = 512;
  /// Trajectory length for invariant and absorbing checks.
  std::int64_t invariant_steps = 192;
  /// Per-check significance level.  Tiny on purpose: thousands of checks
  /// run per CI pass, and a certify failure must mean a genuine law
  /// mismatch, not test-count noise.
  double alpha = 1e-6;
  /// Wall-clock budget; 0 = unlimited.  Exceeding it stops cleanly
  /// (reported, not a failure).
  std::int64_t time_budget_ms = 0;
  /// Restrict to these model names (empty = all registered models).
  std::vector<std::string> only;
};

struct CheckFailure {
  std::string model;
  std::string property;
  Instance instance;
  std::string detail;

  /// The one-line reproduction recipe printed for this failure.
  [[nodiscard]] std::string repro(const CertifyOptions& options) const;
};

struct CertifyReport {
  std::int64_t models = 0;
  std::int64_t instances = 0;
  std::int64_t checks = 0;
  bool timed_out = false;
  std::vector<CheckFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the conformance suite over every (filtered) model in `registry`.
/// `progress`, when non-null, receives one line per model.  Kernel-mode
/// state is restored on return even though identity checks toggle it.
CertifyReport certify_models(const ModelRegistry& registry,
                             const CertifyOptions& options,
                             std::ostream* progress = nullptr);

}  // namespace recover::certify
