file(REMOVE_RECURSE
  "CMakeFiles/labeled_test.dir/labeled_test.cpp.o"
  "CMakeFiles/labeled_test.dir/labeled_test.cpp.o.d"
  "labeled_test"
  "labeled_test.pdb"
  "labeled_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labeled_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
