// Crash-safe sweep checkpoints: one JSON object per line, appended and
// fsync'd as each cell completes, so a killed sweep loses at most the
// cells that were still in flight.
//
// Line schema (`recover.sweep_cell/1`):
//
//   {"schema":"recover.sweep_cell/1","exp":"exp01","key":"m=64,d=1",
//    "hash":"<fnv1a64 of exp|key, 16 hex>","index":3,
//    "values":{"T_mean":123.5,...},"wall_seconds":0.12}
//
// Loading is tolerant by construction: a line that does not parse as a
// complete, schema-valid record (the torn tail of an interrupted append,
// or garbage) is counted and skipped, never fatal — resume keeps every
// intact record and recomputes the rest.  Records are keyed by the
// content hash of "<exp>|<key>", so a checkpoint survives re-ordering,
// sharding, and concatenation of shard files; when the same cell appears
// twice the last record wins.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace recover::sweep {

struct CellRecord {
  std::string exp;
  std::string key;        // canonical cell key, e.g. "m=64,d=1"
  std::uint64_t hash = 0; // fnv1a64("<exp>|<key>")
  std::uint64_t index = 0;
  std::vector<std::pair<std::string, double>> values;
  double wall_seconds = 0;
};

/// Serializes one record as a single compact JSON line (no newline).
std::string to_json_line(const CellRecord& record);

/// Append-only writer; every append() is flushed and fsync'd before it
/// returns, so a completed cell is durable even through SIGKILL.
class CheckpointWriter {
 public:
  /// Opens `path` in append mode (created if absent); aborts the process
  /// if the file cannot be opened — a sweep that silently cannot
  /// checkpoint is worse than one that fails loudly.
  explicit CheckpointWriter(const std::string& path);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Not thread-safe; the sweep engine serializes appends.  Write and
  /// flush failures abort (counted in the `sweep.checkpoint.io_failures`
  /// counter first); an fsync target that cannot sync (pipe, pseudo-fs)
  /// degrades to a one-time warning instead.
  void append(const CellRecord& record);

 private:
  std::FILE* file_ = nullptr;
  bool fsync_unsupported_ = false;
};

struct CheckpointLoad {
  std::vector<CellRecord> records;  // intact records, file order
  std::size_t skipped_lines = 0;    // torn / corrupt / foreign-schema lines
};

/// Loads every intact record from `path`; a missing file is an empty
/// checkpoint.  Records whose stored hash does not match the recomputed
/// content hash are treated as corrupt and skipped.
CheckpointLoad load_checkpoint(const std::string& path);

}  // namespace recover::sweep
