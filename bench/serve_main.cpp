// recover_serve — the networked simulation service (docs/SERVING.md).
//
//   recover_serve --port 0 --workers 4 --queue-cap 128 --deadline 10s
//
// Listens for newline-delimited recover.req/1 JSON requests (ping,
// list_cells, run_cell, stats, shutdown) and answers on the same
// connection.  Prints a machine-parseable line once the socket is bound:
//
//   # serve: listening on 127.0.0.1:PORT workers=N queue=C
//
// (scripts/ci.sh reads the PORT when it boots the server on an
// ephemeral port).  SIGTERM/SIGINT — or a `shutdown` request — starts a
// graceful drain: stop accepting, finish in-flight requests, flush the
// obs run record, exit 0.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <thread>

#include "src/obs/run_record.hpp"
#include "src/serve/server.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

// Async-signal-safe drain request: the handler only flips the flag; the
// main loop does the actual drain.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void on_signal(int) { g_shutdown_requested = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("recover_serve",
                "TCP service answering recover.req/1 queries over "
                "registered experiment cells");
  cli.flag("host", "listen address", "127.0.0.1");
  cli.flag("port", "listen port (0 = ephemeral, printed at startup)", "0");
  cli.flag("workers", "request executor threads", "2");
  cli.flag("queue-cap",
           "admission queue bound; excess requests are shed with "
           "'overloaded'",
           "128");
  cli.flag("deadline",
           "default per-request deadline (500ms/2s/1m; 0 = none), applied "
           "when a request carries no deadline_ms",
           "0");
  cli.flag("serial-cells",
           "run cell replicas serially instead of on the thread pool",
           "false");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  serve::ServerOptions options;
  options.host = cli.str("host");
  options.port = static_cast<int>(cli.integer("port"));
  options.workers = static_cast<int>(cli.integer("workers"));
  options.queue_capacity =
      static_cast<std::size_t>(cli.integer("queue-cap"));
  options.default_deadline_ms = cli.duration_ms("deadline");
  options.cells_parallel = !cli.boolean("serial-cells");

  serve::Server server(options);
  if (!server.start()) return 2;

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::printf("# serve: listening on %s:%d workers=%d queue=%zu\n",
              options.host.c_str(), server.port(), options.workers,
              options.queue_capacity);
  std::fflush(stdout);

  // Serve until a signal or a `shutdown` request starts the drain.
  while (g_shutdown_requested == 0 && !server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.request_drain();
  server.wait_drained();
  server.stop();

  const serve::ServerSnapshot snap = server.snapshot();
  util::Table table({"requests", "ok", "shed", "deadline_exceeded",
                     "protocol_errors", "connections"});
  table.row()
      .integer(static_cast<std::int64_t>(snap.requests_total))
      .integer(static_cast<std::int64_t>(snap.responses_ok))
      .integer(static_cast<std::int64_t>(snap.shed_total))
      .integer(static_cast<std::int64_t>(snap.deadline_exceeded_total))
      .integer(static_cast<std::int64_t>(snap.protocol_errors_total))
      .integer(static_cast<std::int64_t>(snap.connections_total));
  table.print(std::cout);
  run.add_table("serve", table);
  std::printf("# serve: drained requests=%llu ok=%llu shed=%llu "
              "deadline=%llu proto_errors=%llu\n",
              static_cast<unsigned long long>(snap.requests_total),
              static_cast<unsigned long long>(snap.responses_ok),
              static_cast<unsigned long long>(snap.shed_total),
              static_cast<unsigned long long>(snap.deadline_exceeded_total),
              static_cast<unsigned long long>(snap.protocol_errors_total));
  return 0;
}
