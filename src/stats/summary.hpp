// Streaming summary statistics (Welford) with Student-t confidence
// intervals, used by every experiment to report mean ± CI over replicas.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace recover::stats {

class Summary {
 public:
  void add(double x);

  /// Merges another summary (parallel reduction across worker shards).
  void merge(const Summary& other);

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // unbiased (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double stderror() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Half-width of the two-sided confidence interval at the given level
  /// (0.95 or 0.99); uses a Student-t quantile approximation.
  [[nodiscard]] double ci_halfwidth(double level = 0.95) const;

 private:
  std::int64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Two-sided Student-t critical value t_{df,(1+level)/2}; accurate to a few
/// percent for df >= 2, exact in the normal limit.
double student_t_critical(std::int64_t df, double level);

/// Standard normal quantile (Acklam's rational approximation).
double normal_quantile(double p);

/// Chi-square test statistic for observed counts vs expected probabilities;
/// returns the statistic (compare against quantile with k-1 dof).
double chi_square_statistic(const std::vector<std::int64_t>& observed,
                            const std::vector<double>& expected_probs);

/// Upper critical value of the chi-square distribution with df degrees of
/// freedom at the given right-tail probability (Wilson–Hilferty).
double chi_square_critical(int df, double tail);

/// Right-tail p-value of the chi-square distribution: P(X²_df ≥ stat),
/// computed as the regularized upper incomplete gamma Q(df/2, stat/2)
/// (series / continued-fraction evaluation, accurate deep into the tail —
/// unlike the Wilson–Hilferty critical-value approximation above, which
/// is only meant for fixed common levels).  The certification harness
/// (src/certify/) compares this against a tiny per-check alpha so a
/// conformance failure is a genuine law mismatch, not test-count noise.
double chi_square_pvalue(double stat, int df);

/// Chi-square goodness-of-fit p-value in one call: statistic of
/// `observed` against `expected_probs` (see chi_square_statistic), then
/// the right-tail p-value with k−1 degrees of freedom.
double chi_square_gof_pvalue(const std::vector<std::int64_t>& observed,
                             const std::vector<double>& expected_probs);

}  // namespace recover::stats
