file(REMOVE_RECURSE
  "CMakeFiles/tv_mixing_test.dir/tv_mixing_test.cpp.o"
  "CMakeFiles/tv_mixing_test.dir/tv_mixing_test.cpp.o.d"
  "tv_mixing_test"
  "tv_mixing_test.pdb"
  "tv_mixing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_mixing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
