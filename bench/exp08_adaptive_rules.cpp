// Experiment E8 — ADAP(x) (Czumaj–Stemann): the paper's recovery bounds
// hold for ANY right-oriented rule, so the adaptive protocols inherit
// Theorem 1 (scenario A) and Claim 5.3 (scenario B) unchanged.
//
// We sweep three threshold schedules against ABKU[2] under both
// scenarios and report coalescence times plus the average number of
// probes ADAP spends per placement (its cost side): recovery stays
// Θ(m ln m) under scenario A for every schedule, while probe counts
// differ — the rule changes the load profile, not the recovery law.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/grand_coupling.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/core/coalescence.hpp"
#include "src/kernel/kernel.hpp"
#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

// Counts probes consumed by a rule across simulated placements.
template <typename Rule>
double average_probes(const Rule& rule, std::size_t n, std::int64_t m,
                      std::uint64_t seed) {
  recover::rng::Xoshiro256PlusPlus eng(seed);
  recover::balls::ScenarioAChain<Rule> chain(
      recover::balls::LoadVector::balanced(n, m), rule);
  recover::kernel::advance(chain, eng, 2000);  // burn-in
  std::int64_t probes = 0;
  constexpr int kSamples = 5000;
  for (int t = 0; t < kSamples; ++t) {
    // Replay a placement on the current state with a counting probe.
    std::int64_t count = 0;
    auto counting_probe = [&](std::size_t) {
      ++count;
      return static_cast<std::size_t>(
          recover::rng::uniform_below(eng, n));
    };
    (void)rule.place_index(chain.state(), counting_probe);
    probes += count;
    chain.step(eng);
  }
  return static_cast<double>(probes) / kSamples;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp08_adaptive_rules",
                "E8: ADAP(x) recovery matches ABKU under scenario A");
  cli.flag("sizes", "comma-separated m = n sweep", "32,64,128,256");
  cli.flag("replicas", "replicas per point", "16");
  cli.flag("seed", "rng seed", "8");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  struct NamedRule {
    const char* name;
    balls::AdapRule rule;
  };
  const std::vector<NamedRule> rules = {
      {"ABKU[2] (x=2)", balls::AdapRule{balls::ThresholdSchedule::constant(2)}},
      {"ADAP linear(1,+1,cap4)",
       balls::AdapRule{balls::ThresholdSchedule::linear(1, 1, 4)}},
      {"ADAP steep(2,+2,cap8)",
       balls::AdapRule{balls::ThresholdSchedule::linear(2, 2, 8)}},
  };

  util::Table table({"rule", "n=m", "T_mean", "T_ci95", "T/(m ln m)",
                     "avg_probes"});

  for (const auto& named : rules) {
    for (const std::int64_t m : sizes) {
      const auto n = static_cast<std::size_t>(m);
      core::CoalescenceOptions opts;
      opts.replicas = replicas;
      opts.seed = seed;
      opts.max_steps = 300 * m * (1 + static_cast<std::int64_t>(std::log(
                                           static_cast<double>(m))));
      opts.check_interval = std::max<std::int64_t>(1, m / 8);
      const auto stats = core::measure_coalescence(
          [&](std::uint64_t) {
            return balls::GrandCouplingA<balls::AdapRule>(
                balls::LoadVector::all_in_one(n, m),
                balls::LoadVector::balanced(n, m), named.rule);
          },
          opts);
      const double mlnm =
          static_cast<double>(m) * std::log(static_cast<double>(m));
      table.row()
          .add(named.name)
          .integer(m)
          .num(stats.steps.mean(), 1)
          .num(stats.steps.ci_halfwidth(), 1)
          .num(stats.steps.mean() / mlnm, 3)
          .num(average_probes(named.rule, n, m, seed + 13), 2);
    }
  }
  table.print(std::cout);
  run.add_table("adaptive_rules", table);
  std::printf(
      "\n# All schedules show T/(m ln m) ~ const: the recovery law depends "
      "only on right-orientedness (Lemma 3.4), not on the schedule; the "
      "schedules differ in placement cost (avg_probes).\n");
  return 0;
}
