// certify_runner — property-based conformance suite for every registered
// chain model, the batched kernels, and the serve wire protocol
// (docs/CERTIFICATION.md).
//
//   certify_runner --suite=chains --instances=8 --seed=1
//   certify_runner --suite=chains --only=grand_coupling_a --seed=77
//   certify_runner --suite=protocol --frames=10000            # loopback
//   certify_runner --suite=protocol --port=9000 --frames=10000  # live TCP
//
// Exit status 0 means every check passed; 1 means at least one property
// or protocol violation, and every failure prints exactly one
// `CERTIFY FAIL ...` line whose tail is a rerun command that replays the
// failing instance.  --time-budget bounds a run (the CI gate uses it);
// hitting the budget is reported but is not a failure.
#include <cstdio>
#include <iostream>
#include <string>

#include "src/certify/fuzz.hpp"
#include "src/certify/model.hpp"
#include "src/certify/properties.hpp"
#include "src/kernel/kernel.hpp"
#include "src/util/cli.hpp"

namespace {

using namespace recover;

int run_chains(const util::Cli& cli) {
  certify::CertifyOptions options;
  options.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  options.instances = static_cast<int>(cli.integer("instances"));
  options.law_trials = cli.integer("trials");
  options.identity_steps = cli.integer("steps");
  options.alpha = cli.real("alpha");
  options.time_budget_ms = cli.duration_ms("time-budget");
  const std::string only = cli.str("only");
  if (!only.empty()) {
    std::size_t pos = 0;
    while (pos <= only.size()) {
      const std::size_t comma = only.find(',', pos);
      const std::size_t end = comma == std::string::npos ? only.size() : comma;
      if (end > pos) options.only.push_back(only.substr(pos, end - pos));
      pos = end + 1;
    }
  }

  const certify::ModelRegistry& registry = certify::builtin_registry();
  const certify::CertifyReport report =
      certify::certify_models(registry, options, &std::cout);

  std::printf(
      "certify: suite=chains kernel=%s models=%lld instances=%lld "
      "checks=%lld failures=%zu%s\n",
      kernel::mode_name(), static_cast<long long>(report.models),
      static_cast<long long>(report.instances),
      static_cast<long long>(report.checks), report.failures.size(),
      report.timed_out ? " (time budget reached)" : "");
  for (const certify::CheckFailure& failure : report.failures) {
    std::printf("%s\n", failure.repro(options).c_str());
  }
  return report.ok() ? 0 : 1;
}

int run_protocol(const util::Cli& cli) {
  certify::FuzzOptions options;
  options.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  options.frames = cli.integer("frames");
  options.reply_timeout_ms = cli.duration_ms("reply-timeout");
  const int port = static_cast<int>(cli.integer("port"));

  certify::FuzzReport report;
  if (port > 0) {
    report = certify::fuzz_server(cli.str("host"), port, options);
  } else {
    report = certify::fuzz_handlers(options);
  }

  std::printf(
      "certify: suite=protocol mode=%s frames=%lld replies=%lld ok=%lld "
      "violations=%zu\n",
      port > 0 ? "server" : "loopback", static_cast<long long>(report.frames),
      static_cast<long long>(report.replies),
      static_cast<long long>(report.ok_replies), report.violations.size());
  for (const auto& [code, count] : report.error_counts) {
    std::printf("certify:   error %-18s %lld\n", code.c_str(),
                static_cast<long long>(count));
  }
  // Print at most a handful of violations in full; the first is the one
  // to chase, the cap keeps a systemic failure from flooding CI logs.
  std::size_t printed = 0;
  for (const certify::FuzzViolation& violation : report.violations) {
    if (printed++ == 8) {
      std::printf("certify: ... %zu more violations suppressed\n",
                  report.violations.size() - 8);
      break;
    }
    std::printf("%s\n", certify::fuzz_repro(violation, options).c_str());
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("certify_runner",
                "property-based conformance suite (chains, kernels, wire "
                "protocol)");
  cli.flag("suite", "all | chains | protocol", "all")
      .flag("seed", "master seed; every failure line echoes it", "1")
      .flag("instances", "random instances per chain model", "8")
      .flag("trials", "samples per law-agreement check", "20000")
      .flag("steps", "steps per scalar-vs-batched identity run", "512")
      .flag("alpha", "per-check significance level", "0.000001")
      .flag("time-budget", "wall-clock cap for the chains suite (0 = none)",
            "0")
      .flag("only", "comma-separated model names (chains suite)", "")
      .flag("list", "list registered models and exit", "false")
      .flag("frames", "fuzz frames (protocol suite)", "10000")
      .flag("host", "server host (protocol suite)", "127.0.0.1")
      .flag("port", "server port; 0 = in-process loopback", "0")
      .flag("reply-timeout", "server-mode hang deadline per batch", "10s");
  cli.parse(argc, argv);

  if (cli.boolean("list")) {
    for (const certify::ChainModel& model :
         certify::builtin_registry().models()) {
      const std::string invariant =
          model.invariant_run ? "invariant:" + model.invariant_name : "";
      std::printf("%-24s %-12s %s%s%s%s\n", model.name.c_str(),
                  model.family.c_str(), model.exact_step ? "law " : "",
                  model.coupled_step ? "coupling " : "",
                  model.has_batched ? "batched " : "", invariant.c_str());
    }
    return 0;
  }

  const std::string suite = cli.str("suite");
  int status = 0;
  if (suite == "all" || suite == "chains") {
    status |= run_chains(cli);
  }
  if (suite == "all" || suite == "protocol") {
    status |= run_protocol(cli);
  }
  if (suite != "all" && suite != "chains" && suite != "protocol") {
    std::fprintf(stderr, "certify_runner: unknown --suite=%s\n",
                 suite.c_str());
    return 2;
  }
  return status;
}
