// Tests for the ops telemetry plane (docs/OBSERVABILITY.md, "Live
// telemetry"): rolling-window histograms/counters, Prometheus text
// exposition, the recover.access/1 log format and its drop-oldest
// queue, and the AdminServer's HTTP endpoints over loopback.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json_reader.hpp"
#include "src/obs/metrics.hpp"
#include "src/ops/access_log.hpp"
#include "src/ops/admin.hpp"
#include "src/ops/prometheus.hpp"
#include "src/ops/window.hpp"

namespace {

using namespace recover;

class MetricsGuard {
 public:
  MetricsGuard() : was_(obs::metrics_enabled()) {}
  ~MetricsGuard() { obs::set_metrics_enabled(was_); }

 private:
  bool was_;
};

// ---- WindowedHistogram / WindowedCounter ------------------------------

TEST(WindowedHistogram, WindowSeesOnlyRecentTicks) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram source("ops_test.window.hist");
  ops::WindowedHistogram window(source, /*slots=*/2);

  source.record(100);
  source.record(100);
  window.tick();  // slot A: 2 samples
  source.record(100);
  window.tick();  // slot B: 1 sample
  EXPECT_EQ(window.window().merged.count, 3u);

  // Two more ticks with no traffic evict both loaded slots.
  window.tick();
  window.tick();
  EXPECT_EQ(window.window().merged.count, 0u);
}

TEST(WindowedHistogram, LiveTailIsIncludedBeforeTick) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram source("ops_test.window.live");
  ops::WindowedHistogram window(source, /*slots=*/4);
  source.record(42);
  // No tick yet: the un-sealed interval still counts.
  EXPECT_EQ(window.window().merged.count, 1u);
}

TEST(WindowedHistogram, PreexistingTrafficIsExcluded) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram source("ops_test.window.preexisting");
  source.record(7);
  source.record(7);
  ops::WindowedHistogram window(source, /*slots=*/4);
  // Construction snapshots the cumulative baseline: old traffic is not
  // part of any window.
  EXPECT_EQ(window.window().merged.count, 0u);
  source.record(7);
  EXPECT_EQ(window.window().merged.count, 1u);
}

TEST(WindowedHistogram, QuantilesComeFromWindowedMassOnly) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram source("ops_test.window.quantiles");
  ops::WindowedHistogram window(source, /*slots=*/1);
  for (int i = 0; i < 100; ++i) source.record(1'000'000);  // old regime
  window.tick();
  window.tick();  // old slot evicted (slots=1 keeps only the last)
  for (int i = 0; i < 10; ++i) source.record(10);  // new regime
  const auto merged = window.window().merged;
  EXPECT_EQ(merged.count, 10u);
  EXPECT_LT(merged.quantile(0.99), 100.0);  // sees only the new regime
}

TEST(WindowedCounter, DeltaAndRateOverWindow) {
  std::atomic<std::uint64_t> events{0};
  ops::WindowedCounter window(
      [&events] { return events.load(std::memory_order_relaxed); },
      /*slots=*/2);
  events += 10;
  window.tick();
  events += 5;
  const auto w = window.window();
  EXPECT_EQ(w.delta, 15u);
  EXPECT_GE(w.span_seconds, 0.0);
  events += 1;
  window.tick();
  window.tick();
  window.tick();  // the +10 and +5 slots have been evicted
  EXPECT_EQ(window.window().delta, 0u);
}

TEST(WindowedCounter, RateIsZeroOnDegenerateSpan) {
  ops::WindowedCounter::Window w;
  w.delta = 100;
  w.span_seconds = 0.0;
  EXPECT_DOUBLE_EQ(w.rate_per_sec(), 0.0);
}

TEST(WindowedHistogram, TickAndWindowRaceWritersCleanly) {
  // TSAN companion to Registry.SnapshotRacesShardWritersCleanly: the
  // ring mutex plus saturating deltas must hold up against concurrent
  // record()/tick()/window().
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram source("ops_test.window.race");
  ops::WindowedHistogram window(source, /*slots=*/3);
  std::atomic<bool> stop{false};
  std::thread writer([&source, &stop] {
    std::uint64_t v = 0;
    while (!stop.load(std::memory_order_acquire)) source.record(v++ & 0xFFu);
  });
  std::thread ticker([&window, &stop] {
    while (!stop.load(std::memory_order_acquire)) window.tick();
  });
  for (int i = 0; i < 2000; ++i) {
    const auto w = window.window();
    EXPECT_LE(w.merged.count, source.snapshot().count + 1'000'000u);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  ticker.join();
}

// ---- Prometheus exposition --------------------------------------------

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(ops::prometheus_name("serve.request_ns"), "serve_request_ns");
  EXPECT_EQ(ops::prometheus_name("a-b.c d"), "a_b_c_d");
  EXPECT_EQ(ops::prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(ops::prometheus_name(""), "_");
  EXPECT_EQ(ops::prometheus_name("ok_name:sub"), "ok_name:sub");
}

TEST(Prometheus, RendersCountersGaugesHistograms) {
  MetricsGuard guard;
  obs::set_metrics_enabled(true);
  obs::Registry::Snapshot snap;
  snap.counters.emplace_back("serve.requests", 42);
  snap.gauges.emplace_back("serve.queue_depth", 3.5);
  obs::Histogram::Snapshot h;
  h.count = 3;
  h.sum = 6;
  h.buckets[1] = 2;  // two samples of value 1
  h.buckets[3] = 1;  // one sample in 4..7
  snap.histograms.emplace_back("serve.request_ns", h);

  std::string out;
  ops::render_prometheus(snap, out);
  EXPECT_NE(out.find("# TYPE serve_requests counter\n"), std::string::npos);
  EXPECT_NE(out.find("serve_requests 42\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE serve_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("serve_queue_depth 3.5\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE serve_request_ns histogram\n"),
            std::string::npos);
  // Cumulative buckets with inclusive log₂ upper bounds, then +Inf.
  EXPECT_NE(out.find("serve_request_ns_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("serve_request_ns_bucket{le=\"7\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("serve_request_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("serve_request_ns_sum 6\n"), std::string::npos);
  EXPECT_NE(out.find("serve_request_ns_count 3\n"), std::string::npos);
}

TEST(Prometheus, AppendSampleFormatsDoublesAndLabels) {
  std::string out;
  ops::append_sample(out, "x", 1.5);
  ops::append_sample(out, "y", "quantile", "0.99", 250.0);
  EXPECT_EQ(out, "x 1.5\ny{quantile=\"0.99\"} 250\n");
}

// ---- Access log -------------------------------------------------------

TEST(AccessLog, FormatsSchemaLine) {
  ops::AccessEntry entry;
  entry.req_id = "c3-7";
  entry.method = "run_cell";
  entry.cell = "m=16,d=2";
  entry.status = "ok";
  entry.deadline = "met";
  entry.queue_ns = 1200;
  entry.run_ns = 99000;
  const std::string line = ops::AccessLog::format_line(entry);
  EXPECT_EQ(line,
            "{\"schema\":\"recover.access/1\",\"req_id\":\"c3-7\","
            "\"method\":\"run_cell\",\"cell\":\"m=16,d=2\","
            "\"status\":\"ok\",\"deadline\":\"met\","
            "\"queue_ns\":1200,\"run_ns\":99000}");
  // And it parses back as JSON with the fields intact.
  obs::JsonValue doc;
  ASSERT_TRUE(obs::parse_json(line, doc));
  EXPECT_EQ(doc.find("schema")->text, "recover.access/1");
  EXPECT_EQ(doc.find("req_id")->text, "c3-7");
  EXPECT_EQ(doc.find("queue_ns")->number, 1200.0);
}

TEST(AccessLog, EscapesAndTruncatesHostileFields) {
  ops::AccessEntry entry;
  entry.req_id = "c1-1";
  entry.method = "run\"cell\n";  // embedded quote + newline
  const std::string big(2 * ops::AccessLog::kMaxFieldBytes, 'x');
  entry.cell = big;
  entry.status = "error";
  entry.deadline = "none";
  const std::string line = ops::AccessLog::format_line(entry);
  obs::JsonValue doc;
  ASSERT_TRUE(obs::parse_json(line, doc)) << line;
  EXPECT_EQ(doc.find("method")->text, "run\"cell\n");
  EXPECT_EQ(doc.find("cell")->text.size(), ops::AccessLog::kMaxFieldBytes);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line, always
}

TEST(AccessLog, WritesLinesAndCloseDrains) {
  const std::string path = ::testing::TempDir() + "/ops_test_access.jsonl";
  std::remove(path.c_str());
  ops::AccessLog log;
  ASSERT_TRUE(log.open(path));
  for (int i = 0; i < 100; ++i) {
    ops::AccessEntry entry;
    const std::string req_id = "c1-" + std::to_string(i);
    entry.req_id = req_id;
    entry.method = "ping";
    entry.status = "ok";
    entry.deadline = "none";
    log.log(entry);
  }
  log.close();
  EXPECT_EQ(log.written(), 100u);
  EXPECT_EQ(log.dropped(), 0u);

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parse_json(line, doc)) << line;
    EXPECT_EQ(doc.find("schema")->text, "recover.access/1");
    ++lines;
  }
  EXPECT_EQ(lines, 100);
  std::remove(path.c_str());
}

TEST(AccessLog, LogAfterCloseIsIgnored) {
  const std::string path = ::testing::TempDir() + "/ops_test_access2.jsonl";
  std::remove(path.c_str());
  ops::AccessLog log;
  ASSERT_TRUE(log.open(path));
  log.close();
  ops::AccessEntry entry;
  entry.req_id = "c1-1";
  entry.method = "ping";
  entry.status = "ok";
  entry.deadline = "none";
  log.log(entry);  // must not crash or reopen
  EXPECT_EQ(log.written(), 0u);
  std::remove(path.c_str());
}

// ---- AdminServer over loopback ----------------------------------------

/// Blocking HTTP/1.0 GET against 127.0.0.1:port; returns the full
/// response (status line + headers + body).
std::string http_get(int port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
      0)
      << std::strerror(errno);
  EXPECT_EQ(::send(fd, request_text.data(), request_text.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request_text.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

class AdminFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ops::AdminOptions options;
    options.port = 0;
    options.client_timeout_ms = 500;
    ready_.store(true);
    admin_ = std::make_unique<ops::AdminServer>(
        options, [] { return std::string("test_metric 1\n"); },
        [this] { return ready_.load(); });
    ASSERT_TRUE(admin_->start());
    ASSERT_GT(admin_->port(), 0);
  }

  std::atomic<bool> ready_{true};
  std::unique_ptr<ops::AdminServer> admin_;
};

TEST_F(AdminFixture, MetricsEndpointServesBody) {
  const std::string resp =
      http_get(admin_->port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << resp;
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(resp.find("\r\n\r\ntest_metric 1\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 14\r\n"), std::string::npos);
}

TEST_F(AdminFixture, HealthzAlwaysOk) {
  const std::string resp =
      http_get(admin_->port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
}

TEST_F(AdminFixture, ReadyzFollowsProbe) {
  EXPECT_EQ(http_get(admin_->port(), "GET /readyz HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 200 OK", 0),
            0u);
  ready_.store(false);
  const std::string resp =
      http_get(admin_->port(), "GET /readyz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.0 503 Service Unavailable", 0), 0u) << resp;
  EXPECT_NE(resp.find("not ready"), std::string::npos);
}

TEST_F(AdminFixture, QueryStringIsStripped) {
  const std::string resp = http_get(
      admin_->port(), "GET /healthz?probe=1 HTTP/1.0\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK", 0), 0u);
}

TEST_F(AdminFixture, UnknownPathIs404) {
  const std::string resp =
      http_get(admin_->port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.0 404 Not Found", 0), 0u);
}

TEST_F(AdminFixture, PostIs405) {
  const std::string resp = http_get(
      admin_->port(), "POST /metrics HTTP/1.0\r\n\r\nbody");
  EXPECT_EQ(resp.rfind("HTTP/1.0 405 Method Not Allowed", 0), 0u);
}

TEST_F(AdminFixture, MalformedStartLineIs400) {
  const std::string resp = http_get(admin_->port(), "nonsense\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.0 400 Bad Request", 0), 0u);
}

TEST_F(AdminFixture, OversizedRequestIs400) {
  std::string request = "GET /metrics HTTP/1.0\r\n";
  request += "X-Junk: " + std::string(16 * 1024, 'a') + "\r\n\r\n";
  const std::string resp = http_get(admin_->port(), request);
  EXPECT_EQ(resp.rfind("HTTP/1.0 400 Bad Request", 0), 0u) << resp;
}

TEST_F(AdminFixture, SlowTricklerIs408) {
  // Open a connection, send half a request, and stall past the client
  // timeout: the server must answer 408 and close rather than wedge.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(admin_->port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
      0);
  const char half[] = "GET /metr";
  ASSERT_EQ(::send(fd, half, sizeof half - 1, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof half - 1));
  std::string response;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.0 408 Request Timeout", 0), 0u)
      << response;
}

TEST_F(AdminFixture, CountsRequests) {
  const std::uint64_t before = admin_->requests_served();
  http_get(admin_->port(), "GET /healthz HTTP/1.0\r\n\r\n");
  http_get(admin_->port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(admin_->requests_served(), before + 2);
}

TEST(AdminServer, StopIsIdempotentAndRestartable) {
  ops::AdminOptions options;
  options.port = 0;
  auto metrics = [] { return std::string(); };
  auto ready = [] { return true; };
  ops::AdminServer a(options, metrics, ready);
  ASSERT_TRUE(a.start());
  const int port = a.port();
  EXPECT_GT(port, 0);
  a.stop();
  a.stop();  // idempotent
  // The port is released: a new server can bind it again.
  ops::AdminOptions reuse = options;
  reuse.port = port;
  ops::AdminServer b(reuse, metrics, ready);
  EXPECT_TRUE(b.start());
  EXPECT_EQ(b.port(), port);
  b.stop();
}

}  // namespace
