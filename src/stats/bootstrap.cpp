#include "src/stats/bootstrap.hpp"

#include <algorithm>

#include "src/rng/distributions.hpp"
#include "src/rng/engines.hpp"
#include "src/util/assert.hpp"

namespace recover::stats {
namespace {

double mean_of(const std::vector<double>& xs) {
  double sum = 0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace

BootstrapInterval bootstrap_interval(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    int resamples, double level, std::uint64_t seed) {
  RL_REQUIRE(!sample.empty());
  RL_REQUIRE(resamples >= 10);
  RL_REQUIRE(level > 0.0 && level < 1.0);
  BootstrapInterval out;
  out.point = statistic(sample);
  rng::Xoshiro256PlusPlus eng(seed);
  std::vector<double> stats(static_cast<std::size_t>(resamples));
  std::vector<double> resample(sample.size());
  for (int r = 0; r < resamples; ++r) {
    for (auto& x : resample) {
      x = sample[rng::uniform_below(eng, sample.size())];
    }
    stats[static_cast<std::size_t>(r)] = statistic(resample);
  }
  std::sort(stats.begin(), stats.end());
  const double tail = (1.0 - level) / 2.0;
  const auto lo_idx = static_cast<std::size_t>(
      tail * static_cast<double>(resamples - 1));
  const auto hi_idx = static_cast<std::size_t>(
      (1.0 - tail) * static_cast<double>(resamples - 1));
  out.lo = stats[lo_idx];
  out.hi = stats[hi_idx];
  return out;
}

BootstrapInterval bootstrap_mean(const std::vector<double>& sample,
                                 int resamples, double level,
                                 std::uint64_t seed) {
  return bootstrap_interval(sample, mean_of, resamples, level, seed);
}

BootstrapInterval bootstrap_mean_ratio(const std::vector<double>& a,
                                       const std::vector<double>& b,
                                       int resamples, double level,
                                       std::uint64_t seed) {
  RL_REQUIRE(a.size() == b.size());
  RL_REQUIRE(!a.empty());
  // Encode the pair as one sample of indices and resample indices.
  std::vector<double> indices(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    indices[i] = static_cast<double>(i);
  }
  auto ratio = [&](const std::vector<double>& idx) {
    double sa = 0, sb = 0;
    for (const double di : idx) {
      const auto i = static_cast<std::size_t>(di);
      sa += a[i];
      sb += b[i];
    }
    RL_REQUIRE(sb != 0);
    return sa / sb;
  };
  return bootstrap_interval(indices, ratio, resamples, level, seed);
}

}  // namespace recover::stats
