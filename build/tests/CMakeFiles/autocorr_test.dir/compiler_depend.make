# Empty compiler generated dependencies file for autocorr_test.
# This may be replaced when dependencies are built.
