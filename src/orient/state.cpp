#include "src/orient/state.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

namespace recover::orient {

DiffState::DiffState(std::size_t n) : diffs_(n, 0) { RL_REQUIRE(n >= 2); }

DiffState DiffState::from_diffs(std::vector<std::int64_t> diffs) {
  RL_REQUIRE(diffs.size() >= 2);
  const auto sum =
      std::accumulate(diffs.begin(), diffs.end(), std::int64_t{0});
  RL_REQUIRE(sum == 0);
  std::sort(diffs.begin(), diffs.end(), std::greater<>());
  DiffState s(diffs.size());
  s.diffs_ = std::move(diffs);
  return s;
}

DiffState DiffState::spread(std::size_t n, std::int64_t k) {
  RL_REQUIRE(k >= 0);
  std::vector<std::int64_t> diffs(n, 0);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < half; ++i) {
    diffs[i] = k;
    diffs[n - 1 - i] = -k;
  }
  return from_diffs(std::move(diffs));
}

DiffState DiffState::staircase(std::size_t n, std::int64_t k) {
  RL_REQUIRE(k >= 0);
  std::vector<std::int64_t> diffs(n, 0);
  // Symmetric ramp: +k, +k−1, …, mirrored at the bottom; middle stays 0.
  std::int64_t level = k;
  for (std::size_t i = 0; i < n / 2 && level > 0; ++i, --level) {
    diffs[i] = level;
    diffs[n - 1 - i] = -level;
  }
  return from_diffs(std::move(diffs));
}

std::size_t DiffState::run_head(std::size_t i) const {
  const auto it = std::lower_bound(diffs_.begin(), diffs_.end(), diffs_[i],
                                   std::greater<>());
  return static_cast<std::size_t>(it - diffs_.begin());
}

std::size_t DiffState::run_tail(std::size_t i) const {
  const auto it = std::upper_bound(diffs_.begin(), diffs_.end(), diffs_[i],
                                   std::greater<>());
  return static_cast<std::size_t>(it - diffs_.begin()) - 1;
}

void DiffState::apply_edge(std::size_t phi, std::size_t psi) {
  RL_REQUIRE(phi < psi);
  RL_REQUIRE(psi < diffs_.size());
  const std::int64_t a = diffs_[phi];  // larger (or equal) difference
  const std::int64_t c = diffs_[psi];  // smaller difference
  RL_DBG_ASSERT(a >= c);
  if (a == c + 1) {
    // The target drops to c and the source rises to a: the multiset of
    // differences is unchanged, so the normalized state is a fixed point
    // of this pick.
    return;
  }
  // Decrement the last element of the φ-run, increment the first element
  // of the ψ-run; both positions are computed before mutating (Fact 3.2
  // style), and the result stays sorted because a − 1 ≥ c + 1 or the two
  // positions lie in one run of length ≥ 2.
  const std::size_t dec_pos = run_tail(phi);
  const std::size_t inc_pos = run_head(psi);
  RL_DBG_ASSERT(dec_pos != inc_pos);
  --diffs_[dec_pos];
  ++diffs_[inc_pos];
}

std::int64_t DiffState::distance(const DiffState& other) const {
  RL_REQUIRE(vertices() == other.vertices());
  std::int64_t positive = 0;
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    const std::int64_t d = diffs_[i] - other.diffs_[i];
    if (d > 0) positive += d;
  }
  return positive;
}

bool DiffState::invariants_hold() const {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    if (i > 0 && diffs_[i] > diffs_[i - 1]) return false;
    sum += diffs_[i];
  }
  return sum == 0;
}

}  // namespace recover::orient
