#include "src/stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assert.hpp"

namespace recover::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  RL_REQUIRE(q > 0.0 && q < 1.0);
  positions_ = {1, 2, 3, 4, 5};
  desired_ = {1, 1 + 2 * q_, 1 + 4 * q_, 3 + 2 * q_, 5};
  increments_ = {0, q_ / 2, q_, (1 + q_) / 2, 1};
}

void P2Quantile::add(double x) {
  ++n_;
  if (n_ <= 5) {
    heights_[static_cast<std::size_t>(n_ - 1)] = x;
    if (n_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }

  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1 && above > 1) || (d <= -1 && below > 1)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Parabolic (P²) prediction.
      const double hi = heights_[i];
      const double parabolic =
          hi + sign / (positions_[i + 1] - positions_[i - 1]) *
                   ((below + sign) * (heights_[i + 1] - hi) / above +
                    (above - sign) * (hi - heights_[i - 1]) / below);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        // Linear fallback.
        const std::size_t j = sign > 0 ? i + 1 : i - 1;
        heights_[i] = hi + sign * (heights_[j] - hi) /
                               std::abs(positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  RL_REQUIRE(n_ > 0);
  if (n_ < 5) {
    // Exact small-sample quantile over the first observations.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(),
              sorted.begin() + static_cast<std::ptrdiff_t>(n_));
    const auto idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(n_ - 1),
                         std::floor(q_ * static_cast<double>(n_))));
    return sorted[idx];
  }
  return heights_[2];
}

}  // namespace recover::stats
