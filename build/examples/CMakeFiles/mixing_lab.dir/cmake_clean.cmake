file(REMOVE_RECURSE
  "CMakeFiles/mixing_lab.dir/mixing_lab.cpp.o"
  "CMakeFiles/mixing_lab.dir/mixing_lab.cpp.o.d"
  "mixing_lab"
  "mixing_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixing_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
