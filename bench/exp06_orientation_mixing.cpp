// Experiment E6 — Corollary 6.4 and Theorem 2: recovery time of the
// edge-orientation chain.
//
// Bounds: τ = O(n³(ln n + ln ε⁻¹)) (Corollary 6.4), improved to
// τ(1/4) = O(n² ln² n) (Theorem 2), with τ = Ω(n²).  This improves the
// O(n⁵)-ish bound of Ajtai et al. by roughly n³.  We measure coalescence
// of the shared-randomness grand coupling from (maximally spread,
// perfectly fair) starts over an n sweep and compare against all three
// laws; the fitted log-log slope should sit near 2 (n² up to polylog),
// far from 3.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/coalescence.hpp"
#include "src/core/path_coupling.hpp"
#include "src/obs/run_record.hpp"
#include "src/orient/chain.hpp"
#include "src/stats/regression.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp06_orientation_mixing",
                "E6/Theorem 2: orientation coalescence vs n^2 ln^2 n");
  cli.flag("sizes", "comma-separated vertex counts", "8,12,16,24,32,48,64");
  cli.flag("replicas", "replicas per point", "12");
  cli.flag("seed", "rng seed", "6");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"n", "T_mean", "T_ci95", "T_q95", "T/n^2",
                     "T/(n^2 ln^2 n)", "T/(n^3 ln n)", "T_staircase",
                     "cor64_bound(1/4)", "secs"});

  std::vector<double> xs, ys;
  for (const std::int64_t n : sizes) {
    util::Timer timer;
    const auto ns = static_cast<std::size_t>(n);
    core::CoalescenceOptions opts;
    opts.replicas = replicas;
    opts.seed = seed;
    const double nd = static_cast<double>(n);
    opts.max_steps = static_cast<std::int64_t>(
        500.0 * nd * nd * std::log(nd) * std::log(nd));
    opts.check_interval = std::max<std::int64_t>(1, n * n / 16);
    // Adversarial start: the full staircase is the worst start within
    // the reachable space (exp20); the spread state displaces even more
    // and upper-bounds it.  Both are measured; the table reports spread.
    const auto stats = core::measure_coalescence(
        [&](std::uint64_t) {
          return orient::GrandCouplingOrient(
              orient::DiffState::spread(ns, n / 2), orient::DiffState(ns));
        },
        opts);
    const auto stats_stair = core::measure_coalescence(
        [&](std::uint64_t) {
          return orient::GrandCouplingOrient(
              orient::DiffState::staircase(ns, n / 2),
              orient::DiffState(ns));
        },
        opts);
    const double n2 = nd * nd;
    const double n2ln2 = n2 * std::log(nd) * std::log(nd);
    const double n3ln = n2 * nd * std::log(nd);
    table.row()
        .integer(n)
        .num(stats.steps.mean(), 1)
        .num(stats.steps.ci_halfwidth(), 1)
        .num(stats.q95, 1)
        .num(stats.steps.mean() / n2, 3)
        .num(stats.steps.mean() / n2ln2, 4)
        .num(stats.steps.mean() / n3ln, 5)
        .num(stats_stair.steps.mean(), 1)
        .num(core::corollary64_bound(ns, 0.25), 0)
        .num(timer.seconds(), 2);
    if (stats.censored == 0) {
      xs.push_back(nd);
      ys.push_back(stats.steps.mean());
    }
  }
  table.print(std::cout);
  run.add_table("coalescence_scaling", table);
  if (xs.size() >= 3) {
    const auto fit = stats::loglog_fit(xs, ys);
    std::printf(
        "\n# log-log slope of T vs n: %.3f (R^2 %.4f) - Theorem 2 predicts "
        "~2 (n^2 up to polylog), Corollary 6.4 would allow 3, the old "
        "Ajtai et al. analysis 5.\n",
        fit.slope, fit.r_squared);
    run.note("loglog_slope", fit.slope);
    run.note("loglog_r2", fit.r_squared);
  }
  return 0;
}
