# Empty compiler generated dependencies file for mixing_lab.
# This may be replaced when dependencies are built.
