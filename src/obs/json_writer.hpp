// Minimal streaming JSON writer used by the run recorder.
//
// Emits a stable, diffable encoding: 2-space indentation, keys in the
// order the caller provides them, and a fixed numeric policy — integers
// verbatim, doubles via shortest round-trip (std::to_chars), and
// non-finite doubles as null (JSON has no NaN/Inf; null keeps the cell
// count intact so downstream column alignment survives).
//
// String escaping: `"` and `\` are escaped, control characters < 0x20 use
// the \n \t \r \b \f shortcuts or \u00XX, and all other bytes pass
// through untouched — valid UTF-8 input stays valid UTF-8 output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace recover::obs {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string json_escape(std::string_view s);

/// Formats a double under the writer's numeric policy ("null" when
/// non-finite, shortest round-trip decimal otherwise).
std::string json_number(double value);

class JsonWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer.
  explicit JsonWriter(std::ostream& os);

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value or
  /// container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// True once every opened container has been closed.
  [[nodiscard]] bool complete() const { return stack_.empty() && wrote_; }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  void before_value();
  void newline_indent();

  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
  bool wrote_ = false;
};

}  // namespace recover::obs
