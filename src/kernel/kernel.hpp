// Kernel dispatch: routes multi-step bursts through the batched
// choice-block kernels (choice_block.hpp) or the scalar one-step-at-a-
// time path, under a process-wide runtime switch.
//
//   RECOVER_KERNEL=batched   (default) block-drawn randomness, SoA
//                            precomputed selections, tight apply loop
//   RECOVER_KERNEL=scalar    the plain `for (...) obj.step(eng)` loop
//
// Both paths consume the engine word-for-word identically, so every
// experiment, sweep cell and serve reply is byte-identical across modes
// (enforced by tests/kernel_test.cpp and the ci.sh identity gate).  The
// switch exists for benchmarking the kernels against their baseline and
// as an escape hatch, not because results differ.
#pragma once

#include <cstdint>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace recover::kernel {

enum class Mode { kScalar, kBatched };

/// Active kernel mode.  The first call reads RECOVER_KERNEL ("scalar" |
/// "batched"; unset or empty means batched) and caches it; any other
/// value aborts with a message — a typo silently falling back would make
/// a perf comparison lie.
Mode mode() noexcept;

/// Overrides the cached mode (tests/benchmarks); returns the previous one.
Mode set_mode(Mode m) noexcept;

[[nodiscard]] const char* mode_name(Mode m) noexcept;
/// Name of the active mode ("scalar" | "batched"), for run records.
[[nodiscard]] const char* mode_name() noexcept;

/// Bursts below this many steps stay scalar even in batched mode: a
/// coupling polled every step or two near coalescence would pay block
/// setup for nothing.
inline constexpr std::int64_t kMinBatchSteps = 8;

namespace detail {
obs::Counter& steps_batched() noexcept;
obs::Counter& steps_scalar() noexcept;
obs::Histogram& step_block_ns() noexcept;
}  // namespace detail

/// Advances `obj` (a chain or grand coupling) by `steps` steps.
/// Dispatches to obj.step_block(eng, steps) when the type provides one
/// and the batched mode is active; otherwise runs the scalar loop.
/// Results are byte-identical either way.
template <typename Obj, typename Engine>
void advance(Obj& obj, Engine& eng, std::int64_t steps) {
  if (steps <= 0) return;
  if constexpr (requires { obj.step_block(eng, steps); }) {
    if (steps >= kMinBatchSteps && mode() == Mode::kBatched) {
      obs::ScopedSpan span(detail::step_block_ns());
      obj.step_block(eng, steps);
      detail::steps_batched().add(static_cast<std::uint64_t>(steps));
      return;
    }
  }
  for (std::int64_t k = 0; k < steps; ++k) obj.step(eng);
  detail::steps_scalar().add(static_cast<std::uint64_t>(steps));
}

}  // namespace recover::kernel
