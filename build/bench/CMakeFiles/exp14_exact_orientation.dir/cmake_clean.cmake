file(REMOVE_RECURSE
  "CMakeFiles/exp14_exact_orientation.dir/exp14_exact_orientation.cpp.o"
  "CMakeFiles/exp14_exact_orientation.dir/exp14_exact_orientation.cpp.o.d"
  "exp14_exact_orientation"
  "exp14_exact_orientation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp14_exact_orientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
