// Law-agreement checks: the statistical core of the certification
// harness, also reused directly by the repo's exact-vs-sampled tests
// (tests/exact_chain_test.cpp, tests/exact_coupling_test.cpp).
//
// A LawCheck compares empirical counts against an exact pmf with a χ²
// goodness-of-fit test (buckets pooled to expected count ≥ 5, Cochran's
// rule) decided by stats::chi_square_pvalue, plus the TV distance as a
// human-readable effect size.  An outcome of exact probability zero
// ("impossible state") fails unconditionally — no amount of trials makes
// a prob-0 event statistically acceptable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/certify/model.hpp"
#include "src/stats/summary.hpp"

namespace recover::certify {

struct LawCheck {
  double chi2 = 0.0;
  int df = 0;           // after pooling; 0 = χ² skipped (degenerate law)
  double pvalue = 1.0;  // right tail; decides pass/fail
  double tv = 0.0;      // ½ Σ |empirical − exact| over the support
  std::int64_t trials = 0;
  bool impossible = false;      // a prob-0 outcome was observed
  std::string impossible_key;   // which one

  [[nodiscard]] bool pass(double alpha) const {
    return !impossible && pvalue >= alpha;
  }
  [[nodiscard]] std::string describe() const;
};

/// χ²/TV check of raw counts against exact probabilities over the same
/// (aligned) support.  The shared core of the two samplers below.
LawCheck law_check_from_counts(const std::vector<std::int64_t>& counts,
                               const std::vector<double>& probs);

/// Draws `trials` samples via `draw` and checks them against `expected`.
/// A drawn key outside the expected support marks the check impossible.
LawCheck check_sampled_law(const StepLaw& expected,
                           const std::function<std::string()>& draw,
                           std::int64_t trials);

/// Index-valued variant for laws over 0..probs.size()-1 (placement and
/// removal pmfs); a draw at a prob-0 index marks the check impossible.
LawCheck check_sampled_index_law(const std::vector<double>& probs,
                                 const std::function<std::size_t()>& draw,
                                 std::int64_t trials);

/// Monte-Carlo-mean vs exact-expectation agreement, the pattern of
/// tests/exact_coupling_test.cpp: pass iff
/// |mean − expected| ≤ sigmas · stderror + slack.
struct MeanCheck {
  double mean = 0.0;
  double expected = 0.0;
  double stderror = 0.0;
  double tolerance = 0.0;
  std::int64_t samples = 0;

  [[nodiscard]] bool pass() const;
  [[nodiscard]] std::string describe() const;
};

MeanCheck check_mc_mean(const stats::Summary& summary, double expected,
                        double sigmas = 5.0, double slack = 1e-6);

}  // namespace recover::certify
