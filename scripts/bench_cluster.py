#!/usr/bin/env python3
"""Produce BENCH_cluster.json: the recover_cluster scaling record.

Boots recover_serve backends and a recover_cluster router per row,
drives serve_loadgen --cluster through the router with a Zipf key
distribution, and composes a recover.run/1 record
(run.binary == "bench_cluster") with one "scaling" table row per
topology:

    backends=1 cache=0      the single-backend baseline
    backends=3 cache=0      sharding only (no win on a one-core host)
    backends=3 cache=4096   sharding plus the deterministic result cache

Every row must finish with zero protocol errors.  The acceptance
thresholds (best multi-backend ok_rps >= 1.8x the baseline, cache hit
ratio >= 0.5) are asserted by scripts/check_bench_json.py --cluster,
not here: this script measures, the validator judges — so a committed
BENCH_cluster.json is re-judged by CI without re-running the bench.

The throughput win comes from the cache row: run_cell replies are a
pure function of (exp, params, seed), so a cache hit skips the backend
round-trip and the cell computation entirely.  On a multi-core host the
cache-off row scales too; on the one-core CI host it does not, which is
why the gate compares the *best* multi-backend row.
"""

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time

LISTEN_RE = re.compile(r"listening on (\d+\.\d+\.\d+\.\d+):(\d+)")
ADMIN_RE = re.compile(r"admin on (\d+\.\d+\.\d+\.\d+):(\d+)")


class Daemon:
    """One spawned server process whose stdout is tailed for port lines."""

    def __init__(self, argv):
        self.log = tempfile.NamedTemporaryFile(
            mode="w+", prefix="bench_cluster_", suffix=".log", delete=False
        )
        self.proc = subprocess.Popen(
            argv, stdout=self.log, stderr=subprocess.STDOUT
        )

    def wait_line(self, pattern, timeout_s=10.0):
        """Polls the log until `pattern` matches; returns the match."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with open(self.log.name, encoding="utf-8") as f:
                text = f.read()
            match = pattern.search(text)
            if match:
                return match
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon exited with {self.proc.returncode}:\n{text}"
                )
            time.sleep(0.05)
        raise RuntimeError(f"timed out waiting for {pattern.pattern!r}")

    def stop(self, timeout_s=15.0):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        os.unlink(self.log.name)
        return self.proc.returncode


def wait_ready(host, port, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return
        except OSError:
            time.sleep(0.05)
    raise RuntimeError(f"{host}:{port} never accepted a connection")


def table_row(doc, name):
    for table in doc.get("tables", []):
        if table.get("name") == name and table.get("rows"):
            return dict(zip(table["columns"], table["rows"][0]))
    return None


def run_row(args, backend_ports, cache_entries, label):
    """Boots a router over `backend_ports`, drives one load run through
    it, and returns the scaling-table row."""
    backends = ",".join(f"127.0.0.1:{p}" for p in backend_ports)
    router = Daemon([
        os.path.join(args.build_dir, "bench", "recover_cluster"),
        "--port", "0", "--backends", backends,
        "--workers", str(args.router_workers),
        "--cache-entries", str(cache_entries),
        "--admin-port", "0", "--drain-grace", "1s",
    ])
    try:
        port = int(router.wait_line(LISTEN_RE).group(2))
        admin = int(router.wait_line(ADMIN_RE).group(2))
        wait_ready("127.0.0.1", port)
        record_path = tempfile.mktemp(prefix="bench_cluster_", suffix=".json")
        loadgen = subprocess.run(
            [
                os.path.join(args.build_dir, "bench", "serve_loadgen"),
                "--port", str(port), "--qps", str(args.qps),
                "--conns", str(args.conns), "--duration", args.duration,
                "--mix", "run_cell=1",
                "--key-dist", args.key_dist,
                "--key-space", str(args.key_space),
                "--cluster", "--admin-port", str(admin),
                "--scrape-interval", "500ms",
                "--json-out", record_path,
            ],
            capture_output=True, text=True,
        )
        if loadgen.returncode != 0:
            raise RuntimeError(
                f"{label}: loadgen failed ({loadgen.returncode}):\n"
                f"{loadgen.stdout}\n{loadgen.stderr}"
            )
        with open(record_path, encoding="utf-8") as f:
            record = json.load(f)
        os.unlink(record_path)
    finally:
        rc = router.stop()
    if rc != 0:
        raise RuntimeError(f"{label}: router exited with {rc}")

    summary = table_row(record, "summary")
    cluster = table_row(record, "cluster")
    if summary is None or cluster is None:
        raise RuntimeError(f"{label}: loadgen record is missing the "
                           f"summary or cluster table")
    duration_s = record["notes"]["duration_ms"] / 1000.0
    row = {
        "backends": len(backend_ports),
        "cache_entries": cache_entries,
        "key_dist": args.key_dist,
        "sent": summary["sent"],
        "ok": summary["ok"],
        "shed": summary["shed"],
        "ok_rps": round(summary["ok"] / duration_s, 1),
        "hit_ratio": cluster["hit_ratio"],
        "p50_us": summary["p50_us"],
        "p99_us": summary["p99_us"],
        "failovers": cluster["failovers"],
        "protocol_errors": summary["protocol_errors"],
    }
    print(f"bench_cluster: {label}: ok_rps={row['ok_rps']:.0f} "
          f"hit_ratio={row['hit_ratio']:.4f} shed={row['shed']}")
    return row, record["run"].get("git", "unknown")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build tree holding the binaries")
    parser.add_argument("--out", default="BENCH_cluster.json",
                        help="output recover.run/1 record")
    parser.add_argument("--qps", type=int, default=60000,
                        help="offered load per row (must saturate the "
                             "single-backend baseline)")
    parser.add_argument("--duration", default="3s",
                        help="load duration per row")
    parser.add_argument("--conns", type=int, default=4)
    parser.add_argument("--key-dist", default="zipf:1.1",
                        help="loadgen key distribution for every row")
    parser.add_argument("--key-space", type=int, default=64)
    parser.add_argument("--backend-workers", type=int, default=2)
    parser.add_argument("--router-workers", type=int, default=2)
    parser.add_argument("--cache-entries", type=int, default=4096,
                        help="cache size for the cached row")
    args = parser.parse_args()

    started_unix_ms = int(time.time() * 1000)
    t0 = time.monotonic()
    serve_bin = os.path.join(args.build_dir, "bench", "recover_serve")
    backends = [
        Daemon([serve_bin, "--port", "0",
                "--workers", str(args.backend_workers)])
        for _ in range(3)
    ]
    try:
        ports = [int(b.wait_line(LISTEN_RE).group(2)) for b in backends]
        for port in ports:
            wait_ready("127.0.0.1", port)
        rows = []
        git = "unknown"
        for backend_ports, cache, label in (
            (ports[:1], 0, "1 backend, cache off"),
            (ports, 0, "3 backends, cache off"),
            (ports, args.cache_entries, "3 backends, cache on"),
        ):
            row, git = run_row(args, backend_ports, cache, label)
            rows.append(row)
    finally:
        for backend in backends:
            backend.stop()

    columns = list(rows[0].keys())
    baseline = rows[0]["ok_rps"]
    best = max(r["ok_rps"] for r in rows if r["backends"] > 1)
    record = {
        "schema": "recover.run/1",
        "run": {
            "binary": "bench_cluster",
            "description": "router scaling: consistent hashing + "
                           "deterministic result cache over recover_serve "
                           "backends",
            "started_unix_ms": started_unix_ms,
            "wall_seconds": round(time.monotonic() - t0, 3),
            "hostname": socket.gethostname(),
            "git": git,
            "flags": {
                "qps": str(args.qps),
                "duration": args.duration,
                "conns": str(args.conns),
                "key_dist": args.key_dist,
                "key_space": str(args.key_space),
                "cache_entries": str(args.cache_entries),
            },
        },
        "tables": [{
            "name": "scaling",
            "columns": columns,
            "rows": [[r[c] for c in columns] for r in rows],
        }],
        "notes": {
            "speedup_best_vs_baseline": round(best / baseline, 3),
            "host_cores": os.cpu_count() or 0,
        },
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=1)
        f.write("\n")
    print(f"bench_cluster: wrote {args.out} "
          f"(speedup {best / baseline:.2f}x, "
          f"{record['run']['wall_seconds']:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
