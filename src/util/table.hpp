// Column-aligned ASCII table printing for bench/example output.
//
// Every experiment binary prints its results through Table so the rows the
// paper's theorems predict can be compared at a glance.  Cells are stored
// as strings; numeric helpers format with a fixed precision.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace recover::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add()/num() calls fill it left-to-right.
  Table& row();

  Table& add(std::string cell);
  Table& num(double value, int precision = 3);
  Table& integer(std::int64_t value);

  /// Renders with every column padded to its widest cell.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated rendering for machine consumption.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t r, std::size_t c) const;
  [[nodiscard]] const std::string& header(std::size_t c) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like printf("%.*f") without iostream state leakage.
std::string format_double(double value, int precision);

}  // namespace recover::util
