// Tests for the core path-coupling framework pieces.
#include <gtest/gtest.h>

#include <cmath>

#include "src/balls/coupling_a.hpp"
#include "src/balls/random_states.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/core/contraction.hpp"
#include "src/core/path_coupling.hpp"
#include "src/core/recovery.hpp"
#include "src/rng/engines.hpp"

namespace recover::core {
namespace {

TEST(PathCouplingBounds, ContractiveCaseFormula) {
  // β = 1 − 1/m, D = m, ε: bound = ceil(ln(m/ε) · m).
  const double b = path_coupling_bound_contractive(1.0 - 1.0 / 64, 64, 0.25);
  EXPECT_DOUBLE_EQ(b, std::ceil(std::log(64 / 0.25) * 64));
}

TEST(PathCouplingBounds, MartingaleCaseFormula) {
  const double b = path_coupling_bound_martingale(1.0 / 3.0, 10, 0.25);
  EXPECT_DOUBLE_EQ(b, std::ceil(std::exp(1.0) * 100 * 3) *
                          std::ceil(std::log(4.0)));
}

TEST(PathCouplingBounds, Theorem1Instantiation) {
  EXPECT_DOUBLE_EQ(theorem1_bound(100, 0.25),
                   std::ceil(100 * std::log(400.0)));
  // Must equal the generic contractive bound with β = 1 − 1/m, D = m.
  EXPECT_DOUBLE_EQ(
      theorem1_bound(64, 0.125),
      path_coupling_bound_contractive(1.0 - 1.0 / 64, 64, 0.125));
}

TEST(PathCouplingBounds, MonotoneInParameters) {
  EXPECT_LT(path_coupling_bound_contractive(0.5, 16, 0.25),
            path_coupling_bound_contractive(0.9, 16, 0.25));
  EXPECT_LT(path_coupling_bound_contractive(0.5, 16, 0.25),
            path_coupling_bound_contractive(0.5, 1000, 0.25));
  EXPECT_LE(path_coupling_bound_martingale(0.5, 16, 0.25),
            path_coupling_bound_martingale(0.1, 16, 0.25));
  EXPECT_GT(corollary64_bound(32, 0.25), corollary64_bound(8, 0.25));
}

TEST(FirstSustainedEntry, FindsWindowedEntry) {
  const std::vector<double> series = {9, 8, 3, 9, 3, 3, 3, 2, 9};
  // Band [0,4], window 3: samples 4,5,6 qualify -> index 4.
  EXPECT_EQ(first_sustained_entry(series, 0, 4, 3), 4);
  // Window 1: first in-band sample is index 2.
  EXPECT_EQ(first_sustained_entry(series, 0, 4, 1), 2);
  // Window 5: never sustained.
  EXPECT_EQ(first_sustained_entry(series, 0, 4, 5), -1);
}

TEST(FirstSustainedEntry, EmptySeriesNeverRecovers) {
  EXPECT_EQ(first_sustained_entry({}, 0, 1, 1), -1);
}

TEST(RecordTrajectory, SamplesAtRequestedInterval) {
  balls::ScenarioAChain<balls::AbkuRule> chain(
      balls::LoadVector::all_in_one(8, 8), balls::AbkuRule(2));
  TrajectoryOptions opts;
  opts.max_steps = 100;
  opts.sample_interval = 10;
  const auto series = record_trajectory(
      chain,
      [](const auto& c) { return static_cast<double>(c.state().max_load()); },
      opts, 5);
  EXPECT_EQ(series.size(), 10u);
  // Max load starts at 8 and can only decrease by at most 1 per step.
  EXPECT_GE(series.front(), 1.0);
}

TEST(MeasureRecovery, CrashStateRecoversWithinTheoremBound) {
  const std::size_t n = 64;
  const auto m = static_cast<std::int64_t>(n);
  TrajectoryOptions opts;
  opts.max_steps =
      4 * static_cast<std::int64_t>(theorem1_bound(m, 0.25));
  opts.sample_interval = 4;
  const auto stats = measure_recovery(
      [&](int) {
        return balls::ScenarioAChain<balls::AbkuRule>(
            balls::LoadVector::all_in_one(n, m), balls::AbkuRule(2));
      },
      [](const auto& c) { return static_cast<double>(c.state().max_load()); },
      0.0, 5.0, 4, 8, opts, 17);
  EXPECT_EQ(stats.censored, 0);
  EXPECT_GT(stats.hitting_steps.mean(), 0.0);
  EXPECT_LT(stats.hitting_steps.mean(), static_cast<double>(opts.max_steps));
}

TEST(EstimateContraction, MatchesCorollary42OnScenarioA) {
  const std::size_t n = 8;
  const std::int64_t m = 16;
  const balls::AbkuRule rule(2);
  const auto estimate = estimate_contraction(
      [&](int p, rng::Xoshiro256PlusPlus& eng) {
        return balls::random_gamma_pair(n, m, eng, 1 + p % 3);
      },
      [&](std::pair<balls::LoadVector, balls::LoadVector>& pair,
          rng::Xoshiro256PlusPlus& eng) {
        return balls::coupled_step_a(pair.first, pair.second, rule, eng);
      },
      8, 3000, 21);
  ASSERT_EQ(estimate.pairs.size(), 8u);
  // β̂ ≤ 1 − 1/m up to MC slack; and the distance must change sometimes.
  EXPECT_LE(estimate.beta_hat, 1.0 - 1.0 / static_cast<double>(m) + 0.02);
  EXPECT_GT(estimate.alpha_hat, 0.0);
}

}  // namespace
}  // namespace recover::core
