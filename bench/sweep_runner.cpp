// sweep_runner — one driver binary for grid sweeps over every
// registered experiment cell (docs/SWEEPS.md).
//
//   sweep_runner --exp exp01 --grid "m=64..4096:x2;d=1..3;replicas=8"
//       --checkpoint exp01.ckpt.jsonl --shard 0/4 --threads 8 --progress
//
// Cells execute under the work-stealing scheduler with per-cell RNG
// substreams, so the aggregate table is byte-identical for any thread
// count or shard split; completed cells are appended (fsync'd) to the
// checkpoint and skipped on restart.  The summary line
// `# sweep: ... run=N ...` is machine-checked by scripts/ci.sh: a second
// run over a finished checkpoint must report run=0.
#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>

#include "src/obs/run_record.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/sweep/registry.hpp"
#include "src/sweep/scheduler.hpp"
#include "src/util/cli.hpp"

namespace {

bool parse_shard(const std::string& text, int& index, int& count) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= text.size()) {
    return false;
  }
  try {
    index = std::stoi(text.substr(0, slash));
    count = std::stoi(text.substr(slash + 1));
  } catch (const std::exception&) {
    return false;
  }
  return count >= 1 && index >= 0 && index < count;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("sweep_runner",
                "checkpointable work-stealing grid sweeps over registered "
                "experiment cells");
  cli.flag("exp", "registered experiment to sweep (see --list)", "exp01");
  cli.flag("grid",
           "grid spec, axes ';'-separated (docs/SWEEPS.md); empty = the "
           "experiment's default grid",
           "");
  cli.flag("seed", "master seed; cell i uses rng::substream(seed, i)", "1");
  cli.flag("checkpoint",
           "JSONL checkpoint path: completed cells are appended (fsync'd) "
           "and skipped on restart",
           "");
  cli.flag("shard", "i/k: run only cells with index % k == i", "0/1");
  cli.flag("threads", "scheduler worker threads (0 = the global pool)", "0");
  cli.flag("csv", "emit CSV instead of a table", "false");
  cli.flag("list", "list registered experiments and exit", "false");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  auto& registry = sweep::Registry::global();
  if (cli.boolean("list")) {
    for (const auto& name : registry.names()) {
      const auto* exp = registry.find(name);
      std::printf("%-8s %s\n         default grid: %s\n", name.c_str(),
                  exp->description.c_str(), exp->default_grid.c_str());
    }
    return 0;
  }

  const std::string exp_name = cli.str("exp");
  const auto* exp = registry.find(exp_name);
  if (exp == nullptr) {
    std::fprintf(stderr, "sweep_runner: unknown experiment '%s' (--list)\n",
                 exp_name.c_str());
    return 2;
  }

  sweep::SweepOptions options;
  options.exp = exp_name;
  options.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  options.checkpoint_path = cli.str("checkpoint");
  if (!parse_shard(cli.str("shard"), options.shard_index,
                   options.shard_count)) {
    std::fprintf(stderr, "sweep_runner: bad --shard '%s' (want i/k, i < k)\n",
                 cli.str("shard").c_str());
    return 2;
  }

  std::unique_ptr<parallel::ThreadPool> local_pool;
  const auto threads = cli.integer("threads");
  if (threads > 0) {
    local_pool = std::make_unique<parallel::ThreadPool>(
        static_cast<unsigned>(threads));
    options.pool = local_pool.get();
  }

  sweep::SweepReport report;
  try {
    const std::string grid_text =
        cli.str("grid").empty() ? exp->default_grid : cli.str("grid");
    const auto grid = sweep::GridSpec::parse(grid_text);
    run.note("grid", grid.to_string());
    report = sweep::run_sweep(grid, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_runner: %s\n", e.what());
    return 2;
  }

  if (cli.boolean("csv")) {
    report.table.print_csv(std::cout);
  } else {
    report.table.print(std::cout);
  }
  std::printf(
      "# sweep: exp=%s cells=%llu shard=%d/%d mine=%llu hits=%llu run=%llu "
      "torn_lines=%zu\n",
      exp_name.c_str(), static_cast<unsigned long long>(report.cells_total),
      options.shard_index, options.shard_count,
      static_cast<unsigned long long>(report.cells_in_shard),
      static_cast<unsigned long long>(report.checkpoint_hits),
      static_cast<unsigned long long>(report.cells_run),
      report.checkpoint_lines_skipped);

  run.add_table("sweep", report.table);
  run.note("cells_total", static_cast<double>(report.cells_total));
  run.note("cells_in_shard", static_cast<double>(report.cells_in_shard));
  run.note("checkpoint_hits", static_cast<double>(report.checkpoint_hits));
  run.note("cells_run", static_cast<double>(report.cells_run));
  return 0;
}
