// Exact mixing-time computation for small finite chains.
//
// The paper defines (§3)
//   τ(ε) = min{ T : ∀ t ≥ T, max_x ‖L(M_t | M_0 = x) − π‖ ≤ ε }.
// For chains whose state space fits in memory we compute this exactly:
// enumerate states, build the sparse row-stochastic transition matrix,
// obtain π by power iteration, and evolve one distribution per starting
// state, tracking the max TV distance.  Monotonicity of the worst-case TV
// distance in t makes the first hitting of ε the exact τ(ε).
//
// exp09 uses this to validate the coalescence estimator and the Path
// Coupling Lemma bounds: exact ≤ coalescence-quantile ≤ lemma bound.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace recover::core {

/// Sparse row-stochastic matrix: rows[i] = {(j, p_ij)} with Σ_j p_ij = 1.
class SparseChain {
 public:
  explicit SparseChain(std::size_t states) : rows_(states) {}

  [[nodiscard]] std::size_t states() const { return rows_.size(); }

  void add_transition(std::size_t from, std::size_t to, double p);

  /// Merges duplicate (from, to) entries and checks row sums ≈ 1.
  void finalize();

  [[nodiscard]] const std::vector<std::pair<std::uint32_t, double>>& row(
      std::size_t i) const {
    return rows_[i];
  }

  /// dist ← dist · P (one step of the distribution evolution).
  void evolve(std::vector<double>& dist) const;

 private:
  std::vector<std::vector<std::pair<std::uint32_t, double>>> rows_;
  bool finalized_ = false;
};

/// Stationary distribution by power iteration from uniform; iterates
/// until successive TV distance < tol (requires an ergodic chain).
std::vector<double> stationary_distribution(const SparseChain& chain,
                                            double tol = 1e-12,
                                            std::int64_t max_iters = 2'000'000);

struct ExactMixingResult {
  std::int64_t mixing_time = -1;       // first t with worst-case TV ≤ eps
  std::vector<double> worst_tv_by_t;   // worst_tv_by_t[t-1] = max_x TV at t
};

/// Exact τ(ε) by evolving a point mass from every start simultaneously.
/// Memory: states² doubles — callers keep the space small (≤ ~2000).
ExactMixingResult exact_mixing_time(const SparseChain& chain,
                                    const std::vector<double>& pi, double eps,
                                    std::int64_t max_t);

/// TV distance to π from EVERY start after exactly t steps — identifies
/// which starts are genuinely worst (the extremal-start heuristic the
/// coalescence experiments rely on is validated against this).
std::vector<double> per_start_tv(const SparseChain& chain,
                                 const std::vector<double>& pi,
                                 std::int64_t t);

}  // namespace recover::core
