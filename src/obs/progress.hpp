// Stderr heartbeat for long sweeps: replicas done, censored count, ETA.
//
// Estimators construct a Progress with the number of work units they are
// about to run and tick() it as units finish (from any thread).  When
// progress reporting is disabled — the default — construction and ticks
// are branch-only no-ops, so the estimators stay instrumented
// unconditionally and binaries opt in with --progress.
//
// Output goes to stderr so it never contaminates the stdout tables or
// the --json-out records, and is throttled to one line per second.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace recover::obs {

/// Global opt-in switch (mirrors the metrics switch; set by obs::Run
/// from the shared --progress flag).
bool progress_enabled() noexcept;
void set_progress_enabled(bool enabled) noexcept;

class Progress {
 public:
  /// `label` names the estimator ("coalescence", "recovery", …);
  /// `total` is the number of units (0 = unknown, ETA suppressed).
  Progress(std::string label, std::uint64_t total);

  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  /// Emits a final summary line if any heartbeat was printed.
  ~Progress();

  /// Marks `done_delta` units finished, `censored_delta` of which hit
  /// their step horizon without resolving.  Thread-safe.
  void tick(std::uint64_t done_delta = 1, std::uint64_t censored_delta = 0);

  /// Names the unit most recently completed (e.g. a sweep cell's
  /// "m=512,d=3"); shown in subsequent heartbeat lines so a stalled grid
  /// point is identifiable from the terminal.  Thread-safe; no-op when
  /// progress reporting is disabled.
  void set_detail(const std::string& detail);

 private:
  void print_line(double elapsed_s, bool final_line);

  std::string label_;
  std::uint64_t total_;
  bool enabled_;
  std::mutex detail_mutex_;
  std::string detail_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> censored_{0};
  std::atomic<std::int64_t> last_print_ms_{-1'000'000};
  std::atomic<bool> printed_{false};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace recover::obs
