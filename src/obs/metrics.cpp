#include "src/obs/metrics.hpp"

#include <map>
#include <memory>
#include <mutex>

namespace recover::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{false};

std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace detail

void set_metrics_enabled(bool enabled) noexcept {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// std::map keeps snapshots name-sorted; unique_ptr keeps metric addresses
// stable across rehash-free inserts.
struct Registry::Impl {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Impl* Registry::impl() {
  // Lazily allocated so a never-used registry costs one pointer.  The
  // first call always happens under Registry::global()'s magic-static
  // init or a metric lookup; races are excluded by the static-local
  // guarantee plus the mutex taken before any map access.
  if (impl_ == nullptr) impl_ = new Impl();
  return impl_;
}

const Registry::Impl* Registry::impl() const {
  return const_cast<Registry*>(this)->impl();
}

Registry::~Registry() { delete impl_; }

namespace {

template <typename Map, typename Metric>
Metric& get_or_create(std::mutex& mutex, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<Metric>(std::string(name)))
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  Impl* i = impl();
  return get_or_create<decltype(i->counters), Counter>(i->mutex, i->counters,
                                                       name);
}

Gauge& Registry::gauge(std::string_view name) {
  Impl* i = impl();
  return get_or_create<decltype(i->gauges), Gauge>(i->mutex, i->gauges, name);
}

Histogram& Registry::histogram(std::string_view name) {
  Impl* i = impl();
  return get_or_create<decltype(i->histograms), Histogram>(
      i->mutex, i->histograms, name);
}

Registry::Snapshot Registry::snapshot() const {
  const Impl* i = impl();
  Snapshot out;
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(i->mutex));
  out.counters.reserve(i->counters.size());
  for (const auto& [name, c] : i->counters) {
    out.counters.emplace_back(name, c->value());
  }
  out.gauges.reserve(i->gauges.size());
  for (const auto& [name, g] : i->gauges) {
    out.gauges.emplace_back(name, g->value());
  }
  out.histograms.reserve(i->histograms.size());
  for (const auto& [name, h] : i->histograms) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  return out;
}

void Registry::reset_values() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  for (auto& [name, c] : i->counters) c->reset();
  for (auto& [name, g] : i->gauges) g->reset();
  for (auto& [name, h] : i->histograms) h->reset();
}

}  // namespace recover::obs
