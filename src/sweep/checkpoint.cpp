#include "src/sweep/checkpoint.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "src/obs/json_writer.hpp"
#include "src/obs/trace.hpp"
#include "src/sweep/grid.hpp"
#include "src/util/assert.hpp"

namespace recover::sweep {

namespace {

// ---- minimal JSON reader --------------------------------------------------
//
// The writer side reuses obs::json_escape / obs::json_number; the repo has
// no JSON *parser*, and the checkpoint loader only needs the subset the
// writer emits (flat objects of strings and numbers, one nested object for
// "values").  The reader below handles general objects/arrays anyway so a
// hand-edited checkpoint does not wedge it; any syntax error surfaces as
// parse failure and the line is skipped by the caller.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();  // trailing garbage = torn line
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.text);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The writer only emits \u00XX for control bytes; anything wider
          // is foreign input — reject rather than mis-decode.
          if (code > 0xFF) return false;
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::strchr("+-.eE0123456789", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size()) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      skip_ws();
      if (!parse_value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

constexpr const char* kSchema = "recover.sweep_cell/1";

bool record_from_line(const std::string& line, CellRecord& out) {
  JsonValue doc;
  if (!JsonReader(line).parse(doc) || doc.kind != JsonValue::Kind::kObject) {
    return false;
  }
  const auto* schema = doc.find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->text != kSchema) {
    return false;
  }
  const auto* exp = doc.find("exp");
  const auto* key = doc.find("key");
  const auto* hash = doc.find("hash");
  const auto* index = doc.find("index");
  const auto* values = doc.find("values");
  if (exp == nullptr || exp->kind != JsonValue::Kind::kString ||
      exp->text.empty() || key == nullptr ||
      key->kind != JsonValue::Kind::kString || hash == nullptr ||
      hash->kind != JsonValue::Kind::kString || hash->text.size() != 16 ||
      index == nullptr || index->kind != JsonValue::Kind::kNumber ||
      index->number < 0 || values == nullptr ||
      values->kind != JsonValue::Kind::kObject || values->members.empty()) {
    return false;
  }
  out.exp = exp->text;
  out.key = key->text;
  out.index = static_cast<std::uint64_t>(index->number);
  out.values.clear();
  for (const auto& [name, value] : values->members) {
    if (value.kind != JsonValue::Kind::kNumber) return false;
    out.values.emplace_back(name, value.number);
  }
  if (const auto* wall = doc.find("wall_seconds");
      wall != nullptr && wall->kind == JsonValue::Kind::kNumber) {
    out.wall_seconds = wall->number;
  }
  // The stored hash must be the content hash of what the record claims to
  // be; a mismatch means bit rot or a hand-edit, and the cell is rerun.
  out.hash = fnv1a64(out.exp + "|" + out.key);
  return hash_hex(out.hash) == hash->text;
}

}  // namespace

std::string to_json_line(const CellRecord& record) {
  std::string out = "{\"schema\":\"";
  out += kSchema;
  out += "\",\"exp\":\"";
  out += obs::json_escape(record.exp);
  out += "\",\"key\":\"";
  out += obs::json_escape(record.key);
  out += "\",\"hash\":\"";
  out += hash_hex(record.hash);
  out += "\",\"index\":";
  out += std::to_string(record.index);
  out += ",\"values\":{";
  for (std::size_t i = 0; i < record.values.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += obs::json_escape(record.values[i].first);
    out += "\":";
    out += obs::json_number(record.values[i].second);
  }
  out += "},\"wall_seconds\":";
  out += obs::json_number(record.wall_seconds);
  out += '}';
  return out;
}

CheckpointWriter::CheckpointWriter(const std::string& path) {
  RL_REQUIRE(!path.empty());
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    std::fprintf(stderr, "sweep: cannot open checkpoint '%s': %s\n",
                 path.c_str(), std::strerror(errno));
    std::abort();
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CheckpointWriter::append(const CellRecord& record) {
  // Spans the write + fsync: on slow disks the durability tax is a real
  // slice of a sweep's wall clock, and the trace makes it visible.
  static obs::Histogram& fsync_ns =
      obs::Registry::global().histogram("sweep.fsync_ns");
  obs::ScopedSpan span(fsync_ns);
  const std::string line = to_json_line(record) + "\n";
  RL_REQUIRE(std::fwrite(line.data(), 1, line.size(), file_) == line.size());
  RL_REQUIRE(std::fflush(file_) == 0);
  // fsync, not just fflush: the record must survive power loss / SIGKILL
  // before the engine marks the cell done.
  ::fsync(::fileno(file_));
}

CheckpointLoad load_checkpoint(const std::string& path) {
  CheckpointLoad out;
  std::ifstream in(path);
  if (!in) return out;  // missing checkpoint = empty checkpoint
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    CellRecord record;
    if (record_from_line(line, record)) {
      out.records.push_back(std::move(record));
    } else {
      ++out.skipped_lines;
    }
  }
  return out;
}

}  // namespace recover::sweep
