file(REMOVE_RECURSE
  "CMakeFiles/greedy_graph_test.dir/greedy_graph_test.cpp.o"
  "CMakeFiles/greedy_graph_test.dir/greedy_graph_test.cpp.o.d"
  "greedy_graph_test"
  "greedy_graph_test.pdb"
  "greedy_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
