#include "src/balls/load_vector.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <numeric>

namespace recover::balls {

LoadVector::LoadVector(std::size_t n)
    : loads_(n, 0), fenwick_(n), total_(0) {
  RL_REQUIRE(n > 0);
}

LoadVector LoadVector::from_loads(std::vector<std::int64_t> loads) {
  RL_REQUIRE(!loads.empty());
  for (auto v : loads) RL_REQUIRE(v >= 0);
  std::sort(loads.begin(), loads.end(), std::greater<>());
  LoadVector lv(loads.size());
  lv.loads_ = std::move(loads);
  lv.fenwick_ = rng::Fenwick(lv.loads_);
  lv.total_ = std::accumulate(lv.loads_.begin(), lv.loads_.end(),
                              std::int64_t{0});
  return lv;
}

LoadVector LoadVector::balanced(std::size_t n, std::int64_t m) {
  RL_REQUIRE(m >= 0);
  std::vector<std::int64_t> loads(n);
  const std::int64_t base = m / static_cast<std::int64_t>(n);
  const auto extra = static_cast<std::size_t>(
      m - base * static_cast<std::int64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    loads[i] = base + (i < extra ? 1 : 0);
  }
  return from_loads(std::move(loads));
}

LoadVector LoadVector::all_in_one(std::size_t n, std::int64_t m) {
  return piled(n, m, 1);
}

LoadVector LoadVector::piled(std::size_t n, std::int64_t m, std::size_t k) {
  RL_REQUIRE(k >= 1 && k <= n);
  RL_REQUIRE(m >= 0);
  std::vector<std::int64_t> loads(n, 0);
  const std::int64_t base = m / static_cast<std::int64_t>(k);
  const auto extra = static_cast<std::size_t>(
      m - base * static_cast<std::int64_t>(k));
  for (std::size_t i = 0; i < k; ++i) {
    loads[i] = base + (i < extra ? 1 : 0);
  }
  return from_loads(std::move(loads));
}

std::size_t LoadVector::nonempty_count() const {
  // First index with load <= 0 in the non-increasing vector.
  const auto it = std::lower_bound(loads_.begin(), loads_.end(),
                                   std::int64_t{0}, std::greater<>());
  return static_cast<std::size_t>(it - loads_.begin());
}

std::size_t LoadVector::run_head(std::size_t i) const {
  RL_DBG_ASSERT(i < loads_.size());
  // First index whose value is <= loads_[i]; the run of equal values is
  // contiguous because the vector is sorted non-increasing.
  const auto it = std::lower_bound(loads_.begin(), loads_.end(), loads_[i],
                                   std::greater<>());
  return static_cast<std::size_t>(it - loads_.begin());
}

std::size_t LoadVector::run_tail(std::size_t i) const {
  RL_DBG_ASSERT(i < loads_.size());
  // One before the first index whose value is < loads_[i].
  const auto it = std::upper_bound(loads_.begin(), loads_.end(), loads_[i],
                                   std::greater<>());
  return static_cast<std::size_t>(it - loads_.begin()) - 1;
}

std::size_t LoadVector::add_at(std::size_t i) {
  RL_REQUIRE(i < loads_.size());
  const std::size_t j = run_head(i);
  ++loads_[j];
  fenwick_.add(j, +1);
  ++total_;
  return j;
}

std::size_t LoadVector::remove_at(std::size_t i) {
  RL_REQUIRE(i < loads_.size());
  RL_REQUIRE(loads_[i] > 0);
  const std::size_t s = run_tail(i);
  --loads_[s];
  fenwick_.add(s, -1);
  --total_;
  return s;
}

std::size_t LoadVector::eject_one_per_nonempty() {
  const std::size_t s = nonempty_count();
  for (std::size_t i = 0; i < s; ++i) --loads_[i];
  total_ -= static_cast<std::int64_t>(s);
  // The Fenwick mirror: s point updates cost O(s log n), a rebuild O(n);
  // RBB's typical regime (m >= n, hence s = Θ(n)) favors the rebuild.
  if (4 * s >= loads_.size()) {
    fenwick_ = rng::Fenwick(loads_);
  } else {
    for (std::size_t i = 0; i < s; ++i) fenwick_.add(i, -1);
  }
  return s;
}

std::int64_t LoadVector::distance(const LoadVector& other) const {
  RL_REQUIRE(bins() == other.bins());
  RL_REQUIRE(balls() == other.balls());
  std::int64_t positive = 0;
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    const std::int64_t d = loads_[i] - other.loads_[i];
    if (d > 0) positive += d;
  }
  return positive;  // equals ½‖v−u‖₁ when ball counts match
}

std::int64_t LoadVector::l1_distance(const LoadVector& other) const {
  RL_REQUIRE(bins() == other.bins());
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    sum += std::abs(loads_[i] - other.loads_[i]);
  }
  return sum;
}

bool LoadVector::invariants_hold() const {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    if (loads_[i] < 0) return false;
    if (i > 0 && loads_[i] > loads_[i - 1]) return false;
    if (fenwick_.at(i) != loads_[i]) return false;
    sum += loads_[i];
  }
  return sum == total_ && fenwick_.total() == total_;
}

}  // namespace recover::balls
