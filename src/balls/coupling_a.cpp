#include "src/balls/coupling_a.hpp"

namespace recover::balls {

std::pair<std::size_t, std::size_t> unit_difference(const LoadVector& v,
                                                    const LoadVector& u) {
  RL_REQUIRE(v.bins() == u.bins());
  RL_REQUIRE(v.distance(u) == 1);
  std::size_t lambda = v.bins();
  std::size_t delta = v.bins();
  for (std::size_t i = 0; i < v.bins(); ++i) {
    const std::int64_t d = v.load(i) - u.load(i);
    if (d == 1) {
      RL_REQUIRE(lambda == v.bins());
      lambda = i;
    } else if (d == -1) {
      RL_REQUIRE(delta == v.bins());
      delta = i;
    } else {
      RL_REQUIRE(d == 0);
    }
  }
  RL_REQUIRE(lambda < v.bins() && delta < v.bins());
  // The paper assumes λ < δ "without loss of generality" (swap the roles
  // of v and u otherwise); the couplings themselves work for any λ ≠ δ,
  // so callers receive (surplus-of-v, deficit-of-v) as-is.
  return {lambda, delta};
}

}  // namespace recover::balls
