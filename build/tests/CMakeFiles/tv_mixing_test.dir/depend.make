# Empty dependencies file for tv_mixing_test.
# This may be replaced when dependencies are built.
