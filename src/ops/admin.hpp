// ops::AdminServer — the daemon's admin plane: a dedicated TCP listener
// serving three fixed HTTP endpoints (docs/SERVING.md, "Probes and the
// admin plane"):
//
//   GET /metrics  → 200, Prometheus text exposition (the handler builds
//                   the body from the obs registry + rolling windows)
//   GET /healthz  → 200 "ok" while the process is alive (liveness)
//   GET /readyz   → 200 "ready" when the probe says so, 503 "not ready"
//                   during startup and SIGTERM drain — the signal a
//                   router tier uses to eject a draining backend
//
// Deliberately minimal and hardened the same way the serve wire path is
// (bounded everything, one reply per request, close after answering):
//   * HTTP/1.0, Connection: close — one request per connection, served
//     sequentially on the single admin thread.  Scrape traffic is a few
//     requests per second; head-of-line blocking across scrapers is a
//     non-issue and keeps the attack surface tiny.
//   * The request is read into a fixed-cap buffer (kMaxRequestBytes)
//     under a poll() deadline; an oversized or slow-trickling request is
//     answered 400/408 and the connection closed — an admin port exposed
//     to a confused or hostile client can never hold memory or wedge the
//     thread (the LineReader discipline from src/serve/protocol.hpp,
//     applied to HTTP).
//   * Anything but GET is answered 405; an unknown path 404.  The reply
//     is always a complete HTTP response with Content-Length.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace recover::ops {

struct AdminOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral (read back via port())
  /// Per-connection budget for receiving the request and flushing the
  /// response; a peer slower than this is cut off (408 where possible).
  int client_timeout_ms = 2000;
  /// Request cap (start line + headers): past it, 400 and close.
  std::size_t max_request_bytes = 8192;
  /// When non-empty, every /metrics body gets a trailing
  /// `recover_build_info{version="<this>",git="<baked revision>"} 1`
  /// gauge (ops::append_build_info) — the build-identity sample a
  /// scrape uses to tell cluster tiers apart and catch version skew.
  std::string build_version;
};

class AdminServer {
 public:
  /// Body builder for GET /metrics (called on the admin thread).
  using MetricsFn = std::function<std::string()>;
  /// Readiness probe for GET /readyz.
  using ReadyFn = std::function<bool()>;

  AdminServer(AdminOptions options, MetricsFn metrics, ReadyFn ready);
  ~AdminServer();  // stop()

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds, listens, starts the admin thread.  False (with a stderr
  /// diagnostic) if the socket cannot be set up.
  bool start();

  /// Bound port (after start(); resolves port 0 to the ephemeral pick).
  [[nodiscard]] int port() const { return port_; }

  /// Closes the listener and joins the admin thread.  Idempotent.
  void stop();

  /// Requests served since start (all endpoints, including errors).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void serve_connection(int fd);

  AdminOptions options_;
  MetricsFn metrics_;
  ReadyFn ready_;
  int listen_fd_ = -1;
  int port_ = 0;
  bool started_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread thread_;
};

}  // namespace recover::ops
