file(REMOVE_RECURSE
  "CMakeFiles/coupling_b_test.dir/coupling_b_test.cpp.o"
  "CMakeFiles/coupling_b_test.dir/coupling_b_test.cpp.o.d"
  "coupling_b_test"
  "coupling_b_test.pdb"
  "coupling_b_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupling_b_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
