// Open systems (§7 Conclusions): the number of balls changes over time.
//
// The paper's example: start with any configuration and repeatedly, with
// probability ½ remove a uniform random existing ball, otherwise allocate
// a new ball with the scheduling rule.  There is no stationary ball count
// bound, so mixing is measured as the time until the processes started
// from two different configurations (e.g. 0 balls vs m piled balls) have
// nearly the same distribution — exactly the coupling estimate the paper
// proposes; OpenGrandCoupling below shares the coin, the removal
// quantile, and the placement probes between the two copies.
#pragma once

#include <utility>

#include "src/balls/coupling_common.hpp"
#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"
#include "src/rng/distributions.hpp"

namespace recover::open {

template <typename Rule>
class OpenChain {
 public:
  using State = balls::LoadVector;

  OpenChain(balls::LoadVector init, Rule rule, double insert_probability = 0.5)
      : state_(std::move(init)),
        rule_(std::move(rule)),
        insert_probability_(insert_probability) {
    RL_REQUIRE(insert_probability > 0.0 && insert_probability < 1.0);
  }

  [[nodiscard]] const balls::LoadVector& state() const { return state_; }
  [[nodiscard]] std::int64_t balls() const { return state_.balls(); }
  [[nodiscard]] std::size_t bins() const { return state_.bins(); }

  template <typename Engine>
  void step(Engine& eng) {
    if (rng::uniform_real(eng) < insert_probability_) {
      balls::ProbeFresh<Engine> probe(eng, state_.bins());
      state_.add_at(rule_.place_index(state_, probe));
    } else if (state_.balls() > 0) {
      state_.remove_at(state_.sample_ball_weighted(eng));
    }
    // Removal from an empty system is a no-op (nothing to remove).
  }

 private:
  balls::LoadVector state_;
  Rule rule_;
  double insert_probability_;
};

/// Shared-randomness coupling of two open chains; ball counts may differ,
/// so the removal shares a quantile w ∈ [0,1) and each copy removes the
/// ball of rank ⌊w·m⌋ among its own m balls.
template <typename Rule>
class OpenGrandCoupling {
 public:
  OpenGrandCoupling(balls::LoadVector x, balls::LoadVector y, Rule rule,
                    double insert_probability = 0.5)
      : x_(std::move(x)),
        y_(std::move(y)),
        rule_(std::move(rule)),
        insert_probability_(insert_probability) {
    RL_REQUIRE(x_.bins() == y_.bins());
  }

  template <typename Engine>
  void step(Engine& eng) {
    if (rng::uniform_real(eng) < insert_probability_) {
      balls::coupled_place(rule_, x_, y_, eng);
    } else {
      const double w = rng::uniform_real(eng);
      remove_quantile(x_, w);
      remove_quantile(y_, w);
    }
  }

  [[nodiscard]] bool coalesced() const { return x_ == y_; }
  [[nodiscard]] std::int64_t distance() const { return x_.l1_distance(y_); }
  [[nodiscard]] const balls::LoadVector& first() const { return x_; }
  [[nodiscard]] const balls::LoadVector& second() const { return y_; }

 private:
  static void remove_quantile(balls::LoadVector& v, double w) {
    if (v.balls() == 0) return;
    auto rank = static_cast<std::int64_t>(
        w * static_cast<double>(v.balls()));
    if (rank >= v.balls()) rank = v.balls() - 1;
    v.remove_at(v.ball_at_quantile(rank));
  }

  balls::LoadVector x_;
  balls::LoadVector y_;
  Rule rule_;
  double insert_probability_;
};

}  // namespace recover::open
