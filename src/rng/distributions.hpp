// Bias-free primitive distributions used on simulation hot paths.
//
// These are header-only templates over any 64-bit
// std::uniform_random_bit_generator (Xoshiro256PlusPlus in practice).
#pragma once

#include <cstdint>
#include <limits>

#include "src/util/assert.hpp"

namespace recover::rng {

/// Uniform integer in [0, bound) by Lemire's multiply-shift rejection
/// method — no modulo bias, one multiplication in the common case.
template <typename Engine>
std::uint64_t uniform_below(Engine& eng, std::uint64_t bound) {
  RL_DBG_ASSERT(bound > 0);
  std::uint64_t x = eng();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = eng();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Uniform integer in [lo, hi] inclusive.
template <typename Engine>
std::int64_t uniform_int(Engine& eng, std::int64_t lo, std::int64_t hi) {
  RL_DBG_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(eng, span));
}

/// Uniform double in [0, 1) with 53 bits of precision.
template <typename Engine>
double uniform_real(Engine& eng) {
  return static_cast<double>(eng() >> 11) * 0x1.0p-53;
}

/// Bernoulli(p) draw.
template <typename Engine>
bool bernoulli(Engine& eng, double p) {
  return uniform_real(eng) < p;
}

/// Fair coin using a single bit of entropy per call amortized.
template <typename Engine>
bool coin(Engine& eng) {
  return (eng() >> 63) != 0;
}

/// Index of the maximum of `d` i.i.d. uniform draws from [0, n).
///
/// Under the normalized (non-increasing) load-vector representation this
/// is exactly the ABKU[d] choice: the least-loaded of d uniform bins is
/// the one with the largest sorted index (§3.3 of the paper).
template <typename Engine>
std::uint64_t max_of_d_uniform(Engine& eng, std::uint64_t n, int d) {
  RL_DBG_ASSERT(d >= 1);
  std::uint64_t best = uniform_below(eng, n);
  for (int k = 1; k < d; ++k) {
    const std::uint64_t x = uniform_below(eng, n);
    if (x > best) best = x;
  }
  return best;
}

}  // namespace recover::rng
