// ChainModel: the registration record the certification harness
// (src/certify/properties.hpp) runs its property classes against.
//
// The repo carries three implementations of every allocation step — the
// exact pmf over the enumerated state space, the scalar samplers, and
// the batched kernels — plus couplings whose marginals must reproduce
// the single-chain law.  A ChainModel packages one chain family behind a
// type-erased, string-keyed interface:
//
//   state key   — the normalized state serialized as comma-joined
//                 integers ("4,2,1,0" for a load vector, "1,0,-1" for an
//                 orientation difference vector).  Keys are exact, so
//                 law comparison is exact bucket counting.
//   exact_step  — the brute-force single-step pmf (independent model)
//   sample_step — one scalar step of the production sampler
//   run         — a multi-step run routed through kernel::advance, so
//                 RECOVER_KERNEL=scalar|batched selects the path; the
//                 result carries one post-run engine word to catch
//                 divergence in randomness consumption, not just state
//   coupled_step    — one step of the coupling from a state pair
//   invariant_run   — a model-specific structural invariant (e.g. the
//                     majorization sandwich the CFTP sampler rests on)
//
// Registering a record is all a new scenario family (RBB, supermarket)
// needs to do to inherit the whole conformance suite — see
// docs/CERTIFICATION.md.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/rng/engines.hpp"

namespace recover::certify {

/// One randomly drawn test instance.  Models ignore the axes they do not
/// have (the orientation chain has no ball count), and `seed` is the
/// instance-local master seed every property derives its substreams from.
struct Instance {
  std::size_t n = 2;
  std::int64_t m = 2;
  int d = 1;
  std::uint64_t seed = 0;
};

/// "n=4 m=6 d=2 seed=123" — for failure reports.
std::string describe(const Instance& instance);

/// Exact single-step law from one state: (successor key, probability)
/// pairs, probabilities summing to 1.
using StepLaw = std::vector<std::pair<std::string, double>>;

/// Result of a multi-step run: final state plus one extra engine draw.
/// Two runs agree iff both fields agree — the engine word detects a path
/// that reaches the right state while consuming different randomness.
struct RunResult {
  std::string state_key;
  std::uint64_t engine_word = 0;
};

struct ChainModel {
  std::string name;
  std::string family;  // "balls" | "coupling" | "orient" | "open"

  // Instance bounds for draw_instance (inclusive).  Small by design: the
  // exact laws enumerate the state space.
  std::size_t n_min = 2, n_max = 5;
  std::int64_t m_min = 2, m_max = 8;
  int d_min = 1, d_max = 3;

  /// True when `run` has a genuine batched path (kernel identity is
  /// checked only then; for scalar-only models both modes are the same
  /// loop and the check would be vacuous).
  bool has_batched = false;

  /// Representative start states for the instance (≥ 1).
  std::function<std::vector<std::string>(const Instance&)> starts;

  /// Brute-force exact one-step law; empty function when no exact model
  /// exists.  For coupling models this is the SINGLE-chain law — the
  /// faithfulness property checks each coupled marginal against it.
  std::function<StepLaw(const Instance&, const std::string& start)> exact_step;

  /// One scalar step of the production sampler; empty for pure-coupling
  /// records.
  std::function<std::string(const Instance&, const std::string& start,
                            rng::Xoshiro256PlusPlus& eng)>
      sample_step;

  /// Multi-step run from a canonical start, routed through
  /// kernel::advance; empty when the model has no runnable chain.
  std::function<RunResult(const Instance&, std::uint64_t seed,
                          std::int64_t steps)>
      run;

  /// One coupled step from a state pair; both marginals must follow
  /// exact_step's law, and equal inputs must produce equal outputs.
  std::function<std::pair<std::string, std::string>(
      const Instance&, const std::string& sx, const std::string& sy,
      rng::Xoshiro256PlusPlus& eng)>
      coupled_step;

  /// Model-specific structural invariant checked over a trajectory;
  /// returns false and fills `diag` on violation.
  std::function<bool(const Instance&, std::uint64_t seed, std::int64_t steps,
                     std::string* diag)>
      invariant_run;
  /// Short name of the invariant for reports ("majorization_sandwich").
  std::string invariant_name;
};

/// Draws an instance inside the model's bounds, a pure function of
/// (model bounds, seed); `seed` is stored into the result.
Instance draw_instance(const ChainModel& model, std::uint64_t seed);

/// Comma-joined serialization of a state vector ("4,2,1,0").  The codec
/// for every built-in model's state keys.
std::string key_of(const std::vector<std::int64_t>& values);

/// Inverse of key_of.  Aborts on malformed input.
std::vector<std::int64_t> values_of(const std::string& key);

class ModelRegistry {
 public:
  /// Registers a model; aborts on duplicate names.  Registration is not
  /// thread-safe — register everything up front, then certify.
  void add(ChainModel model);

  [[nodiscard]] const ChainModel* find(std::string_view name) const;
  [[nodiscard]] const std::vector<ChainModel>& models() const {
    return models_;
  }

 private:
  std::vector<ChainModel> models_;
};

/// Registers every built-in chain family (Scenario A/B incl. ADAP, the
/// grand couplings, the labeled oracles, the orientation chain and its
/// coupling, and the open / bounded-open systems) into `registry`.
void register_builtin_models(ModelRegistry& registry);

/// The process-wide registry, with the built-ins registered exactly once.
ModelRegistry& builtin_registry();

}  // namespace recover::certify
