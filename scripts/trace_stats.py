#!/usr/bin/env python3
"""Offline analyzer for recover.trace/1 Chrome trace-event JSON files
(written by any binary's --trace=FILE flag; see docs/OBSERVABILITY.md).

Prints, from one trace:
  * per-worker utilization — top-level span time per thread over the
    trace's wall-clock extent, with event and steal counts;
  * per-label span statistics — count, total, p50/p95/max durations
    (exact, from the individual spans, unlike the log2-bucketed
    run-record quantiles);
  * steal totals — how many sweep.steal instants fired and how many
    items they moved (victim/count args);
  * the straggler report — the top N longest spans with their labels
    (e.g. a sweep cell's grid key), start times, and owning threads.

Durations attribute to the span itself (self time is not subtracted):
the tool answers "where did the wall clock go", Perfetto answers the
zoomed-in questions.
"""

import argparse
import json
import math
import sys
from collections import defaultdict


def fail(message):
    print(f"trace_stats: {message}", file=sys.stderr)
    return 1


def load_events(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, list):  # JSON Array Format is also legal
        return doc, {}
    return doc.get("traceEvents", []), doc.get("otherData", {})


def pair_spans(events):
    """Chrome B/E pairing per tid; returns (spans, thread_names, instants,
    wall_extent).  Spans: dict with tid/name/detail/args/start/dur/depth."""
    thread_names = {}
    per_tid = defaultdict(list)
    min_ts = None
    max_ts = None
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "thread_name":
                thread_names[e.get("tid")] = e.get("args", {}).get("name", "")
            continue
        ts = e.get("ts")
        if ts is None:
            continue
        min_ts = ts if min_ts is None else min(min_ts, ts)
        max_ts = ts if max_ts is None else max(max_ts, ts)
        per_tid[e.get("tid")].append(e)

    spans = []
    instants = []
    for tid, tid_events in per_tid.items():
        tid_events.sort(key=lambda e: e["ts"])
        stack = []
        for e in tid_events:
            ph = e["ph"]
            if ph == "B":
                stack.append(e)
            elif ph == "E":
                if not stack:
                    continue  # tolerated: ring dropped the begin
                begin = stack.pop()
                args = begin.get("args", {})
                spans.append(
                    {
                        "tid": tid,
                        "name": begin.get("name", "(unnamed)"),
                        "detail": args.get("detail", ""),
                        "args": args,
                        "start": begin["ts"],
                        "dur": e["ts"] - begin["ts"],
                        "depth": len(stack),
                    }
                )
            elif ph == "i":
                instants.append(e)
    wall = 0.0 if min_ts is None else max_ts - min_ts
    return spans, thread_names, instants, wall


def quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    rank = max(1, min(len(sorted_values), math.ceil(q * len(sorted_values))))
    return sorted_values[rank - 1]


def fmt_ms(us):
    return f"{us / 1000.0:.3f}"


def print_utilization(spans, thread_names, instants, wall):
    print("== per-worker utilization ==")
    busy = defaultdict(float)   # top-level span time only: nested spans
    counts = defaultdict(int)   # overlap their parents
    for s in spans:
        counts[s["tid"]] += 1
        if s["depth"] == 0:
            busy[s["tid"]] += s["dur"]
    steals = defaultdict(int)
    for e in instants:
        if e.get("name") == "sweep.steal":
            steals[e.get("tid")] += 1
    tids = sorted(set(busy) | set(counts) | set(thread_names) | set(steals))
    print(f"{'tid':>4} {'thread':<16} {'spans':>6} {'steals':>6} "
          f"{'busy_ms':>10} {'util%':>6}")
    for tid in tids:
        util = 100.0 * busy[tid] / wall if wall > 0 else 0.0
        print(
            f"{tid:>4} {thread_names.get(tid, ''):<16} {counts[tid]:>6} "
            f"{steals[tid]:>6} {fmt_ms(busy[tid]):>10} {util:>6.1f}"
        )
    print(f"wall extent: {fmt_ms(wall)} ms over {len(tids)} thread(s)")


def print_label_stats(spans):
    print("\n== span statistics by label ==")
    by_name = defaultdict(list)
    for s in spans:
        by_name[s["name"]].append(s["dur"])
    print(f"{'label':<28} {'count':>7} {'total_ms':>10} {'p50_ms':>9} "
          f"{'p95_ms':>9} {'max_ms':>9}")
    for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
        durs = sorted(by_name[name])
        print(
            f"{name:<28} {len(durs):>7} {fmt_ms(sum(durs)):>10} "
            f"{fmt_ms(quantile(durs, 0.50)):>9} "
            f"{fmt_ms(quantile(durs, 0.95)):>9} {fmt_ms(durs[-1]):>9}"
        )


def print_steals(instants):
    steal_events = [e for e in instants if e.get("name") == "sweep.steal"]
    if not steal_events:
        return
    moved = sum(e.get("args", {}).get("count", 0) for e in steal_events)
    victims = defaultdict(int)
    for e in steal_events:
        victims[e.get("args", {}).get("victim")] += 1
    victim_list = ", ".join(
        f"tid{v}:{n}" for v, n in sorted(victims.items(), key=lambda kv: -kv[1])
    )
    print(f"\n== steals ==\n{len(steal_events)} steal(s) moved {moved} "
          f"item(s); victims: {victim_list}")


def print_stragglers(spans, top):
    print(f"\n== top {top} longest spans (stragglers) ==")
    print(f"{'dur_ms':>10} {'tid':>4} {'start_ms':>10} {'label':<24} detail")
    for s in sorted(spans, key=lambda s: -s["dur"])[:top]:
        print(
            f"{fmt_ms(s['dur']):>10} {s['tid']:>4} {fmt_ms(s['start']):>10} "
            f"{s['name']:<24} {s['detail']}"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON from --trace=FILE")
    parser.add_argument(
        "--top", type=int, default=10,
        help="straggler rows to print (default 10)",
    )
    args = parser.parse_args()

    try:
        events, other = load_events(args.trace)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{args.trace}: unreadable or invalid JSON: {e}")
    if not events:
        return fail(f"{args.trace}: no trace events")

    spans, thread_names, instants, wall = pair_spans(events)
    print(f"# {args.trace}: {len(events)} events, {len(spans)} spans, "
          f"{len(instants)} instants, "
          f"{other.get('dropped', 0)} dropped at record time")
    print_utilization(spans, thread_names, instants, wall)
    if spans:
        print_label_stats(spans)
    print_steals(instants)
    if spans:
        print_stragglers(spans, args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
