#!/usr/bin/env bash
# Full local CI: configure, build with warnings-as-errors, run the test
# suite, smoke every experiment binary (each writing a recover.run/1
# JSON record), validate the records, and aggregate them into
# BENCH_smoke.json.  Mirrors what a hosted CI job for this repository
# runs.
#
# Env hooks:
#   BUILD_DIR=dir   build directory (default build-ci)
#   TSAN=1          additionally build parallel_test + obs_test +
#                   serve_test with -DRECOVERLIB_TSAN=ON and run them
#                   under ThreadSanitizer (separate build tree build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-ci}

cmake -B "$BUILD_DIR" -G Ninja -DRECOVERLIB_WERROR=ON
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure

JSON_DIR="$BUILD_DIR/bench-json"
rm -rf "$JSON_DIR"
mkdir -p "$JSON_DIR"

echo "== experiment smoke runs (with JSON records) =="
for exe in "$BUILD_DIR"/bench/exp*; do
  [ -x "$exe" ] || continue
  name=$(basename "$exe")
  echo "-- $name"
  "$exe" --metrics --json-out="$JSON_DIR/$name.json" > /dev/null
done

echo "-- bench_microbench"
"$BUILD_DIR"/bench/bench_microbench --metrics \
  --json-out="$JSON_DIR/bench_microbench.json" \
  --benchmark_min_time=0.01 > /dev/null

echo "== sweep engine: checkpoint + resume =="
SWEEP_CKPT="$JSON_DIR/sweep_exp01.ckpt.jsonl"
SWEEP_GRID="d=1..2;m=16..32:x2;density=1;replicas=4"
"$BUILD_DIR"/bench/sweep_runner --exp exp01 --grid "$SWEEP_GRID" \
  --checkpoint "$SWEEP_CKPT" --metrics \
  --json-out="$JSON_DIR/sweep_runner.json" > /dev/null
# A second run over the finished checkpoint must recompute nothing.
resume_line=$("$BUILD_DIR"/bench/sweep_runner --exp exp01 \
  --grid "$SWEEP_GRID" --checkpoint "$SWEEP_CKPT" | grep '^# sweep:')
echo "$resume_line"
case "$resume_line" in
  *" run=0 "*) ;;
  *)
    echo "ci.sh: sweep resume recomputed cells: $resume_line" >&2
    exit 1
    ;;
esac
python3 scripts/check_bench_json.py --sweep-checkpoint "$SWEEP_CKPT"

echo "== tracing: record, validate, analyze =="
# Outside JSON_DIR: the *.json glob below expects recover.run/1 records.
TRACE_FILE="$BUILD_DIR/sweep_exp01.trace.json"
"$BUILD_DIR"/bench/sweep_runner --exp exp01 --grid "$SWEEP_GRID" \
  --threads 2 --trace="$TRACE_FILE" > /dev/null
python3 scripts/check_bench_json.py --trace "$TRACE_FILE"
python3 scripts/trace_stats.py "$TRACE_FILE"

echo "== serve: boot, load, drain =="
# Boot the TCP service on an ephemeral port, drive it with the open-loop
# generator for ~2s, and require zero protocol errors plus a clean
# SIGTERM drain (exit 0).  The loadgen record joins the aggregate below.
SERVE_LOG="$BUILD_DIR/serve_ci.log"
"$BUILD_DIR"/bench/recover_serve --port 0 --workers 4 > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^# serve: listening' "$SERVE_LOG" 2>/dev/null && break
  sleep 0.1
done
SERVE_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_LOG")
if [ -z "$SERVE_PORT" ]; then
  echo "ci.sh: recover_serve never reported a port" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
"$BUILD_DIR"/bench/serve_loadgen --port "$SERVE_PORT" --qps 200 --conns 8 \
  --duration 2s --mix "ping=3,run_cell=1" --metrics \
  --json-out="$JSON_DIR/serve_loadgen.json"
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "ci.sh: recover_serve did not drain cleanly on SIGTERM" >&2
  cat "$SERVE_LOG" >&2
  exit 1
fi
grep '^# serve: drained' "$SERVE_LOG"
python3 scripts/check_bench_json.py --serve "$JSON_DIR/serve_loadgen.json"
# The committed baseline must satisfy the same gate.
python3 scripts/check_bench_json.py --serve BENCH_serve.json

echo "== validating JSON records =="
python3 scripts/check_bench_json.py "$JSON_DIR"/*.json \
  --aggregate BENCH_smoke.json

echo "== example smoke runs =="
for exe in "$BUILD_DIR"/examples/*; do
  [ -x "$exe" ] && [ -f "$exe" ] || continue
  echo "-- $exe"
  "$exe" > /dev/null
done

if [ "${TSAN:-0}" = "1" ]; then
  echo "== ThreadSanitizer (parallel_test + obs_test + serve_test) =="
  cmake -B build-tsan -G Ninja -DRECOVERLIB_TSAN=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan --target parallel_test obs_test serve_test
  ./build-tsan/tests/parallel_test
  ./build-tsan/tests/obs_test
  ./build-tsan/tests/serve_test
fi

echo "CI OK"
