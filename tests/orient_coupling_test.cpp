// Tests for the §6 count representation, Γ-sets, metric, and coupled step
// (Lemmas 6.2 / 6.3).
#include <gtest/gtest.h>

#include <array>

#include "src/orient/coupling.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"
#include "src/stats/summary.hpp"

namespace recover::orient {
namespace {

TEST(CountState, FromDiffStateRoundTripsCounts) {
  const DiffState s = DiffState::from_diffs({2, 0, 0, -2});
  const CountState x = CountState::from_diff_state(s, 2);
  // Levels: 2 padding + diffs 2,1,0,-1,-2 + 2 padding = 9 levels.
  ASSERT_EQ(x.levels(), 9u);
  EXPECT_EQ(x.count(2), 1);  // diff +2
  EXPECT_EQ(x.count(4), 2);  // diff 0
  EXPECT_EQ(x.count(6), 1);  // diff −2
  EXPECT_EQ(x.vertices(), 4u);
  EXPECT_TRUE(x.invariants_hold());
}

TEST(CountState, LevelOfRankWalksCumulativeCounts) {
  const CountState x = CountState::from_counts({0, 2, 0, 3, 1});
  EXPECT_EQ(x.level_of_rank(0), 1u);
  EXPECT_EQ(x.level_of_rank(1), 1u);
  EXPECT_EQ(x.level_of_rank(2), 3u);
  EXPECT_EQ(x.level_of_rank(4), 3u);
  EXPECT_EQ(x.level_of_rank(5), 4u);
}

TEST(CountState, ApplyTransitionMatchesDiffStateStep) {
  // The same (φ, ψ) pick must evolve both representations identically.
  rng::Xoshiro256PlusPlus eng(31);
  DiffState s = DiffState::from_diffs({3, 1, 0, -1, -3});
  CountState x = CountState::from_diff_state(s, 3);
  for (int t = 0; t < 200; ++t) {
    const auto [phi, psi] = s.pick_pair(eng);
    x.apply_transition(x.level_of_rank(phi), x.level_of_rank(psi));
    s.apply_edge(phi, psi);
    const CountState expect = CountState::from_diff_state(s, 0);
    // Compare occupied windows: strip zero padding from x.
    std::vector<std::int64_t> stripped;
    bool started = false;
    std::int64_t trailing = 0;
    for (std::size_t l = 0; l < x.levels(); ++l) {
      const std::int64_t c = x.count(l);
      if (c != 0) {
        for (std::int64_t z = 0; z < trailing; ++z) stripped.push_back(0);
        stripped.push_back(c);
        started = true;
        trailing = 0;
      } else if (started) {
        ++trailing;
      }
    }
    ASSERT_EQ(stripped, expect.counts()) << "diverged at step " << t;
  }
}

TEST(GBarNeighbors, EnumeratesBothOrientations) {
  // x = (1, 0, 1, 1): forward at λ=0 gives (0, 2, 0, 1).
  const CountState x = CountState::from_counts({1, 0, 1, 1});
  const auto nbs = gbar_neighbors(x);
  bool found_forward = false;
  for (const auto& y : nbs) {
    if (y.counts() == std::vector<std::int64_t>{0, 2, 0, 1}) {
      found_forward = true;
    }
    // Each neighbor is at metric distance exactly 1.
    const auto d = orientation_distance(x, y, 1);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, 1);
  }
  EXPECT_TRUE(found_forward);
}

TEST(SBarNeighbors, RequireEmptyMiddle) {
  // x = (1, 0, 0, 1): λ=0, k=2 forward pattern applies (middle empty).
  const CountState x = CountState::from_counts({1, 0, 0, 1});
  const auto nbs = sbar_neighbors(x);
  bool found = false;
  for (const auto& [y, k] : nbs) {
    if (y.counts() == std::vector<std::int64_t>{0, 1, 1, 0} && k == 2) {
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Occupied middle kills the forward k=2 move at λ=0.
  const CountState z = CountState::from_counts({1, 5, 0, 1});
  const std::vector<std::int64_t> forbidden = {0, 6, 1, 0};
  for (const auto& [y, k] : sbar_neighbors(z)) {
    (void)k;
    EXPECT_NE(y.counts(), forbidden);
  }
}

TEST(OrientationDistance, MetricAxiomsOnSmallStates) {
  const CountState a = CountState::from_counts({1, 0, 1, 1, 0});
  const CountState b = CountState::from_counts({0, 2, 0, 1, 0});
  const CountState c = CountState::from_counts({0, 1, 2, 0, 0});
  const auto dab = orientation_distance(a, b, 8);
  const auto dba = orientation_distance(b, a, 8);
  const auto dbc = orientation_distance(b, c, 8);
  const auto dac = orientation_distance(a, c, 8);
  ASSERT_TRUE(dab && dba && dbc && dac);
  EXPECT_EQ(*dab, *dba);  // symmetry
  EXPECT_LE(*dac, *dab + *dbc);  // triangle inequality
  EXPECT_EQ(*orientation_distance(a, a, 2), 0);
}

TEST(OrientationDistance, SBarPairsAreAtDistanceK) {
  const CountState x = CountState::from_counts({2, 1, 0, 0, 0, 1, 1});
  for (const auto& [y, k] : sbar_neighbors(x)) {
    const auto d = orientation_distance(x, y, k + 1);
    ASSERT_TRUE(d.has_value());
    EXPECT_LE(*d, k);
    EXPECT_GE(*d, 1);
  }
}

TEST(DecomposeGammaPair, RecognizesGAndSPatterns) {
  const CountState x = CountState::from_counts({1, 0, 1, 1});
  const CountState yg = CountState::from_counts({0, 2, 0, 1});
  const auto g = decompose_gamma_pair(x, yg);
  EXPECT_EQ(g.k, 1);
  EXPECT_EQ(g.lambda, 0u);
  EXPECT_TRUE(g.x_is_upper);
  const auto g2 = decompose_gamma_pair(yg, x);
  EXPECT_FALSE(g2.x_is_upper);

  const CountState a = CountState::from_counts({1, 0, 0, 1, 2});
  const CountState b = CountState::from_counts({0, 1, 1, 0, 2});
  const auto s = decompose_gamma_pair(a, b);
  EXPECT_EQ(s.k, 2);
  EXPECT_EQ(s.lambda, 0u);
  EXPECT_TRUE(s.x_is_upper);
}

// Lemma 6.2: for Δ(x, y) = 1 pairs, E[Δ(x*, y*)] ≤ 1 − (n choose 2)⁻¹.
TEST(CoupledStep, Lemma62ContractionOnGBarPairs) {
  rng::Xoshiro256PlusPlus eng(41);
  // Build a roomy state and enumerate its 𝒢̄ neighbors as test pairs.
  const DiffState base = DiffState::from_diffs({3, 2, 1, 0, 0, -1, -2, -3});
  const CountState x0 = CountState::from_diff_state(base, 3);
  const auto n = static_cast<double>(x0.vertices());
  const double bound = 1.0 - 2.0 / (n * (n - 1.0));
  int tested = 0;
  for (const auto& y0 : gbar_neighbors(x0)) {
    if (tested >= 4) break;
    ++tested;
    stats::Summary dist;
    constexpr int kTrials = 6000;
    for (int t = 0; t < kTrials; ++t) {
      CountState x = x0, y = y0;
      dist.add(static_cast<double>(coupled_step_orientation(x, y, eng)));
    }
    EXPECT_LE(dist.mean(), bound + 4.0 * dist.stderror())
        << "pair " << tested;
  }
  ASSERT_GT(tested, 0);
}

// Lemma 6.3: for y ∈ 𝒮̄_k(x), E[Δ(x*, y*)] ≤ k − (n choose 2)⁻¹.
TEST(CoupledStep, Lemma63ContractionOnSBarPairs) {
  rng::Xoshiro256PlusPlus eng(43);
  const DiffState base = DiffState::from_diffs({4, 1, 0, 0, -1, -4});
  const CountState x0 = CountState::from_diff_state(base, 3);
  const auto n = static_cast<double>(x0.vertices());
  int tested = 0;
  for (const auto& [y0, k] : sbar_neighbors(x0)) {
    if (tested >= 4) break;
    ++tested;
    stats::Summary dist;
    constexpr int kTrials = 6000;
    for (int t = 0; t < kTrials; ++t) {
      CountState x = x0, y = y0;
      dist.add(static_cast<double>(coupled_step_orientation(x, y, eng)));
    }
    const double bound =
        static_cast<double>(k) - 2.0 / (n * (n - 1.0));
    EXPECT_LE(dist.mean(), bound + 4.0 * dist.stderror())
        << "pair " << tested << " k=" << k;
  }
  ASSERT_GT(tested, 0);
}

TEST(CoupledStep, MarginalsAreFaithfulCopiesOfTheChain) {
  // Definition 3.1 for the §6 coupling: each copy, observed alone, must
  // follow the lazy greedy chain's law — including the lower copy whose
  // lazy bit is anti-correlated in the special 𝒢̄ case.
  rng::Xoshiro256PlusPlus eng(53);
  const DiffState base = DiffState::from_diffs({2, 1, 0, -1, -2});
  const CountState x0 = CountState::from_diff_state(base, 3);
  const auto nbs = gbar_neighbors(x0);
  ASSERT_FALSE(nbs.empty());
  const CountState y0 = nbs[0];

  auto key_of = [](const CountState& s) {
    std::int64_t key = 0;
    for (std::size_t l = 0; l < s.levels(); ++l) {
      key = key * 11 + s.count(l);
    }
    return key;
  };

  stats::IntHistogram coupled_x, direct_x, coupled_y, direct_y;
  constexpr int kTrials = 30000;
  for (int t = 0; t < kTrials; ++t) {
    {
      CountState x = x0, y = y0;
      coupled_step_orientation(x, y, eng);
      coupled_x.add(key_of(x));
      coupled_y.add(key_of(y));
    }
    {
      CountState x = x0;
      x.step(eng);
      direct_x.add(key_of(x));
      CountState y = y0;
      y.step(eng);
      direct_y.add(key_of(y));
    }
  }
  EXPECT_LT(stats::tv_distance(coupled_x, direct_x), 0.02);
  EXPECT_LT(stats::tv_distance(coupled_y, direct_y), 0.02);
}

// Parameterized sweep: the Lemma 6.2 inequality across several base
// shapes (staircases, spreads, runs with plateaus).
class Lemma62SweepTest : public ::testing::TestWithParam<int> {};

TEST_P(Lemma62SweepTest, ContractionOnAllGBarNeighbors) {
  const int shape = GetParam();
  rng::Xoshiro256PlusPlus eng(61 + static_cast<std::uint64_t>(shape));
  DiffState base = DiffState(6);
  switch (shape) {
    case 0:
      base = DiffState::from_diffs({2, 1, 0, 0, -1, -2});
      break;
    case 1:
      base = DiffState::from_diffs({3, 0, 0, 0, 0, -3});
      break;
    case 2:
      base = DiffState::from_diffs({1, 1, 1, -1, -1, -1});
      break;
    case 3:
      base = DiffState::from_diffs({4, 2, 0, -1, -2, -3});
      break;
    default:
      base = DiffState::from_diffs({2, 2, -1, -1, -1, -1});
      break;
  }
  const CountState x0 = CountState::from_diff_state(base, 3);
  const auto n = static_cast<double>(x0.vertices());
  const double bound = 1.0 - 2.0 / (n * (n - 1.0));
  for (const auto& y0 : gbar_neighbors(x0)) {
    stats::Summary dist;
    for (int t = 0; t < 4000; ++t) {
      CountState x = x0, y = y0;
      dist.add(static_cast<double>(coupled_step_orientation(x, y, eng)));
    }
    EXPECT_LE(dist.mean(), bound + 4.0 * dist.stderror());
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Lemma62SweepTest,
                         ::testing::Values(0, 1, 2, 3, 4));

// The PROOF of Lemma 6.2, not just its conclusion: classify every
// coupled step into the seven cases of the case analysis and check the
// per-case distance statement exactly.
//
// For a 𝒢̄-pair (x = y + e_λ − 2e_{λ+1} + e_{λ+2}) the rank→level maps
// of the two copies disagree only on the two discrepancy ranks (level λ
// in the upper copy vs λ+1 in the lower; level λ+2 vs λ+1), so the
// cases below are exhaustive.
namespace lemma62 {

int classify(const CountState& /*x*/, const OrientationStepTrace& t) {
  const std::size_t L = t.lambda;
  const bool special = t.i == L && t.j == L + 2 && t.istar == L + 1 &&
                       t.jstar == L + 1;
  if (special) return 7;           // anti-correlated bits: always merges
  if (!t.bit) return 1;            // lazy no-op in both copies
  if (t.i == t.istar && t.j == t.jstar) return 2;
  if (t.i == t.istar && t.j == L && t.jstar == L + 1) return 3;
  if (t.i == L + 2 && t.istar == L + 1 && t.j == t.jstar) return 4;
  if (t.i == t.istar && t.j == L + 2 && t.jstar == L + 1) return 5;
  if (t.i == L && t.istar == L + 1 && t.j == t.jstar) return 6;
  return 0;  // unclassified = the case analysis missed something
}

}  // namespace lemma62

TEST(CoupledStep, Lemma62CaseAnalysisHoldsExactly) {
  rng::Xoshiro256PlusPlus eng(71);
  const DiffState base = DiffState::from_diffs({3, 2, 1, 0, -1, -2, -3});
  const CountState x0 = CountState::from_diff_state(base, 3);
  const auto nbs = gbar_neighbors(x0);
  ASSERT_FALSE(nbs.empty());
  std::array<int, 8> seen{};
  for (const auto& y0 : nbs) {
    for (int t = 0; t < 3000; ++t) {
      CountState x = x0, y = y0;
      const auto trace = coupled_step_orientation_traced(x, y, eng);
      const int c = lemma62::classify(x0, trace);
      ASSERT_NE(c, 0) << "step outside the Lemma 6.2 case analysis";
      ++seen[static_cast<std::size_t>(c)];
      switch (c) {
        case 1:
        case 2:
          ASSERT_EQ(trace.distance_after, 1) << "case " << c;
          break;
        case 3:
        case 4:
          ASSERT_GE(trace.distance_after, 1) << "case " << c;
          ASSERT_LE(trace.distance_after, 2) << "case " << c;
          break;
        case 5:
        case 6:
        case 7:
          ASSERT_EQ(trace.distance_after, 0) << "case " << c;
          break;
        default:
          FAIL();
      }
    }
  }
  // The bulk cases and the merge cases must all actually occur.
  EXPECT_GT(seen[1], 0);
  EXPECT_GT(seen[2], 0);
  EXPECT_GT(seen[7], 0) << "the anti-correlated-bit case never fired";
}

TEST(CoupledStep, Lemma63CaseAnalysisBoundsHold) {
  // 𝒮̄_k pairs: single mismatches move the distance by at most one and
  // the double mismatch (case 7) drops it by two (merging at k = 2).
  rng::Xoshiro256PlusPlus eng(73);
  const DiffState base = DiffState::from_diffs({4, 1, 0, 0, -1, -4});
  const CountState x0 = CountState::from_diff_state(base, 3);
  for (const auto& [y0, k] : sbar_neighbors(x0)) {
    for (int t = 0; t < 3000; ++t) {
      CountState x = x0, y = y0;
      const auto trace = coupled_step_orientation_traced(x, y, eng);
      ASSERT_EQ(trace.k, k);
      const std::size_t L = trace.lambda;
      const bool phi_mismatch = trace.i != trace.istar;
      const bool psi_mismatch = trace.j != trace.jstar;
      if (!trace.bit) {
        ASSERT_EQ(trace.distance_after, k) << "lazy step moved the pair";
      } else if (phi_mismatch && psi_mismatch) {
        // Case (7): both ranks on discrepancy positions.
        ASSERT_LE(trace.distance_after, std::max<std::int64_t>(k - 2, 0));
      } else if (phi_mismatch || psi_mismatch) {
        ASSERT_LE(trace.distance_after, k + 1);
        ASSERT_GE(trace.distance_after, std::max<std::int64_t>(k - 1, 0));
      } else {
        ASSERT_LE(trace.distance_after, k) << "matched moves expanded";
      }
      // Mismatched levels only ever differ by exactly one level.
      if (phi_mismatch) {
        ASSERT_EQ(std::max(trace.i, trace.istar) -
                      std::min(trace.i, trace.istar),
                  1u);
        (void)L;
      }
    }
  }
}

TEST(CoupledStep, MergedPairsStayWellDefined) {
  rng::Xoshiro256PlusPlus eng(47);
  const DiffState base = DiffState::from_diffs({2, 1, 0, -1, -2});
  const CountState x0 = CountState::from_diff_state(base, 3);
  const auto nbs = gbar_neighbors(x0);
  ASSERT_FALSE(nbs.empty());
  int merges = 0;
  for (int t = 0; t < 4000; ++t) {
    CountState x = x0, y = nbs[0];
    const auto d = coupled_step_orientation(x, y, eng);
    ASSERT_GE(d, 0);
    ASSERT_TRUE(x.invariants_hold());
    ASSERT_TRUE(y.invariants_hold());
    if (d == 0) ++merges;
  }
  EXPECT_GT(merges, 0) << "coupling never merges - Lemma 6.2 case (5)-(7)";
}

}  // namespace
}  // namespace recover::orient
