# Empty dependencies file for exp14_exact_orientation.
# This may be replaced when dependencies are built.
