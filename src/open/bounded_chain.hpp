// Bounded open systems — the FIRST class of open processes in §7: "one
// requires the number of balls to be bounded all the time.  The approach
// used in the paper can be refined to be applicable to such systems."
//
// The chain keeps 0 ≤ m_t ≤ capacity: an insertion that would exceed the
// capacity is rejected (dropped request), removal of a nonexistent ball
// is a no-op.  Because the ball count is a reflected lazy ±1 walk on
// [0, capacity], the count component mixes in O(capacity²) and the
// contents couple as in the closed case — which is what exp11's bounded
// table demonstrates.
#pragma once

#include <utility>

#include "src/balls/coupling_common.hpp"
#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"
#include "src/rng/distributions.hpp"

namespace recover::open {

template <typename Rule>
class BoundedOpenChain {
 public:
  using State = balls::LoadVector;

  BoundedOpenChain(balls::LoadVector init, Rule rule, std::int64_t capacity,
                   double insert_probability = 0.5)
      : state_(std::move(init)),
        rule_(std::move(rule)),
        capacity_(capacity),
        insert_probability_(insert_probability) {
    RL_REQUIRE(capacity >= 1);
    RL_REQUIRE(state_.balls() <= capacity);
    RL_REQUIRE(insert_probability > 0.0 && insert_probability < 1.0);
  }

  [[nodiscard]] const balls::LoadVector& state() const { return state_; }
  [[nodiscard]] std::int64_t balls() const { return state_.balls(); }
  [[nodiscard]] std::int64_t capacity() const { return capacity_; }

  template <typename Engine>
  void step(Engine& eng) {
    if (rng::uniform_real(eng) < insert_probability_) {
      if (state_.balls() < capacity_) {
        balls::ProbeFresh<Engine> probe(eng, state_.bins());
        state_.add_at(rule_.place_index(state_, probe));
      }
    } else if (state_.balls() > 0) {
      state_.remove_at(state_.sample_ball_weighted(eng));
    }
  }

 private:
  balls::LoadVector state_;
  Rule rule_;
  std::int64_t capacity_;
  double insert_probability_;
};

/// Shared-randomness coupling of two bounded open chains (same coin,
/// same removal quantile, same probe sequence).
template <typename Rule>
class BoundedOpenCoupling {
 public:
  BoundedOpenCoupling(balls::LoadVector x, balls::LoadVector y, Rule rule,
                      std::int64_t capacity, double insert_probability = 0.5)
      : x_(std::move(x)),
        y_(std::move(y)),
        rule_(std::move(rule)),
        capacity_(capacity),
        insert_probability_(insert_probability) {
    RL_REQUIRE(x_.bins() == y_.bins());
    RL_REQUIRE(x_.balls() <= capacity && y_.balls() <= capacity);
  }

  template <typename Engine>
  void step(Engine& eng) {
    if (rng::uniform_real(eng) < insert_probability_) {
      // Draw the probe sequence once; each copy uses it only if it has
      // headroom (rejected insertions consume no extra entropy, so
      // merged copies remain merged).
      balls::ProbeMemo<Engine> memo(eng, x_.bins());
      if (x_.balls() < capacity_) {
        x_.add_at(rule_.place_index(x_, memo));
      }
      if (y_.balls() < capacity_) {
        y_.add_at(rule_.place_index(y_, memo));
      }
    } else {
      const double w = rng::uniform_real(eng);
      remove_quantile(x_, w);
      remove_quantile(y_, w);
    }
  }

  [[nodiscard]] bool coalesced() const { return x_ == y_; }
  [[nodiscard]] std::int64_t distance() const { return x_.l1_distance(y_); }
  [[nodiscard]] const balls::LoadVector& first() const { return x_; }
  [[nodiscard]] const balls::LoadVector& second() const { return y_; }

 private:
  static void remove_quantile(balls::LoadVector& v, double w) {
    if (v.balls() == 0) return;
    auto rank = static_cast<std::int64_t>(
        w * static_cast<double>(v.balls()));
    if (rank >= v.balls()) rank = v.balls() - 1;
    v.remove_at(v.ball_at_quantile(rank));
  }

  balls::LoadVector x_;
  balls::LoadVector y_;
  Rule rule_;
  std::int64_t capacity_;
  double insert_probability_;
};

}  // namespace recover::open
