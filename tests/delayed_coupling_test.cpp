// Tests for the delayed-coupling estimator (Theorem 2 proof structure).
#include <gtest/gtest.h>

#include "src/core/coalescence.hpp"
#include "src/core/delayed_coupling.hpp"
#include "src/orient/chain.hpp"
#include "src/rng/engines.hpp"

namespace recover::core {
namespace {

auto orient_factory() {
  return [](const orient::DiffState& a, const orient::DiffState& b) {
    return orient::GrandCouplingOrient(a, b);
  };
}

TEST(DelayedCoupling, ZeroDelayBehavesLikePlainCoupling) {
  rng::Xoshiro256PlusPlus eng(1);
  auto delayed = make_delayed_coupling(
      orient::GreedyOrientationChain(orient::DiffState::spread(8, 4)),
      orient::GreedyOrientationChain(orient::DiffState(8)),
      orient_factory(), 0, 7);
  std::int64_t t = 0;
  while (!delayed.coalesced() && t < 500000) {
    delayed.step(eng);
    ++t;
  }
  EXPECT_TRUE(delayed.coalesced());
}

TEST(DelayedCoupling, FreePhaseRunsIndependently) {
  rng::Xoshiro256PlusPlus eng(2);
  auto delayed = make_delayed_coupling(
      orient::GreedyOrientationChain(orient::DiffState::spread(8, 4)),
      orient::GreedyOrientationChain(orient::DiffState(8)),
      orient_factory(), 100, 9);
  for (int t = 0; t < 50; ++t) delayed.step(eng);
  EXPECT_EQ(delayed.remaining_delay(), 50);
  EXPECT_FALSE(delayed.coalesced());
  for (int t = 0; t < 50; ++t) delayed.step(eng);
  EXPECT_EQ(delayed.remaining_delay(), 0);
}

TEST(DelayedCoupling, CoalescesAfterDelay) {
  core::CoalescenceOptions opts;
  opts.replicas = 8;
  opts.seed = 11;
  opts.max_steps = 1'000'000;
  opts.parallel = false;
  const std::int64_t delay = 200;
  const auto stats = measure_coalescence(
      [&](std::uint64_t r) {
        return make_delayed_coupling(
            orient::GreedyOrientationChain(orient::DiffState::spread(8, 4)),
            orient::GreedyOrientationChain(orient::DiffState(8)),
            orient_factory(), delay, 1000 + r);
      },
      opts);
  EXPECT_EQ(stats.censored, 0);
  // Meeting can only happen once the coupled phase begins.
  EXPECT_GE(stats.steps.min(), static_cast<double>(delay));
}

TEST(DelayedCoupling, DistanceBeforeAndAfterDelayConsistent) {
  rng::Xoshiro256PlusPlus eng(3);
  auto delayed = make_delayed_coupling(
      orient::GreedyOrientationChain(orient::DiffState::spread(10, 5)),
      orient::GreedyOrientationChain(orient::DiffState(10)),
      orient_factory(), 64, 13);
  EXPECT_GT(delayed.distance(), 0);
  for (int t = 0; t < 64; ++t) delayed.step(eng);
  const auto handoff = delayed.distance();
  EXPECT_GE(handoff, 0);
  for (int t = 0; t < 5000 && !delayed.coalesced(); ++t) delayed.step(eng);
  if (delayed.coalesced()) {
    EXPECT_EQ(delayed.distance(), 0);
  }
}

}  // namespace
}  // namespace recover::core
