#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/parallel/thread_pool.hpp"
#include "src/rng/engines.hpp"

namespace recover::parallel {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::uint64_t kCount = 10007;
  std::vector<std::atomic<int>> hits(kCount);
  pool.for_each_index(kCount, [&](std::uint64_t i) { ++hits[i]; });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.for_each_index(0, [&](std::uint64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::int64_t sum = 0;
  pool.for_each_index(100, [&](std::uint64_t i) {
    sum += static_cast<std::int64_t>(i);
  });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, RepeatedDispatchesWork) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.for_each_index(1000, [&](std::uint64_t i) {
      sum += static_cast<std::int64_t>(i);
    });
    ASSERT_EQ(sum.load(), 499500);
  }
}

TEST(ThreadPool, ResultIndependentOfThreadCount) {
  // Deterministic per-index seeding means any pool size produces the same
  // reduction.
  auto compute = [](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(256);
    pool.for_each_index(256, [&](std::uint64_t i) {
      rng::Xoshiro256PlusPlus eng(rng::derive_stream_seed(42, i));
      out[i] = eng();
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ParallelFor, GlobalPoolWorks) {
  std::vector<int> marks(512, 0);
  parallel_for(512, [&](std::uint64_t i) { marks[i] = 1; });
  EXPECT_EQ(std::accumulate(marks.begin(), marks.end(), 0), 512);
}

}  // namespace
}  // namespace recover::parallel
