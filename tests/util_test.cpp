#include <gtest/gtest.h>

#include <sstream>

#include "src/util/cli.hpp"
#include "src/util/sparkline.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

namespace recover::util {
namespace {

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.0, 3), "1.000");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(0.0, 0), "0");
}

TEST(Table, StoresCellsRowMajor) {
  Table t({"a", "b"});
  t.row().add("x").integer(42);
  t.row().num(1.5, 1).add("y");
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cell(0, 0), "x");
  EXPECT_EQ(t.cell(0, 1), "42");
  EXPECT_EQ(t.cell(1, 0), "1.5");
  EXPECT_EQ(t.cell(1, 1), "y");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.row().add("long-name").integer(7);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.row().integer(1).integer(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  Cli cli("prog", "test");
  cli.flag("n", "bins", "8");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.integer("n"), 8);
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  Cli cli("prog", "test");
  cli.flag("n", "bins", "8").flag("eps", "epsilon", "0.25").flag(
      "verbose", "chatty", "false");
  const char* argv[] = {"prog", "--n=32", "--eps", "0.5", "--verbose"};
  cli.parse(5, argv);
  EXPECT_EQ(cli.integer("n"), 32);
  EXPECT_DOUBLE_EQ(cli.real("eps"), 0.5);
  EXPECT_TRUE(cli.boolean("verbose"));
}

TEST(Cli, IntListSplitsOnCommas) {
  Cli cli("prog", "test");
  cli.flag("sizes", "sweep", "1,2,3");
  const char* argv[] = {"prog", "--sizes=64,128,256"};
  cli.parse(2, argv);
  const auto v = cli.int_list("sizes");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 64);
  EXPECT_EQ(v[2], 256);
}

TEST(Sparkline, EmptyAndFlatSeries) {
  EXPECT_EQ(sparkline({}), "");
  const std::string flat = sparkline({2.0, 2.0, 2.0});
  // Three identical midline glyphs.
  EXPECT_EQ(flat, "▄▄▄");
}

TEST(Sparkline, MonotoneRampUsesFullRange) {
  const std::string ramp = sparkline({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(ramp, "▁▂▃▄▅▆▇█");
}

TEST(Sparkline, DownsamplingKeepsSpikes) {
  std::vector<double> series(100, 0.0);
  series[57] = 10.0;  // lone spike must survive max-pooling
  const std::string s = sparkline(series, 10);
  EXPECT_NE(s.find("█"), std::string::npos);
}

TEST(BarChart, ScalesToMaximum) {
  const std::string chart = bar_chart({{"a", 2.0}, {"bb", 4.0}}, 8);
  EXPECT_NE(chart.find("a   2.000  |####\n"), std::string::npos);
  EXPECT_NE(chart.find("bb  4.000  |########\n"), std::string::npos);
}

TEST(BarChart, HandlesAllZeroValues) {
  const std::string chart = bar_chart({{"x", 0.0}}, 8);
  EXPECT_NE(chart.find("x  0.000  |\n"), std::string::npos);
}

TEST(ParseDurationMs, AcceptsUnitsAndBareMilliseconds) {
  std::int64_t out = -1;
  ASSERT_TRUE(parse_duration_ms("500ms", out));
  EXPECT_EQ(out, 500);
  ASSERT_TRUE(parse_duration_ms("2s", out));
  EXPECT_EQ(out, 2000);
  ASSERT_TRUE(parse_duration_ms("1.5s", out));
  EXPECT_EQ(out, 1500);
  ASSERT_TRUE(parse_duration_ms("1m", out));
  EXPECT_EQ(out, 60000);
  ASSERT_TRUE(parse_duration_ms("0.5m", out));
  EXPECT_EQ(out, 30000);
  ASSERT_TRUE(parse_duration_ms("250", out));  // bare number = ms
  EXPECT_EQ(out, 250);
  ASSERT_TRUE(parse_duration_ms("0", out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(parse_duration_ms("0ms", out));
  EXPECT_EQ(out, 0);
  // Fractions round to the nearest millisecond.
  ASSERT_TRUE(parse_duration_ms("1.0004s", out));
  EXPECT_EQ(out, 1000);
  ASSERT_TRUE(parse_duration_ms("1.0006s", out));
  EXPECT_EQ(out, 1001);
}

TEST(ParseDurationMs, RejectsMalformedNegativeAndOverflow) {
  std::int64_t out = 77;
  for (const char* bad :
       {"", "ms", "s", "m", "abc", "5x", "5 s", "--3s", "1e400", "-1s",
        "-250", "nan", "inf", "1ss", "2ms3", "999999999999999999999"}) {
    EXPECT_FALSE(parse_duration_ms(bad, out)) << bad;
    EXPECT_EQ(out, 77) << bad;  // untouched on failure
  }
}

TEST(CliDurationFlag, ParsesThroughTheFlagInterface) {
  Cli cli("t", "test");
  cli.flag("duration", "window", "2s");
  cli.flag("deadline", "budget", "0");
  const char* argv[] = {"t", "--duration=750ms"};
  cli.parse(2, argv);
  EXPECT_EQ(cli.duration_ms("duration"), 750);
  EXPECT_EQ(cli.duration_ms("deadline"), 0);  // default applies
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
  EXPECT_GE(timer.seconds(), 0.0);
  timer.reset();
  EXPECT_GE(timer.seconds(), 0.0);
  EXPECT_LT(timer.seconds(), 10.0);
}

}  // namespace
}  // namespace recover::util
