#include "src/fluid/ode.hpp"

#include <cmath>

#include "src/util/assert.hpp"

namespace recover::fluid {

void rk4_step(const OdeFn& f, double t, double dt, std::vector<double>& y) {
  const std::size_t n = y.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
  f(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k1[i];
  f(t + 0.5 * dt, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k2[i];
  f(t + 0.5 * dt, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * k3[i];
  f(t + dt, tmp, k4);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

std::vector<double> rk4_integrate(const OdeFn& f, std::vector<double> y0,
                                  double t0, double t1, double dt) {
  RL_REQUIRE(dt > 0);
  RL_REQUIRE(t1 >= t0);
  double t = t0;
  while (t < t1) {
    const double step = std::min(dt, t1 - t);
    rk4_step(f, t, step, y0);
    t += step;
  }
  return y0;
}

std::vector<double> integrate_to_fixed_point(const OdeFn& f,
                                             std::vector<double> y0,
                                             double dt, double tol,
                                             double t_max) {
  RL_REQUIRE(dt > 0 && tol > 0 && t_max > 0);
  std::vector<double> dydt(y0.size());
  double t = 0;
  while (t < t_max) {
    rk4_step(f, t, dt, y0);
    t += dt;
    f(t, y0, dydt);
    double worst = 0;
    for (const double d : dydt) worst = std::max(worst, std::abs(d));
    if (worst < tol) return y0;
  }
  return y0;
}

}  // namespace recover::fluid
