// Scenario A (§2, §4): the protocol the paper calls I_A.
//
// Repeatedly: remove a ball chosen i.u.r. among the m balls in the system
// (bin i loses a ball with probability v_i / m — distribution 𝒜(v) of
// Definition 3.2), then place a new ball with the scheduling rule.
// With rule ABKU[d] this is I_A-ABKU[d] (the Azar et al. dynamic process);
// with ADAP(x) it is I_A-ADAP(x).
//
// Theorem 1: for any right-oriented rule, τ(ε) ≤ ⌈m ln(m ε⁻¹)⌉, and the
// bound is tight up to lower-order terms.
#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>

#include "src/balls/load_vector.hpp"
#include "src/balls/rules.hpp"
#include "src/kernel/choice_block.hpp"

namespace recover::balls {

template <typename Rule>
class ScenarioAChain {
 public:
  using State = LoadVector;

  ScenarioAChain(LoadVector init, Rule rule)
      : state_(std::move(init)), rule_(std::move(rule)) {
    RL_REQUIRE(state_.balls() > 0);
  }

  [[nodiscard]] const LoadVector& state() const { return state_; }
  [[nodiscard]] LoadVector& mutable_state() { return state_; }
  void set_state(LoadVector s) {
    RL_REQUIRE(s.balls() == state_.balls());
    RL_REQUIRE(s.bins() == state_.bins());
    state_ = std::move(s);
  }

  [[nodiscard]] const Rule& rule() const { return rule_; }
  [[nodiscard]] std::size_t bins() const { return state_.bins(); }
  [[nodiscard]] std::int64_t balls() const { return state_.balls(); }

  /// One phase: remove via 𝒜(v), insert via the rule.
  template <typename Engine>
  void step(Engine& eng) {
    const std::size_t i = state_.sample_ball_weighted(eng);
    state_.remove_at(i);
    ProbeFresh<Engine> probe(eng, state_.bins());
    state_.add_at(rule_.place_index(state_, probe));
  }

  /// `steps` phases through the batched d-choice kernel: randomness is
  /// drawn in blocks, probes pre-mapped and pre-reduced, and the state
  /// updates run in a tight pass (src/kernel/choice_block.hpp).
  /// Byte-identical to `steps` calls to step().  Rules without a batched
  /// kernel (ADAP's probe count is state-dependent) take the scalar loop.
  template <typename Engine>
  void step_block(Engine& eng, std::int64_t steps) {
    if constexpr (std::is_same_v<Rule, AbkuRule>) {
      if (rule_.d() <= kernel::kMaxBatchedProbes) {
        step_block_batched(eng, steps);
        return;
      }
    }
    for (std::int64_t k = 0; k < steps; ++k) step(eng);
  }

 private:
  // Instantiated only for AbkuRule (guarded by if constexpr above).
  template <typename Engine>
  void step_block_batched(Engine& eng, std::int64_t steps) {
    const auto n = static_cast<std::uint64_t>(state_.bins());
    const auto m = static_cast<std::uint64_t>(state_.balls());
    kernel::DChoiceBatch batch;
    std::int64_t remaining = steps;
    while (remaining > 0) {
      const auto chunk = static_cast<std::size_t>(std::min<std::int64_t>(
          remaining, static_cast<std::int64_t>(kernel::kBatchSteps)));
      batch.fill(eng, n, rule_.d(), chunk);
      for (std::size_t i = 0; i < chunk; ++i) {
        bool lead_ok;
        const std::uint64_t t =
            kernel::lemire_map(batch.lead_raw(i), m, lead_ok);
        if (!lead_ok || batch.probe_unsafe(i)) {
          // A pre-drawn word may have been a Lemire rejection
          // (probability ≈ (m + d·n)/2^64 per step): replay the rest of
          // the burst through the scalar path, word for word.
          auto replay = batch.replay_from(eng, i);
          for (std::int64_t k = static_cast<std::int64_t>(i); k < remaining;
               ++k) {
            step(replay);
          }
          return;
        }
        state_.remove_at(
            state_.ball_at_quantile(static_cast<std::int64_t>(t)));
        state_.add_at(static_cast<std::size_t>(batch.choice(i)));
      }
      remaining -= static_cast<std::int64_t>(chunk);
    }
  }

  LoadVector state_;
  Rule rule_;
};

/// Exact removal pmf of 𝒜(v) over sorted indices (Definition 3.2):
/// p_i = v_i / m.  Used by the exact-mixing validation harness.
std::vector<double> scenario_a_removal_pmf(const LoadVector& v);

}  // namespace recover::balls
