# Empty compiler generated dependencies file for load_balancer_sim.
# This may be replaced when dependencies are built.
