// Random state and Γ-pair generators for property tests and the
// contraction experiments.
//
// The paper's inequalities (Lemma 4.1, Claims 5.1/5.2) are quantified over
// *every* pair at distance 1; the experiments sample pairs from a skewed
// family (balanced through heavily piled) so the measured worst case
// probes the whole range, including the boundary cases (empty deficit bin,
// runs of equal loads) the paper's case analysis sweats over.
#pragma once

#include <cstdint>
#include <utility>

#include "src/balls/load_vector.hpp"
#include "src/rng/distributions.hpp"

namespace recover::balls {

/// A random normalized state with tunable skew: each ball lands in bin
/// ⌊n·u^skew⌋ for u uniform; skew = 1 is uniform occupancy, larger skew
/// piles balls into low-index bins.
template <typename Engine>
LoadVector random_load_vector(std::size_t n, std::int64_t m, Engine& eng,
                              int skew = 1) {
  RL_REQUIRE(skew >= 1);
  std::vector<std::int64_t> loads(n, 0);
  for (std::int64_t b = 0; b < m; ++b) {
    double u = rng::uniform_real(eng);
    for (int k = 1; k < skew; ++k) u *= rng::uniform_real(eng);
    auto bin = static_cast<std::size_t>(u * static_cast<double>(n));
    if (bin >= n) bin = n - 1;
    ++loads[bin];
  }
  return LoadVector::from_loads(std::move(loads));
}

/// A uniform-ish random Γ-pair: (v, u) normalized with Δ(v, u) = 1,
/// built by moving one ball of a random state to a random bin.
template <typename Engine>
std::pair<LoadVector, LoadVector> random_gamma_pair(std::size_t n,
                                                    std::int64_t m,
                                                    Engine& eng,
                                                    int skew = 1) {
  // With one ball (or one bin) Ω_m is a single normalized state and no
  // distance-1 pair exists; the rejection loop below would never return.
  RL_REQUIRE(m >= 2);
  RL_REQUIRE(n >= 2);
  for (;;) {
    const LoadVector v = random_load_vector(n, m, eng, skew);
    LoadVector u = v;
    const std::size_t s = u.nonempty_count();
    const auto a = static_cast<std::size_t>(rng::uniform_below(eng, s));
    u.remove_at(a);
    const auto b = static_cast<std::size_t>(rng::uniform_below(eng, n));
    u.add_at(b);
    if (v.distance(u) == 1) return {v, u};
  }
}

}  // namespace recover::balls
