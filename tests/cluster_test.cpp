// recover::cluster tests: hash-ring placement properties, result-cache
// LRU + byte identity, and loopback router integration (real sockets,
// in-process serve::Server backends) — determinism across topologies,
// cache hits returning byte-exact replies, failover past draining and
// dead backends, and the shared run_cell validation surface.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/cluster/cache.hpp"
#include "src/cluster/digest.hpp"
#include "src/cluster/ring.hpp"
#include "src/cluster/router.hpp"
#include "src/obs/json_reader.hpp"
#include "src/rng/engines.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"
#include "src/sweep/grid.hpp"

namespace {

using namespace recover;
using namespace recover::cluster;

// --- hash ring ------------------------------------------------------------

TEST(HashRing, PlacementIsDeterministic) {
  HashRing a(64);
  HashRing b(64);
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string id = "127.0.0.1:" + std::to_string(9000 + i);
    a.add(i, id);
    b.add(i, id);
  }
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::uint64_t digest = rng::substream(42, k);
    EXPECT_EQ(a.owner(digest), b.owner(digest));
  }
}

TEST(HashRing, RouteListsEveryBackendOnceStartingAtOwner) {
  HashRing ring(64);
  for (std::size_t i = 0; i < 5; ++i) {
    ring.add(i, "127.0.0.1:" + std::to_string(9000 + i));
  }
  EXPECT_EQ(ring.backend_count(), 5u);
  for (std::uint64_t k = 0; k < 200; ++k) {
    const std::uint64_t digest = rng::substream(7, k);
    const auto order = ring.route(digest);
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order.front(), ring.owner(digest));
    EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(), 5u);
  }
}

TEST(HashRing, AddingABackendMovesAboutOneNthOfKeys) {
  constexpr std::size_t kBefore = 4;
  constexpr std::uint64_t kKeys = 20000;
  HashRing small(64);
  HashRing big(64);
  for (std::size_t i = 0; i < kBefore; ++i) {
    const std::string id = "127.0.0.1:" + std::to_string(9000 + i);
    small.add(i, id);
    big.add(i, id);
  }
  big.add(kBefore, "127.0.0.1:9004");
  std::uint64_t moved = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::uint64_t digest = rng::substream(3, k);
    const std::size_t before = small.owner(digest);
    const std::size_t after = big.owner(digest);
    if (before != after) {
      ++moved;
      // Consistent hashing: a key that moves can only move TO the new
      // backend, never shuffle between survivors.
      EXPECT_EQ(after, kBefore);
    }
  }
  // Expected share is 1/5 of the keyspace; vnode placement noise gives
  // it slack but it must be nowhere near the 4/5 a modulo rehash moves.
  const double share =
      static_cast<double>(moved) / static_cast<double>(kKeys);
  EXPECT_GT(share, 0.05);
  EXPECT_LT(share, 0.45);
}

TEST(HashRing, RemovingABackendOnlyMovesItsOwnKeys) {
  constexpr std::uint64_t kKeys = 20000;
  HashRing full(64);
  HashRing reduced(64);
  for (std::size_t i = 0; i < 5; ++i) {
    const std::string id = "127.0.0.1:" + std::to_string(9000 + i);
    full.add(i, id);
    reduced.add(i, id);
  }
  reduced.remove(2);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::uint64_t digest = rng::substream(11, k);
    const std::size_t before = full.owner(digest);
    const std::size_t after = reduced.owner(digest);
    if (before != 2) {
      EXPECT_EQ(after, before);  // survivors keep every key they owned
    } else {
      EXPECT_NE(after, 2u);
    }
  }
}

// --- result cache ---------------------------------------------------------

TEST(ResultCache, HitReturnsTheExactBytesPut) {
  ResultCache cache(8);
  const std::string value = "{\"T_mean\":27,\"ratio\":0.608636}";
  cache.put("exp01|m=16|1", value);
  std::string got;
  ASSERT_TRUE(cache.get("exp01|m=16|1", got));
  EXPECT_EQ(got, value);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.put("a", "1");
  cache.put("b", "2");
  std::string got;
  ASSERT_TRUE(cache.get("a", got));  // promotes a over b
  cache.put("c", "3");               // evicts b, the LRU entry
  EXPECT_FALSE(cache.get("b", got));
  EXPECT_TRUE(cache.get("a", got));
  EXPECT_TRUE(cache.get("c", got));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCache, ZeroCapacityDisablesWithoutCounting) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.put("a", "1");
  std::string got;
  EXPECT_FALSE(cache.get("a", got));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.insertions, 0u);
}

// --- digest ---------------------------------------------------------------

TEST(Digest, CacheKeyAndPlacementFollowTheCellContract) {
  const sweep::Experiment* exp = sweep::Registry::global().find("exp01");
  ASSERT_NE(exp, nullptr);
  serve::RunCellRequest req;
  req.exp = exp;
  req.cell.params = {{"m", 16}, {"d", 2}};
  req.seed = 7;
  EXPECT_EQ(cache_key(req), "exp01|m=16,d=2|7");
  // Placement must equal the run_cell seeding substream: the digest a
  // request routes by is the same value its result bytes derive from.
  EXPECT_EQ(placement_digest(req),
            rng::substream(7, sweep::cell_hash("exp01", req.cell)));
  // Axis order is part of the identity.
  serve::RunCellRequest swapped = req;
  swapped.cell.params = {{"d", 2}, {"m", 16}};
  EXPECT_NE(cache_key(swapped), cache_key(req));
  EXPECT_NE(placement_digest(swapped), placement_digest(req));
}

// --- loopback cluster -----------------------------------------------------

/// Minimal blocking client (same shape as serve_test's): one
/// connection, synchronous call/response, raw reply lines.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        fd_ >= 0 && ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                              sizeof addr) == 0;
    if (connected_) {
      const int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }

  /// Sends one request line, returns the raw reply line ("" on EOF).
  std::string call_raw(const std::string& request_line) {
    std::string data = request_line + "\n";
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return "";
      }
      sent += static_cast<std::size_t>(n);
    }
    std::string line;
    while (true) {
      if (framer_.next_line(line) == serve::LineReader::Next::kLine) {
        return line;
      }
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return "";
      }
      framer_.feed(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  serve::LineReader framer_;
};

std::string error_code_of(const std::string& line) {
  obs::JsonValue doc;
  if (!obs::parse_json(line, doc)) return "";
  const auto* error = doc.find("error");
  const auto* code = error != nullptr ? error->find("code") : nullptr;
  return code != nullptr && code->is_string() ? code->text : "";
}

/// A router over `n` fresh in-process recover_serve backends (passive
/// health only — probe threads need an admin plane, which loopback
/// tests don't carry).
struct Cluster {
  std::vector<std::unique_ptr<serve::Server>> servers;
  std::unique_ptr<Router> router;

  explicit Cluster(std::size_t n, std::size_t cache_entries) {
    RouterOptions options;
    for (std::size_t i = 0; i < n; ++i) {
      serve::ServerOptions backend;
      backend.workers = 1;
      servers.push_back(std::make_unique<serve::Server>(backend));
      EXPECT_TRUE(servers.back()->start());
      BackendConfig config;
      config.port = servers.back()->port();
      options.backends.push_back(config);
    }
    options.server.workers = 2;
    options.cache_entries = cache_entries;
    options.backend.connect_timeout_ms = 500;
    options.backend.eject_cooldown_ms = 100;
    router = std::make_unique<Router>(std::move(options));
    EXPECT_TRUE(router->start());
  }

  ~Cluster() {
    router->stop();
    for (auto& server : servers) server->stop();
  }
};

/// A small fixed request trace: 4 distinct cells, each requested with 2
/// seeds (ids vary so reply framing differs even when results repeat).
std::vector<std::string> fixed_trace() {
  std::vector<std::string> trace;
  int id = 1;
  for (const int m : {16, 32}) {
    for (const int d : {2, 3}) {
      for (const int seed : {1, 2}) {
        trace.push_back(
            "{\"schema\":\"recover.req/1\",\"id\":" + std::to_string(id++) +
            ",\"method\":\"run_cell\",\"params\":{\"exp\":\"exp01\","
            "\"seed\":" + std::to_string(seed) +
            ",\"params\":{\"m\":" + std::to_string(m) +
            ",\"d\":" + std::to_string(d) +
            ",\"density\":1,\"replicas\":2}}}");
      }
    }
  }
  return trace;
}

/// Runs the trace through a client and returns the extracted result
/// bytes, one per request; fails the test on any error reply.
std::vector<std::string> run_trace(int port,
                                   const std::vector<std::string>& trace) {
  Client client(port);
  EXPECT_TRUE(client.connected());
  std::vector<std::string> results;
  for (const std::string& request : trace) {
    const std::string reply = client.call_raw(request);
    std::string result;
    EXPECT_TRUE(serve::extract_result(reply, result)) << reply;
    results.push_back(result);
  }
  return results;
}

TEST(ClusterLoopback, ReplyBytesAreTopologyInvariant) {
  const auto trace = fixed_trace();
  // Direct backend, no router at all — the reference bytes.
  serve::ServerOptions direct_options;
  direct_options.workers = 1;
  serve::Server direct(direct_options);
  ASSERT_TRUE(direct.start());
  const auto reference = run_trace(direct.port(), trace);
  direct.stop();

  Cluster one(1, /*cache_entries=*/0);
  EXPECT_EQ(run_trace(one.router->port(), trace), reference);

  Cluster three(3, /*cache_entries=*/0);
  EXPECT_EQ(run_trace(three.router->port(), trace), reference);

  // With the cache on, a second pass over the trace is all hits — and
  // still the same bytes.
  Cluster cached(3, /*cache_entries=*/128);
  EXPECT_EQ(run_trace(cached.router->port(), trace), reference);
  EXPECT_EQ(run_trace(cached.router->port(), trace), reference);
  const auto stats = cached.router->cache_stats();
  EXPECT_EQ(stats.hits, trace.size());
  EXPECT_EQ(stats.misses, trace.size());
}

TEST(ClusterLoopback, CachedReplyIsByteIdenticalToFreshBackendReply) {
  Cluster cluster(2, /*cache_entries=*/16);
  Client client(cluster.router->port());
  ASSERT_TRUE(client.connected());
  const std::string request =
      "{\"schema\":\"recover.req/1\",\"id\":9,\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"exp01\",\"seed\":5,"
      "\"params\":{\"m\":16,\"d\":2,\"density\":1,\"replicas\":2}}}";
  const std::string fresh = client.call_raw(request);
  const std::string cached = client.call_raw(request);
  EXPECT_EQ(cached, fresh);  // same id ⇒ the whole line matches
  std::string fresh_result;
  ASSERT_TRUE(serve::extract_result(fresh, fresh_result));
  const auto stats = cluster.router->cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  // A different id re-wraps the same cached bytes.
  const std::string other_id =
      "{\"schema\":\"recover.req/1\",\"id\":10,\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"exp01\",\"seed\":5,"
      "\"params\":{\"m\":16,\"d\":2,\"density\":1,\"replicas\":2}}}";
  const std::string rewrapped = client.call_raw(other_id);
  std::string rewrapped_result;
  ASSERT_TRUE(serve::extract_result(rewrapped, rewrapped_result));
  EXPECT_EQ(rewrapped_result, fresh_result);
  EXPECT_EQ(rewrapped, serve::make_result("10", fresh_result));
}

TEST(ClusterLoopback, FailsOverWhenABackendDrains) {
  Cluster cluster(3, /*cache_entries=*/0);
  // Drain all but backend 0: every key whose owner drained must re-hash
  // to a surviving backend with no client-visible error.
  cluster.servers[1]->request_drain();
  cluster.servers[2]->request_drain();
  const auto trace = fixed_trace();
  const auto results = run_trace(cluster.router->port(), trace);
  EXPECT_EQ(results.size(), trace.size());
  const RouterStats stats = cluster.router->stats();
  EXPECT_GT(stats.failovers, 0u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(ClusterLoopback, FailsOverWhenABackendDies) {
  Cluster cluster(2, /*cache_entries=*/0);
  cluster.servers[1]->stop();  // socket gone: connects are refused
  const auto trace = fixed_trace();
  const auto results = run_trace(cluster.router->port(), trace);
  EXPECT_EQ(results.size(), trace.size());
  EXPECT_EQ(cluster.router->stats().exhausted, 0u);
}

TEST(ClusterLoopback, AllBackendsGoneAnswersOverloaded) {
  Cluster cluster(1, /*cache_entries=*/0);
  cluster.servers[0]->request_drain();
  Client client(cluster.router->port());
  ASSERT_TRUE(client.connected());
  const std::string reply = client.call_raw(
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"exp01\",\"seed\":1,"
      "\"params\":{\"m\":16,\"d\":2,\"density\":1,\"replicas\":2}}}");
  EXPECT_EQ(error_code_of(reply), "overloaded");
  EXPECT_EQ(cluster.router->stats().exhausted, 1u);
}

TEST(ClusterLoopback, ValidationMatchesTheBackendByteForByte) {
  // The router rejects locally (shared parse_run_cell); the message
  // must be the one a backend would have produced.
  Cluster cluster(1, /*cache_entries=*/0);
  serve::ServerOptions direct_options;
  direct_options.workers = 1;
  serve::Server direct(direct_options);
  ASSERT_TRUE(direct.start());
  const std::vector<std::string> bad_requests = {
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"run_cell\"}",
      "{\"schema\":\"recover.req/1\",\"id\":2,\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"nope\",\"params\":{\"m\":8}}}",
      "{\"schema\":\"recover.req/1\",\"id\":3,\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"exp01\",\"seed\":-1,\"params\":{\"m\":8}}}",
      "{\"schema\":\"recover.req/1\",\"id\":4,\"method\":\"run_cell\","
      "\"params\":{\"exp\":\"exp01\",\"params\":{\"m\":1.5}}}",
  };
  Client through_router(cluster.router->port());
  Client through_backend(direct.port());
  ASSERT_TRUE(through_router.connected());
  ASSERT_TRUE(through_backend.connected());
  for (const std::string& request : bad_requests) {
    EXPECT_EQ(through_router.call_raw(request),
              through_backend.call_raw(request));
  }
  direct.stop();
}

TEST(ClusterLoopback, NonRunCellMethodsAreServedLocally) {
  Cluster cluster(1, /*cache_entries=*/0);
  cluster.servers[0]->stop();  // backend dead; local methods still work
  Client client(cluster.router->port());
  ASSERT_TRUE(client.connected());
  const std::string reply = client.call_raw(
      "{\"schema\":\"recover.req/1\",\"id\":1,\"method\":\"ping\"}");
  EXPECT_EQ(reply, serve::make_result("1", "{\"pong\":true}"));
}

// --- extract_result -------------------------------------------------------

TEST(ExtractResult, RoundTripsMakeResult) {
  const std::string line = serve::make_result("42", "{\"pong\":true}");
  std::string result;
  ASSERT_TRUE(serve::extract_result(line, result));
  EXPECT_EQ(result, "{\"pong\":true}");
  // Error replies and foreign lines don't extract.
  EXPECT_FALSE(serve::extract_result(
      serve::make_error("1", serve::ErrorCode::kOverloaded, "full"),
      result));
  EXPECT_FALSE(serve::extract_result("{\"ok\":true}", result));
  // Nested objects keep every byte.
  const std::string nested = "{\"a\":{\"ok\":true,\"result\":[1,2]},\"b\":3}";
  const std::string wrapped = serve::make_result("\"x\"", nested);
  ASSERT_TRUE(serve::extract_result(wrapped, result));
  EXPECT_EQ(result, nested);
}

}  // namespace
