// RAII span timers: wall-clock durations recorded into the metrics
// registry's log₂ histograms AND, when --trace is active, as begin/end
// events in the per-thread trace ring (src/obs/trace_buffer.hpp) — one
// call site, two sinks, sharing a single clock read per edge.
//
// Usage on a hot loop:
//
//   static obs::Histogram& h =
//       obs::Registry::global().histogram("coalescence.replica_ns");
//   {
//     obs::ScopedSpan span(h);            // or (h, cell.key()) to label
//     ... replica body ...
//   }   // duration recorded here (ns); trace gets a matching end event
//
// The histogram's registered name doubles as the trace span label — its
// address is stable for the process lifetime (Registry contract), which
// is exactly what the ring's static-string event format requires.
//
// When both metrics and tracing are disabled the constructor is two
// relaxed loads plus a branch and the destructor a branch — the clock is
// never read.
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>

#include "src/obs/metrics.hpp"
#include "src/obs/trace_buffer.hpp"

namespace recover::obs {

class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram& sink) noexcept : ScopedSpan(sink, {}) {}

  /// `detail` (a sweep cell's grid key, a replica tag, …) is copied into
  /// the trace begin event; it is ignored — not even read — unless
  /// tracing is enabled.
  ScopedSpan(Histogram& sink, std::string_view detail) noexcept
      : sink_(sink), metrics_(metrics_enabled()), trace_(trace_enabled()) {
    if (metrics_ || trace_) start_ns_ = trace::now_ns();
    if (trace_) trace::begin_at(sink_.name().c_str(), start_ns_, detail);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (!metrics_ && !trace_) return;
    const std::uint64_t end_ns = trace::now_ns();
    if (metrics_) {
      sink_.record(end_ns > start_ns_ ? end_ns - start_ns_ : 0);
    }
    if (trace_) trace::end_at(sink_.name().c_str(), end_ns);
  }

 private:
  Histogram& sink_;
  bool metrics_;
  bool trace_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace recover::obs
