// Experiment E1 — Theorem 1: the recovery (mixing) time of scenario A
// with a right-oriented placement rule is τ(ε) = ⌈m ln(m ε⁻¹)⌉, tight up
// to lower-order terms.
//
// We measure the coalescence time of the grand coupling started from the
// extremal pair (all-in-one-bin vs balanced) for a sweep of m = n and
// d ∈ {1, 2, 3}.  Reproduction criterion: the ratio T / (m ln m) is flat
// in m (constant within noise) and the fitted log-log slope of T vs m is
// ≈ 1 (the ln factor biases it slightly above 1).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/balls/grand_coupling.hpp"
#include "src/core/coalescence.hpp"
#include "src/core/path_coupling.hpp"
#include "src/obs/run_record.hpp"
#include "src/stats/regression.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp01_scenario_a_mixing",
                "E1/Theorem 1: coalescence of I_A vs m ln m");
  cli.flag("sizes", "comma-separated m sweep (n = m/density)", "32,64,128,256,512");
  cli.flag("ds", "comma-separated ABKU d values", "1,2,3");
  cli.flag("density", "balls per bin m/n (Theorem 1 depends on m only)",
           "1");
  cli.flag("replicas", "coupling replicas per point", "24");
  cli.flag("seed", "rng seed", "1");
  cli.flag("csv", "emit CSV instead of a table", "false");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto sizes = cli.int_list("sizes");
  const auto ds = cli.int_list("ds");
  const auto density = cli.integer("density");
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  util::Table table({"d", "n", "m", "T_mean", "T_ci95", "T_q95", "m*ln(m)",
                     "ratio", "thm1_bound(1/4)", "secs"});

  for (const std::int64_t d : ds) {
    std::vector<double> xs, ys;
    for (const std::int64_t m : sizes) {
      const auto n = static_cast<std::size_t>(
          std::max<std::int64_t>(2, m / density));
      util::Timer timer;
      core::CoalescenceOptions opts;
      opts.replicas = replicas;
      opts.seed = seed + static_cast<std::uint64_t>(d) * 1000003;
      opts.max_steps = 200 * m * (1 + static_cast<std::int64_t>(
                                          std::log(static_cast<double>(m))));
      opts.check_interval = std::max<std::int64_t>(1, m / 8);
      const auto stats = core::measure_coalescence(
          [&](std::uint64_t) {
            return balls::GrandCouplingA<balls::AbkuRule>(
                balls::LoadVector::all_in_one(n, m),
                balls::LoadVector::balanced(n, m),
                balls::AbkuRule(static_cast<int>(d)));
          },
          opts);
      const double mlnm =
          static_cast<double>(m) * std::log(static_cast<double>(m));
      table.row()
          .integer(d)
          .integer(static_cast<std::int64_t>(n))
          .integer(m)
          .num(stats.steps.mean(), 1)
          .num(stats.steps.ci_halfwidth(), 1)
          .num(stats.q95, 1)
          .num(mlnm, 1)
          .num(stats.steps.mean() / mlnm, 3)
          .integer(static_cast<std::int64_t>(core::theorem1_bound(m, 0.25)))
          .num(timer.seconds(), 2);
      xs.push_back(static_cast<double>(m));
      ys.push_back(stats.steps.mean());
    }
    const auto fit = stats::loglog_fit(xs, ys);
    std::printf("# d=%lld  log-log slope of T vs m: %.3f (R^2 %.4f)\n",
                static_cast<long long>(d), fit.slope, fit.r_squared);
    run.note("loglog_slope_d" + std::to_string(d), fit.slope);
    run.note("loglog_r2_d" + std::to_string(d), fit.r_squared);
  }

  if (cli.boolean("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  run.add_table("coalescence_scaling", table);
  return 0;
}
