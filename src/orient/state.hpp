// State of the edge-orientation process (§6): the vector of per-vertex
// differences v_i = outdegree − indegree, kept sorted non-increasing
// (vertex identity is irrelevant, exactly as for load vectors) with
// Σ v_i = 0 (every edge contributes +1 and −1).
//
// One greedy step (uniform-edge model of Ajtai et al.):
//   pick two distinct vertex ranks φ < ψ i.u.r.; the arriving edge is
//   oriented from the smaller-difference vertex (rank ψ) to the larger
//   (rank φ), so v_ψ += 1 and v_φ −= 1 — the step always balances.
//   A lazy bit b (Remark 1) skips the step with probability ½ to make
//   the chain aperiodic; the slowdown factor is 2 ± o(1).
//
// The critical measure is the *unfairness* max_i |v_i| = max(v_0, −v_{n−1}).
#pragma once

#include <cstdint>
#include <vector>

#include "src/rng/distributions.hpp"
#include "src/util/assert.hpp"

namespace recover::orient {

class DiffState {
 public:
  /// All differences zero (the empty-multigraph start x̂).
  explicit DiffState(std::size_t n);

  /// Normalizes (sorts) an arbitrary vector; must sum to zero.
  static DiffState from_diffs(std::vector<std::int64_t> diffs);

  /// Adversarially unfair start: ⌊n/2⌋ vertices at +k, ⌊n/2⌋ at −k
  /// (odd n leaves one vertex at 0).  Models the "crash" of §1.
  static DiffState spread(std::size_t n, std::int64_t k);

  /// Staircase start (…, 2, 1, 0, −1, −2, …) clipped to ±k.
  static DiffState staircase(std::size_t n, std::int64_t k);

  [[nodiscard]] std::size_t vertices() const { return diffs_.size(); }
  [[nodiscard]] std::int64_t diff(std::size_t rank) const {
    return diffs_[rank];
  }
  [[nodiscard]] const std::vector<std::int64_t>& diffs() const {
    return diffs_;
  }

  [[nodiscard]] std::int64_t unfairness() const {
    return std::max(diffs_.front(), -diffs_.back());
  }

  /// Applies the oriented edge for ranks (phi < psi) — deterministic part
  /// of the step; renormalizes in O(log n) via the run trick of Fact 3.2.
  void apply_edge(std::size_t phi, std::size_t psi);

  /// One full lazy greedy step.
  template <typename Engine>
  void step(Engine& eng) {
    const auto [phi, psi] = pick_pair(eng);
    if (rng::coin(eng)) apply_edge(phi, psi);
  }

  /// Draws φ < ψ distinct i.u.r. from [0, n).
  template <typename Engine>
  std::pair<std::size_t, std::size_t> pick_pair(Engine& eng) const {
    const std::size_t n = diffs_.size();
    const auto a = static_cast<std::size_t>(rng::uniform_below(eng, n));
    auto b = static_cast<std::size_t>(rng::uniform_below(eng, n - 1));
    if (b >= a) ++b;
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  friend bool operator==(const DiffState& a, const DiffState& b) {
    return a.diffs_ == b.diffs_;
  }

  /// ½ L1 distance between sorted difference vectors (integral since both
  /// sum to zero); the coalescence monitor for the grand coupling.
  [[nodiscard]] std::int64_t distance(const DiffState& other) const;

  [[nodiscard]] bool invariants_hold() const;

 private:
  [[nodiscard]] std::size_t run_head(std::size_t i) const;
  [[nodiscard]] std::size_t run_tail(std::size_t i) const;

  std::vector<std::int64_t> diffs_;  // non-increasing, sum 0
};

}  // namespace recover::orient
