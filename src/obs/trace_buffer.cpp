#include "src/obs/trace_buffer.hpp"

#include <mutex>

namespace recover::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

// Name a thread asked for before its buffer existed (set_thread_name
// while tracing was disabled); applied at buffer creation.
thread_local std::string t_pending_name;

// The calling thread's ring, cached after the first (mutex-guarded)
// registration.  A raw pointer is safe: buffers live until process exit.
thread_local TraceBuffer* t_buffer = nullptr;

}  // namespace

bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool enabled) noexcept {
  if (enabled) TraceCollector::global().mark_epoch();
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

TraceBuffer::TraceBuffer(std::uint32_t tid, std::string thread_name,
                         std::size_t capacity)
    : tid_(tid),
      thread_name_(std::move(thread_name)),
      capacity_(capacity > 0 ? capacity : 1),
      events_(std::make_unique<TraceEvent[]>(capacity_)) {}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t first = head > capacity_ ? head - capacity_ : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(head - first));
  for (std::uint64_t i = first; i < head; ++i) {
    out.push_back(events_[i % capacity_]);
  }
  return out;
}

struct TraceCollector::Impl {
  mutable std::mutex mutex;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;  // tid order
  std::atomic<std::uint64_t> epoch_ns{0};
};

TraceCollector& TraceCollector::global() {
  static TraceCollector collector;
  return collector;
}

TraceCollector::Impl& TraceCollector::impl() const {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing != nullptr) return *existing;
  auto* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh,
                                    std::memory_order_acq_rel)) {
    return *fresh;
  }
  delete fresh;  // another thread won the race
  return *existing;
}

TraceBuffer& TraceCollector::this_thread_buffer() {
  if (t_buffer != nullptr) return *t_buffer;
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto tid = static_cast<std::uint32_t>(i.buffers.size());
  std::string name = t_pending_name.empty()
                         ? "thread-" + std::to_string(tid)
                         : t_pending_name;
  i.buffers.push_back(std::make_unique<TraceBuffer>(tid, std::move(name)));
  t_buffer = i.buffers.back().get();
  return *t_buffer;
}

void TraceCollector::set_this_thread_name(std::string name) {
  t_pending_name = name;
  if (t_buffer == nullptr) return;  // applied when the buffer is created
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  t_buffer->rename(std::move(name));
}

std::vector<TraceCollector::ThreadTrace> TraceCollector::collect() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::vector<ThreadTrace> out;
  out.reserve(i.buffers.size());
  for (const auto& buffer : i.buffers) {
    ThreadTrace t;
    t.tid = buffer->tid();
    t.name = buffer->thread_name();
    t.recorded = buffer->recorded();
    t.dropped = buffer->dropped();
    t.events = buffer->snapshot();
    out.push_back(std::move(t));
  }
  return out;
}

std::uint64_t TraceCollector::total_recorded() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : i.buffers) total += buffer->recorded();
  return total;
}

std::uint64_t TraceCollector::total_dropped() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : i.buffers) total += buffer->dropped();
  return total;
}

std::uint64_t TraceCollector::epoch_ns() const noexcept {
  return impl().epoch_ns.load(std::memory_order_relaxed);
}

void TraceCollector::mark_epoch() noexcept {
  Impl& i = impl();
  std::uint64_t expected = 0;
  i.epoch_ns.compare_exchange_strong(expected, trace::now_ns(),
                                     std::memory_order_relaxed);
}

void TraceCollector::reset_for_tests() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  i.buffers.clear();
  i.epoch_ns.store(0, std::memory_order_relaxed);
  t_buffer = nullptr;  // only resets the CALLING thread's cache; the
  // contract (header) is that no other thread is recording, and any
  // other thread's stale cache would dangle — which is why this is
  // test-only and the tests re-register threads afresh.
}

namespace trace {

void begin_at(const char* name, std::uint64_t ts_ns,
              std::string_view detail) noexcept {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.ts_ns = ts_ns;
  e.name = name;
  e.type = TraceEvent::Type::kBegin;
  if (!detail.empty()) e.set_detail(detail);
  TraceCollector::global().this_thread_buffer().push(e);
}

void end_at(const char* name, std::uint64_t ts_ns) noexcept {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.ts_ns = ts_ns;
  e.name = name;
  e.type = TraceEvent::Type::kEnd;
  TraceCollector::global().this_thread_buffer().push(e);
}

void instant(const char* name, const char* arg1_name, std::int64_t arg1,
             const char* arg2_name, std::int64_t arg2) noexcept {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.ts_ns = now_ns();
  e.name = name;
  e.type = TraceEvent::Type::kInstant;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  TraceCollector::global().this_thread_buffer().push(e);
}

void counter(const char* name, std::int64_t value) noexcept {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.ts_ns = now_ns();
  e.name = name;
  e.type = TraceEvent::Type::kCounter;
  e.arg1_name = "value";
  e.arg1 = value;
  TraceCollector::global().this_thread_buffer().push(e);
}

void set_thread_name(std::string name) {
  TraceCollector::global().set_this_thread_name(std::move(name));
}

}  // namespace trace

}  // namespace recover::obs
