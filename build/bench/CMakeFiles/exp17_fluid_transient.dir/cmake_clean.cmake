file(REMOVE_RECURSE
  "CMakeFiles/exp17_fluid_transient.dir/exp17_fluid_transient.cpp.o"
  "CMakeFiles/exp17_fluid_transient.dir/exp17_fluid_transient.cpp.o.d"
  "exp17_fluid_transient"
  "exp17_fluid_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp17_fluid_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
