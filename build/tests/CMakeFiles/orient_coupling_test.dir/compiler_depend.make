# Empty compiler generated dependencies file for orient_coupling_test.
# This may be replaced when dependencies are built.
