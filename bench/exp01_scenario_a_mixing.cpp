// Experiment E1 — Theorem 1: the recovery (mixing) time of scenario A
// with a right-oriented placement rule is τ(ε) = ⌈m ln(m ε⁻¹)⌉, tight up
// to lower-order terms.
//
// We measure the coalescence time of the grand coupling started from the
// extremal pair (all-in-one-bin vs balanced) for a sweep of m = n and
// d ∈ {1, 2, 3}.  Reproduction criterion: the ratio T / (m ln m) is flat
// in m (constant within noise) and the fitted log-log slope of T vs m is
// ≈ 1 (the ln factor biases it slightly above 1).
//
// The per-point body is the registered "exp01" SweepCell (src/sweep/),
// shared with bench/sweep_runner: the same grid and --seed produce the
// same numbers here, under the sweep engine, and from checkpoint resume.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/regression.hpp"
#include "src/sweep/registry.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp01_scenario_a_mixing",
                "E1/Theorem 1: coalescence of I_A vs m ln m");
  cli.flag("sizes", "comma-separated m sweep (n = m/density)", "32,64,128,256,512");
  cli.flag("ds", "comma-separated ABKU d values", "1,2,3");
  cli.flag("density", "balls per bin m/n (Theorem 1 depends on m only)",
           "1");
  cli.flag("replicas", "coupling replicas per point", "24");
  cli.flag("seed", "rng seed", "1");
  cli.flag("csv", "emit CSV instead of a table", "false");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto density = cli.integer("density");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  // Same axis order as the sweep_runner default grid, so cell indices
  // (hence per-cell substream seeds) line up with a sweep over this grid.
  sweep::GridSpec grid;
  grid.add_axis("d", cli.int_list("ds"));
  grid.add_axis("m", cli.int_list("sizes"));
  grid.add_axis("density", {density});
  grid.add_axis("replicas", {cli.integer("replicas")});
  const auto* exp = sweep::Registry::global().find("exp01");

  util::Table table({"d", "n", "m", "T_mean", "T_ci95", "T_q95", "m*ln(m)",
                     "ratio", "thm1_bound(1/4)", "secs"});
  std::map<std::int64_t, std::pair<std::vector<double>, std::vector<double>>>
      fits;  // d -> (log xs, ys)

  for (std::uint64_t index = 0; index < grid.cells(); ++index) {
    const auto cell = grid.cell(index);
    const std::int64_t m = cell.at("m");
    const std::int64_t d = cell.at("d");
    const auto n = static_cast<std::size_t>(
        std::max<std::int64_t>(2, m / density));
    util::Timer timer;
    sweep::CellContext ctx;
    ctx.seed = rng::substream(seed, index);
    ctx.parallel_within_cell = true;  // one cell at a time owns the pool
    const auto result = exp->run(cell, ctx);
    const double mlnm =
        static_cast<double>(m) * std::log(static_cast<double>(m));
    table.row()
        .integer(d)
        .integer(static_cast<std::int64_t>(n))
        .integer(m)
        .num(result.at("T_mean"), 1)
        .num(result.at("T_ci95"), 1)
        .num(result.at("T_q95"), 1)
        .num(mlnm, 1)
        .num(result.at("ratio_mlnm"), 3)
        .integer(static_cast<std::int64_t>(result.at("thm1_bound")))
        .num(timer.seconds(), 2);
    fits[d].first.push_back(static_cast<double>(m));
    fits[d].second.push_back(result.at("T_mean"));
  }

  for (const auto& [d, xy] : fits) {
    const auto fit = stats::loglog_fit(xy.first, xy.second);
    std::printf("# d=%lld  log-log slope of T vs m: %.3f (R^2 %.4f)\n",
                static_cast<long long>(d), fit.slope, fit.r_squared);
    run.note("loglog_slope_d" + std::to_string(d), fit.slope);
    run.note("loglog_r2_d" + std::to_string(d), fit.r_squared);
  }

  if (cli.boolean("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  run.add_table("coalescence_scaling", table);
  return 0;
}
