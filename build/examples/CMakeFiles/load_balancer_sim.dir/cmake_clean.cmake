file(REMOVE_RECURSE
  "CMakeFiles/load_balancer_sim.dir/load_balancer_sim.cpp.o"
  "CMakeFiles/load_balancer_sim.dir/load_balancer_sim.cpp.o.d"
  "load_balancer_sim"
  "load_balancer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balancer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
