#include "src/obs/trace_export.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/json_writer.hpp"
#include "src/obs/trace_buffer.hpp"

namespace recover::obs {

namespace {

// Chrome wants microseconds; keep the ns in the fraction.
std::string micros(std::uint64_t ts_ns, std::uint64_t epoch_ns) {
  const std::uint64_t rel = ts_ns > epoch_ns ? ts_ns - epoch_ns : 0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03" PRIu64, rel / 1000,
                rel % 1000);
  return buf;
}

void write_event_prefix(std::ostream& os, char ph, std::uint32_t tid) {
  os << "    {\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":" << tid;
}

void write_args_open(std::ostream& os, bool& opened) {
  os << (opened ? "," : ",\"args\":{");
  opened = true;
}

void write_event(std::ostream& os, const TraceEvent& e, std::uint32_t tid,
                 std::uint64_t epoch_ns) {
  char ph = 'i';
  switch (e.type) {
    case TraceEvent::Type::kBegin:
      ph = 'B';
      break;
    case TraceEvent::Type::kEnd:
      ph = 'E';
      break;
    case TraceEvent::Type::kInstant:
      ph = 'i';
      break;
    case TraceEvent::Type::kCounter:
      ph = 'C';
      break;
  }
  write_event_prefix(os, ph, tid);
  os << ",\"ts\":" << micros(e.ts_ns, epoch_ns);
  if (ph == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
  os << ",\"name\":\""
     << json_escape(e.name != nullptr ? e.name : "(unnamed)") << '"';
  bool args = false;
  if (e.detail[0] != '\0') {
    write_args_open(os, args);
    os << "\"detail\":\"" << json_escape(e.detail) << '"';
  }
  if (e.arg1_name != nullptr) {
    write_args_open(os, args);
    os << '"' << json_escape(e.arg1_name) << "\":" << e.arg1;
  }
  if (e.arg2_name != nullptr) {
    write_args_open(os, args);
    os << '"' << json_escape(e.arg2_name) << "\":" << e.arg2;
  }
  if (args) os << '}';
  os << '}';
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  const auto threads = TraceCollector::global().collect();
  const std::uint64_t epoch_ns = TraceCollector::global().epoch_ns();

  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  os << "{\n  \"traceEvents\": [";
  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    if (!first) os << ',';
    first = false;
    os << '\n';
    return os;
  };

  for (const auto& t : threads) {
    recorded += t.recorded;
    dropped += t.dropped;
    sep();
    write_event_prefix(os, 'M', t.tid);
    os << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << json_escape(t.name) << "\"}}";
  }

  for (const auto& t : threads) {
    // Balance repair (see the header): orphan ends — their begins were
    // dropped from the ring — are skipped; begins left open at export
    // get synthetic ends at the thread's last timestamp, closed in LIFO
    // order so nesting stays well formed.
    std::vector<const TraceEvent*> open;
    std::uint64_t last_ts = epoch_ns;
    for (const auto& e : t.events) {
      if (e.ts_ns > last_ts) last_ts = e.ts_ns;
      if (e.type == TraceEvent::Type::kEnd) {
        if (open.empty()) continue;  // orphan: begin was dropped
        open.pop_back();
      } else if (e.type == TraceEvent::Type::kBegin) {
        open.push_back(&e);
      }
      sep();
      write_event(os, e, t.tid, epoch_ns);
    }
    while (!open.empty()) {
      TraceEvent closer;
      closer.type = TraceEvent::Type::kEnd;
      closer.name = open.back()->name;
      closer.ts_ns = last_ts;
      open.pop_back();
      sep();
      write_event(os, closer, t.tid, epoch_ns);
    }
  }

  os << "\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {"
     << "\"schema\":\"recover.trace/1\",\"recorded\":" << recorded
     << ",\"dropped\":" << dropped << "}\n}\n";
}

bool export_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot open --trace path '%s'\n",
                 path.c_str());
    return false;
  }
  write_chrome_trace(out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "obs: failed writing trace '%s'\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace recover::obs
