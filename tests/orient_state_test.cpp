// Tests for the sorted difference-vector state of the edge-orientation
// process (§6).
#include <gtest/gtest.h>

#include "src/core/coalescence.hpp"
#include "src/orient/chain.hpp"
#include "src/orient/state.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/summary.hpp"

namespace recover::orient {
namespace {

TEST(DiffState, FactoriesNormalizeAndSumToZero) {
  const DiffState zero(5);
  EXPECT_EQ(zero.unfairness(), 0);
  EXPECT_TRUE(zero.invariants_hold());

  const DiffState s = DiffState::from_diffs({-2, 3, 0, -1, 0});
  EXPECT_EQ(s.diffs(), (std::vector<std::int64_t>{3, 0, 0, -1, -2}));
  EXPECT_EQ(s.unfairness(), 3);

  const DiffState sp = DiffState::spread(6, 4);
  EXPECT_EQ(sp.diffs(), (std::vector<std::int64_t>{4, 4, 4, -4, -4, -4}));
  const DiffState st = DiffState::staircase(7, 2);
  EXPECT_EQ(st.diffs(), (std::vector<std::int64_t>{2, 1, 0, 0, 0, -1, -2}));
}

TEST(DiffState, FromDiffsRejectsNonzeroSum) {
  EXPECT_DEATH(DiffState::from_diffs({1, 1}), "");
}

TEST(DiffState, ApplyEdgeBalancesDistinctValues) {
  // (3, 0, -3): edge between ranks 0 and 2 moves both toward 0.
  DiffState s = DiffState::from_diffs({3, 0, -3});
  s.apply_edge(0, 2);
  EXPECT_EQ(s.diffs(), (std::vector<std::int64_t>{2, 0, -2}));
  EXPECT_TRUE(s.invariants_hold());
}

TEST(DiffState, ApplyEdgeAdjacentValuesIsNoop) {
  // Difference gap of exactly 1: the multiset is unchanged.
  DiffState s = DiffState::from_diffs({1, 0, -1});
  const DiffState before = s;
  s.apply_edge(0, 1);
  EXPECT_EQ(s, before);
  s.apply_edge(1, 2);
  EXPECT_EQ(s, before);
}

TEST(DiffState, ApplyEdgeWithinEqualRunSplitsIt) {
  // Two vertices at 0: one becomes +1 (source), the other −1 (target).
  DiffState s = DiffState::from_diffs({0, 0});
  s.apply_edge(0, 1);
  EXPECT_EQ(s.diffs(), (std::vector<std::int64_t>{1, -1}));
  EXPECT_TRUE(s.invariants_hold());
}

TEST(DiffState, ApplyEdgeKeepsSortednessAcrossRuns) {
  DiffState s = DiffState::from_diffs({2, 2, 0, 0, -4});
  s.apply_edge(1, 4);  // rank-1 (value 2) down, rank-4 (value −4) up
  EXPECT_EQ(s.diffs(), (std::vector<std::int64_t>{2, 1, 0, 0, -3}));
  EXPECT_TRUE(s.invariants_hold());
}

TEST(DiffState, DistanceIsHalfL1) {
  const DiffState a = DiffState::from_diffs({2, 0, -2});
  const DiffState b = DiffState::from_diffs({1, 0, -1});
  EXPECT_EQ(a.distance(b), 1);
  EXPECT_EQ(b.distance(a), 1);
  EXPECT_EQ(a.distance(a), 0);
}

TEST(DiffState, StepPreservesInvariants) {
  rng::Xoshiro256PlusPlus eng(12);
  DiffState s = DiffState::spread(16, 8);
  for (int t = 0; t < 20000; ++t) {
    s.step(eng);
    if (t % 1000 == 0) {
      ASSERT_TRUE(s.invariants_hold());
    }
  }
  EXPECT_TRUE(s.invariants_hold());
}

TEST(DiffState, GreedyDrivesUnfairnessDown) {
  rng::Xoshiro256PlusPlus eng(13);
  DiffState s = DiffState::spread(32, 16);
  ASSERT_EQ(s.unfairness(), 16);
  for (int t = 0; t < 60000; ++t) s.step(eng);
  EXPECT_LE(s.unfairness(), 4) << "greedy failed to rebalance";
}

TEST(DiffState, PickPairIsUniformOverOrderedPairs) {
  rng::Xoshiro256PlusPlus eng(14);
  const DiffState s(4);
  // 6 ordered pairs for n = 4; chi-square against uniform.
  std::vector<std::int64_t> counts(6, 0);
  auto index = [](std::size_t a, std::size_t b) {
    // (0,1)(0,2)(0,3)(1,2)(1,3)(2,3)
    static constexpr int map[4][4] = {{-1, 0, 1, 2},
                                      {-1, -1, 3, 4},
                                      {-1, -1, -1, 5},
                                      {-1, -1, -1, -1}};
    return map[a][b];
  };
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) {
    const auto [a, b] = s.pick_pair(eng);
    ASSERT_LT(a, b);
    ++counts[static_cast<std::size_t>(index(a, b))];
  }
  const std::vector<double> expected(6, 1.0 / 6.0);
  EXPECT_LT(stats::chi_square_statistic(counts, expected),
            stats::chi_square_critical(5, 0.001));
}

TEST(GrandCouplingOrient, EqualCopiesStayEqual) {
  rng::Xoshiro256PlusPlus eng(15);
  const DiffState s = DiffState::staircase(10, 3);
  GrandCouplingOrient c(s, s);
  for (int t = 0; t < 5000; ++t) {
    c.step(eng);
    ASSERT_TRUE(c.coalesced());
  }
}

TEST(GrandCouplingOrient, AdversarialPairCoalesces) {
  core::CoalescenceOptions opts;
  opts.replicas = 4;
  opts.seed = 23;
  opts.max_steps = 2'000'000;
  opts.check_interval = 16;
  opts.parallel = false;
  const auto stats = core::measure_coalescence(
      [](std::uint64_t) {
        return GrandCouplingOrient(DiffState::spread(8, 4), DiffState(8));
      },
      opts);
  EXPECT_EQ(stats.censored, 0);
  EXPECT_GT(stats.steps.mean(), 0.0);
}

TEST(GreedyOrientationChain, WrapperDelegates) {
  rng::Xoshiro256PlusPlus eng(29);
  GreedyOrientationChain chain(DiffState::spread(12, 6));
  for (int t = 0; t < 5000; ++t) chain.step(eng);
  EXPECT_TRUE(chain.state().invariants_hold());
  EXPECT_EQ(chain.vertices(), 12u);
}

}  // namespace
}  // namespace recover::orient
