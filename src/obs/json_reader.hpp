// Minimal recursive-descent JSON reader: the decode-side counterpart of
// json_writer.hpp, shared by the sweep checkpoint loader and the serve
// wire protocol.
//
// Scope: the subset the repo's writers emit (objects, arrays, strings
// with \u00XX-style escapes for control bytes, numbers, booleans, null),
// but it parses general well-formed JSON so hand-edited checkpoints and
// hand-typed `nc` requests do not wedge it.  \uXXXX escapes (including
// surrogate pairs) decode to UTF-8.  Any syntax error — including
// trailing garbage after the document, which is how a torn checkpoint
// line or a torn wire frame presents — surfaces as a false return, never
// as a partial value the caller might trust.  Because the input may be
// untrusted network bytes, array/object nesting is capped at 64 levels;
// deeper documents fail to parse rather than recurse without bound.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace recover::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  /// First member with the given key (objects only); nullptr if absent.
  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
};

/// Parses `text` as one complete JSON document into `out`.  False on any
/// syntax error or trailing non-whitespace; `out` is unspecified then.
bool parse_json(const std::string& text, JsonValue& out);

}  // namespace recover::obs
