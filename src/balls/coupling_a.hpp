// The paper's Γ-coupling for scenario A (§4).
//
// For Δ(v, u) = 1, write v = u + e_λ − e_δ with λ < δ.  The two states
// share m − 1 balls; v additionally holds a ball in run λ, u in run δ.
// The removal coupling picks a uniform shared ball: draw i ~ 𝒜(v);
//   * i ≠ λ          → remove i from both (same shared ball);
//   * i = λ          → with probability 1/v_λ the drawn ball is the odd
//                      one: remove λ from v and δ from u (merging the
//                      states); otherwise remove λ from both.
// Lemma 4.1: after the coupled removal Δ(v*, u*) ≤ 1, and whenever the
// odd ball was drawn v* = u*.  The insertion (shared probes, Lemma 3.3)
// cannot increase the distance, giving Corollary 4.2:
//     E[Δ(v°, u°)] ≤ (1 − 1/m) Δ(v, u),
// and Theorem 1's mixing bound τ(ε) ≤ ⌈m ln(m ε⁻¹)⌉ via path coupling
// with D = m − ⌈m/n⌉ ≤ m.
#pragma once

#include "src/balls/coupling_common.hpp"
#include "src/rng/distributions.hpp"

namespace recover::balls {

/// One coupled phase of I_A on a Γ-pair (Δ(v,u) must be 1).
/// Mutates v, u in place and reports the resulting distance.
template <typename Rule, typename Engine>
GammaStepResult coupled_step_a(LoadVector& v, LoadVector& u, const Rule& rule,
                               Engine& eng) {
  RL_REQUIRE(v.distance(u) == 1);
  const auto [lambda, delta] = unit_difference(v, u);

  const std::size_t i = v.sample_ball_weighted(eng);
  std::size_t j = i;
  if (i == lambda) {
    const auto v_lambda = static_cast<double>(v.load(lambda));
    if (rng::uniform_real(eng) < 1.0 / v_lambda) j = delta;
  }
  v.remove_at(i);
  u.remove_at(j);

  GammaStepResult result;
  result.distance_after_removal = v.distance(u);
  result.removal_merged = (result.distance_after_removal == 0);
  coupled_place(rule, v, u, eng);
  result.distance_after = v.distance(u);
  return result;
}

}  // namespace recover::balls
