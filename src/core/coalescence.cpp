#include "src/core/coalescence.hpp"

#include <algorithm>
#include <cmath>

namespace recover::core {

CoalescenceStats summarize_coalescence(const std::vector<std::int64_t>& times,
                                       std::int64_t max_steps) {
  CoalescenceStats out;
  out.max_steps = max_steps;
  std::vector<std::int64_t> finished;
  finished.reserve(times.size());
  for (const std::int64_t t : times) {
    if (t < 0) {
      ++out.censored;
    } else {
      finished.push_back(t);
      out.steps.add(static_cast<double>(t));
    }
  }
  if (!finished.empty()) {
    std::sort(finished.begin(), finished.end());
    // Smallest order statistic whose empirical CDF reaches q:
    // sorted[⌈q·N⌉ − 1].
    const auto at = [&](double q) {
      const double pos = std::ceil(q * static_cast<double>(finished.size()));
      auto idx = pos <= 1.0 ? std::size_t{0}
                            : static_cast<std::size_t>(pos) - 1;
      if (idx >= finished.size()) idx = finished.size() - 1;
      return static_cast<double>(finished[idx]);
    };
    out.q50 = at(0.50);
    out.q95 = at(0.95);
  }
  return out;
}

}  // namespace recover::core
