#!/usr/bin/env bash
# Full local CI: configure, build with warnings-as-errors, run the test
# suite, smoke every experiment binary (each writing a recover.run/1
# JSON record), validate the records, and aggregate them into
# BENCH_smoke.json.  Mirrors what a hosted CI job for this repository
# runs.
#
# Env hooks:
#   BUILD_DIR=dir   build directory (default build-ci)
#   TSAN=1          additionally build parallel_test + obs_test +
#                   serve_test + ops_test + cluster_test + certify_test +
#                   rbb_test with -DRECOVERLIB_TSAN=ON and run them under
#                   ThreadSanitizer (separate build tree build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-ci}

echo "== docs: link and anchor check =="
python3 scripts/check_docs.py

cmake -B "$BUILD_DIR" -G Ninja -DRECOVERLIB_WERROR=ON
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure

JSON_DIR="$BUILD_DIR/bench-json"
rm -rf "$JSON_DIR"
mkdir -p "$JSON_DIR"

echo "== experiment smoke runs (with JSON records) =="
for exe in "$BUILD_DIR"/bench/exp*; do
  [ -x "$exe" ] || continue
  name=$(basename "$exe")
  echo "-- $name"
  "$exe" --metrics --json-out="$JSON_DIR/$name.json" > /dev/null
done

echo "-- bench_microbench"
"$BUILD_DIR"/bench/bench_microbench --metrics \
  --json-out="$JSON_DIR/bench_microbench.json" \
  --benchmark_min_time=0.01 > /dev/null

echo "== sweep engine: checkpoint + resume =="
SWEEP_CKPT="$JSON_DIR/sweep_exp01.ckpt.jsonl"
SWEEP_GRID="d=1..2;m=16..32:x2;density=1;replicas=4"
"$BUILD_DIR"/bench/sweep_runner --exp exp01 --grid "$SWEEP_GRID" \
  --checkpoint "$SWEEP_CKPT" --metrics \
  --json-out="$JSON_DIR/sweep_runner.json" > /dev/null
# A second run over the finished checkpoint must recompute nothing.
resume_line=$("$BUILD_DIR"/bench/sweep_runner --exp exp01 \
  --grid "$SWEEP_GRID" --checkpoint "$SWEEP_CKPT" | grep '^# sweep:')
echo "$resume_line"
case "$resume_line" in
  *" run=0 "*) ;;
  *)
    echo "ci.sh: sweep resume recomputed cells: $resume_line" >&2
    exit 1
    ;;
esac
python3 scripts/check_bench_json.py --sweep-checkpoint "$SWEEP_CKPT"

echo "== kernel byte-identity gate (RECOVER_KERNEL=scalar vs batched) =="
# Every smoke cell must produce bit-identical checkpoint records under
# both kernel modes; only the wall_seconds timing field may differ.
IDENT_DIR="$BUILD_DIR/kernel-identity"
rm -rf "$IDENT_DIR"
mkdir -p "$IDENT_DIR"
kernel_identity() {
  exp=$1
  grid=$2
  for mode in scalar batched; do
    RECOVER_KERNEL=$mode "$BUILD_DIR"/bench/sweep_runner --exp "$exp" \
      --grid "$grid" --checkpoint "$IDENT_DIR/$exp.$mode.jsonl" > /dev/null
    sed 's/"wall_seconds":[^,}]*//' "$IDENT_DIR/$exp.$mode.jsonl" \
      > "$IDENT_DIR/$exp.$mode.stripped"
  done
  if ! cmp -s "$IDENT_DIR/$exp.scalar.stripped" \
              "$IDENT_DIR/$exp.batched.stripped"; then
    echo "ci.sh: $exp results differ between kernel modes" >&2
    diff "$IDENT_DIR/$exp.scalar.stripped" \
         "$IDENT_DIR/$exp.batched.stripped" >&2 || true
    exit 1
  fi
  echo "-- $exp: identical across kernel modes"
}
kernel_identity exp01 "d=1..2;m=16..32:x2;density=1;replicas=4"
kernel_identity exp03 "density=1;n=8..16:x2;d=2;replicas=4"
kernel_identity exp06 "n=8..16:x2;replicas=4"
kernel_identity exp10 "d=1..2;n=64..128:x2;samples=50"
kernel_identity exp22 "d=1..2;n=8..16:x2;density=2;replicas=4"
kernel_identity exp23 "d=1;n=8..16:x2;density=2;replicas=4"

echo "== rbb: sweep resume in both kernel modes + committed baseline =="
# The RBB cells consume engine words per-round (state-dependent round
# lengths), so resume correctness is checked under BOTH kernel paths.
RBB_GRID="d=1..2;n=8..16:x2;density=2;replicas=4"
for mode in scalar batched; do
  RBB_CKPT="$JSON_DIR/sweep_exp22.$mode.ckpt.jsonl"
  RECOVER_KERNEL=$mode "$BUILD_DIR"/bench/sweep_runner --exp exp22 \
    --grid "$RBB_GRID" --checkpoint "$RBB_CKPT" > /dev/null
  resume_line=$(RECOVER_KERNEL=$mode "$BUILD_DIR"/bench/sweep_runner \
    --exp exp22 --grid "$RBB_GRID" --checkpoint "$RBB_CKPT" | grep '^# sweep:')
  echo "-- $mode: $resume_line"
  case "$resume_line" in
    *" run=0 "*) ;;
    *)
      echo "ci.sh: exp22 resume recomputed cells under $mode: $resume_line" >&2
      exit 1
      ;;
  esac
done
python3 scripts/check_bench_json.py --rbb BENCH_rbb.json

echo "== kernel perf gate =="
# Speedup floors (batched vs scalar, same run) are hard; the >20%
# baseline regression check is soft unless PERF_GATE=hard — shared CI
# hosts are too noisy for absolute times to block merges by default.
"$BUILD_DIR"/bench/bench_microbench --json-out="$BUILD_DIR/bench_kernels.json" \
  --benchmark_filter=BM_Kernel --benchmark_min_time=0.05 \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true > /dev/null
python3 scripts/perf_gate.py "$BUILD_DIR/bench_kernels.json"

echo "== certify: chain conformance in both kernel modes =="
# Random instances per registered chain model: exact-vs-sampled law
# agreement, scalar-vs-batched byte identity, coupling faithfulness,
# structural invariants (docs/CERTIFICATION.md).  Time-boxed — hitting
# the budget is a pass, a property failure is not, and every failure
# prints one CERTIFY FAIL line with a replay command.
for mode in scalar batched; do
  echo "-- RECOVER_KERNEL=$mode"
  RECOVER_KERNEL=$mode "$BUILD_DIR"/bench/certify_runner --suite=chains \
    --instances=8 --time-budget=60s
done

echo "== tracing: record, validate, analyze =="
# Outside JSON_DIR: the *.json glob below expects recover.run/1 records.
TRACE_FILE="$BUILD_DIR/sweep_exp01.trace.json"
"$BUILD_DIR"/bench/sweep_runner --exp exp01 --grid "$SWEEP_GRID" \
  --threads 2 --trace="$TRACE_FILE" > /dev/null
python3 scripts/check_bench_json.py --trace "$TRACE_FILE"
python3 scripts/trace_stats.py "$TRACE_FILE"

echo "== serve: boot, load, drain =="
# Boot the TCP service on an ephemeral port, drive it with the open-loop
# generator for ~2s, and require zero protocol errors plus a clean
# SIGTERM drain (exit 0).  The loadgen record joins the aggregate below.
SERVE_LOG="$BUILD_DIR/serve_ci.log"
"$BUILD_DIR"/bench/recover_serve --port 0 --workers 4 > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^# serve: listening' "$SERVE_LOG" 2>/dev/null && break
  sleep 0.1
done
SERVE_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_LOG")
if [ -z "$SERVE_PORT" ]; then
  echo "ci.sh: recover_serve never reported a port" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
"$BUILD_DIR"/bench/serve_loadgen --port "$SERVE_PORT" --qps 200 --conns 8 \
  --duration 2s --mix "ping=3,run_cell=1" --metrics \
  --json-out="$JSON_DIR/serve_loadgen.json"
# Structure-aware protocol fuzz against the live daemon: 10k mutated
# frames (truncation, splicing, depth bombs, surrogate abuse, oversized
# lines) must draw only taxonomy errors — no crash, no hang, no
# off-taxonomy reply — and the server must still drain cleanly after.
"$BUILD_DIR"/bench/certify_runner --suite=protocol --port="$SERVE_PORT" \
  --frames=10000
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "ci.sh: recover_serve did not drain cleanly on SIGTERM" >&2
  cat "$SERVE_LOG" >&2
  exit 1
fi
grep '^# serve: drained' "$SERVE_LOG"
python3 scripts/check_bench_json.py --serve "$JSON_DIR/serve_loadgen.json"
# The committed baseline must satisfy the same gate.
python3 scripts/check_bench_json.py --serve BENCH_serve.json

echo "== ops: admin plane, scraping load, readiness drain =="
# Boot the daemon with the full telemetry plane (docs/OBSERVABILITY.md,
# "Live telemetry"): probe /metrics + /healthz + /readyz, drive scraping
# load, then assert /readyz flips to 503 inside the --drain-grace window
# after SIGTERM and that the access log holds well-formed lines.
OPS_LOG="$BUILD_DIR/serve_ops_ci.log"
ACCESS_LOG="$BUILD_DIR/serve_ops_access.jsonl"
rm -f "$ACCESS_LOG"
"$BUILD_DIR"/bench/recover_serve --port 0 --workers 4 --admin-port 0 \
  --access-log "$ACCESS_LOG" --drain-grace 2s > "$OPS_LOG" 2>&1 &
OPS_PID=$!
for _ in $(seq 1 100); do
  grep -q '^# serve: admin on' "$OPS_LOG" 2>/dev/null && break
  sleep 0.1
done
OPS_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$OPS_LOG")
ADMIN_PORT=$(sed -n 's/.*admin on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$OPS_LOG")
if [ -z "$OPS_PORT" ] || [ -z "$ADMIN_PORT" ]; then
  echo "ci.sh: recover_serve never reported its ports" >&2
  kill "$OPS_PID" 2>/dev/null || true
  exit 1
fi
probe() { # probe PATH EXPECTED_STATUS
  python3 - "$ADMIN_PORT" "$1" "$2" <<'EOF'
import sys, urllib.error, urllib.request
port, path, want = sys.argv[1], sys.argv[2], int(sys.argv[3])
try:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=5) as resp:
        got, body = resp.status, resp.read()
except urllib.error.HTTPError as e:
    got, body = e.code, e.read()
if got != want:
    sys.exit(f"probe {path}: got {got}, want {want}")
if want == 200 and not body:
    sys.exit(f"probe {path}: 200 with empty body")
EOF
}
probe /healthz 200
probe /readyz 200
probe /metrics 200
python3 scripts/serve_top.py --addr "127.0.0.1:$ADMIN_PORT" --once \
  | grep 'READY' > /dev/null || {
  echo "ci.sh: serve_top did not report READY" >&2
  exit 1
}
OPS_JSON="$BUILD_DIR/serve_loadgen_ops.json"
"$BUILD_DIR"/bench/serve_loadgen --port "$OPS_PORT" --qps 200 --conns 8 \
  --duration 2s --mix "ping=3,run_cell=1" --metrics \
  --admin-port "$ADMIN_PORT" --scrape-interval 200ms \
  --json-out="$OPS_JSON"
kill -TERM "$OPS_PID"
sleep 0.5  # in-flight work drains; the grace window is 2s
probe /readyz 503  # router ejection: drained but still answering
if ! wait "$OPS_PID"; then
  echo "ci.sh: recover_serve did not drain cleanly on SIGTERM" >&2
  cat "$OPS_LOG" >&2
  exit 1
fi
grep '^# serve: access log written=' "$OPS_LOG"
python3 - "$ACCESS_LOG" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1], encoding="utf-8") if l.strip()]
if not lines:
    sys.exit("access log is empty")
for i, line in enumerate(lines, 1):
    doc = json.loads(line)
    if doc.get("schema") != "recover.access/1":
        sys.exit(f"line {i}: schema {doc.get('schema')!r}")
    if not doc.get("req_id") or not doc.get("method"):
        sys.exit(f"line {i}: req_id/method missing")
print(f"ci.sh: access log OK ({len(lines)} lines)")
EOF
python3 scripts/check_bench_json.py --ops "$OPS_JSON"
# The committed baseline must satisfy the same gate.
python3 scripts/check_bench_json.py --ops BENCH_ops.json

echo "== cluster: determinism, failover under fire, committed baseline =="
# 1. The determinism gate: a fixed trace must produce byte-identical
#    replies direct, through 1 backend, through 3 backends, and through
#    3 backends with the cache on (tests/cluster_test.cpp).
"$BUILD_DIR"/tests/cluster_test \
  --gtest_filter='ClusterLoopback.ReplyBytesAreTopologyInvariant'
# 2. The failover drill: router over two backends (with /readyz
#    probing), Zipf load through the front door, SIGTERM one backend
#    mid-load.  The loadgen must finish with zero protocol errors
#    (re-hash is invisible on the wire), the router must record
#    failovers and mark the dead backend DOWN, and every surviving
#    process must drain cleanly.  The cache stays off so re-hashed
#    keys actually travel to the surviving backend.
CL_B1_LOG="$BUILD_DIR/cluster_b1.log"
CL_B2_LOG="$BUILD_DIR/cluster_b2.log"
CL_LOG="$BUILD_DIR/cluster_ci.log"
"$BUILD_DIR"/bench/recover_serve --port 0 --workers 2 --admin-port 0 \
  > "$CL_B1_LOG" 2>&1 &
CL_B1_PID=$!
"$BUILD_DIR"/bench/recover_serve --port 0 --workers 2 --admin-port 0 \
  > "$CL_B2_LOG" 2>&1 &
CL_B2_PID=$!
for _ in $(seq 1 100); do
  grep -q '^# serve: admin on' "$CL_B1_LOG" 2>/dev/null \
    && grep -q '^# serve: admin on' "$CL_B2_LOG" 2>/dev/null && break
  sleep 0.1
done
CL_B1_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$CL_B1_LOG")
CL_B2_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$CL_B2_LOG")
CL_B1_ADMIN=$(sed -n 's/.*admin on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$CL_B1_LOG")
CL_B2_ADMIN=$(sed -n 's/.*admin on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$CL_B2_LOG")
if [ -z "$CL_B1_PORT" ] || [ -z "$CL_B2_PORT" ] \
    || [ -z "$CL_B1_ADMIN" ] || [ -z "$CL_B2_ADMIN" ]; then
  echo "ci.sh: cluster backends never reported ports" >&2
  kill "$CL_B1_PID" "$CL_B2_PID" 2>/dev/null || true
  exit 1
fi
"$BUILD_DIR"/bench/recover_cluster --port 0 --workers 2 \
  --backends "127.0.0.1:$CL_B1_PORT:$CL_B1_ADMIN,127.0.0.1:$CL_B2_PORT:$CL_B2_ADMIN" \
  --cache-entries 0 --probe-interval 200ms --eject-cooldown 200ms \
  --admin-port 0 --drain-grace 2s > "$CL_LOG" 2>&1 &
CL_PID=$!
for _ in $(seq 1 100); do
  grep -q '^# cluster: admin on' "$CL_LOG" 2>/dev/null && break
  sleep 0.1
done
CL_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$CL_LOG")
CL_ADMIN=$(sed -n 's/.*admin on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$CL_LOG")
if [ -z "$CL_PORT" ] || [ -z "$CL_ADMIN" ]; then
  echo "ci.sh: recover_cluster never reported its ports" >&2
  kill "$CL_PID" "$CL_B1_PID" "$CL_B2_PID" 2>/dev/null || true
  exit 1
fi
CL_JSON="$JSON_DIR/serve_loadgen_cluster.json"
CL_LOADGEN_LOG="$BUILD_DIR/cluster_loadgen.log"
"$BUILD_DIR"/bench/serve_loadgen --port "$CL_PORT" --qps 300 --conns 4 \
  --duration 3s --mix "run_cell=1" --key-dist zipf:1.1 --key-space 64 \
  --cluster --admin-port "$CL_ADMIN" --scrape-interval 200ms --metrics \
  --json-out="$CL_JSON" > "$CL_LOADGEN_LOG" 2>&1 &
CL_LOADGEN_PID=$!
sleep 1
kill -TERM "$CL_B2_PID"  # one backend dies mid-load
if ! wait "$CL_LOADGEN_PID"; then
  echo "ci.sh: cluster loadgen failed during the failover drill" >&2
  cat "$CL_LOADGEN_LOG" >&2
  exit 1
fi
cat "$CL_LOADGEN_LOG"
if ! wait "$CL_B2_PID"; then
  echo "ci.sh: killed backend did not drain cleanly on SIGTERM" >&2
  cat "$CL_B2_LOG" >&2
  exit 1
fi
grep -q ' failovers=[1-9]' "$CL_LOADGEN_LOG" || {
  echo "ci.sh: router recorded no failovers after the backend died" >&2
  exit 1
}
python3 scripts/serve_top.py --addr "127.0.0.1:$CL_ADMIN" --once \
  | grep -q 'DOWN' || {
  echo "ci.sh: serve_top does not show the dead backend as DOWN" >&2
  exit 1
}
kill -TERM "$CL_PID"
if ! wait "$CL_PID"; then
  echo "ci.sh: recover_cluster did not drain cleanly on SIGTERM" >&2
  cat "$CL_LOG" >&2
  exit 1
fi
grep '^# cluster: drained' "$CL_LOG"
kill -TERM "$CL_B1_PID"
wait "$CL_B1_PID" || {
  echo "ci.sh: surviving backend did not drain cleanly" >&2
  exit 1
}
# Zero protocol errors across the drill, byte-exact wire contract.
python3 scripts/check_bench_json.py --serve "$CL_JSON"
# 3. The committed scaling baseline must satisfy the acceptance gate
#    (>= 1.8x multi-backend ok_rps, cache hit ratio >= 0.5).  Re-run
#    scripts/bench_cluster.py to regenerate it after router changes.
python3 scripts/check_bench_json.py --cluster BENCH_cluster.json

echo "== validating JSON records =="
python3 scripts/check_bench_json.py "$JSON_DIR"/*.json \
  --aggregate BENCH_smoke.json

echo "== example smoke runs =="
for exe in "$BUILD_DIR"/examples/*; do
  [ -x "$exe" ] && [ -f "$exe" ] || continue
  echo "-- $exe"
  "$exe" > /dev/null
done

if [ "${TSAN:-0}" = "1" ]; then
  echo "== ThreadSanitizer (parallel, obs, serve, ops, cluster, certify, rbb) =="
  cmake -B build-tsan -G Ninja -DRECOVERLIB_TSAN=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan --target parallel_test obs_test serve_test \
    ops_test cluster_test certify_test rbb_test
  ./build-tsan/tests/parallel_test
  ./build-tsan/tests/obs_test
  ./build-tsan/tests/serve_test
  ./build-tsan/tests/ops_test
  ./build-tsan/tests/cluster_test
  ./build-tsan/tests/certify_test
  ./build-tsan/tests/rbb_test
fi

echo "CI OK"
