# Empty dependencies file for orient_state_test.
# This may be replaced when dependencies are built.
