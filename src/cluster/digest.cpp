#include "src/cluster/digest.hpp"

#include "src/rng/engines.hpp"
#include "src/sweep/grid.hpp"

namespace recover::cluster {

std::string cache_key(const serve::RunCellRequest& req) {
  std::string key = req.exp->name;
  key += '|';
  key += req.cell.key();
  key += '|';
  key += std::to_string(req.seed);
  return key;
}

std::uint64_t placement_digest(const serve::RunCellRequest& req) {
  return rng::substream(req.seed, sweep::cell_hash(req.exp->name, req.cell));
}

}  // namespace recover::cluster
