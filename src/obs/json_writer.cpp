#include "src/obs/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "src/util/assert.hpp"

namespace recover::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto byte = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", byte);
          out += buf;
        } else {
          out += ch;  // UTF-8 continuation bytes included
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  RL_REQUIRE(ec == std::errc());
  return std::string(buf, ptr);
}

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  RL_REQUIRE(stack_.empty() || stack_.back() == Scope::kArray);
  RL_REQUIRE(!(stack_.empty() && wrote_));  // one top-level value only
  if (!stack_.empty()) {
    if (!first_in_scope_.back()) os_ << ',';
    first_in_scope_.back() = false;
    newline_indent();
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  wrote_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RL_REQUIRE(!stack_.empty() && stack_.back() == Scope::kObject);
  RL_REQUIRE(!pending_key_);
  const bool empty = first_in_scope_.back();
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (!empty) newline_indent();
  os_ << '}';
  if (stack_.empty()) os_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  wrote_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RL_REQUIRE(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool empty = first_in_scope_.back();
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (!empty) newline_indent();
  os_ << ']';
  if (stack_.empty()) os_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  RL_REQUIRE(!stack_.empty() && stack_.back() == Scope::kObject);
  RL_REQUIRE(!pending_key_);
  if (!first_in_scope_.back()) os_ << ',';
  first_in_scope_.back() = false;
  newline_indent();
  os_ << '"' << json_escape(k) << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  wrote_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  os_ << json_number(v);
  wrote_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  wrote_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  wrote_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  wrote_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  wrote_ = true;
  return *this;
}

}  // namespace recover::obs
