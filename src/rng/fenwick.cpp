#include "src/rng/fenwick.hpp"

#include <bit>

namespace recover::rng {

Fenwick::Fenwick(const std::vector<std::int64_t>& weights)
    : tree_(weights.size() + 1, 0) {
  // O(n) construction: place each weight then push to parent.
  for (std::size_t i = 1; i <= weights.size(); ++i) {
    tree_[i] += weights[i - 1];
    const std::size_t parent = i + (i & (~i + 1));
    if (parent <= weights.size()) tree_[parent] += tree_[i];
  }
}

void Fenwick::add(std::size_t i, std::int64_t delta) {
  RL_DBG_ASSERT(i < size());
  for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
    tree_[j] += delta;
  }
}

std::int64_t Fenwick::prefix(std::size_t i) const {
  RL_DBG_ASSERT(i <= size());
  std::int64_t sum = 0;
  for (std::size_t j = i; j > 0; j -= j & (~j + 1)) sum += tree_[j];
  return sum;
}

std::int64_t Fenwick::at(std::size_t i) const {
  return prefix(i + 1) - prefix(i);
}

std::size_t Fenwick::find(std::int64_t target) const {
  RL_DBG_ASSERT(target >= 0);
  RL_DBG_ASSERT(target < total());
  std::size_t pos = 0;
  std::size_t mask = std::bit_floor(tree_.size() - 1);
  while (mask != 0) {
    const std::size_t next = pos + mask;
    if (next < tree_.size() && tree_[next] <= target) {
      target -= tree_[next];
      pos = next;
    }
    mask >>= 1;
  }
  return pos;  // 0-based index of selected element
}

}  // namespace recover::rng
