# Empty dependencies file for exp07_recovery_trajectory.
# This may be replaced when dependencies are built.
