// Recovery-trajectory measurement: how long until a chain started in an
// arbitrarily bad ("crashed") state returns to a typical value of a
// critical measure (maximum load, unfairness, …)?
//
// This is the application-level reading of the paper's recovery time
// (§1.1): the mixing-time bounds guarantee the observable is typical
// after τ steps from *any* start; here we start at adversarial states and
// detect the first *sustained* entry into the typical band (a single
// lucky sample does not count as recovered).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/kernel/kernel.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/progress.hpp"
#include "src/obs/trace.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/summary.hpp"
#include "src/util/assert.hpp"

namespace recover::core {

struct TrajectoryOptions {
  std::int64_t max_steps = 1'000'000;
  std::int64_t sample_interval = 1;  // record the observable every k steps
};

/// Runs `chain` forward and records observable(chain) every
/// sample_interval steps (index s holds the value after (s+1)·interval
/// steps).
template <typename Chain, typename Observable>
std::vector<double> record_trajectory(Chain& chain, Observable&& observable,
                                      const TrajectoryOptions& options,
                                      std::uint64_t seed) {
  RL_REQUIRE(options.max_steps > 0);
  RL_REQUIRE(options.sample_interval > 0);
  static obs::Histogram& trajectory_ns =
      obs::Registry::global().histogram("recovery.trajectory_ns");
  obs::ScopedSpan span(trajectory_ns);
  rng::Xoshiro256PlusPlus eng(seed);
  std::vector<double> series;
  series.reserve(static_cast<std::size_t>(options.max_steps /
                                          options.sample_interval));
  std::int64_t t = 0;
  while (t < options.max_steps) {
    const std::int64_t burst =
        std::min(options.sample_interval, options.max_steps - t);
    kernel::advance(chain, eng, burst);
    t += burst;
    series.push_back(observable(chain));
  }
  return series;
}

/// First sample index s such that series[s .. s+window) all lie within
/// [lo, hi]; returns -1 if no such sustained entry exists.
std::int64_t first_sustained_entry(const std::vector<double>& series,
                                   double lo, double hi, std::size_t window);

struct RecoveryStats {
  stats::Summary hitting_steps;  // over replicas that recovered
  std::int64_t censored = 0;
};

/// Replicated recovery measurement: `make_chain(replica)` builds a chain
/// in the crash state; recovery = first sustained entry of the observable
/// into [lo, hi] over `window` consecutive samples.  Each replica stops
/// stepping as soon as the sustained entry is detected (the horizon
/// options.max_steps only bounds the censored case).
template <typename MakeChain, typename Observable>
RecoveryStats measure_recovery(MakeChain&& make_chain, Observable&& observable,
                               double lo, double hi, std::size_t window,
                               int replicas, const TrajectoryOptions& options,
                               std::uint64_t seed) {
  RL_REQUIRE(replicas > 0);
  RL_REQUIRE(window >= 1);
  RL_REQUIRE(options.max_steps > 0);
  RL_REQUIRE(options.sample_interval > 0);
  static obs::Counter& replicas_run =
      obs::Registry::global().counter("recovery.replicas");
  static obs::Counter& replicas_censored =
      obs::Registry::global().counter("recovery.censored");
  static obs::Histogram& hitting_hist =
      obs::Registry::global().histogram("recovery.hitting_steps");
  static obs::Histogram& replica_ns =
      obs::Registry::global().histogram("recovery.replica_ns");
  obs::Progress progress("recovery", static_cast<std::uint64_t>(replicas));
  RecoveryStats out;
  for (int r = 0; r < replicas; ++r) {
    obs::ScopedSpan span(replica_ns);
    auto chain = make_chain(r);
    rng::Xoshiro256PlusPlus eng(
        rng::derive_stream_seed(seed, static_cast<std::uint64_t>(r)));
    std::int64_t t = 0;
    std::size_t run = 0;
    std::int64_t entered_at = -1;
    while (t < options.max_steps) {
      const std::int64_t burst =
          std::min(options.sample_interval, options.max_steps - t);
      kernel::advance(chain, eng, burst);
      t += burst;
      const double value = observable(chain);
      if (value >= lo && value <= hi) {
        if (run == 0) entered_at = t;
        if (++run >= window) break;
      } else {
        run = 0;
        entered_at = -1;
      }
    }
    replicas_run.add();
    if (run >= window) {
      out.hitting_steps.add(static_cast<double>(entered_at));
      hitting_hist.record(static_cast<std::uint64_t>(entered_at));
      progress.tick(1, 0);
    } else {
      ++out.censored;
      replicas_censored.add();
      progress.tick(1, 1);
    }
  }
  return out;
}

}  // namespace recover::core
