#include "src/util/sparkline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/assert.hpp"
#include "src/util/table.hpp"

namespace recover::util {
namespace {

// UTF-8 block elements from one-eighth to full.
const char* const kBlocks[8] = {"▁", "▂", "▃", "▄",
                                "▅", "▆", "▇", "█"};

}  // namespace

std::string sparkline(const std::vector<double>& series) {
  if (series.empty()) return {};
  const double lo = *std::min_element(series.begin(), series.end());
  const double hi = *std::max_element(series.begin(), series.end());
  std::string out;
  out.reserve(series.size() * 3);
  for (const double v : series) {
    std::size_t level = 3;  // flat series sit on the midline
    if (hi > lo) {
      level = static_cast<std::size_t>((v - lo) / (hi - lo) * 7.999);
      if (level > 7) level = 7;
    }
    out += kBlocks[level];
  }
  return out;
}

std::string sparkline(const std::vector<double>& series, std::size_t width) {
  RL_REQUIRE(width >= 1);
  if (series.size() <= width) return sparkline(series);
  // Max-pool each bucket so spikes survive downsampling.
  std::vector<double> pooled(width);
  for (std::size_t b = 0; b < width; ++b) {
    const std::size_t begin = b * series.size() / width;
    const std::size_t end = (b + 1) * series.size() / width;
    double mx = series[begin];
    for (std::size_t i = begin; i < end; ++i) mx = std::max(mx, series[i]);
    pooled[b] = mx;
  }
  return sparkline(pooled);
}

std::string bar_chart(const std::vector<std::pair<std::string, double>>& rows,
                      std::size_t max_bar_width) {
  RL_REQUIRE(max_bar_width >= 1);
  if (rows.empty()) return {};
  double hi = 0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : rows) {
    hi = std::max(hi, value);
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream os;
  for (const auto& [label, value] : rows) {
    const auto bars =
        hi > 0 ? static_cast<std::size_t>(value / hi *
                                          static_cast<double>(max_bar_width))
               : 0;
    os << label << std::string(label_width - label.size(), ' ') << "  "
       << format_double(value, 3) << "  |" << std::string(bars, '#') << '\n';
  }
  return os.str();
}

}  // namespace recover::util
