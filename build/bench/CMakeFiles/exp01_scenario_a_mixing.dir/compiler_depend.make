# Empty compiler generated dependencies file for exp01_scenario_a_mixing.
# This may be replaced when dependencies are built.
