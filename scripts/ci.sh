#!/usr/bin/env bash
# Full local CI: configure, build with warnings-as-errors, run the test
# suite, then smoke every experiment binary with its default (fast)
# parameters.  Mirrors what a hosted CI job for this repository runs.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-ci}

cmake -B "$BUILD_DIR" -G Ninja -DRECOVERLIB_WERROR=ON
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure

echo "== experiment smoke runs =="
for exe in "$BUILD_DIR"/bench/exp* "$BUILD_DIR"/bench/bench_microbench; do
  [ -x "$exe" ] || continue
  echo "-- $exe"
  "$exe" > /dev/null
done

echo "== example smoke runs =="
for exe in "$BUILD_DIR"/examples/*; do
  [ -x "$exe" ] && [ -f "$exe" ] || continue
  echo "-- $exe"
  "$exe" > /dev/null
done

echo "CI OK"
