file(REMOVE_RECURSE
  "CMakeFiles/delayed_coupling_test.dir/delayed_coupling_test.cpp.o"
  "CMakeFiles/delayed_coupling_test.dir/delayed_coupling_test.cpp.o.d"
  "delayed_coupling_test"
  "delayed_coupling_test.pdb"
  "delayed_coupling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delayed_coupling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
