// Tests for the Repeated Balls-into-Bins family (src/balls/rbb.hpp):
// the deterministic ejection primitive, the exact round law against
// sampled frequencies, scalar/batched byte identity for the chain and
// the grand coupling, coupling absorption and coalescence, the
// self-stabilization headline from the worst-case start, and the
// certify mutant checks proving the "rbb" registration can fail.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/balls/load_vector.hpp"
#include "src/balls/rbb.hpp"
#include "src/balls/rules.hpp"
#include "src/certify/check.hpp"
#include "src/certify/model.hpp"
#include "src/certify/properties.hpp"
#include "src/kernel/kernel.hpp"
#include "src/rng/distributions.hpp"
#include "src/rng/engines.hpp"

namespace recover::balls {
namespace {

class ModeGuard {
 public:
  explicit ModeGuard(kernel::Mode m) : prev_(kernel::set_mode(m)) {}
  ~ModeGuard() { kernel::set_mode(prev_); }

 private:
  kernel::Mode prev_;
};

// ---------------------------------------------------------------------------
// The ejection primitive.

TEST(Ejection, MatchesManualSemantics) {
  LoadVector v = LoadVector::from_loads({4, 2, 1, 0});
  EXPECT_EQ(v.eject_one_per_nonempty(), 3u);
  EXPECT_EQ(v.loads(), (std::vector<std::int64_t>{3, 1, 0, 0}));
  EXPECT_EQ(v.balls(), 4);
  EXPECT_TRUE(v.invariants_hold());

  // Load-1 bins empty out and the vector stays sorted.
  LoadVector w = LoadVector::from_loads({2, 1, 1, 0});
  EXPECT_EQ(w.eject_one_per_nonempty(), 3u);
  EXPECT_EQ(w.loads(), (std::vector<std::int64_t>{1, 0, 0, 0}));
  EXPECT_TRUE(w.invariants_hold());

  // The concentrated crash state ejects exactly one ball per round.
  LoadVector pile = LoadVector::all_in_one(8, 20);
  EXPECT_EQ(pile.eject_one_per_nonempty(), 1u);
  EXPECT_EQ(pile.max_load(), 19);

  // The balanced state with m = 2n ejects from every bin (the rebuild
  // branch of the Fenwick update).
  LoadVector flat = LoadVector::balanced(16, 32);
  EXPECT_EQ(flat.eject_one_per_nonempty(), 16u);
  EXPECT_EQ(flat.balls(), 16);
  EXPECT_TRUE(flat.invariants_hold());
}

TEST(RBBChain, StepPreservesBallCountAndInvariants) {
  const std::uint64_t seed = certify::test_master_seed(0xEBB1);
  SCOPED_TRACE(certify::seed_banner(seed));
  rng::Xoshiro256PlusPlus eng(seed);
  RBBChain<AbkuRule> chain(LoadVector::piled(7, 15, 2), AbkuRule(2));
  for (int t = 0; t < 500; ++t) {
    chain.step(eng);
    ASSERT_EQ(chain.state().balls(), 15);
    if (t % 50 == 0) {
      ASSERT_TRUE(chain.state().invariants_hold());
    }
  }
}

// ---------------------------------------------------------------------------
// Exact round law (the s-fold placement-pmf convolution registered as
// the certify independent model) vs sampled one-round frequencies.

TEST(RBBChain, ExactRoundLawMatchesSampledFrequencies) {
  const certify::ChainModel* model = certify::builtin_registry().find("rbb");
  ASSERT_NE(model, nullptr);
  certify::Instance in;
  in.n = 3;
  in.m = 4;
  in.d = 2;
  const std::string start = certify::key_of({4, 0, 0});
  const certify::StepLaw law = model->exact_step(in, start);
  double total = 0.0;
  for (const auto& [key, p] : law) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);

  const std::uint64_t seed = certify::test_master_seed(0xEBB2);
  SCOPED_TRACE(certify::seed_banner(seed));
  rng::Xoshiro256PlusPlus eng(seed);
  const int trials = 40000;
  std::map<std::string, int> counts;
  for (int t = 0; t < trials; ++t) {
    RBBChain<AbkuRule> chain(LoadVector::all_in_one(in.n, in.m),
                             AbkuRule(in.d));
    chain.step(eng);
    ++counts[certify::key_of(chain.state().loads())];
  }
  double tv = 0.0;
  std::set<std::string> support;
  for (const auto& [key, p] : law) {
    support.insert(key);
    const double freq = static_cast<double>(counts[key]) / trials;
    tv += std::abs(freq - p);
  }
  for (const auto& [key, count] : counts) {
    ASSERT_TRUE(support.count(key))
        << "sampled state outside the exact support: " << key;
  }
  EXPECT_LT(tv / 2.0, 0.02);
}

// ---------------------------------------------------------------------------
// Byte identity: scalar and batched paths must produce the same state
// AND consume the same engine words.

TEST(RBBChain, ScalarAndBatchedRunsAreByteIdentical) {
  const std::uint64_t seed = certify::test_master_seed(0xEBB3);
  SCOPED_TRACE(certify::seed_banner(seed));
  struct Case {
    std::size_t n;
    std::int64_t m;
    int d;
  };
  for (const Case c : {Case{5, 10, 1}, Case{4, 8, 2}, Case{6, 18, 3}}) {
    RBBChain<AbkuRule> scalar(LoadVector::all_in_one(c.n, c.m), AbkuRule(c.d));
    RBBChain<AbkuRule> batched = scalar;
    rng::Xoshiro256PlusPlus es(seed + c.n);
    rng::Xoshiro256PlusPlus eb(seed + c.n);
    {
      ModeGuard guard(kernel::Mode::kScalar);
      kernel::advance(scalar, es, 300);
    }
    {
      ModeGuard guard(kernel::Mode::kBatched);
      kernel::advance(batched, eb, 300);
    }
    EXPECT_EQ(scalar.state().loads(), batched.state().loads())
        << "n=" << c.n << " m=" << c.m << " d=" << c.d;
    EXPECT_EQ(es(), eb()) << "word divergence at n=" << c.n << " d=" << c.d;
  }
}

TEST(GrandCouplingRBB, ScalarAndBatchedCouplingsAreByteIdentical) {
  const std::uint64_t seed = certify::test_master_seed(0xEBB4);
  SCOPED_TRACE(certify::seed_banner(seed));
  for (const int d : {1, 2, 3}) {
    GrandCouplingRBB<AbkuRule> scalar(LoadVector::all_in_one(6, 12),
                                      LoadVector::balanced(6, 12),
                                      AbkuRule(d));
    GrandCouplingRBB<AbkuRule> batched = scalar;
    rng::Xoshiro256PlusPlus es(seed + static_cast<std::uint64_t>(d));
    rng::Xoshiro256PlusPlus eb(seed + static_cast<std::uint64_t>(d));
    {
      ModeGuard guard(kernel::Mode::kScalar);
      kernel::advance(scalar, es, 300);
    }
    {
      ModeGuard guard(kernel::Mode::kBatched);
      kernel::advance(batched, eb, 300);
    }
    EXPECT_EQ(scalar.first().loads(), batched.first().loads()) << "d=" << d;
    EXPECT_EQ(scalar.second().loads(), batched.second().loads()) << "d=" << d;
    EXPECT_EQ(es(), eb()) << "word divergence at d=" << d;
  }
}

// ---------------------------------------------------------------------------
// Coupling: absorption and coalescence.

TEST(GrandCouplingRBB, EqualCopiesStayEqualForever) {
  rng::Xoshiro256PlusPlus eng(5);
  const LoadVector v = LoadVector::piled(8, 16, 3);
  GrandCouplingRBB<AbkuRule> c(v, v, AbkuRule(2));
  ASSERT_TRUE(c.coalesced());
  for (int t = 0; t < 2000; ++t) {
    c.step(eng);
    ASSERT_TRUE(c.coalesced());
  }
}

TEST(GrandCouplingRBB, ExtremalPairCoalescesAndStaysCoalesced) {
  const std::uint64_t seed = certify::test_master_seed(0xEBB5);
  SCOPED_TRACE(certify::seed_banner(seed));
  rng::Xoshiro256PlusPlus eng(seed);
  GrandCouplingRBB<AbkuRule> c(LoadVector::all_in_one(6, 12),
                               LoadVector::balanced(6, 12), AbkuRule(2));
  std::int64_t t = 0;
  const std::int64_t cap = 500000;
  while (!c.coalesced() && t < cap) {
    c.step(eng);
    ++t;
  }
  ASSERT_TRUE(c.coalesced()) << "no coalescence within " << cap << " rounds";
  EXPECT_GT(t, 0);
  for (int k = 0; k < 500; ++k) {
    c.step(eng);
    ASSERT_TRUE(c.coalesced());
  }
}

TEST(GrandCouplingRBB, DistanceIsZeroExactlyAtCoalescence) {
  rng::Xoshiro256PlusPlus eng(11);
  GrandCouplingRBB<AbkuRule> c(LoadVector::all_in_one(5, 10),
                               LoadVector::balanced(5, 10), AbkuRule(1));
  for (int t = 0; t < 5000; ++t) {
    ASSERT_EQ(c.distance() == 0, c.coalesced());
    c.step(eng);
  }
}

// ---------------------------------------------------------------------------
// Self-stabilization (Los–Sauerwald): from the worst-case concentrated
// start the max load drains into the typical O(log n) band and stays
// there — the time-averaged max load over the last quarter of the run
// is far below the first quarter.

TEST(RBBSelfStabilization, WorstCaseStartMaxLoadDecays) {
  const std::uint64_t seed = certify::test_master_seed(0xEBB6);
  SCOPED_TRACE(certify::seed_banner(seed));
  const std::size_t n = 32;
  const std::int64_t m = 64;
  rng::Xoshiro256PlusPlus eng(seed);
  RBBChain<AbkuRule> chain(LoadVector::all_in_one(n, m), AbkuRule(1));
  const std::int64_t rounds = 4 * m;
  double first_quarter = 0.0, last_quarter = 0.0;
  for (std::int64_t t = 0; t < rounds; ++t) {
    chain.step(eng);
    const auto load = static_cast<double>(chain.state().max_load());
    if (t < rounds / 4) first_quarter += load;
    if (t >= 3 * rounds / 4) last_quarter += load;
  }
  first_quarter /= static_cast<double>(rounds / 4);
  last_quarter /= static_cast<double>(rounds - 3 * rounds / 4);
  EXPECT_LT(last_quarter, first_quarter / 4.0)
      << "max load did not decay: first-quarter avg " << first_quarter
      << ", last-quarter avg " << last_quarter;
  EXPECT_LT(chain.state().max_load(), m / 4);
}

// ---------------------------------------------------------------------------
// Certify mutants: the "rbb" registration must be able to FAIL.  A
// conformance entry that cannot fail certifies nothing.

certify::CertifyOptions mutant_options() {
  certify::CertifyOptions options;
  options.seed = 7;
  options.instances = 3;
  options.law_trials = 8000;
  options.identity_steps = 64;
  options.invariant_steps = 32;
  return options;
}

const certify::ChainModel& model_or_die(const std::string& name) {
  const certify::ChainModel* model = certify::builtin_registry().find(name);
  if (model == nullptr) std::abort();
  return *model;
}

std::set<std::string> failed_properties(const certify::CertifyReport& report) {
  std::set<std::string> properties;
  for (const certify::CheckFailure& failure : report.failures) {
    properties.insert(failure.property);
  }
  return properties;
}

TEST(RBBCertifyMutants, LazySampleStepFailsExactVsSampled) {
  certify::ChainModel mutant = model_or_die("rbb");
  mutant.name = "rbb_lazy_sampler";
  const auto real_sample = mutant.sample_step;
  mutant.sample_step = [real_sample](const certify::Instance& in,
                                     const std::string& start,
                                     rng::Xoshiro256PlusPlus& eng) {
    // A lazy chain: half the rounds do nothing.  The sampled law then
    // carries spurious mass on the start state (the true RBB round
    // always moves the concentrated starts).
    if (rng::coin(eng)) return start;
    return real_sample(in, start, eng);
  };
  mutant.run = {};            // isolate: no kernel identity checks
  mutant.invariant_run = {};  // no invariant checks
  certify::ModelRegistry registry;
  registry.add(mutant);
  const certify::CertifyReport report =
      certify::certify_models(registry, mutant_options());
  ASSERT_FALSE(report.ok()) << "the harness accepted a lazy RBB sampler";
  EXPECT_EQ(failed_properties(report),
            (std::set<std::string>{"exact_vs_sampled"}));
}

TEST(RBBCertifyMutants, DivergentBatchedWordsFailKernelIdentity) {
  certify::ChainModel mutant = model_or_die("rbb");
  mutant.name = "rbb_broken_words";
  const auto real_run = mutant.run;
  mutant.run = [real_run](const certify::Instance& in, std::uint64_t seed,
                          std::int64_t steps) {
    certify::RunResult result = real_run(in, seed, steps);
    if (kernel::mode() == kernel::Mode::kBatched) result.engine_word ^= 1;
    return result;
  };
  certify::ModelRegistry registry;
  registry.add(mutant);
  const certify::CertifyReport report =
      certify::certify_models(registry, mutant_options());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(failed_properties(report),
            (std::set<std::string>{"scalar_vs_batched"}));
}

TEST(RBBCertifyMutants, BiasedCouplingMarginalFailsFaithfulness) {
  certify::ChainModel mutant = model_or_die("grand_coupling_rbb");
  mutant.name = "grand_coupling_rbb_biased";
  const auto real_coupled = mutant.coupled_step;
  const auto real_exact = mutant.exact_step;
  mutant.coupled_step = [real_coupled, real_exact](
                            const certify::Instance& in, const std::string& x,
                            const std::string& y,
                            rng::Xoshiro256PlusPlus& eng) {
    auto [kx, ky] = real_coupled(in, x, y, eng);
    // Bias the x marginal: half the time, snap it to the modal outcome.
    if (rng::coin(eng)) {
      const certify::StepLaw law = real_exact(in, x);
      kx = std::max_element(law.begin(), law.end(),
                            [](const auto& a, const auto& b) {
                              return a.second < b.second;
                            })
               ->first;
    }
    return std::make_pair(kx, ky);
  };
  mutant.run = {};  // isolate: no kernel identity checks
  certify::ModelRegistry registry;
  registry.add(mutant);
  const certify::CertifyReport report =
      certify::certify_models(registry, mutant_options());
  ASSERT_FALSE(report.ok());
  const std::set<std::string> failed = failed_properties(report);
  EXPECT_TRUE(failed.count("coupling_marginal_x"))
      << "the biased x marginal went undetected";
  EXPECT_FALSE(failed.count("coupling_marginal_y"))
      << "the untouched marginal was flagged";
}

}  // namespace
}  // namespace recover::balls
