#include "src/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <utility>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace recover::serve {

namespace {

/// Poll tick: the latency with which blocked reader/accept threads
/// notice a drain or stop request.
constexpr int kPollTimeoutMs = 100;

obs::Counter& requests_counter() {
  static obs::Counter& c = obs::Registry::global().counter("serve.requests");
  return c;
}
obs::Counter& shed_counter() {
  static obs::Counter& c = obs::Registry::global().counter("serve.shed");
  return c;
}
obs::Counter& deadline_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.deadline_exceeded");
  return c;
}
obs::Counter& protocol_error_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.protocol_errors");
  return c;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("serve.queue_depth");
  return g;
}
obs::Gauge& connections_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("serve.connections");
  return g;
}
obs::Histogram& request_ns_histogram() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("serve.request_ns");
  return h;
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  if (options_.window_slots < 1) options_.window_slots = 1;
  if (options_.window_tick_ms < 10) options_.window_tick_ms = 10;
  // Same bound the protocol enforces on requests: past it the ms→ns
  // conversion in handle_line could wrap.
  if (options_.default_deadline_ms > kMaxDeadlineMs) {
    options_.default_deadline_ms = kMaxDeadlineMs;
  }
}

Server::~Server() { stop(); }

bool Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::fprintf(stderr, "serve: socket: %s\n", std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "serve: bad host '%s'\n", options_.host.c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    std::fprintf(stderr, "serve: bind %s:%d: %s\n", options_.host.c_str(),
                 options_.port, std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    std::fprintf(stderr, "serve: listen: %s\n", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }

  if (!options_.access_log_path.empty() &&
      !access_log_.open(options_.access_log_path)) {
    // An operator who asked for an access log gets a hard failure, not a
    // silently log-less daemon.
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  start_ns_ = obs::trace::now_ns();
  window_latency_ = std::make_unique<ops::WindowedHistogram>(
      request_ns_histogram(), options_.window_slots);
  window_requests_ = std::make_unique<ops::WindowedCounter>(
      [this] { return requests_total_.load(std::memory_order_relaxed); },
      options_.window_slots);
  window_shed_ = std::make_unique<ops::WindowedCounter>(
      [this] { return shed_total_.load(std::memory_order_relaxed); },
      options_.window_slots);

  started_ = true;
  ticker_stop_ = false;
  ticker_ = std::thread([this] {
    obs::trace::set_thread_name("serve.ticker");
    ticker_loop();
  });
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] {
      obs::trace::set_thread_name("serve.worker-" + std::to_string(w));
      worker_loop();
    });
  }
  return true;
}

void Server::ticker_loop() {
  std::unique_lock<std::mutex> lock(ticker_mutex_);
  for (;;) {
    ticker_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.window_tick_ms),
                        [this] { return ticker_stop_; });
    if (ticker_stop_) return;
    lock.unlock();
    window_latency_->tick();
    window_requests_->tick();
    window_shed_->tick();
    lock.lock();
  }
}

void Server::accept_loop() {
  obs::trace::set_thread_name("serve.accept");
  while (!draining_.load(std::memory_order_acquire) &&
         !stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready <= 0) {
      reap_readers(/*join_all=*/false);
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) {
        continue;
      }
      break;  // listen socket gone
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options_.send_timeout_ms > 0) {
      // Bound reply writes: without this a client that sends requests
      // but never reads replies fills its receive window and blocks the
      // worker inside send_line forever (queue_capacity such clients
      // would wedge the whole pool and make drain hang).
      timeval tv{};
      tv.tv_sec = options_.send_timeout_ms / 1000;
      tv.tv_usec =
          static_cast<suseconds_t>(options_.send_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }

    const std::uint64_t serial =
        connections_total_.fetch_add(1, std::memory_order_relaxed) + 1;
    connections_open_.fetch_add(1, std::memory_order_relaxed);
    connections_gauge().set(
        static_cast<double>(connections_open_.load(std::memory_order_relaxed)));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->serial = serial;
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(readers_mutex_);
    readers_.push_back(Reader{
        std::thread([this, conn, done] { reader_loop(conn, done); }), done});
  }
  // Stop accepting the moment drain begins: close the listening socket
  // so new connects are refused, not queued.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::reap_readers(bool join_all) {
  std::vector<std::thread> joinable;
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    for (auto it = readers_.begin(); it != readers_.end();) {
      if (join_all || it->done->load(std::memory_order_acquire)) {
        joinable.push_back(std::move(it->thread));
        it = readers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& t : joinable) t.join();
}

void Server::reader_loop(std::shared_ptr<Connection> conn,
                         std::shared_ptr<std::atomic<bool>> done) {
  obs::trace::set_thread_name("serve.conn");
  LineReader framer(options_.max_line_bytes);
  char buf[4096];
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{conn->fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n == 0) break;  // peer closed (half-close: replies still flush)
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    framer.feed(buf, static_cast<std::size_t>(n));
    std::string line;
    for (;;) {
      const LineReader::Next next = framer.next_line(line);
      if (next == LineReader::Next::kNeedMore) break;
      if (next == LineReader::Next::kOversized) {
        protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
        protocol_error_counter().add();
        send_line(conn,
                  make_error("null", ErrorCode::kParseError,
                             "request line exceeds the size cap"));
        continue;
      }
      handle_line(conn, line);
    }
  }
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  connections_gauge().set(
      static_cast<double>(connections_open_.load(std::memory_order_relaxed)));
  done->store(true, std::memory_order_release);
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  requests_counter().add();

  // Deterministic request id: accept order × position on the connection.
  // Assigned before parsing so even a shed request has one; a protocol
  // error burns an id (the sequence still identifies wire order).
  ++conn->req_seq;
  std::string req_id = "c";
  req_id += std::to_string(conn->serial);
  req_id += '-';
  req_id += std::to_string(conn->req_seq);

  Request request;
  const ParseOutcome outcome = parse_request(line, request);
  if (!outcome.ok) {
    // Not access-logged: an unparsed line has no trustworthy fields to
    // report (the protocol-error counters still see it).
    protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
    protocol_error_counter().add();
    send_line(conn, make_error(request.id, outcome.code, outcome.message));
    return;
  }

  if (request.method == "shutdown") {
    // Reply before draining so the initiator always sees the ack.
    send_line(conn, make_result(request.id, "{\"draining\":true}"));
    if (access_log_.is_open()) {
      access_log_.log(ops::AccessEntry{req_id, request.method, {}, "ok",
                                       "none", 0, 0});
    }
    request_drain();
    return;
  }

  const std::uint64_t now = obs::trace::now_ns();
  std::uint64_t deadline_ns = 0;
  if (request.deadline_ms >= 0) {
    deadline_ns =
        now + static_cast<std::uint64_t>(request.deadline_ms) * 1'000'000u;
  } else if (options_.default_deadline_ms > 0) {
    deadline_ns =
        now +
        static_cast<std::uint64_t>(options_.default_deadline_ms) * 1'000'000u;
  }

  // Admission: the one bounded queue.  Shedding happens here, on the
  // reader thread, so an overloaded server's cost per excess request is
  // one error line — memory stays bounded by capacity, not load.
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (draining_.load(std::memory_order_acquire)) {
      lock.unlock();
      send_line(conn, make_error(request.id, ErrorCode::kShuttingDown,
                                 "server is draining"));
      if (access_log_.is_open()) {
        access_log_.log(ops::AccessEntry{req_id, request.method, {},
                                         "shutting_down", "none", 0, 0});
      }
      return;
    }
    if (queue_.size() >= options_.queue_capacity) {
      lock.unlock();
      shed_total_.fetch_add(1, std::memory_order_relaxed);
      shed_counter().add();
      send_line(conn, make_error(request.id, ErrorCode::kOverloaded,
                                 "admission queue is full"));
      if (access_log_.is_open()) {
        access_log_.log(ops::AccessEntry{req_id, request.method, {}, "shed",
                                         "none", 0, 0});
      }
      return;
    }
    queue_.push_back(Work{conn, std::move(request), deadline_ns, now,
                          std::move(req_id)});
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
}

void Server::worker_loop() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      work = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }
    process(work);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drained_cv_.notify_all();
    }
  }
}

void Server::process(Work& work) {
  // One span per request: the histogram feeds p50/p95/p99 in run
  // records, the matching trace span (detail = "req_id method") lets
  // trace_stats.py attribute a straggler to the exact request whose
  // access-log line carries the same req_id.
  std::string detail = work.req_id;
  detail += ' ';
  detail += work.request.method;
  obs::ScopedSpan span(request_ns_histogram(), detail);

  const std::uint64_t dequeue_ns = obs::trace::now_ns();
  const std::uint64_t queue_ns =
      dequeue_ns > work.enqueue_ns ? dequeue_ns - work.enqueue_ns : 0;
  const auto log_entry = [&](std::string_view cell, std::string_view status,
                             std::string_view deadline) {
    if (!access_log_.is_open()) return;
    const std::uint64_t end_ns = obs::trace::now_ns();
    access_log_.log(ops::AccessEntry{
        work.req_id, work.request.method, cell, status, deadline, queue_ns,
        end_ns > dequeue_ns ? end_ns - dequeue_ns : 0});
  };

  if (work.deadline_ns != 0 && dequeue_ns > work.deadline_ns) {
    // Expired while queued: answer without running (the cheap half of
    // deadline enforcement).
    deadline_exceeded_total_.fetch_add(1, std::memory_order_relaxed);
    deadline_counter().add();
    send_line(work.conn, make_error(work.request.id,
                                    ErrorCode::kDeadlineExceeded,
                                    "deadline expired while queued"));
    log_entry({}, "deadline", "expired_queued");
    return;
  }

  HandlerContext ctx;
  ctx.cells_parallel = options_.cells_parallel;
  ctx.snapshot = [this] { return snapshot(); };
  ctx.req_id = work.req_id;
  ctx.deadline_ns = work.deadline_ns;
  if (work.deadline_ns != 0) {
    const std::uint64_t deadline_ns = work.deadline_ns;
    ctx.cancelled = [deadline_ns] {
      return obs::trace::now_ns() > deadline_ns;
    };
  }

  HandlerResult result = options_.dispatcher
                             ? options_.dispatcher(work.request, ctx)
                             : dispatch(work.request, ctx);
  if (result.ok) {
    responses_ok_.fetch_add(1, std::memory_order_relaxed);
    send_line(work.conn, make_result(work.request.id, result.result_json));
    log_entry(result.cell_key, "ok",
              work.deadline_ns == 0 ? "none" : "met");
    return;
  }
  if (result.code == ErrorCode::kDeadlineExceeded) {
    deadline_exceeded_total_.fetch_add(1, std::memory_order_relaxed);
    deadline_counter().add();
  }
  send_line(work.conn, make_error(work.request.id, result.code,
                                  result.message));
  log_entry(result.cell_key,
            result.code == ErrorCode::kDeadlineExceeded ? "deadline"
                                                        : "error",
            result.code == ErrorCode::kDeadlineExceeded
                ? "expired_running"
                : (work.deadline_ns == 0 ? "none" : "met"));
}

void Server::send_line(const std::shared_ptr<Connection>& conn,
                       std::string line) {
  if (conn->dead.load(std::memory_order_acquire)) return;
  line += '\n';
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(conn->fd, line.data() + sent, line.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Peer gone (EPIPE/ECONNRESET) or not reading (EAGAIN after the
      // SO_SNDTIMEO send timeout): drop the reply and any later ones so
      // no worker stays blocked on this connection.
      conn->dead.store(true, std::memory_order_release);
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Server::request_drain() {
  // The queue mutex orders this against admission: after the flag is
  // visible no reader can enqueue, so "finish in-flight" is a stable
  // set, not a race.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    draining_.store(true, std::memory_order_release);
  }
  queue_cv_.notify_all();
}

void Server::wait_drained() {
  if (!started_) return;
  std::unique_lock<std::mutex> lock(queue_mutex_);
  drained_cv_.wait(lock,
                   [this] { return queue_.empty() && in_flight_ == 0; });
}

void Server::stop() {
  if (!started_) return;
  request_drain();
  wait_drained();
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  if (accept_thread_.joinable()) accept_thread_.join();
  reap_readers(/*join_all=*/true);
  {
    std::lock_guard<std::mutex> lock(ticker_mutex_);
    ticker_stop_ = true;
  }
  ticker_cv_.notify_one();
  if (ticker_.joinable()) ticker_.join();
  // After every worker and reader is gone: nothing can log anymore, so
  // closing (which drains the queue) loses no lines.
  access_log_.close();
  started_ = false;
}

ServerSnapshot Server::snapshot() const {
  ServerSnapshot snap;
  snap.connections_total = connections_total_.load(std::memory_order_relaxed);
  snap.connections_open = connections_open_.load(std::memory_order_relaxed);
  snap.requests_total = requests_total_.load(std::memory_order_relaxed);
  snap.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  snap.shed_total = shed_total_.load(std::memory_order_relaxed);
  snap.deadline_exceeded_total =
      deadline_exceeded_total_.load(std::memory_order_relaxed);
  snap.protocol_errors_total =
      protocol_errors_total_.load(std::memory_order_relaxed);
  snap.queue_capacity = options_.queue_capacity;
  snap.draining = draining_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    snap.queue_depth = queue_.size();
    snap.in_flight = in_flight_;
  }
  if (start_ns_ != 0) {
    const std::uint64_t now = obs::trace::now_ns();
    snap.uptime_ms = (now > start_ns_ ? now - start_ns_ : 0) / 1'000'000u;
  }
  if (window_latency_ != nullptr) {
    const ops::WindowedHistogram::Window lat = window_latency_->window();
    snap.window_p50_us = lat.merged.quantile(0.50) / 1000.0;
    snap.window_p95_us = lat.merged.quantile(0.95) / 1000.0;
    snap.window_p99_us = lat.merged.quantile(0.99) / 1000.0;
    snap.window_span_ms =
        static_cast<std::uint64_t>(lat.span_seconds * 1000.0);
  }
  if (window_requests_ != nullptr) {
    const ops::WindowedCounter::Window req = window_requests_->window();
    snap.window_requests = req.delta;
    snap.window_qps = req.rate_per_sec();
  }
  if (window_shed_ != nullptr) {
    snap.window_shed = window_shed_->window().delta;
  }
  return snap;
}

}  // namespace recover::serve
