// Built-in ChainModel records: every chain family in the tree registers
// here, which is what makes the conformance suite (properties.cpp) and
// the certify_runner cover the whole repo by iterating one registry.
//
// Exact models are deliberately the INDEPENDENT implementations: the
// balls chains check their samplers against the enumerated
// PartitionSpace transition matrix, the labeled oracles check against
// the same matrix (so normalized and labeled dynamics are pinned to one
// law), the orientation chain against its BFS-enumerated space, and the
// open systems against a direct branch-by-branch pmf computed right here
// — the first exact model the open chains have had.

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "src/balls/exact_chain.hpp"
#include "src/balls/grand_coupling.hpp"
#include "src/balls/labeled.hpp"
#include "src/balls/rbb.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/certify/model.hpp"
#include "src/kernel/kernel.hpp"
#include "src/open/bounded_chain.hpp"
#include "src/open/open_chain.hpp"
#include "src/orient/chain.hpp"
#include "src/orient/exact_chain.hpp"
#include "src/util/assert.hpp"

namespace recover::certify {

namespace {

using balls::AbkuRule;
using balls::AdapRule;
using balls::LoadVector;
using balls::PartitionSpace;
using balls::RemovalKind;
using balls::ThresholdSchedule;

LoadVector lv_of(const std::string& key) {
  return LoadVector::from_loads(values_of(key));
}

std::string key_lv(const LoadVector& v) { return key_of(v.loads()); }

/// ADAP schedule used by the adaptive models: thresholds 1,2,3,... capped
/// at d+1, so the rule is genuinely state-dependent at every instance.
ThresholdSchedule adap_schedule(const Instance& in) {
  return ThresholdSchedule::linear(1, 1, in.d + 1);
}

/// Balanced, all-in-one, and a two-bin pile — distinct corners of Ω_m.
std::vector<std::string> balls_starts(const Instance& in) {
  std::vector<std::string> starts;
  const auto push = [&starts](const LoadVector& v) {
    std::string key = key_lv(v);
    if (std::find(starts.begin(), starts.end(), key) == starts.end()) {
      starts.push_back(std::move(key));
    }
  };
  push(LoadVector::balanced(in.n, in.m));
  push(LoadVector::all_in_one(in.n, in.m));
  push(LoadVector::piled(in.n, in.m, std::min<std::size_t>(2, in.n)));
  return starts;
}

/// Exact one-step law of the ABKU balls chains via the enumerated
/// partition space (src/balls/exact_chain.*) — independent of every
/// sampler code path.
StepLaw balls_exact_law(const Instance& in, const std::string& start,
                        RemovalKind removal) {
  PartitionSpace space(in.n, in.m);
  const core::SparseChain chain =
      balls::build_exact_chain(space, removal, AbkuRule(in.d));
  const std::size_t i = space.index_of(lv_of(start));
  StepLaw law;
  for (const auto& [j, p] : chain.row(i)) {
    law.emplace_back(key_of(space.state(j)), p);
  }
  return law;
}

StepLaw adap_exact_law(const Instance& in, const std::string& start,
                       RemovalKind removal) {
  PartitionSpace space(in.n, in.m);
  const AdapRule rule(adap_schedule(in));
  const core::SparseChain chain = balls::build_exact_chain_general(
      space, removal,
      [&rule](const LoadVector& v) { return rule.placement_pmf(v); });
  const std::size_t i = space.index_of(lv_of(start));
  StepLaw law;
  for (const auto& [j, p] : chain.row(i)) {
    law.emplace_back(key_of(space.state(j)), p);
  }
  return law;
}

/// v ⪯ w in the majorization order (both normalized, equal totals).
bool majorized_by(const LoadVector& v, const LoadVector& w) {
  std::int64_t pv = 0;
  std::int64_t pw = 0;
  for (std::size_t i = 0; i < v.bins(); ++i) {
    pv += v.load(i);
    pw += w.load(i);
    if (pv > pw) return false;
  }
  return true;
}

/// A state strictly between the extremes: a few warm-up steps from
/// balanced.  Any state works — all_in_one / balanced are the order
/// maximum / minimum of Ω_m.
template <typename Chain>
LoadVector warm_mid_state(Chain&& chain, std::uint64_t seed) {
  rng::Xoshiro256PlusPlus eng(seed);
  for (int t = 0; t < 16; ++t) chain.step(eng);
  return chain.state();
}

/// The majorization-sandwich invariant CFTP rests on (src/core/cftp.hpp):
/// run TWO couplings — (top, mid) and (mid, bottom) — on identical
/// engine streams.  Every draw of a coupled step is a deterministic
/// function of the engine words, and both couplings consume words
/// identically (same uniform bounds, ABKU consumes exactly d probes), so
/// the two mid copies must stay in lockstep; on top of that the
/// majorization order must be preserved at every step.
template <typename Coupling, typename Chain>
bool sandwich_invariant(const Instance& in, std::uint64_t seed,
                        std::int64_t steps, std::string* diag) {
  const LoadVector top = LoadVector::all_in_one(in.n, in.m);
  const LoadVector bottom = LoadVector::balanced(in.n, in.m);
  const LoadVector mid = warm_mid_state(Chain(bottom, AbkuRule(in.d)),
                                        rng::substream(seed, 0xA11));
  Coupling high(top, mid, AbkuRule(in.d));
  Coupling low(mid, bottom, AbkuRule(in.d));
  rng::Xoshiro256PlusPlus eng_high(rng::substream(seed, 1));
  rng::Xoshiro256PlusPlus eng_low = eng_high;
  for (std::int64_t t = 0; t < steps; ++t) {
    high.step(eng_high);
    low.step(eng_low);
    if (!(high.second() == low.first())) {
      *diag = "mid copies diverged at step " + std::to_string(t) +
              " (couplings consumed different randomness)";
      return false;
    }
    if (!majorized_by(high.second(), high.first()) ||
        !majorized_by(low.second(), low.first())) {
      *diag = "majorization order violated at step " + std::to_string(t);
      return false;
    }
  }
  return true;
}

/// Direct exact one-round law of the RBB dynamics: the ejection is a
/// deterministic map, and each of the s re-placements expands the
/// support through the state-independent ABKU pmf formula
/// P(j) = ((j+1)/n)^d − (j/n)^d — independent of the sampler's probe
/// path, so sampler bugs cannot hide in a shared code path.
StepLaw rbb_exact_law(const Instance& in, const std::string& start) {
  LoadVector v = lv_of(start);
  const std::size_t s = v.eject_one_per_nonempty();
  const std::vector<double> pmf = AbkuRule(in.d).placement_pmf(in.n);
  std::map<std::string, double> acc;
  acc[key_lv(v)] = 1.0;
  for (std::size_t ball = 0; ball < s; ++ball) {
    std::map<std::string, double> next_acc;
    for (const auto& [key, p] : acc) {
      const LoadVector state = lv_of(key);
      for (std::size_t j = 0; j < pmf.size(); ++j) {
        if (pmf[j] <= 0.0) continue;
        LoadVector next = state;
        next.add_at(j);
        next_acc[key_lv(next)] += p * pmf[j];
      }
    }
    acc = std::move(next_acc);
  }
  StepLaw law;
  for (auto& [key, p] : acc) law.emplace_back(key, p);
  return law;
}

/// Direct exact one-step law of the open / bounded-open systems.  The
/// step structure mirrors open_chain.hpp / bounded_chain.hpp branch for
/// branch: with probability ½ insert (ABKU pmf, state-independent;
/// rejected as a no-op at capacity), otherwise remove ball-weighted
/// (no-op on an empty system).
StepLaw open_exact_law(const Instance& in, const std::string& start,
                       std::optional<std::int64_t> capacity) {
  const double insert_p = 0.5;
  const LoadVector v = lv_of(start);
  const std::int64_t m = v.balls();
  std::map<std::string, double> acc;
  // Insert branch.
  if (capacity.has_value() && m >= *capacity) {
    acc[key_lv(v)] += insert_p;
  } else {
    const std::vector<double> pmf = AbkuRule(in.d).placement_pmf(in.n);
    for (std::size_t j = 0; j < pmf.size(); ++j) {
      if (pmf[j] <= 0.0) continue;
      LoadVector next = v;
      next.add_at(j);
      acc[key_lv(next)] += insert_p * pmf[j];
    }
  }
  // Removal branch.
  if (m == 0) {
    acc[key_lv(v)] += 1.0 - insert_p;
  } else {
    for (std::size_t i = 0; i < v.bins(); ++i) {
      if (v.load(i) <= 0) continue;
      LoadVector next = v;
      next.remove_at(i);
      acc[key_lv(next)] += (1.0 - insert_p) * static_cast<double>(v.load(i)) /
                           static_cast<double>(m);
    }
  }
  StepLaw law;
  for (auto& [key, p] : acc) law.emplace_back(key, p);
  return law;
}

std::vector<std::string> open_starts(const Instance& in) {
  std::vector<std::string> starts;
  starts.push_back(key_lv(LoadVector(in.n)));  // empty system
  starts.push_back(key_lv(LoadVector::balanced(in.n, in.m)));
  starts.push_back(key_lv(LoadVector::all_in_one(in.n, in.m)));
  return starts;
}

std::vector<std::string> orient_starts(const Instance& in) {
  const orient::OrientationSpace space(in.n);
  std::vector<std::string> starts;
  const auto push = [&starts](const orient::DiffState& s) {
    std::string key = key_of(s.diffs());
    if (std::find(starts.begin(), starts.end(), key) == starts.end()) {
      starts.push_back(std::move(key));
    }
  };
  push(space.state(space.zero_index()));
  push(space.state(space.most_unfair_index()));
  push(space.state(space.size() / 2));
  return starts;
}

/// n is recovered from the key (one difference per vertex), so the law
/// matches whatever instance produced the start state.
StepLaw orient_exact_law(const std::string& start) {
  const orient::DiffState state =
      orient::DiffState::from_diffs(values_of(start));
  const orient::OrientationSpace space(state.vertices());
  const core::SparseChain chain =
      orient::build_exact_orientation_chain(space);
  const std::size_t i = space.index_of(state);
  StepLaw law;
  for (const auto& [j, p] : chain.row(i)) {
    law.emplace_back(key_of(space.state(j).diffs()), p);
  }
  return law;
}

template <typename Chain>
RunResult run_balls_chain(const Instance& in, std::uint64_t seed,
                          std::int64_t steps) {
  Chain chain(LoadVector::all_in_one(in.n, in.m), AbkuRule(in.d));
  rng::Xoshiro256PlusPlus eng(seed);
  kernel::advance(chain, eng, steps);
  return RunResult{key_lv(chain.state()), eng()};
}

template <typename Coupling>
RunResult run_balls_coupling(const Instance& in, std::uint64_t seed,
                             std::int64_t steps) {
  Coupling coupling(LoadVector::all_in_one(in.n, in.m),
                    LoadVector::balanced(in.n, in.m), AbkuRule(in.d));
  rng::Xoshiro256PlusPlus eng(seed);
  kernel::advance(coupling, eng, steps);
  return RunResult{key_lv(coupling.first()) + "|" + key_lv(coupling.second()),
                   eng()};
}

template <typename Chain>
bool load_vector_invariant(const Instance& in, std::uint64_t seed,
                           std::int64_t steps, std::string* diag,
                           Chain&& chain, bool fixed_ball_count,
                           std::int64_t capacity) {
  rng::Xoshiro256PlusPlus eng(seed);
  for (std::int64_t t = 0; t < steps; ++t) {
    chain.step(eng);
    const LoadVector& v = chain.state();
    if (!v.invariants_hold()) {
      *diag = "state invariants broken at step " + std::to_string(t);
      return false;
    }
    if (fixed_ball_count && v.balls() != in.m) {
      *diag = "ball count drifted at step " + std::to_string(t);
      return false;
    }
    if (capacity >= 0 && v.balls() > capacity) {
      *diag = "capacity exceeded at step " + std::to_string(t);
      return false;
    }
  }
  return true;
}

void register_scenario_models(ModelRegistry& registry) {
  {
    ChainModel m;
    m.name = "scenario_a";
    m.family = "balls";
    m.has_batched = true;
    m.starts = balls_starts;
    m.exact_step = [](const Instance& in, const std::string& s) {
      return balls_exact_law(in, s, RemovalKind::kBallWeighted);
    };
    m.sample_step = [](const Instance& in, const std::string& s,
                       rng::Xoshiro256PlusPlus& eng) {
      balls::ScenarioAChain<AbkuRule> chain(lv_of(s), AbkuRule(in.d));
      chain.step(eng);
      return key_lv(chain.state());
    };
    m.run = run_balls_chain<balls::ScenarioAChain<AbkuRule>>;
    m.invariant_name = "normalized_state";
    m.invariant_run = [](const Instance& in, std::uint64_t seed,
                         std::int64_t steps, std::string* diag) {
      return load_vector_invariant(
          in, seed, steps, diag,
          balls::ScenarioAChain<AbkuRule>(LoadVector::all_in_one(in.n, in.m),
                                          AbkuRule(in.d)),
          /*fixed_ball_count=*/true, /*capacity=*/-1);
    };
    registry.add(std::move(m));
  }
  {
    ChainModel m;
    m.name = "scenario_b";
    m.family = "balls";
    m.has_batched = true;
    m.starts = balls_starts;
    m.exact_step = [](const Instance& in, const std::string& s) {
      return balls_exact_law(in, s, RemovalKind::kNonEmptyUniform);
    };
    m.sample_step = [](const Instance& in, const std::string& s,
                       rng::Xoshiro256PlusPlus& eng) {
      balls::ScenarioBChain<AbkuRule> chain(lv_of(s), AbkuRule(in.d));
      chain.step(eng);
      return key_lv(chain.state());
    };
    m.run = run_balls_chain<balls::ScenarioBChain<AbkuRule>>;
    m.invariant_name = "normalized_state";
    m.invariant_run = [](const Instance& in, std::uint64_t seed,
                         std::int64_t steps, std::string* diag) {
      return load_vector_invariant(
          in, seed, steps, diag,
          balls::ScenarioBChain<AbkuRule>(LoadVector::all_in_one(in.n, in.m),
                                          AbkuRule(in.d)),
          /*fixed_ball_count=*/true, /*capacity=*/-1);
    };
    registry.add(std::move(m));
  }
  {
    ChainModel m;
    m.name = "scenario_a_adap";
    m.family = "balls";
    m.starts = balls_starts;
    m.exact_step = [](const Instance& in, const std::string& s) {
      return adap_exact_law(in, s, RemovalKind::kBallWeighted);
    };
    m.sample_step = [](const Instance& in, const std::string& s,
                       rng::Xoshiro256PlusPlus& eng) {
      balls::ScenarioAChain<AdapRule> chain(lv_of(s),
                                            AdapRule(adap_schedule(in)));
      chain.step(eng);
      return key_lv(chain.state());
    };
    m.run = [](const Instance& in, std::uint64_t seed, std::int64_t steps) {
      balls::ScenarioAChain<AdapRule> chain(LoadVector::all_in_one(in.n, in.m),
                                            AdapRule(adap_schedule(in)));
      rng::Xoshiro256PlusPlus eng(seed);
      kernel::advance(chain, eng, steps);
      return RunResult{key_lv(chain.state()), eng()};
    };
    registry.add(std::move(m));
  }
  {
    ChainModel m;
    m.name = "labeled_a";
    m.family = "balls";
    m.starts = balls_starts;
    // The labeled oracle must follow the SAME exact law as the
    // normalized chain — the paper's "bin order is insignificant",
    // checked as a property.
    m.exact_step = [](const Instance& in, const std::string& s) {
      return balls_exact_law(in, s, RemovalKind::kBallWeighted);
    };
    m.sample_step = [](const Instance& in, const std::string& s,
                       rng::Xoshiro256PlusPlus& eng) {
      balls::LabeledScenarioA chain(balls::LabeledState::from_loads(values_of(s)),
                                    in.d);
      chain.step(eng);
      return key_lv(chain.state().normalized());
    };
    registry.add(std::move(m));
  }
  {
    ChainModel m;
    m.name = "labeled_b";
    m.family = "balls";
    m.starts = balls_starts;
    m.exact_step = [](const Instance& in, const std::string& s) {
      return balls_exact_law(in, s, RemovalKind::kNonEmptyUniform);
    };
    m.sample_step = [](const Instance& in, const std::string& s,
                       rng::Xoshiro256PlusPlus& eng) {
      balls::LabeledScenarioB chain(balls::LabeledState::from_loads(values_of(s)),
                                    in.d);
      chain.step(eng);
      return key_lv(chain.state().normalized());
    };
    registry.add(std::move(m));
  }
  {
    ChainModel m;
    m.name = "rbb";
    m.family = "balls";
    m.has_batched = true;
    m.starts = balls_starts;
    m.exact_step = rbb_exact_law;
    m.sample_step = [](const Instance& in, const std::string& s,
                       rng::Xoshiro256PlusPlus& eng) {
      balls::RBBChain<AbkuRule> chain(lv_of(s), AbkuRule(in.d));
      chain.step(eng);
      return key_lv(chain.state());
    };
    m.run = run_balls_chain<balls::RBBChain<AbkuRule>>;
    m.invariant_name = "normalized_state";
    m.invariant_run = [](const Instance& in, std::uint64_t seed,
                         std::int64_t steps, std::string* diag) {
      return load_vector_invariant(
          in, seed, steps, diag,
          balls::RBBChain<AbkuRule>(LoadVector::all_in_one(in.n, in.m),
                                    AbkuRule(in.d)),
          /*fixed_ball_count=*/true, /*capacity=*/-1);
    };
    registry.add(std::move(m));
  }
}

void register_coupling_models(ModelRegistry& registry) {
  {
    ChainModel m;
    m.name = "grand_coupling_a";
    m.family = "coupling";
    m.has_batched = true;
    m.starts = balls_starts;
    m.exact_step = [](const Instance& in, const std::string& s) {
      return balls_exact_law(in, s, RemovalKind::kBallWeighted);
    };
    m.coupled_step = [](const Instance& in, const std::string& sx,
                        const std::string& sy, rng::Xoshiro256PlusPlus& eng) {
      balls::GrandCouplingA<AbkuRule> c(lv_of(sx), lv_of(sy), AbkuRule(in.d));
      c.step(eng);
      return std::make_pair(key_lv(c.first()), key_lv(c.second()));
    };
    m.run = run_balls_coupling<balls::GrandCouplingA<AbkuRule>>;
    m.invariant_name = "majorization_sandwich";
    m.invariant_run = [](const Instance& in, std::uint64_t seed,
                         std::int64_t steps, std::string* diag) {
      return sandwich_invariant<balls::GrandCouplingA<AbkuRule>,
                                balls::ScenarioAChain<AbkuRule>>(in, seed,
                                                                 steps, diag);
    };
    registry.add(std::move(m));
  }
  {
    ChainModel m;
    m.name = "grand_coupling_b";
    m.family = "coupling";
    m.has_batched = true;
    m.starts = balls_starts;
    m.exact_step = [](const Instance& in, const std::string& s) {
      return balls_exact_law(in, s, RemovalKind::kNonEmptyUniform);
    };
    m.coupled_step = [](const Instance& in, const std::string& sx,
                        const std::string& sy, rng::Xoshiro256PlusPlus& eng) {
      balls::GrandCouplingB<AbkuRule> c(lv_of(sx), lv_of(sy), AbkuRule(in.d));
      c.step(eng);
      return std::make_pair(key_lv(c.first()), key_lv(c.second()));
    };
    m.run = run_balls_coupling<balls::GrandCouplingB<AbkuRule>>;
    m.invariant_name = "majorization_sandwich";
    m.invariant_run = [](const Instance& in, std::uint64_t seed,
                         std::int64_t steps, std::string* diag) {
      return sandwich_invariant<balls::GrandCouplingB<AbkuRule>,
                                balls::ScenarioBChain<AbkuRule>>(in, seed,
                                                                 steps, diag);
    };
    registry.add(std::move(m));
  }
  {
    ChainModel m;
    m.name = "grand_coupling_rbb";
    m.family = "coupling";
    m.has_batched = true;
    m.starts = balls_starts;
    m.exact_step = rbb_exact_law;
    m.coupled_step = [](const Instance& in, const std::string& sx,
                        const std::string& sy, rng::Xoshiro256PlusPlus& eng) {
      balls::GrandCouplingRBB<AbkuRule> c(lv_of(sx), lv_of(sy),
                                          AbkuRule(in.d));
      c.step(eng);
      return std::make_pair(key_lv(c.first()), key_lv(c.second()));
    };
    m.run = run_balls_coupling<balls::GrandCouplingRBB<AbkuRule>>;
    // No majorization-sandwich invariant: RBB is famously non-monotone,
    // and its per-round word consumption depends on the copies' nonempty
    // counts, so two couplings on one engine stream need not stay in
    // lockstep.  Absorption + marginal faithfulness are still covered by
    // the generic coupling properties.
    registry.add(std::move(m));
  }
}

void register_orient_models(ModelRegistry& registry) {
  {
    ChainModel m;
    m.name = "orientation";
    m.family = "orient";
    m.n_min = 2;
    m.n_max = 5;
    m.m_min = 0;
    m.m_max = 0;  // no ball count
    m.d_min = 1;
    m.d_max = 1;  // no probe count
    m.starts = orient_starts;
    m.exact_step = [](const Instance&, const std::string& s) {
      return orient_exact_law(s);
    };
    m.sample_step = [](const Instance&, const std::string& s,
                       rng::Xoshiro256PlusPlus& eng) {
      orient::DiffState state = orient::DiffState::from_diffs(values_of(s));
      state.step(eng);
      return key_of(state.diffs());
    };
    m.run = [](const Instance& in, std::uint64_t seed, std::int64_t steps) {
      orient::GreedyOrientationChain chain(
          orient::DiffState::spread(in.n, 2));
      rng::Xoshiro256PlusPlus eng(seed);
      kernel::advance(chain, eng, steps);
      return RunResult{key_of(chain.state().diffs()), eng()};
    };
    m.invariant_name = "zero_sum_sorted";
    m.invariant_run = [](const Instance& in, std::uint64_t seed,
                         std::int64_t steps, std::string* diag) {
      orient::DiffState state(in.n);
      rng::Xoshiro256PlusPlus eng(seed);
      for (std::int64_t t = 0; t < steps; ++t) {
        state.step(eng);
        if (!state.invariants_hold()) {
          *diag = "diff-state invariants broken at step " + std::to_string(t);
          return false;
        }
      }
      return true;
    };
    registry.add(std::move(m));
  }
  {
    ChainModel m;
    m.name = "orientation_coupling";
    m.family = "coupling";
    m.n_min = 2;
    m.n_max = 5;
    m.m_min = 0;
    m.m_max = 0;
    m.d_min = 1;
    m.d_max = 1;
    m.starts = orient_starts;
    m.exact_step = [](const Instance&, const std::string& s) {
      return orient_exact_law(s);
    };
    m.coupled_step = [](const Instance&, const std::string& sx,
                        const std::string& sy, rng::Xoshiro256PlusPlus& eng) {
      orient::GrandCouplingOrient c(orient::DiffState::from_diffs(values_of(sx)),
                                    orient::DiffState::from_diffs(values_of(sy)));
      c.step(eng);
      return std::make_pair(key_of(c.first().diffs()),
                            key_of(c.second().diffs()));
    };
    registry.add(std::move(m));
  }
}

void register_open_models(ModelRegistry& registry) {
  // The bounded system's capacity: the instance's m doubles as the cap,
  // so the all-in-one start sits exactly at capacity and the insert-
  // rejection branch gets exercised.
  const auto capacity_of = [](const Instance& in) { return in.m; };
  {
    ChainModel m;
    m.name = "open";
    m.family = "open";
    m.starts = open_starts;
    m.exact_step = [](const Instance& in, const std::string& s) {
      return open_exact_law(in, s, std::nullopt);
    };
    m.sample_step = [](const Instance& in, const std::string& s,
                       rng::Xoshiro256PlusPlus& eng) {
      open::OpenChain<AbkuRule> chain(lv_of(s), AbkuRule(in.d));
      chain.step(eng);
      return key_lv(chain.state());
    };
    m.invariant_name = "normalized_state";
    m.invariant_run = [](const Instance& in, std::uint64_t seed,
                         std::int64_t steps, std::string* diag) {
      return load_vector_invariant(
          in, seed, steps, diag,
          open::OpenChain<AbkuRule>(LoadVector(in.n), AbkuRule(in.d)),
          /*fixed_ball_count=*/false, /*capacity=*/-1);
    };
    registry.add(std::move(m));
  }
  {
    ChainModel m;
    m.name = "open_coupling";
    m.family = "coupling";
    m.starts = open_starts;
    m.exact_step = [](const Instance& in, const std::string& s) {
      return open_exact_law(in, s, std::nullopt);
    };
    m.coupled_step = [](const Instance& in, const std::string& sx,
                        const std::string& sy, rng::Xoshiro256PlusPlus& eng) {
      open::OpenGrandCoupling<AbkuRule> c(lv_of(sx), lv_of(sy),
                                          AbkuRule(in.d));
      c.step(eng);
      return std::make_pair(key_lv(c.first()), key_lv(c.second()));
    };
    registry.add(std::move(m));
  }
  {
    ChainModel m;
    m.name = "bounded_open";
    m.family = "open";
    m.starts = open_starts;
    m.exact_step = [capacity_of](const Instance& in, const std::string& s) {
      return open_exact_law(in, s, capacity_of(in));
    };
    m.sample_step = [capacity_of](const Instance& in, const std::string& s,
                                  rng::Xoshiro256PlusPlus& eng) {
      open::BoundedOpenChain<AbkuRule> chain(lv_of(s), AbkuRule(in.d),
                                             capacity_of(in));
      chain.step(eng);
      return key_lv(chain.state());
    };
    m.invariant_name = "capacity_bound";
    m.invariant_run = [capacity_of](const Instance& in, std::uint64_t seed,
                                    std::int64_t steps, std::string* diag) {
      return load_vector_invariant(
          in, seed, steps, diag,
          open::BoundedOpenChain<AbkuRule>(LoadVector(in.n), AbkuRule(in.d),
                                           capacity_of(in)),
          /*fixed_ball_count=*/false, capacity_of(in));
    };
    registry.add(std::move(m));
  }
  {
    ChainModel m;
    m.name = "bounded_open_coupling";
    m.family = "coupling";
    m.starts = open_starts;
    m.exact_step = [capacity_of](const Instance& in, const std::string& s) {
      return open_exact_law(in, s, capacity_of(in));
    };
    m.coupled_step = [capacity_of](const Instance& in, const std::string& sx,
                                   const std::string& sy,
                                   rng::Xoshiro256PlusPlus& eng) {
      open::BoundedOpenCoupling<AbkuRule> c(lv_of(sx), lv_of(sy),
                                            AbkuRule(in.d), capacity_of(in));
      c.step(eng);
      return std::make_pair(key_lv(c.first()), key_lv(c.second()));
    };
    registry.add(std::move(m));
  }
}

}  // namespace

void register_builtin_models(ModelRegistry& registry) {
  register_scenario_models(registry);
  register_coupling_models(registry);
  register_orient_models(registry);
  register_open_models(registry);
}

}  // namespace recover::certify
