// EXACT verification of the contraction lemmas: Corollary 4.2 and
// Claims 5.1/5.2 checked with zero Monte-Carlo tolerance over EVERY
// Γ-pair of small partition spaces.  These are the paper's theorems
// turned into machine-checked inequalities.
#include <gtest/gtest.h>

#include <cmath>

#include "src/balls/coupling_a.hpp"
#include "src/balls/coupling_b.hpp"
#include "src/balls/exact_coupling_analysis.hpp"
#include "src/certify/check.hpp"
#include "src/certify/compare.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/summary.hpp"

namespace recover::balls {
namespace {

struct SpaceParam {
  std::size_t n;
  std::int64_t m;
  int d;
};

class ExactContractionTest : public ::testing::TestWithParam<SpaceParam> {};

TEST_P(ExactContractionTest, Corollary42HoldsForEveryGammaPair) {
  const auto [n, m, d] = GetParam();
  const AbkuRule rule(d);
  const auto pairs = enumerate_gamma_pairs(n, m);
  ASSERT_FALSE(pairs.empty());
  const double bound = 1.0 - 1.0 / static_cast<double>(m);
  for (const auto& [v, u] : pairs) {
    const auto step = exact_coupled_step_a(v, u, rule);
    EXPECT_LE(step.expected_distance, bound + 1e-12)
        << "pair v=" << v.load(0) << ",... violates Corollary 4.2";
    // The odd-ball merge alone contributes exactly 1/m, and merged
    // copies stay merged through the insertion.
    EXPECT_GE(step.merge_probability, 1.0 / static_cast<double>(m) - 1e-12);
  }
}

TEST_P(ExactContractionTest, Claims51And52HoldForEveryGammaPair) {
  const auto [n, m, d] = GetParam();
  const AbkuRule rule(d);
  const auto pairs = enumerate_gamma_pairs(n, m);
  for (const auto& [v, u] : pairs) {
    const auto step = exact_coupled_step_b(v, u, rule);
    EXPECT_LE(step.expected_distance, 1.0 + 1e-12)
        << "E[delta] > 1 violates Claims 5.1/5.2";
    const double s_max = static_cast<double>(
        std::max(v.nonempty_count(), u.nonempty_count()));
    EXPECT_GE(step.merge_probability, 1.0 / s_max - 1e-12)
        << "merge mass below 1/s";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, ExactContractionTest,
    ::testing::Values(SpaceParam{2, 3, 2}, SpaceParam{3, 4, 1},
                      SpaceParam{4, 6, 2}, SpaceParam{5, 5, 3},
                      SpaceParam{4, 8, 2}, SpaceParam{6, 6, 2}));

TEST(ExactCouplingAnalysis, MatchesMonteCarloScenarioA) {
  // The enumerated expectation must agree with a Monte-Carlo run of the
  // actual coupled_step_a to within MC noise — ties the analysis to the
  // executable coupling.
  const LoadVector v = LoadVector::from_loads({4, 2, 1, 0});
  LoadVector u = v;
  u.remove_at(0);
  u.add_at(3);
  ASSERT_EQ(v.distance(u), 1);
  const AbkuRule rule(2);
  const auto exact = exact_coupled_step_a(v, u, rule);

  const std::uint64_t seed = certify::test_master_seed(7);
  SCOPED_TRACE(certify::seed_banner(seed));
  rng::Xoshiro256PlusPlus eng(seed);
  stats::Summary dist;
  std::int64_t merges = 0;
  constexpr int kTrials = 60000;
  for (int t = 0; t < kTrials; ++t) {
    LoadVector a = v, b = u;
    const auto r = coupled_step_a(a, b, rule, eng);
    dist.add(static_cast<double>(r.distance_after));
    if (r.distance_after == 0) ++merges;
  }
  const auto mean_check = certify::check_mc_mean(dist, exact.expected_distance);
  EXPECT_TRUE(mean_check.pass()) << mean_check.describe();
  EXPECT_NEAR(static_cast<double>(merges) / kTrials, exact.merge_probability,
              0.01);
}

TEST(ExactCouplingAnalysis, MatchesMonteCarloScenarioB) {
  const LoadVector v = LoadVector::from_loads({3, 1, 0, 0});
  const LoadVector u = LoadVector::from_loads({2, 1, 1, 0});
  ASSERT_EQ(v.distance(u), 1);
  const AbkuRule rule(2);
  const auto exact = exact_coupled_step_b(v, u, rule);

  const std::uint64_t seed = certify::test_master_seed(9);
  SCOPED_TRACE(certify::seed_banner(seed));
  rng::Xoshiro256PlusPlus eng(seed);
  stats::Summary dist;
  constexpr int kTrials = 60000;
  for (int t = 0; t < kTrials; ++t) {
    LoadVector a = v, b = u;
    dist.add(static_cast<double>(
        coupled_step_b(a, b, rule, eng).distance_after));
  }
  const auto mean_check = certify::check_mc_mean(dist, exact.expected_distance);
  EXPECT_TRUE(mean_check.pass()) << mean_check.describe();
}

TEST(EnumerateGammaPairs, CountsAndValidity) {
  const auto pairs = enumerate_gamma_pairs(3, 4);
  ASSERT_FALSE(pairs.empty());
  for (const auto& [v, u] : pairs) {
    EXPECT_EQ(v.distance(u), 1);
    EXPECT_EQ(v.balls(), u.balls());
  }
  // Both orientations present: (v, u) and (u, v) are distinct entries.
  int mirrored = 0;
  for (const auto& [v, u] : pairs) {
    for (const auto& [a, b] : pairs) {
      if (a == u && b == v) {
        ++mirrored;
        break;
      }
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(mirrored), pairs.size());
}

}  // namespace
}  // namespace recover::balls
