// Terminal sparklines and bar charts for the examples' trajectory and
// distribution output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace recover::util {

/// One-line sparkline of the series using the 8 block glyphs; values are
/// scaled to [min, max] of the series (flat series render as midline).
std::string sparkline(const std::vector<double>& series);

/// Downsamples a long series to at most `width` points (stride max) and
/// renders the sparkline.
std::string sparkline(const std::vector<double>& series, std::size_t width);

/// Horizontal ASCII bar chart: one `label value |####` row per entry,
/// bars scaled to the maximum value.
std::string bar_chart(const std::vector<std::pair<std::string, double>>& rows,
                      std::size_t max_bar_width = 40);

}  // namespace recover::util
