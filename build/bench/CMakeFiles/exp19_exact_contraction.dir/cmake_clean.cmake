file(REMOVE_RECURSE
  "CMakeFiles/exp19_exact_contraction.dir/exp19_exact_contraction.cpp.o"
  "CMakeFiles/exp19_exact_contraction.dir/exp19_exact_contraction.cpp.o.d"
  "exp19_exact_contraction"
  "exp19_exact_contraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp19_exact_contraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
