// recover_serve — the networked simulation service (docs/SERVING.md).
//
//   recover_serve --port 0 --workers 4 --queue-cap 128 --deadline 10s
//                 --admin-port 0 --access-log access.jsonl
//
// Listens for newline-delimited recover.req/1 JSON requests (ping,
// list_cells, run_cell, stats, shutdown) and answers on the same
// connection.  Prints machine-parseable lines once the sockets are
// bound:
//
//   # serve: listening on 127.0.0.1:PORT workers=N queue=C
//   # serve: admin on 127.0.0.1:PORT            (with --admin-port)
//
// (scripts/ci.sh reads the PORTs when it boots the server on ephemeral
// ports).  SIGTERM/SIGINT — or a `shutdown` request — starts a graceful
// drain: stop accepting, finish in-flight requests, hold --drain-grace
// with /readyz answering 503 (router ejection window), flush the obs
// run record, exit 0.
//
// --admin-port N starts the ops admin plane (docs/OBSERVABILITY.md,
// "Live telemetry"): GET /metrics (Prometheus text), /healthz, /readyz.
// It also force-enables metrics so the windowed latency quantiles are
// live without a separate --metrics flag.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "src/obs/metrics.hpp"
#include "src/obs/run_record.hpp"
#include "src/ops/admin.hpp"
#include "src/ops/prometheus.hpp"
#include "src/serve/server.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

// Async-signal-safe drain request: the handler only flips the flag; the
// main loop does the actual drain.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void on_signal(int) { g_shutdown_requested = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("recover_serve",
                "TCP service answering recover.req/1 queries over "
                "registered experiment cells");
  cli.flag("host", "listen address", "127.0.0.1");
  cli.flag("port", "listen port (0 = ephemeral, printed at startup)", "0");
  cli.flag("workers", "request executor threads", "2");
  cli.flag("queue-cap",
           "admission queue bound; excess requests are shed with "
           "'overloaded'",
           "128");
  cli.flag("deadline",
           "default per-request deadline (500ms/2s/1m; 0 = none), applied "
           "when a request carries no deadline_ms",
           "0");
  cli.flag("serial-cells",
           "run cell replicas serially instead of on the thread pool",
           "false");
  cli.flag("admin-port",
           "ops admin plane port (/metrics, /healthz, /readyz; 0 = "
           "ephemeral, printed at startup; -1 = disabled)",
           "-1");
  cli.flag("admin-host", "admin plane listen address", "127.0.0.1");
  cli.flag("access-log",
           "append recover.access/1 JSON lines (one per completed "
           "request) to this file; empty = disabled",
           "");
  cli.flag("drain-grace",
           "after the drain completes, keep running this long with "
           "/readyz answering 503 (router ejection window) before exit",
           "0");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  serve::ServerOptions options;
  options.host = cli.str("host");
  options.port = static_cast<int>(cli.integer("port"));
  options.workers = static_cast<int>(cli.integer("workers"));
  options.queue_capacity =
      static_cast<std::size_t>(cli.integer("queue-cap"));
  options.default_deadline_ms = cli.duration_ms("deadline");
  options.cells_parallel = !cli.boolean("serial-cells");
  options.access_log_path = cli.str("access-log");

  const std::int64_t admin_port = cli.integer("admin-port");
  const std::int64_t drain_grace_ms = cli.duration_ms("drain-grace");
  if (admin_port >= 0) {
    // Windowed latency quantiles ride the obs histograms; a telemetry
    // plane with all-zero latencies would be a trap, so the flag implies
    // metrics.  Enabled before start() so the window baselines are
    // consistent from the first request.
    obs::set_metrics_enabled(true);
  }

  serve::Server server(options);
  if (!server.start()) return 2;

  std::unique_ptr<ops::AdminServer> admin;
  if (admin_port >= 0) {
    ops::AdminOptions admin_options;
    admin_options.host = cli.str("admin-host");
    admin_options.port = static_cast<int>(admin_port);
    admin_options.build_version = serve::kServeVersion;
    admin = std::make_unique<ops::AdminServer>(
        admin_options,
        [&server] {
          std::string out;
          ops::render_prometheus(obs::Registry::global().snapshot(), out);
          const serve::ServerSnapshot snap = server.snapshot();
          out += "# TYPE serve_window_request_us gauge\n";
          ops::append_sample(out, "serve_window_request_us", "quantile",
                             "0.5", snap.window_p50_us);
          ops::append_sample(out, "serve_window_request_us", "quantile",
                             "0.95", snap.window_p95_us);
          ops::append_sample(out, "serve_window_request_us", "quantile",
                             "0.99", snap.window_p99_us);
          out += "# TYPE serve_window_qps gauge\n";
          ops::append_sample(out, "serve_window_qps", snap.window_qps);
          out += "# TYPE serve_window_shed_ratio gauge\n";
          ops::append_sample(
              out, "serve_window_shed_ratio",
              snap.window_requests > 0
                  ? static_cast<double>(snap.window_shed) /
                        static_cast<double>(snap.window_requests)
                  : 0.0);
          out += "# TYPE serve_uptime_seconds gauge\n";
          ops::append_sample(out, "serve_uptime_seconds",
                             static_cast<double>(snap.uptime_ms) / 1000.0);
          out += "# TYPE serve_ready gauge\n";
          ops::append_sample(out, "serve_ready", snap.draining ? 0.0 : 1.0);
          out += "# TYPE serve_draining gauge\n";
          ops::append_sample(out, "serve_draining",
                             snap.draining ? 1.0 : 0.0);
          return out;
        },
        [&server] { return !server.draining(); });
    if (!admin->start()) return 2;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::printf("# serve: listening on %s:%d workers=%d queue=%zu\n",
              options.host.c_str(), server.port(), options.workers,
              options.queue_capacity);
  if (admin != nullptr) {
    std::printf("# serve: admin on %s:%d\n", cli.str("admin-host").c_str(),
                admin->port());
  }
  std::fflush(stdout);

  // Serve until a signal or a `shutdown` request starts the drain.
  while (g_shutdown_requested == 0 && !server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.request_drain();
  server.wait_drained();
  if (drain_grace_ms > 0) {
    // Ejection window: drained, /readyz already 503, admin still
    // answering — a router tier gets this long to notice before the
    // process exits (and CI asserts the flip here).
    std::this_thread::sleep_for(std::chrono::milliseconds(drain_grace_ms));
  }
  server.stop();

  const serve::ServerSnapshot snap = server.snapshot();
  util::Table table({"requests", "ok", "shed", "deadline_exceeded",
                     "protocol_errors", "connections"});
  table.row()
      .integer(static_cast<std::int64_t>(snap.requests_total))
      .integer(static_cast<std::int64_t>(snap.responses_ok))
      .integer(static_cast<std::int64_t>(snap.shed_total))
      .integer(static_cast<std::int64_t>(snap.deadline_exceeded_total))
      .integer(static_cast<std::int64_t>(snap.protocol_errors_total))
      .integer(static_cast<std::int64_t>(snap.connections_total));
  table.print(std::cout);
  run.add_table("serve", table);
  std::printf("# serve: drained requests=%llu ok=%llu shed=%llu "
              "deadline=%llu proto_errors=%llu\n",
              static_cast<unsigned long long>(snap.requests_total),
              static_cast<unsigned long long>(snap.responses_ok),
              static_cast<unsigned long long>(snap.shed_total),
              static_cast<unsigned long long>(snap.deadline_exceeded_total),
              static_cast<unsigned long long>(snap.protocol_errors_total));
  if (admin != nullptr) {
    std::printf("# serve: admin served %llu requests\n",
                static_cast<unsigned long long>(admin->requests_served()));
    admin->stop();
  }
  if (!options.access_log_path.empty()) {
    std::printf("# serve: access log written=%llu dropped=%llu\n",
                static_cast<unsigned long long>(server.access_log().written()),
                static_cast<unsigned long long>(server.access_log().dropped()));
  }
  return 0;
}
