file(REMOVE_RECURSE
  "CMakeFiles/carpool_fairness.dir/carpool_fairness.cpp.o"
  "CMakeFiles/carpool_fairness.dir/carpool_fairness.cpp.o.d"
  "carpool_fairness"
  "carpool_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpool_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
