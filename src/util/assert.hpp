// Lightweight contract-checking macros used across recoverlib.
//
// RL_REQUIRE is always on (it guards public API preconditions whose
// violation would corrupt a simulation silently); RL_DBG_ASSERT compiles
// away in release builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace recover::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "recoverlib %s failed: %s at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace recover::util

#define RL_REQUIRE(expr)                                                 \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::recover::util::contract_failure("precondition", #expr, __FILE__, \
                                        __LINE__);                       \
    }                                                                    \
  } while (0)

#ifndef NDEBUG
#define RL_DBG_ASSERT(expr)                                            \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::recover::util::contract_failure("assertion", #expr, __FILE__,  \
                                        __LINE__);                     \
    }                                                                  \
  } while (0)
#else
#define RL_DBG_ASSERT(expr) ((void)0)
#endif
