file(REMOVE_RECURSE
  "CMakeFiles/exact_orientation_test.dir/exact_orientation_test.cpp.o"
  "CMakeFiles/exact_orientation_test.dir/exact_orientation_test.cpp.o.d"
  "exact_orientation_test"
  "exact_orientation_test.pdb"
  "exact_orientation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_orientation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
