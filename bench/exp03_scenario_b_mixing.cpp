// Experiment E3 — Claim 5.3 and its refinements: scenario B recovery.
//
// The simple path coupling gives τ(ε) = O(n m² ln ε⁻¹); the (deferred)
// full version improves this to Õ(m²), and the paper notes τ = Ω(n·m)
// and τ = Ω(m²) for large m.  We measure grand-coupling coalescence from
// the extremal pair for m = c·n at several densities c and report the
// ratios against the candidate laws plus the fitted log-log slope in m.
// Expected shape: T/m² roughly flat in m at fixed c (the Õ(m²) law),
// orders of magnitude below the Claim 5.3 worst-case bound.
//
// The per-point body is the registered "exp03" SweepCell (src/sweep/),
// shared with bench/sweep_runner.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "src/obs/run_record.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/regression.hpp"
#include "src/sweep/registry.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace recover;

  util::Cli cli("exp03_scenario_b_mixing",
                "E3/Claim 5.3: coalescence of I_B vs n*m^2 / m^2 laws");
  cli.flag("sizes", "comma-separated n sweep", "8,12,16,24,32,48");
  cli.flag("densities", "comma-separated m/n ratios", "1,2");
  cli.flag("d", "ABKU choices", "2");
  cli.flag("replicas", "replicas per point", "16");
  cli.flag("seed", "rng seed", "3");
  obs::register_cli_flags(cli);
  cli.parse(argc, argv);
  obs::Run run(cli);

  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  sweep::GridSpec grid;
  grid.add_axis("density", cli.int_list("densities"));
  grid.add_axis("n", cli.int_list("sizes"));
  grid.add_axis("d", {cli.integer("d")});
  grid.add_axis("replicas", {cli.integer("replicas")});
  const auto* exp = sweep::Registry::global().find("exp03");

  util::Table table({"m/n", "n", "m", "T_mean", "T_ci95", "T_q95", "T/m^2",
                     "T/(n*m)", "claim53_bound(1/4)", "secs"});
  std::map<std::int64_t, std::pair<std::vector<double>, std::vector<double>>>
      fits;  // density -> (m, T_mean)

  for (std::uint64_t index = 0; index < grid.cells(); ++index) {
    const auto cell = grid.cell(index);
    const std::int64_t c = cell.at("density");
    const std::int64_t n = cell.at("n");
    const std::int64_t m = c * n;
    util::Timer timer;
    sweep::CellContext ctx;
    ctx.seed = rng::substream(seed, index);
    ctx.parallel_within_cell = true;
    const auto result = exp->run(cell, ctx);
    table.row()
        .add(std::to_string(c))
        .integer(n)
        .integer(m)
        .num(result.at("T_mean"), 1)
        .num(result.at("T_ci95"), 1)
        .num(result.at("T_q95"), 1)
        .num(result.at("T_m2"), 3)
        .num(result.at("T_nm"), 3)
        .num(result.at("claim53_bound"), 0)
        .num(timer.seconds(), 2);
    if (result.at("censored") == 0) {
      fits[c].first.push_back(static_cast<double>(m));
      fits[c].second.push_back(result.at("T_mean"));
    }
  }

  for (const auto& [c, xy] : fits) {
    if (xy.first.size() < 3) continue;
    const auto fit = stats::loglog_fit(xy.first, xy.second);
    std::printf("# m/n=%lld  log-log slope of T vs m: %.3f (R^2 %.4f)\n",
                static_cast<long long>(c), fit.slope, fit.r_squared);
    run.note("loglog_slope_c" + std::to_string(c), fit.slope);
  }
  table.print(std::cout);
  run.add_table("coalescence_scaling", table);
  std::printf(
      "\n# Shape check: T/m^2 roughly flat (refined O~(m^2) law), far below "
      "the Claim 5.3 worst-case bound; scenario B is polynomially slower "
      "than scenario A's m ln m (exp01).\n");
  return 0;
}
