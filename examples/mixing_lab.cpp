// mixing_lab — the library as a measurement instrument.
//
// Pick a process and get every recovery-time estimate the framework
// offers, side by side:
//   * coalescence of the grand coupling (upper estimate + w.h.p. tail);
//   * observable-projected TV curve (lower estimate);
//   * measured path-coupling parameters → Lemma 3.1 bound;
//   * the paper's symbolic bound;
//   * relaxation-time view: integrated autocorrelation time of the
//     critical observable in stationarity.
//
//   ./mixing_lab --process A --n 64 --m 128 --d 2
//   ./mixing_lab --process orientation --n 24
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "src/balls/coupling_a.hpp"
#include "src/balls/coupling_b.hpp"
#include "src/balls/grand_coupling.hpp"
#include "src/balls/random_states.hpp"
#include "src/balls/scenario_a.hpp"
#include "src/balls/scenario_b.hpp"
#include "src/core/coalescence.hpp"
#include "src/core/contraction.hpp"
#include "src/core/path_coupling.hpp"
#include "src/core/tv_mixing.hpp"
#include "src/orient/chain.hpp"
#include "src/stats/autocorr.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

using namespace recover;

template <typename MakeCoupling, typename MakeChainHot, typename MakeChainCold,
          typename Observable, typename StationaryChain>
void report(const char* title, MakeCoupling&& make_coupling,
            MakeChainHot&& make_hot, MakeChainCold&& make_cold,
            Observable&& observable, StationaryChain& stationary_chain,
            double paper_bound, const char* paper_name, int replicas,
            std::int64_t max_steps, std::uint64_t seed) {
  std::printf("== %s ==\n", title);

  core::CoalescenceOptions copts;
  copts.replicas = replicas;
  copts.seed = seed;
  copts.max_steps = max_steps;
  copts.check_interval = 4;
  const auto coal = core::measure_coalescence(make_coupling, copts);

  const auto checkpoints = core::geometric_checkpoints(
      1, 1.6,
      std::max<std::int64_t>(
          8, static_cast<std::int64_t>(coal.q95 > 0 ? 2 * coal.q95 : 1000)));
  const auto curve = core::estimate_tv_curve(make_hot, make_cold, observable,
                                             checkpoints, 400, seed + 1);
  const std::int64_t tv_lower = core::first_below(curve, 0.25);

  // Stationary autocorrelation of the observable.
  rng::Xoshiro256PlusPlus eng(seed + 2);
  for (int t = 0; t < 20000; ++t) stationary_chain.step(eng);
  std::vector<double> series;
  for (int t = 0; t < 20000; ++t) {
    stationary_chain.step(eng);
    series.push_back(static_cast<double>(observable(stationary_chain)));
  }
  const double tau_int = stats::integrated_autocorrelation_time(series);

  util::Table table({"estimator", "steps"});
  table.row().add("TV-curve lower estimate (eps=1/4)").integer(tv_lower);
  table.row().add("autocorr time of observable (stationary)").num(tau_int, 1);
  table.row().add("coalescence mean").num(coal.steps.mean(), 1);
  table.row().add("coalescence q95 (w.h.p.)").num(coal.q95, 1);
  table.row().add(paper_name).num(paper_bound, 0);
  table.print(std::cout);
  if (coal.censored > 0) {
    std::printf("  (%lld replicas censored at %lld steps)\n",
                static_cast<long long>(coal.censored),
                static_cast<long long>(max_steps));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("mixing_lab", "all recovery-time estimators, side by side");
  cli.flag("process", "A, B, or orientation", "A");
  cli.flag("n", "bins / vertices", "64");
  cli.flag("m", "balls (A/B only; default = n)", "0");
  cli.flag("d", "ABKU choices", "2");
  cli.flag("replicas", "coupling replicas", "48");
  cli.flag("seed", "rng seed", "1");
  cli.parse(argc, argv);

  const std::string process = cli.str("process");
  const auto n = static_cast<std::size_t>(cli.integer("n"));
  auto m = cli.integer("m");
  if (m == 0) m = static_cast<std::int64_t>(n);
  const auto d = static_cast<int>(cli.integer("d"));
  const auto replicas = static_cast<int>(cli.integer("replicas"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const balls::AbkuRule rule(d);

  const auto maxload = [](const auto& chain) {
    return chain.state().max_load();
  };

  if (process == "A" || process == "a") {
    balls::ScenarioAChain<balls::AbkuRule> stationary(
        balls::LoadVector::balanced(n, m), rule);
    report(
        "scenario A (remove a random ball)",
        [&](std::uint64_t) {
          return balls::GrandCouplingA<balls::AbkuRule>(
              balls::LoadVector::all_in_one(n, m),
              balls::LoadVector::balanced(n, m), rule);
        },
        [&](int) {
          return balls::ScenarioAChain<balls::AbkuRule>(
              balls::LoadVector::all_in_one(n, m), rule);
        },
        [&](int) {
          return balls::ScenarioAChain<balls::AbkuRule>(
              balls::LoadVector::balanced(n, m), rule);
        },
        maxload, stationary, core::theorem1_bound(m, 0.25),
        "Theorem 1 bound m ln(4m)", replicas, 2000 * m, seed);
  } else if (process == "B" || process == "b") {
    balls::ScenarioBChain<balls::AbkuRule> stationary(
        balls::LoadVector::balanced(n, m), rule);
    report(
        "scenario B (remove from a random non-empty bin)",
        [&](std::uint64_t) {
          return balls::GrandCouplingB<balls::AbkuRule>(
              balls::LoadVector::all_in_one(n, m),
              balls::LoadVector::balanced(n, m), rule);
        },
        [&](int) {
          return balls::ScenarioBChain<balls::AbkuRule>(
              balls::LoadVector::all_in_one(n, m), rule);
        },
        [&](int) {
          return balls::ScenarioBChain<balls::AbkuRule>(
              balls::LoadVector::balanced(n, m), rule);
        },
        maxload, stationary, core::claim53_bound(n, m, 0.25),
        "Claim 5.3 bound e n m^2 ln 4", replicas, 4000 * m * m, seed);
  } else if (process == "orientation") {
    const auto unfairness = [](const auto& chain) {
      return chain.state().unfairness();
    };
    orient::GreedyOrientationChain stationary{orient::DiffState(n)};
    const double nd = static_cast<double>(n);
    report(
        "greedy edge orientation (lazy)",
        [&](std::uint64_t) {
          return orient::GrandCouplingOrient(
              orient::DiffState::spread(n, static_cast<std::int64_t>(n / 2)),
              orient::DiffState(n));
        },
        [&](int) {
          return orient::GreedyOrientationChain(orient::DiffState::spread(
              n, static_cast<std::int64_t>(n / 2)));
        },
        [&](int) {
          return orient::GreedyOrientationChain(orient::DiffState(n));
        },
        unfairness, stationary, core::corollary64_bound(n, 0.25),
        "Corollary 6.4 bound", replicas,
        static_cast<std::int64_t>(500 * nd * nd * std::log(nd)), seed);
  } else {
    std::fprintf(stderr, "unknown --process '%s'\n%s", process.c_str(),
                 cli.usage().c_str());
    return 2;
  }
  return 0;
}
