// Tests for the exact edge-orientation chain over the reachable space Ψ.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/coalescence.hpp"
#include "src/orient/chain.hpp"
#include "src/orient/exact_chain.hpp"
#include "src/rng/engines.hpp"
#include "src/stats/histogram.hpp"

namespace recover::orient {
namespace {

TEST(OrientationSpace, SmallSpacesEnumerateKnownStates) {
  // n = 2: zero state and (1, -1) only — an edge between equal vertices
  // splits them, and from (1, -1) every pick is the no-op gap-1 case.
  const OrientationSpace s2(2);
  EXPECT_EQ(s2.size(), 2u);
  // n = 3: reachable diffs stay within +-1ish: {0,0,0}, {1,0,-1},
  // {1,1,-2}? From (1,0,-1): pick the 1 and -1 -> gap 2 -> (0,0,0);
  // pick ranks of 0 and -1 (gap 1, no-op); pick 1 and 0 (gap 1 no-op).
  // From zero: -> (1,0,-1) only.  From (1,0,-1) nothing new appears.
  const OrientationSpace s3(3);
  EXPECT_EQ(s3.size(), 2u);
}

TEST(OrientationSpace, ContainsZeroAndIsClosed) {
  for (std::size_t n : {4u, 5u, 6u}) {
    const OrientationSpace space(n);
    EXPECT_LT(space.zero_index(), space.size());
    // Closure: every transition target is in the space (checked by
    // build_exact_orientation_chain via index_of; here explicitly).
    for (std::size_t i = 0; i < space.size(); ++i) {
      for (std::size_t phi = 0; phi < n; ++phi) {
        for (std::size_t psi = phi + 1; psi < n; ++psi) {
          DiffState next = space.state(i);
          next.apply_edge(phi, psi);
          (void)space.index_of(next);  // aborts if missing
        }
      }
    }
  }
}

TEST(OrientationSpace, MaxUnfairnessWithinAjtaiBound) {
  // The reachable difference range from the empty graph stays within
  // ±⌈n/2⌉ (cited to Ajtai et al. / Anderson et al. in §6).
  for (std::size_t n : {4u, 5u, 6u, 7u}) {
    const OrientationSpace space(n);
    const auto worst = space.state(space.most_unfair_index()).unfairness();
    EXPECT_GT(worst, 0);
    EXPECT_LE(worst, static_cast<std::int64_t>((n + 1) / 2));
  }
}

TEST(OrientationSpace, FindDistinguishesReachableStates) {
  const OrientationSpace space(6);
  EXPECT_TRUE(space.find(DiffState(6)).has_value());
  const auto k = space.state(space.most_unfair_index()).unfairness();
  EXPECT_TRUE(space.find(DiffState::staircase(6, k)).has_value());
  // The two-block spread state exceeds the reachable displacement.
  EXPECT_FALSE(space.find(DiffState::spread(6, 3)).has_value());
}

TEST(PerStartTv, WorstStartForOrientationIsTheStaircase) {
  // The exp20 finding as a pinned regression: within Ψ the start with
  // the largest mid-mixing TV distance is the full staircase.
  const OrientationSpace space(6);
  const auto chain = build_exact_orientation_chain(space);
  const auto pi = core::stationary_distribution(chain);
  const auto exact = core::exact_mixing_time(chain, pi, 0.25, 100000);
  ASSERT_GT(exact.mixing_time, 0);
  const auto tv =
      core::per_start_tv(chain, pi, std::max<std::int64_t>(1, exact.mixing_time / 2));
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < tv.size(); ++i) {
    if (tv[i] > tv[argmax]) argmax = i;
  }
  const auto k = space.state(space.most_unfair_index()).unfairness();
  const auto stair = space.find(DiffState::staircase(6, k));
  ASSERT_TRUE(stair.has_value());
  EXPECT_EQ(argmax, *stair);
}

TEST(ExactOrientationChain, RowsStochasticWithLazyMass) {
  const OrientationSpace space(5);
  const auto chain = build_exact_orientation_chain(space);
  for (std::size_t i = 0; i < chain.states(); ++i) {
    double self = 0;
    double total = 0;
    for (const auto& [j, p] : chain.row(i)) {
      total += p;
      if (j == i) self = p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_GE(self, 0.5);  // the lazy bit alone contributes 1/2
  }
}

TEST(ExactOrientationChain, MatchesSimulatedOneStepLaw) {
  const OrientationSpace space(5);
  const auto chain = build_exact_orientation_chain(space);
  const std::size_t start = space.most_unfair_index();
  rng::Xoshiro256PlusPlus eng(17);
  stats::IntHistogram simulated;
  constexpr int kTrials = 120000;
  for (int t = 0; t < kTrials; ++t) {
    DiffState s = space.state(start);
    s.step(eng);
    simulated.add(static_cast<std::int64_t>(space.index_of(s)));
  }
  for (const auto& [j, p] : chain.row(start)) {
    EXPECT_NEAR(simulated.frequency(j), p, 0.01) << "target state " << j;
  }
}

TEST(ExactOrientationChain, StationaryConcentratesNearFairness) {
  const OrientationSpace space(6);
  const auto chain = build_exact_orientation_chain(space);
  const auto pi = core::stationary_distribution(chain);
  double mass_low = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (space.state(i).unfairness() <= 2) mass_low += pi[i];
  }
  EXPECT_GT(mass_low, 0.9);
}

TEST(ExactOrientationChain, ExactMixingBelowTheorem2Horizon) {
  for (std::size_t n : {4u, 5u, 6u}) {
    const OrientationSpace space(n);
    const auto chain = build_exact_orientation_chain(space);
    const auto pi = core::stationary_distribution(chain);
    const auto result = core::exact_mixing_time(chain, pi, 0.25, 100000);
    ASSERT_GT(result.mixing_time, 0) << "n=" << n;
    const double nd = static_cast<double>(n);
    // Generous constant: tau(1/4) = O(n^2 ln^2 n); at tiny n the ln^2
    // factor is O(1), so compare against c * n^2 with c = 8.
    EXPECT_LE(static_cast<double>(result.mixing_time), 8.0 * nd * nd)
        << "n=" << n;
  }
}

TEST(ExactOrientationChain, CoalescenceDominatesExactMixing) {
  const OrientationSpace space(6);
  const auto chain = build_exact_orientation_chain(space);
  const auto pi = core::stationary_distribution(chain);
  const auto exact = core::exact_mixing_time(chain, pi, 0.25, 100000);
  ASSERT_GT(exact.mixing_time, 0);

  core::CoalescenceOptions opts;
  opts.replicas = 100;
  opts.seed = 23;
  opts.max_steps = 200000;
  opts.parallel = false;
  const auto coal = core::measure_coalescence(
      [&](std::uint64_t) {
        return GrandCouplingOrient(space.state(space.most_unfair_index()),
                                   DiffState(6));
      },
      opts);
  ASSERT_EQ(coal.censored, 0);
  // Coupling inequality (up to MC noise on the quantile).
  EXPECT_GE(coal.q95 * 2.0, static_cast<double>(exact.mixing_time));
}

}  // namespace
}  // namespace recover::orient
