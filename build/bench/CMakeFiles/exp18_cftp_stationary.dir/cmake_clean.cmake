file(REMOVE_RECURSE
  "CMakeFiles/exp18_cftp_stationary.dir/exp18_cftp_stationary.cpp.o"
  "CMakeFiles/exp18_cftp_stationary.dir/exp18_cftp_stationary.cpp.o.d"
  "exp18_cftp_stationary"
  "exp18_cftp_stationary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp18_cftp_stationary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
